#!/usr/bin/env bash
# Regenerate the checked-in throughput baseline (BENCH_throughput.json)
# with a Release build of bench_throughput, so the bench-gate CI job
# compares against numbers produced the same way it produces its own.
#
# The bench stamps hardware_threads into the JSON; re-run this on real
# multi-core hardware to replace a baseline recorded in a constrained
# container (a 1-CPU container yields a parallel-sweep "speedup" below
# 1x, which says nothing about the sweep engine).
#
# Usage:
#   tools/regen_bench.sh [--jobs N] [BENCH_BINARY]
#
# Default binary: build-release/bench/bench_throughput (configured and
# built here if absent). The refreshed BENCH_throughput.json lands at
# the repo root; review the geomeans and commit it together with the
# change that moved them.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=4
BIN=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --jobs)
            JOBS="$2"
            shift 2
            ;;
        *)
            BIN="$1"
            shift
            ;;
    esac
done

if [[ -z "$BIN" ]]; then
    BIN=build-release/bench/bench_throughput
    if [[ ! -x "$BIN" ]]; then
        cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
        cmake --build build-release -j"$(nproc)" --target bench_throughput
    fi
fi

if [[ ! -x "$BIN" ]]; then
    echo "error: bench_throughput binary not found at '$BIN'" >&2
    exit 2
fi

# The bench writes BENCH_throughput.json into the working directory —
# the repo root here, i.e. the checked-in baseline.
"$BIN" 1 --jobs "$JOBS"

echo
echo "refreshed BENCH_throughput.json (hardware_threads=$(nproc));"
echo "diff, sanity-check the geomeans, and commit."
