#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a freshly produced BENCH_throughput.json against the baseline
checked into the repository and fails (exit 1) when the geometric mean
of the per-policy functional throughput (functional_krefs_per_s) drops
more than TOLERANCE below the baseline geomean.

Tolerance rationale: CI runners are shared and noisy; single-policy
numbers swing +/-10% run to run, but the geomean across all five
policies is much more stable. 20% headroom keeps the gate quiet on
runner jitter while still catching real regressions (an accidental
O(n) scan in the hot path costs 2-10x, far beyond 20%).

Usage: bench_gate.py BASELINE.json FRESH.json [--tolerance 0.20]

Only the Python standard library is used.
"""

import argparse
import json
import math
import sys


def geomean_functional(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    rates = [
        float(entry["functional_krefs_per_s"])
        for entry in data["policies"].values()
    ]
    if not rates or any(r <= 0 for r in rates):
        sys.exit(f"error: {path} has missing or non-positive throughput")
    return math.exp(sum(math.log(r) for r in rates) / len(rates)), data


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop below baseline geomean")
    args = ap.parse_args()

    base_gm, _ = geomean_functional(args.baseline)
    fresh_gm, fresh = geomean_functional(args.fresh)
    floor = base_gm * (1.0 - args.tolerance)
    ratio = fresh_gm / base_gm

    print(f"baseline geomean: {base_gm:10.1f} krefs/s")
    print(f"fresh geomean:    {fresh_gm:10.1f} krefs/s  ({ratio:.2%})")
    print(f"floor ({1 - args.tolerance:.0%} of baseline): {floor:10.1f}")
    for name, entry in fresh["policies"].items():
        print(f"  {name:10s} {entry['functional_krefs_per_s']:>10} krefs/s")

    if fresh_gm < floor:
        print(f"FAIL: geomean dropped more than "
              f"{args.tolerance:.0%} below baseline", file=sys.stderr)
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
