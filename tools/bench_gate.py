#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a freshly produced BENCH_throughput.json against the baseline
checked into the repository and fails (exit 1) when the geometric mean
of the per-policy throughput drops more than TOLERANCE below the
baseline geomean.  Both simulator modes are gated independently:

  - functional_krefs_per_s — the trace-replay hot loop;
  - timing_krefs_per_s     — the event-engine + memory-hierarchy path
    (the cost every sweep cell pays, overhauled by the bucketed-wheel
    event queue; a regression here silently multiplies sweep time).

Tolerance rationale: CI runners are shared and noisy; single-policy
numbers swing +/-10% run to run, but the geomean across all five
policies is much more stable. 20% headroom keeps the gate quiet on
runner jitter while still catching real regressions (an accidental
O(n) scan in the hot path costs 2-10x, far beyond 20%).

Usage: bench_gate.py BASELINE.json FRESH.json [--tolerance 0.20]

Only the Python standard library is used.
"""

import argparse
import json
import math
import sys

EXPECTED_TOOL_VERSION = "hpe-bench-throughput/1"


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_stamp(doc, path):
    stamp = doc.get("tool_version")
    if stamp is None:
        sys.exit(f"error: {path} has no tool_version stamp; regenerate it "
                 "with tools/regen_bench.sh")
    if stamp != EXPECTED_TOOL_VERSION:
        sys.exit(f"error: {path} was produced by '{stamp}' but this gate "
                 f"expects '{EXPECTED_TOOL_VERSION}'; re-baseline with "
                 "tools/regen_bench.sh")


def geomean(data, key, path):
    rates = [float(entry[key]) for entry in data["policies"].values()]
    if not rates or any(r <= 0 for r in rates):
        sys.exit(f"error: {path} has missing or non-positive {key}")
    return math.exp(sum(math.log(r) for r in rates) / len(rates))


def gate(mode, key, base, fresh, fresh_path, base_path, tolerance):
    """Print one mode's comparison; return True when within tolerance."""
    base_gm = geomean(base, key, base_path)
    fresh_gm = geomean(fresh, key, fresh_path)
    floor = base_gm * (1.0 - tolerance)
    ratio = fresh_gm / base_gm

    print(f"[{mode}]")
    print(f"  baseline geomean: {base_gm:10.1f} krefs/s")
    print(f"  fresh geomean:    {fresh_gm:10.1f} krefs/s  ({ratio:.2%})")
    print(f"  floor ({1 - tolerance:.0%} of baseline): {floor:10.1f}")
    for name, entry in fresh["policies"].items():
        print(f"    {name:10s} {entry[key]:>10} krefs/s")

    if fresh_gm < floor:
        print(f"FAIL: {mode} geomean dropped more than "
              f"{tolerance:.0%} below baseline", file=sys.stderr)
        return False
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop below baseline geomean")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    check_stamp(base, args.baseline)
    check_stamp(fresh, args.fresh)
    ok = True
    for mode, key in (("functional", "functional_krefs_per_s"),
                      ("timing", "timing_krefs_per_s")):
        ok &= gate(mode, key, base, fresh, args.fresh, args.baseline,
                   args.tolerance)
    if not ok:
        return 1
    print("OK: both modes within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
