#!/usr/bin/env bash
# Regenerate (or verify) the golden trace digests and interval CSVs in
# ci/golden/. CI's golden-trace job runs this with --check; after an
# intentional simulator or tracing change, refresh the files with:
#
#     ./tools/regen_golden.sh path/to/hpe_sim
#
# and commit the result. Each (app, policy) cell is a functional run at
# --scale 0.1 --seed 1: small enough for CI, big enough to exercise
# faults, evictions, chain ops and HIR transitions.
#
# Usage:
#   tools/regen_golden.sh [--check] [HPE_SIM_BINARY]
#
# Default binary: build/tools/hpe_sim relative to the repo root.

set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
BIN=build/tools/hpe_sim
for arg in "$@"; do
    case "$arg" in
        --check) CHECK=1 ;;
        *) BIN="$arg" ;;
    esac
done

if [[ ! -x "$BIN" ]]; then
    echo "error: hpe_sim binary not found at '$BIN'" >&2
    exit 2
fi

APPS=(HSD BFS KMN)
POLICIES=(LRU HPE Ideal)
SCALE=0.1
SEED=1
INTERVAL=500

GOLDEN=ci/golden
OUT="$GOLDEN"
if [[ "$CHECK" == 1 ]]; then
    OUT="$(mktemp -d)"
    trap 'rm -rf "$OUT"' EXIT
fi
mkdir -p "$OUT"

status=0
run_cell() {
    local stem="$1"
    shift
    # CELL_SCALE overrides the default scale for cells whose frame pool
    # must fit a large page class (a 2 MiB page spans 512 frames).
    local scale="${CELL_SCALE:-$SCALE}"
    "$BIN" run "$@" --functional \
        --scale "$scale" --seed "$SEED" \
        --trace-digest \
        --interval-stats "$OUT/$stem.intervals.csv" \
        --interval "$INTERVAL" \
        | grep '^trace digest ' > "$OUT/$stem.digest"
    if [[ "$CHECK" == 1 ]]; then
        for f in "$stem.digest" "$stem.intervals.csv"; do
            if ! cmp -s "$GOLDEN/$f" "$OUT/$f"; then
                echo "MISMATCH: $GOLDEN/$f" >&2
                diff -u "$GOLDEN/$f" "$OUT/$f" >&2 || true
                status=1
            fi
        done
    fi
}

for app in "${APPS[@]}"; do
    for policy in "${POLICIES[@]}"; do
        run_cell "${app}_${policy}" --app "$app" --policy "$policy"
    done
done
# One prefetcher-enabled cell: pins the density prefetcher's candidate
# stream and HPE's cold placement of speculative arrivals.
run_cell "KMN_HPE_density" --app KMN --policy HPE --prefetch density
# One adaptive cell: pins the meta-policy's interval boundaries, its
# policy_switch events (folded into the digest), and the meta_active /
# meta_switches gauge columns of the interval CSV.
run_cell "KMN_MetaDuel" --app KMN --policy Meta-duel
# Two page-size cells: pin the coalescer's event stream (coalesce /
# splinter events fold into the digest) and the page-size interval
# columns (large_pages, covered_pages, free-run gauges).  The 2 MiB
# cell runs at full scale with raised oversubscription because a 2 MiB
# page spans 512 frames and must fit the pool.
run_cell "KMN_HPE_64k" --app KMN --policy HPE \
    --page-sizes 4k,64k --coalesce
CELL_SCALE=1.0 run_cell "STN_LRU_2m" --app STN --policy LRU \
    --oversub 0.85 --page-sizes 4k,2m --coalesce

CELLS=$(( ${#APPS[@]} * ${#POLICIES[@]} + 4 ))
if [[ "$CHECK" == 1 ]]; then
    if [[ "$status" == 0 ]]; then
        echo "golden traces: all $CELLS cells match"
    else
        echo "golden traces diverged; if intentional, regenerate with" >&2
        echo "    ./tools/regen_golden.sh $BIN" >&2
    fi
    exit "$status"
fi

echo "regenerated $GOLDEN ($(ls "$GOLDEN" | wc -l) files)"
