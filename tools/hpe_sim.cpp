/**
 * @file
 * hpe_sim — the command-line front end.  All logic lives in
 * src/cli/commands.cpp so it is unit-testable; this is just main().
 */

#include <iostream>

#include "cli/args.hpp"
#include "cli/commands.hpp"

int
main(int argc, char **argv)
{
    const hpe::cli::Args args = hpe::cli::Args::parse(argc, argv);
    return hpe::cli::dispatch(args, std::cout);
}
