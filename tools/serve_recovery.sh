#!/usr/bin/env bash
# Kill-9 recovery proof for the sharded hpe_serve durable result store,
# exercised over TCP:
#
#   1. start a 4-shard daemon on an ephemeral TCP port (tcp:127.0.0.1:0,
#      discovered via --endpoint-file) and populate the store (submit the
#      HSD/HPE golden cell, digest checked byte-for-byte against
#      ci/golden/HSD_HPE.digest),
#   2. SIGKILL the daemon in the middle of a burst of cold submissions —
#      no drain, no flush, exactly what a crash looks like — and tear the
#      newest journal segment of *every* shard on purpose (append a
#      half-written frame) so recovery provably handles torn writes in
#      each shard, not just a clean file,
#   3. restart a daemon over the same --store-dir with a DIFFERENT shard
#      count (4 -> 2) and assert it (a) boots despite the tears,
#      (b) truncates the torn tails, (c) migrates the now-orphan shard-2
#      and shard-3 journals into the surviving shards, and (d) serves the
#      golden cell as a warm cache hit with the identical digest, without
#      recomputing it.
#
# Usage: tools/serve_recovery.sh [path-to-hpe_sim]  (default: build/tools/hpe_sim)
set -euo pipefail
cd "$(dirname "$0")/.."

HPE_SIM="${1:-build/tools/hpe_sim}"
GOLDEN="ci/golden/HSD_HPE.digest"
CELL=(--app HSD --policy HPE --functional --scale 0.1 --seed 1 --trace-digest)

fail() { echo "serve recovery: $*" >&2; exit 1; }

[ -x "$HPE_SIM" ] || fail "$HPE_SIM not built"
[ -f "$GOLDEN" ] || fail "$GOLDEN missing"

TMPDIR_REC="$(mktemp -d /tmp/hpe_recover.XXXXXX)"
STORE="$TMPDIR_REC/store"
EPFILE="$TMPDIR_REC/endpoint"
SERVE_PID=""
ENDPOINT=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMPDIR_REC"
}
trap cleanup EXIT

# start_daemon SHARDS: boot on an ephemeral TCP port, resolve ENDPOINT.
start_daemon() {
    rm -f "$EPFILE"
    "$HPE_SIM" serve --listen tcp:127.0.0.1:0 --shards "$1" \
        --store-dir "$STORE" --endpoint-file "$EPFILE" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$EPFILE" ] && { ENDPOINT="$(head -n 1 "$EPFILE")"; return 0; }
        sleep 0.1
    done
    fail "daemon did not write $EPFILE"
}

# ---- 1. populate the 4-shard store with the golden cell ------------------
start_daemon 4
first="$("$HPE_SIM" submit --socket "$ENDPOINT" "${CELL[@]}")"
echo "$first" | grep -q '"ok":true' || fail "populate submit failed: $first"
digest="$(echo "$first" | sed -n 's/.*"trace_digest":"\([0-9a-f]*\)".*/\1/p')"
events="$(echo "$first" | sed -n 's/.*"trace_events":\([0-9]*\).*/\1/p')"
served_line="trace digest $digest ($events events)"
golden_line="$(head -n 1 "$GOLDEN")"
[ "$served_line" = "$golden_line" ] \
    || fail "digest mismatch before crash: '$served_line' vs '$golden_line'"

# ---- 2. SIGKILL mid-load, then tear every shard's journal tail -----------
# A burst of cold cells keeps computations (and journal appends, spread
# across the shards) in flight while the daemon dies.
for seed in 11 12 13 14 15 16; do
    "$HPE_SIM" submit --socket "$ENDPOINT" --app STN --policy LRU \
        --functional --scale 0.1 --seed "$seed" --trace-digest \
        >/dev/null 2>&1 &
done
sleep 0.3
kill -9 "$SERVE_PID" || fail "could not SIGKILL the daemon"
wait "$SERVE_PID" 2>/dev/null || true  # 137: killed, as intended
SERVE_PID=""
wait || true  # the in-flight submits lose their connection; that's fine

[ -d "$STORE/shard-0" ] || fail "no shard-0 journal dir survived the kill"
[ -d "$STORE/shard-3" ] || fail "no shard-3 journal dir survived the kill"
# A half-written frame per shard: a valid magic and a frame header
# promising more bytes than follow.  Recovery must truncate exactly
# this off — in every shard, including the ones about to be migrated.
torn=0
for shard_dir in "$STORE"/shard-*; do
    active="$(ls "$shard_dir"/journal-*.log 2>/dev/null | sort | tail -n 1)"
    [ -n "$active" ] || continue
    printf 'HPEJ\001\000\000\000\377\000\000\000\377\000\000\000torn' \
        >> "$active"
    torn=$((torn + 1))
done
[ "$torn" -ge 1 ] || fail "no journal segment survived the kill"

# ---- 3. restart resharded (4 -> 2) and demand a warm hit -----------------
start_daemon 2
warm="$("$HPE_SIM" submit --socket "$ENDPOINT" "${CELL[@]}")"
echo "$warm" | grep -q '"ok":true' || fail "post-crash submit failed: $warm"
echo "$warm" | grep -q '"cached":true' \
    || fail "restart recomputed the golden cell instead of warm-starting: $warm"
echo "$warm" | grep -q "\"trace_digest\":\"$digest\"" \
    || fail "warm digest differs from pre-crash digest: $warm"

stats="$("$HPE_SIM" submit --socket "$ENDPOINT" --type stats)"
echo "$stats" | grep -q '"torn_truncations":[1-9]' \
    || fail "the torn tails were not truncated: $stats"
echo "$stats" | grep -q '"recovered":[1-9]' \
    || fail "nothing recovered from the journals: $stats"
echo "$stats" | grep -q '"shard_count":2' \
    || fail "restarted daemon is not running 2 shards: $stats"
# The 4-shard incarnation's shard-2/shard-3 journals were drained into
# the surviving shards and removed.
[ ! -d "$STORE/shard-2" ] || fail "orphan shard-2 journal was not migrated"
[ ! -d "$STORE/shard-3" ] || fail "orphan shard-3 journal was not migrated"

"$HPE_SIM" submit --socket "$ENDPOINT" --type shutdown >/dev/null
wait "$SERVE_PID" || fail "recovered daemon exited non-zero"
SERVE_PID=""

echo "serve recovery: kill-9 survived on tcp, torn tails truncated," \
     "4->2 reshard migrated, warm hit with golden digest"
