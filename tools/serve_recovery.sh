#!/usr/bin/env bash
# Kill-9 recovery proof for the hpe_serve durable result store:
#
#   1. populate the store (submit the HSD/HPE golden cell, digest checked
#      byte-for-byte against ci/golden/HSD_HPE.digest),
#   2. SIGKILL the daemon in the middle of a burst of cold submissions —
#      no drain, no flush, exactly what a crash looks like — and tear the
#      journal tail on purpose (append a half-written frame) so recovery
#      provably handles a torn write, not just a clean file,
#   3. restart a daemon over the same --store-dir and assert it (a) boots
#      despite the tear, (b) truncates the torn tail, and (c) serves the
#      golden cell as a warm cache hit with the identical digest, without
#      recomputing it.
#
# Usage: tools/serve_recovery.sh [path-to-hpe_sim]  (default: build/tools/hpe_sim)
set -euo pipefail
cd "$(dirname "$0")/.."

HPE_SIM="${1:-build/tools/hpe_sim}"
GOLDEN="ci/golden/HSD_HPE.digest"
CELL=(--app HSD --policy HPE --functional --scale 0.1 --seed 1 --trace-digest)

fail() { echo "serve recovery: $*" >&2; exit 1; }

[ -x "$HPE_SIM" ] || fail "$HPE_SIM not built"
[ -f "$GOLDEN" ] || fail "$GOLDEN missing"

TMPDIR_REC="$(mktemp -d /tmp/hpe_recover.XXXXXX)"
SOCK="$TMPDIR_REC/daemon.sock"
STORE="$TMPDIR_REC/store"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMPDIR_REC"
}
trap cleanup EXIT

start_daemon() {
    "$HPE_SIM" serve --socket "$SOCK" --store-dir "$STORE" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [ -S "$SOCK" ] && return 0
        sleep 0.1
    done
    fail "daemon did not create $SOCK"
}

# ---- 1. populate the store with the golden cell --------------------------
start_daemon
first="$("$HPE_SIM" submit --socket "$SOCK" "${CELL[@]}")"
echo "$first" | grep -q '"ok":true' || fail "populate submit failed: $first"
digest="$(echo "$first" | sed -n 's/.*"trace_digest":"\([0-9a-f]*\)".*/\1/p')"
events="$(echo "$first" | sed -n 's/.*"trace_events":\([0-9]*\).*/\1/p')"
served_line="trace digest $digest ($events events)"
golden_line="$(head -n 1 "$GOLDEN")"
[ "$served_line" = "$golden_line" ] \
    || fail "digest mismatch before crash: '$served_line' vs '$golden_line'"

# ---- 2. SIGKILL mid-load, then tear the journal tail ---------------------
# A burst of cold cells keeps computations (and journal appends) in
# flight while the daemon dies.
for seed in 11 12 13 14 15 16; do
    "$HPE_SIM" submit --socket "$SOCK" --app STN --policy LRU --functional \
        --scale 0.1 --seed "$seed" --trace-digest >/dev/null 2>&1 &
done
sleep 0.3
kill -9 "$SERVE_PID" || fail "could not SIGKILL the daemon"
wait "$SERVE_PID" 2>/dev/null || true  # 137: killed, as intended
SERVE_PID=""
wait || true  # the in-flight submits lose their connection; that's fine

active="$(ls "$STORE"/journal-*.log 2>/dev/null | sort | tail -n 1)"
[ -n "$active" ] || fail "no journal segment survived the kill"
intact_size="$(wc -c < "$active")"
# A half-written frame: a valid magic and a frame header promising more
# bytes than follow.  Recovery must truncate exactly this off.
printf 'HPEJ\001\000\000\000\377\000\000\000\377\000\000\000torn' >> "$active"

# ---- 3. restart over the same store and demand a warm hit ----------------
start_daemon
warm="$("$HPE_SIM" submit --socket "$SOCK" "${CELL[@]}")"
echo "$warm" | grep -q '"ok":true' || fail "post-crash submit failed: $warm"
echo "$warm" | grep -q '"cached":true' \
    || fail "restart recomputed the golden cell instead of warm-starting: $warm"
echo "$warm" | grep -q "\"trace_digest\":\"$digest\"" \
    || fail "warm digest differs from pre-crash digest: $warm"

stats="$("$HPE_SIM" submit --socket "$SOCK" --type stats)"
echo "$stats" | grep -q '"torn_truncations":[1-9]' \
    || fail "the torn tail was not truncated: $stats"
echo "$stats" | grep -q '"recovered":[1-9]' \
    || fail "nothing recovered from the journal: $stats"
post_size="$(wc -c < "$active")"
[ "$post_size" -le "$intact_size" ] \
    || fail "journal still contains the torn tail ($post_size > $intact_size)"

"$HPE_SIM" submit --socket "$SOCK" --type shutdown >/dev/null
wait "$SERVE_PID" || fail "recovered daemon exited non-zero"
SERVE_PID=""

echo "serve recovery: kill-9 survived, torn tail truncated, warm hit with golden digest"
