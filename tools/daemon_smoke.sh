#!/usr/bin/env bash
# Daemon smoke test: start hpe_serve, submit the HSD/HPE golden cell over
# the socket, and assert
#   1. the served digest is byte-identical to ci/golden/HSD_HPE.digest
#      (the same bytes `hpe_sim run` and the sweep produce),
#   2. an identical re-submit is answered from the result cache,
#   3. a `shutdown` request drains the daemon to a clean exit 0,
#   4. a restarted daemon over the same --store-dir serves the cell as a
#      warm cache hit with the same digest (durability),
#   5. a sharded daemon on an ephemeral TCP port (tcp:127.0.0.1:0,
#      discovered via --endpoint-file) serves the same digest over TCP.
#
# Usage: tools/daemon_smoke.sh [path-to-hpe_sim]   (default: build/tools/hpe_sim)
set -euo pipefail
cd "$(dirname "$0")/.."

HPE_SIM="${1:-build/tools/hpe_sim}"
GOLDEN="ci/golden/HSD_HPE.digest"
CELL=(--app HSD --policy HPE --functional --scale 0.1 --seed 1 --trace-digest)

fail() { echo "daemon smoke: $*" >&2; exit 1; }

[ -x "$HPE_SIM" ] || fail "$HPE_SIM not built"
[ -f "$GOLDEN" ] || fail "$GOLDEN missing"

# Everything lives in one private temp dir (mktemp -d is atomic, unlike
# the old `mktemp -u` name reservation), and the trap tears down both
# the daemon and the dir on every exit path — no leaked daemons, no
# leaked sockets.
TMPDIR_SMOKE="$(mktemp -d /tmp/hpe_smoke.XXXXXX)"
SOCK="$TMPDIR_SMOKE/daemon.sock"
STORE="$TMPDIR_SMOKE/store"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMPDIR_SMOKE"
}
trap cleanup EXIT

start_daemon() {
    "$HPE_SIM" serve --socket "$SOCK" --store-dir "$STORE" &
    SERVE_PID=$!
    # Wait for the socket to appear (the daemon binds before accepting).
    for _ in $(seq 1 100); do
        [ -S "$SOCK" ] && return 0
        sleep 0.1
    done
    fail "daemon did not create $SOCK"
}

start_daemon

# 1. First submit computes; its digest must match the checked-in golden.
first="$("$HPE_SIM" submit --socket "$SOCK" "${CELL[@]}")"
echo "$first" | grep -q '"ok":true' || fail "first submit failed: $first"
echo "$first" | grep -q '"cached":false' || fail "first submit unexpectedly cached"
digest="$(echo "$first" | sed -n 's/.*"trace_digest":"\([0-9a-f]*\)".*/\1/p')"
events="$(echo "$first" | sed -n 's/.*"trace_events":\([0-9]*\).*/\1/p')"
served_line="trace digest $digest ($events events)"
golden_line="$(head -n 1 "$GOLDEN")"
[ "$served_line" = "$golden_line" ] \
    || fail "digest mismatch: served '$served_line' vs golden '$golden_line'"

# 2. An identical re-submit must be a cache hit with the same digest.
second="$("$HPE_SIM" submit --socket "$SOCK" "${CELL[@]}")"
echo "$second" | grep -q '"cached":true' || fail "re-submit missed the cache: $second"
echo "$second" | grep -q "\"trace_digest\":\"$digest\"" \
    || fail "cached digest differs: $second"

stats="$("$HPE_SIM" submit --socket "$SOCK" --type stats)"
echo "$stats" | grep -q '"cache_hits":1' || fail "expected one cache hit: $stats"
echo "$stats" | grep -q '"cache_misses":1' || fail "expected one cache miss: $stats"

# 3. Graceful shutdown: the daemon drains and exits 0.
"$HPE_SIM" submit --socket "$SOCK" --type shutdown >/dev/null
wait "$SERVE_PID" || fail "daemon exited non-zero"
SERVE_PID=""
[ ! -S "$SOCK" ] || fail "socket file survived shutdown"

# 4. Durability: a fresh daemon over the same store directory answers the
# same cell as a warm cache hit — no recomputation — with the same digest.
start_daemon
warm="$("$HPE_SIM" submit --socket "$SOCK" "${CELL[@]}")"
echo "$warm" | grep -q '"cached":true' || fail "restart missed the store: $warm"
echo "$warm" | grep -q "\"trace_digest\":\"$digest\"" \
    || fail "warm digest differs: $warm"
stats="$("$HPE_SIM" submit --socket "$SOCK" --type stats)"
echo "$stats" | grep -q '"cache_misses":0' \
    || fail "restart recomputed instead of warm-starting: $stats"
"$HPE_SIM" submit --socket "$SOCK" --type shutdown >/dev/null
wait "$SERVE_PID" || fail "restarted daemon exited non-zero"
SERVE_PID=""

# 5. TCP leg: a 2-shard daemon on an ephemeral port answers the same
# golden cell over TCP, byte-identical to the Unix-socket bytes.  The
# warm store from step 4 rides along, so this is also a sharding
# migration of the legacy journal (1 shard -> 2).
EPFILE="$TMPDIR_SMOKE/endpoint"
"$HPE_SIM" serve --listen tcp:127.0.0.1:0 --shards 2 \
    --store-dir "$STORE" --endpoint-file "$EPFILE" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$EPFILE" ] && break
    sleep 0.1
done
[ -s "$EPFILE" ] || fail "tcp daemon did not write $EPFILE"
ENDPOINT="$(head -n 1 "$EPFILE")"
case "$ENDPOINT" in
    tcp:127.0.0.1:*) ;;
    *) fail "unexpected endpoint spelling: $ENDPOINT" ;;
esac
tcp="$("$HPE_SIM" submit --socket "$ENDPOINT" "${CELL[@]}")"
echo "$tcp" | grep -q '"cached":true' || fail "tcp submit missed the store: $tcp"
echo "$tcp" | grep -q "\"trace_digest\":\"$digest\"" \
    || fail "tcp digest differs: $tcp"
stats="$("$HPE_SIM" submit --socket "$ENDPOINT" --type stats)"
echo "$stats" | grep -q '"shard_count":2' || fail "expected 2 shards: $stats"
"$HPE_SIM" submit --socket "$ENDPOINT" --type shutdown >/dev/null
wait "$SERVE_PID" || fail "tcp daemon exited non-zero"
SERVE_PID=""

echo "daemon smoke: digest match, cache hit, clean shutdown," \
     "warm restart, tcp leg served golden digest"
