#!/usr/bin/env python3
"""Tournament-leaderboard gate for CI.

Compares a freshly produced leaderboard.json (hpe_sim tournament --quick
--json) against ci/leaderboard_baseline.json and fails (exit 1) when:

  1. either file lacks the tournament tool_version stamp, or the stamps
     disagree (comparing leaderboards produced by different tournament
     revisions is meaningless — re-baseline instead);
  2. any Meta-* policy's geomean speedup vs LRU regressed more than
     TOLERANCE below its baseline value (the adaptive layer is the part
     this gate protects; static policies are pinned by golden digests);
  3. the fresh leaderboard has an empty meta_beats_all_statics list —
     the repository's standing claim is that on at least one
     phase-changing co-run cell an adaptive meta-policy strictly beats
     every static policy, and a change that silently loses that property
     must fail CI.

Tolerance rationale: the tournament is functional-mode (exact fault
counts, no timing noise), so any drift at all is a deliberate behaviour
change.  The 5% headroom only forgives small intentional re-tunings of a
candidate policy that shift meta's relative speedup without breaking the
adaptive win; larger regressions mean the selector stopped adapting.

Usage: leaderboard_gate.py BASELINE.json FRESH.json [--tolerance 0.05]

Only the Python standard library is used.
"""

import argparse
import json
import sys

EXPECTED_TOOL_VERSION = "hpe-tournament/1"


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_stamp(doc, path):
    stamp = doc.get("tool_version")
    if stamp is None:
        sys.exit(f"error: {path} has no tool_version stamp; regenerate it "
                 "with tools/regen_leaderboard.sh")
    if stamp != EXPECTED_TOOL_VERSION:
        sys.exit(f"error: {path} was produced by '{stamp}' but this gate "
                 f"expects '{EXPECTED_TOOL_VERSION}'; re-baseline with "
                 "tools/regen_leaderboard.sh")


def speedups(doc):
    return {row["policy"]: float(row["geomean_speedup_vs_lru"])
            for row in doc["leaderboard"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional drop of a Meta-* policy's "
                         "geomean speedup below baseline")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    check_stamp(base, args.baseline)
    check_stamp(fresh, args.fresh)

    base_speedups = speedups(base)
    fresh_speedups = speedups(fresh)
    meta_policies = sorted(p for p in base_speedups if p.startswith("Meta-"))
    if not meta_policies:
        sys.exit(f"error: {args.baseline} has no Meta-* rows to gate")

    ok = True
    for policy in meta_policies:
        if policy not in fresh_speedups:
            print(f"FAIL: {policy} missing from fresh leaderboard",
                  file=sys.stderr)
            ok = False
            continue
        b, f = base_speedups[policy], fresh_speedups[policy]
        floor = b * (1.0 - args.tolerance)
        verdict = "ok" if f >= floor else "FAIL"
        print(f"  {policy:12s} baseline {b:.4f}  fresh {f:.4f}  "
              f"floor {floor:.4f}  {verdict}")
        if f < floor:
            print(f"FAIL: {policy} geomean speedup regressed more than "
                  f"{args.tolerance:.0%} below baseline", file=sys.stderr)
            ok = False

    meta_wins = fresh.get("meta_beats_all_statics", [])
    if meta_wins:
        print(f"  adaptive wins ({len(meta_wins)} cells):")
        for cell in meta_wins:
            print(f"    {cell}")
    else:
        print("FAIL: no cell where a meta-policy beats every static policy",
              file=sys.stderr)
        ok = False

    if not ok:
        return 1
    print("OK: meta policies within tolerance and adaptive win holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
