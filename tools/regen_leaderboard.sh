#!/usr/bin/env bash
# Regenerate the checked-in tournament baseline
# (ci/leaderboard_baseline.json) from `hpe_sim tournament --quick`.
#
# The baseline is what tools/leaderboard_gate.py compares CI's fresh
# leaderboard against; refresh it after an intentional policy or
# workload change moved the standings, review the diff (in particular
# that meta_beats_all_statics stays non-empty — the gate fails CI
# otherwise), and commit it together with the change.
#
# The tournament is functional-mode and deterministic for any --jobs, so
# a baseline regenerated anywhere matches CI byte for byte.
#
# Usage:
#   tools/regen_leaderboard.sh [--jobs N] [HPE_SIM_BINARY]
#
# Default binary: build/tools/hpe_sim relative to the repo root.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=0
BIN=build/tools/hpe_sim
while [[ $# -gt 0 ]]; do
    case "$1" in
        --jobs)
            JOBS="$2"
            shift 2
            ;;
        *)
            BIN="$1"
            shift
            ;;
    esac
done

if [[ ! -x "$BIN" ]]; then
    echo "error: hpe_sim binary not found at '$BIN'" >&2
    exit 2
fi

"$BIN" tournament --quick --jobs "$JOBS" \
    --json ci/leaderboard_baseline.json

echo "refreshed ci/leaderboard_baseline.json; diff, check the adaptive"
echo "wins survived, and commit."
