/**
 * @file
 * Tests for the hpe::api façade: the name registry (case-insensitive
 * canonical lookups, uniform unknown-name errors, distinct usage exit
 * code), ExperimentRequest JSON round trips and fingerprint semantics,
 * and the cross-entry-point equivalence grid — the API must reproduce
 * the checked-in golden digests and the CLI's output for every
 * (policy x workload) cell.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "api/registry.hpp"
#include "cli/args.hpp"
#include "cli/commands.hpp"

namespace hpe::api {
namespace {

// ---------------------------------------------------------------- registry

TEST(Registry, PolicyLookupIsCaseInsensitive)
{
    ASSERT_TRUE(findPolicy("HPE").has_value());
    EXPECT_EQ(findPolicy("hpe"), findPolicy("HPE"));
    EXPECT_EQ(findPolicy("Hpe"), findPolicy("HPE"));
    EXPECT_EQ(findPolicy("clock-pro"), findPolicy("CLOCK-Pro"));
    EXPECT_FALSE(findPolicy("NOPE").has_value());
}

TEST(Registry, AppLookupIsCaseInsensitive)
{
    const AppSpec *upper = findApp("HSD");
    ASSERT_NE(upper, nullptr);
    EXPECT_EQ(findApp("hsd"), upper);
    EXPECT_EQ(findApp("b+t"), findApp("B+T"));
    EXPECT_EQ(findApp("NOPE"), nullptr);
}

TEST(Registry, PrefetchLookupIsCaseInsensitive)
{
    ASSERT_TRUE(findPrefetchKind("sequential").has_value());
    EXPECT_EQ(findPrefetchKind("SEQUENTIAL"), findPrefetchKind("sequential"));
    EXPECT_FALSE(findPrefetchKind("NOPE").has_value());
}

TEST(Registry, NameListsAreCanonicalAndComplete)
{
    const auto policies = policyNames();
    EXPECT_NE(std::find(policies.begin(), policies.end(), "HPE"),
              policies.end());
    EXPECT_NE(std::find(policies.begin(), policies.end(), "CLOCK-Pro"),
              policies.end());
    const auto apps = appNames();
    EXPECT_NE(std::find(apps.begin(), apps.end(), "HSD"), apps.end());
    const auto prefetchers = prefetchNames();
    EXPECT_EQ(prefetchers.size(), 4u);
    EXPECT_EQ(prefetchers.front(), "none");
}

TEST(Registry, UnknownNameMessageIsUniform)
{
    EXPECT_EQ(unknownNameMessage("policy", "NOPE", {"a", "b"}),
              "unknown policy 'NOPE' (valid: a, b)");
}

TEST(Registry, OrDieExitsWithUsageCode)
{
    EXPECT_EXIT({ policyOrDie("NOPE"); },
                ::testing::ExitedWithCode(kUsageExitCode),
                "unknown policy 'NOPE' \\(valid: ");
    EXPECT_EXIT({ appOrDie("NOPE"); },
                ::testing::ExitedWithCode(kUsageExitCode),
                "unknown application 'NOPE' \\(valid: ");
    EXPECT_EXIT({ prefetchKindOrDie("NOPE"); },
                ::testing::ExitedWithCode(kUsageExitCode),
                "unknown prefetcher 'NOPE' \\(valid: ");
}

// ---------------------------------------------------------------- requests

std::optional<ExperimentRequest>
fromText(const std::string &text, std::string &error)
{
    json::ParseError perr;
    const auto v = json::parse(text, &perr);
    EXPECT_TRUE(v.has_value()) << perr.message;
    return ExperimentRequest::fromJson(*v, error);
}

TEST(Request, DefaultsRoundTripThroughJson)
{
    ExperimentRequest req;
    req.normalize();
    std::string error;
    const auto back = ExperimentRequest::fromJson(req.toJson(), error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->toJson().dump(), req.toJson().dump());
    EXPECT_EQ(back->fingerprint(), req.fingerprint());
}

TEST(Request, EmptyObjectMeansTheDefaultRun)
{
    std::string error;
    const auto req = fromText("{}", error);
    ASSERT_TRUE(req.has_value()) << error;
    ExperimentRequest def;
    def.normalize();
    EXPECT_EQ(req->fingerprint(), def.fingerprint());
}

TEST(Request, FingerprintIsSpellingStable)
{
    ExperimentRequest canonical;
    canonical.app = "HSD";
    canonical.policy = "HPE";

    ExperimentRequest lower = canonical;
    lower.app = "hsd";
    lower.policy = "hpe";
    EXPECT_EQ(lower.fingerprint(), canonical.fingerprint());

    // The deprecated numeric prefetch folds onto the canonical spelling.
    ExperimentRequest named = canonical;
    named.prefetch = "sequential";
    named.prefetchDegree = 8;
    ExperimentRequest numeric = canonical;
    numeric.prefetch = "8";
    numeric.prefetchDegree = 4; // overridden by the numeric spelling
    EXPECT_EQ(numeric.fingerprint(), named.fingerprint());

    // "0" means no prefetching at all.
    ExperimentRequest zero = canonical;
    zero.prefetch = "0";
    EXPECT_EQ(zero.fingerprint(), canonical.fingerprint());
}

TEST(Request, FingerprintSeparatesDifferentExperiments)
{
    ExperimentRequest a;
    ExperimentRequest b;
    b.seed = 2;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    ExperimentRequest c;
    c.policy = "LRU";
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(Request, DisabledChaosKnobsDoNotPerturbTheFingerprint)
{
    ExperimentRequest plain;
    ExperimentRequest noisy;
    noisy.chaos.enabled = false;
    noisy.chaos.seed = 99;
    noisy.chaos.pcieFail = 0.5;
    EXPECT_EQ(noisy.fingerprint(), plain.fingerprint());
}

TEST(Request, FromJsonRejectsUnknownFields)
{
    std::string error;
    EXPECT_FALSE(fromText(R"({"bogus":1})", error).has_value());
    EXPECT_NE(error.find("unknown field 'bogus'"), std::string::npos);
    // The deadline lives in the protocol envelope, not the request —
    // it must not be able to perturb the fingerprint.
    EXPECT_FALSE(fromText(R"({"deadline_ms":5})", error).has_value());
}

TEST(Request, FromJsonReportsUnknownNamesWithoutExiting)
{
    std::string error;
    EXPECT_FALSE(fromText(R"({"policy":"NOPE"})", error).has_value());
    EXPECT_NE(error.find("unknown policy 'NOPE' (valid: "),
              std::string::npos);
    EXPECT_FALSE(fromText(R"({"app":"NOPE"})", error).has_value());
    EXPECT_NE(error.find("unknown application 'NOPE'"), std::string::npos);
    EXPECT_FALSE(fromText(R"({"prefetch":"NOPE"})", error).has_value());
    EXPECT_NE(error.find("unknown prefetcher 'NOPE'"), std::string::npos);
}

TEST(Request, FromJsonValidatesRanges)
{
    std::string error;
    EXPECT_FALSE(fromText(R"({"oversub":0})", error).has_value());
    EXPECT_FALSE(fromText(R"({"oversub":1.5})", error).has_value());
    EXPECT_FALSE(fromText(R"({"scale":-1})", error).has_value());
    EXPECT_FALSE(fromText(R"({"fault_batch":0})", error).has_value());
    EXPECT_FALSE(fromText(R"({"trace_ring":0})", error).has_value());
    EXPECT_FALSE(fromText(R"({"policy":7})", error).has_value());
    EXPECT_FALSE(
        fromText(R"({"chaos":{"pcie_fail":2.0}})", error).has_value());
    EXPECT_FALSE(
        fromText(R"({"chaos":{"walk_error":1.0}})", error).has_value());
    EXPECT_FALSE(fromText(R"({"trace_events":"bogus"})", error).has_value());
    EXPECT_NE(error.find("unknown trace event"), std::string::npos);
}

TEST(Request, ChaosObjectPresenceArmsInjection)
{
    std::string error;
    const auto req = fromText(R"({"seed":5,"chaos":{"pcie_fail":0.1}})", error);
    ASSERT_TRUE(req.has_value()) << error;
    EXPECT_TRUE(req->chaos.enabled);
    // The injector seed defaults to the experiment seed (the CLI rule).
    EXPECT_EQ(req->chaos.seed, 5u);
}

TEST(Result, RoundTripsThroughJson)
{
    ExperimentResult r;
    r.functional = true;
    r.references = 100;
    r.faults = 42;
    r.faultRate = 0.42;
    r.traceDigest = "00ff00ff00ff00ff";
    r.intervalsCsv = "a,b\n1,2\n";
    std::string error;
    const auto back = ExperimentResult::fromJson(r.toJson(), error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->toJson().dump(), r.toJson().dump());
}

// ------------------------------------------------- cross-entry equivalence

/** The ci/golden grid: every cell has a checked-in digest file. */
const char *const kGridApps[] = {"HSD", "BFS", "KMN"};
const char *const kGridPolicies[] = {"LRU", "HPE", "Ideal"};

/** The request every ci/golden cell was generated from. */
ExperimentRequest
goldenRequest(const std::string &app, const std::string &policy)
{
    ExperimentRequest req;
    req.app = app;
    req.policy = policy;
    req.functional = true;
    req.scale = 0.1;
    req.seed = 1;
    req.traceDigest = true;
    return req;
}

std::string
goldenDigestLine(const std::string &app, const std::string &policy)
{
    const std::string path = std::string(HPE_REPO_ROOT) + "/ci/golden/" + app
                             + "_" + policy + ".digest";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string line;
    std::getline(in, line);
    return line;
}

TEST(Equivalence, ApiReproducesEveryGoldenCell)
{
    for (const char *app : kGridApps) {
        for (const char *policy : kGridPolicies) {
            const ExperimentResult result =
                runExperiment(goldenRequest(app, policy));
            const std::string line =
                "trace digest " + result.traceDigest + " ("
                + std::to_string(result.traceEvents) + " events)";
            EXPECT_EQ(line, goldenDigestLine(app, policy))
                << app << "/" << policy;
        }
    }
}

TEST(Equivalence, CliRunMatchesApiForEveryGridCell)
{
    for (const char *app : kGridApps) {
        for (const char *policy : kGridPolicies) {
            const ExperimentResult viaApi =
                runExperiment(goldenRequest(app, policy));

            std::vector<const char *> argv = {
                "hpe_sim", "run",     "--app",          app,
                "--policy", policy,   "--functional",   "--scale",
                "0.1",      "--seed", "1",              "--trace-digest",
                "--csv"};
            const cli::Args args = cli::Args::parse(
                static_cast<int>(argv.size()), argv.data());
            std::ostringstream os;
            ASSERT_EQ(cli::dispatch(args, os), 0);
            const std::string out = os.str();

            // Same digest line, same stat values, via the CLI path.
            const std::string digestLine = "trace digest " + viaApi.traceDigest
                                           + " ("
                                           + std::to_string(viaApi.traceEvents)
                                           + " events)";
            EXPECT_NE(out.find(digestLine), std::string::npos)
                << app << "/" << policy << "\n"
                << out;
            const std::string csvRow =
                std::string(app) + "," + policy + ",functional,0.75,"
                + std::to_string(viaApi.faults) + ","
                + std::to_string(viaApi.evictions) + ",0";
            EXPECT_NE(out.find(csvRow), std::string::npos)
                << app << "/" << policy << "\n"
                << out;
        }
    }
}

TEST(Equivalence, PrebuiltTraceDoesNotChangeTheResult)
{
    // The sweep and the daemon may pass a shared prebuilt trace; it must
    // be indistinguishable from letting the API build its own.
    const ExperimentRequest req = goldenRequest("HSD", "HPE");
    const Trace trace = buildApp(req.app, req.scale, req.seed);
    const ExperimentResult own = runExperiment(req);
    const ExperimentResult shared = runExperiment(req, &trace);
    EXPECT_EQ(own.toJson().dump(), shared.toJson().dump());
}

TEST(Equivalence, IntervalCsvMatchesGolden)
{
    ExperimentRequest req = goldenRequest("HSD", "HPE");
    req.interval = 500;
    const ExperimentResult result = runExperiment(req);
    const std::string path =
        std::string(HPE_REPO_ROOT) + "/ci/golden/HSD_HPE.intervals.csv";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(result.intervalsCsv, golden.str());
}

} // namespace
} // namespace hpe::api
