/**
 * @file
 * Chaos-mode tests: deterministic fault injection, driver retry paths,
 * graceful degradation, and the cross-layer state validator.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injector.hpp"
#include "common/stats.hpp"
#include "driver/pcie.hpp"
#include "driver/resilience.hpp"
#include "driver/state_validator.hpp"
#include "driver/uvm_manager.hpp"
#include "policy/lru.hpp"
#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

/** A small timing-run configuration with the given chaos settings. */
RunConfig
chaosRunConfig(const ChaosConfig &chaos)
{
    RunConfig cfg;
    cfg.oversub = 0.5;
    cfg.gpu.chaos = chaos;
    return cfg;
}

std::string
statsDump(const InspectableRun &run)
{
    std::ostringstream os;
    run.stats->dumpCsv(os);
    return os.str();
}

TEST(RetryPolicy, BackoffGrowsExponentiallyToTheCap)
{
    RetryPolicy retry;
    retry.backoffBaseCycles = 100;
    retry.backoffMultiplier = 2;
    retry.backoffCapCycles = 350;
    EXPECT_EQ(retry.backoff(1), 100u);
    EXPECT_EQ(retry.backoff(2), 200u);
    EXPECT_EQ(retry.backoff(3), 350u); // 400 capped
    EXPECT_EQ(retry.backoff(10), 350u);
}

TEST(ChaosConfig, OutOfRangeProbabilitiesAreFatal)
{
    StatRegistry stats;
    ChaosConfig bad;
    bad.pcieFailProb = 1.5;
    EXPECT_EXIT({ FaultInjector f(bad, stats); }, ::testing::ExitedWithCode(1),
                "outside");
    ChaosConfig livelock;
    livelock.walkErrorProb = 1.0;
    EXPECT_EXIT({ FaultInjector f(livelock, stats); },
                ::testing::ExitedWithCode(1), "must be < 1");
}

TEST(FaultInjector, SameSeedReplaysTheSameSchedule)
{
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 42;
    cfg.pcieFailProb = 0.3;
    cfg.serviceTimeoutProb = 0.2;
    StatRegistry s1, s2;
    FaultInjector a(cfg, s1, "a");
    FaultInjector b(cfg, s2, "b");
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.pcieTransferFails(), b.pcieTransferFails());
        EXPECT_EQ(a.serviceTimesOut(), b.serviceTimesOut());
    }
}

TEST(FaultInjector, EventStreamsAreIndependent)
{
    // Drawing one event kind must not perturb another kind's sequence:
    // record the timeout stream alone, then re-run interleaved with PCIe
    // draws and expect the same timeout decisions.
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 7;
    cfg.serviceTimeoutProb = 0.25;
    cfg.pcieFailProb = 0.5;
    StatRegistry s1, s2;
    FaultInjector alone(cfg, s1, "a");
    std::vector<bool> expected;
    for (int i = 0; i < 200; ++i)
        expected.push_back(alone.serviceTimesOut());
    FaultInjector mixed(cfg, s2, "b");
    for (int i = 0; i < 200; ++i) {
        mixed.pcieTransferFails();
        EXPECT_EQ(mixed.serviceTimesOut(), expected[static_cast<std::size_t>(i)]);
    }
}

TEST(PcieChaos, InjectedStallsExtendTheHorizon)
{
    StatRegistry plain_stats, chaos_stats;
    PcieLink plain(PcieConfig{}, plain_stats, "p");
    PcieLink stalled(PcieConfig{}, chaos_stats, "p");
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.pcieStallProb = 1.0;
    cfg.pcieStallCycles = 500;
    FaultInjector injector(cfg, chaos_stats);
    stalled.setInjector(&injector);

    const Cycle base = plain.transfer(0, kPageBytes);
    const Cycle slow = stalled.transfer(0, kPageBytes);
    EXPECT_EQ(slow, base + 500);
    EXPECT_EQ(chaos_stats.findCounter("p.stallCycles").value(), 500u);
    // An uninjected link registers no stall counter at all.
    EXPECT_FALSE(plain_stats.hasCounter("p.stallCycles"));
}

TEST(ChaosTiming, FixedSeedGivesBitIdenticalStats)
{
    const Trace t = buildApp("STN", 0.25);
    ChaosConfig chaos;
    chaos.enabled = true;
    chaos.seed = 99;
    chaos.pcieStallProb = 0.1;
    chaos.serviceTimeoutProb = 0.05;
    chaos.pcieFailProb = 0.05;
    chaos.shootdownDropProb = 0.1;
    chaos.walkErrorProb = 0.01;
    const RunConfig cfg = chaosRunConfig(chaos);
    const InspectableRun a = runTimingInspect(t, PolicyKind::Lru, cfg);
    const InspectableRun b = runTimingInspect(t, PolicyKind::Lru, cfg);
    EXPECT_EQ(statsDump(a), statsDump(b));
    EXPECT_EQ(a.timing.cycles, b.timing.cycles);
    EXPECT_GT(a.stats->findCounter("chaos.pcieStalls").value(), 0u);
}

TEST(ChaosTiming, DisabledChaosRegistersNoChaosStats)
{
    const Trace t = buildApp("STN", 0.25);
    const InspectableRun run = runTimingInspect(t, PolicyKind::Lru, RunConfig{});
    const std::string dump = statsDump(run);
    EXPECT_EQ(dump.find("chaos"), std::string::npos);
    EXPECT_EQ(dump.find("stallCycles"), std::string::npos);
    EXPECT_EQ(dump.find("serviceReplays"), std::string::npos);
    EXPECT_EQ(dump.find("degraded"), std::string::npos);
    EXPECT_EQ(dump.find("validator"), std::string::npos);
}

TEST(ChaosTiming, TimedOutServicesAreReplayedAndComplete)
{
    const Trace t = buildApp("STN", 0.25);
    ChaosConfig chaos;
    chaos.enabled = true;
    chaos.seed = 5;
    chaos.serviceTimeoutProb = 0.3;
    RunConfig cfg = chaosRunConfig(chaos);
    cfg.gpu.validate = true;
    const InspectableRun run = runTimingInspect(t, PolicyKind::Lru, cfg);
    // Every warp retired (run() asserts), every fault eventually serviced,
    // and the replay path actually fired.
    EXPECT_GT(run.stats->findCounter("driver.serviceReplays").value(), 0u);
    EXPECT_GT(run.timing.faults, 0u);
    // The replays cost time: a chaos run is never faster than clean.
    const InspectableRun clean = runTimingInspect(t, PolicyKind::Lru,
                                                  RunConfig{.oversub = 0.5});
    EXPECT_GE(run.timing.cycles, clean.timing.cycles);
}

TEST(ChaosTiming, CertainTimeoutExhaustsRetriesAndEscalates)
{
    const Trace t = buildApp("STN", 0.25);
    ChaosConfig chaos;
    chaos.enabled = true;
    chaos.serviceTimeoutProb = 1.0; // every admission times out
    RunConfig cfg = chaosRunConfig(chaos);
    cfg.gpu.validate = true;
    const InspectableRun run = runTimingInspect(t, PolicyKind::Lru, cfg);
    // Each fault burns the whole attempt budget, then the escalation
    // path services it anyway: nothing is ever lost.
    const auto exhausted =
        run.stats->findCounter("driver.retriesExhausted").value();
    const auto serviced =
        run.stats->findCounter("driver.faultsServiced").value();
    EXPECT_EQ(exhausted, serviced);
    EXPECT_GT(serviced, 0u);
    const auto replays = run.stats->findCounter("driver.serviceReplays").value();
    EXPECT_EQ(replays, serviced * RetryPolicy{}.maxAttempts);
}

TEST(ChaosTiming, WalkErrorsAndShootdownDropsAreRetried)
{
    const Trace t = buildApp("STN", 0.25);
    ChaosConfig chaos;
    chaos.enabled = true;
    chaos.seed = 3;
    chaos.walkErrorProb = 0.2;
    chaos.shootdownDropProb = 0.2;
    RunConfig cfg = chaosRunConfig(chaos);
    cfg.gpu.validate = true;
    const InspectableRun run = runTimingInspect(t, PolicyKind::Lru, cfg);
    EXPECT_GT(run.stats->findCounter("gpu.walkRetries").value(), 0u);
    EXPECT_GT(run.stats->findCounter("gpu.shootdownReissues").value(), 0u);
    EXPECT_EQ(run.stats->findCounter("gpu.walkRetries").value(),
              run.stats->findCounter("chaos.walkErrors").value());
}

TEST(ThrashingDetector, EntersAndExitsWithHysteresis)
{
    DegradationConfig cfg;
    cfg.enabled = true;
    cfg.windowFaults = 10;
    cfg.enterRefaultRate = 0.5;
    cfg.exitRefaultRate = 0.2;
    StatRegistry stats;
    ThrashingDetector d(cfg, stats, "deg");

    // Prime the window with clean faults: no transition.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(d.onFault(false), DegradationEvent::None);
    EXPECT_FALSE(d.degraded());

    // Refault storm: crosses the enter watermark exactly once.
    int entered = 0;
    for (int i = 0; i < 10; ++i)
        entered += d.onFault(true) == DegradationEvent::Entered;
    EXPECT_EQ(entered, 1);
    EXPECT_TRUE(d.degraded());

    // Between the watermarks: stays degraded (hysteresis).
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(d.onFault(false), DegradationEvent::None);
    EXPECT_TRUE(d.degraded());

    // Clean stretch: rate falls through the exit watermark once.
    int exited = 0;
    for (int i = 0; i < 10; ++i)
        exited += d.onFault(false) == DegradationEvent::Exited;
    EXPECT_EQ(exited, 1);
    EXPECT_FALSE(d.degraded());
    EXPECT_EQ(d.timesEntered(), 1u);
    EXPECT_EQ(d.timesExited(), 1u);
}

TEST(ThrashingDetector, InvalidWatermarksAreFatal)
{
    DegradationConfig cfg;
    cfg.enterRefaultRate = 0.2;
    cfg.exitRefaultRate = 0.5; // no hysteresis band
    StatRegistry stats;
    EXPECT_EXIT({ ThrashingDetector d(cfg, stats, "deg"); },
                ::testing::ExitedWithCode(1), "hysteresis");
}

TEST(Degradation, ThrashingWorkloadEntersDegradedModeAndPins)
{
    // A cyclic scan over 64 pages with 32 frames refaults on every
    // reference under LRU — the canonical thrashing pattern.
    Trace t("X", "x", "s", PatternType::I);
    for (int pass = 0; pass < 8; ++pass)
        for (PageId p = 0; p < 64; ++p)
            t.add(p);
    LruPolicy lru;
    StatRegistry stats;
    PagingOptions opts;
    opts.degradation.enabled = true;
    opts.degradation.windowFaults = 64;
    opts.degradation.enterRefaultRate = 0.9;
    opts.degradation.exitRefaultRate = 0.1;
    opts.degradation.pinFraction = 0.25;
    opts.validate = true;
    runPaging(t, lru, 32, stats, opts);
    EXPECT_GE(stats.findCounter("uvm.degraded.entries").value(), 1u);
    EXPECT_GT(stats.findCounter("uvm.degraded.pinnedPages").value(), 0u);
    EXPECT_GT(stats.findCounter("uvm.degraded.faults").value(), 0u);
}

TEST(Degradation, TimingRunSurvivesDegradedMode)
{
    const Trace t = buildApp("STN", 0.25);
    RunConfig cfg;
    cfg.oversub = 0.5;
    cfg.gpu.degradation.enabled = true;
    cfg.gpu.degradation.windowFaults = 64;
    cfg.gpu.degradation.enterRefaultRate = 0.3;
    cfg.gpu.degradation.exitRefaultRate = 0.1;
    cfg.gpu.validate = true;
    const InspectableRun run = runTimingInspect(t, PolicyKind::Lru, cfg);
    EXPECT_GT(run.timing.faults, 0u);
    // The detector was attached and its stats registered.
    EXPECT_TRUE(run.stats->hasCounter("driver.uvm.degraded.entries"));
}

TEST(Validator, CleanRunsAcrossPoliciesAndOversubscription)
{
    // The acceptance sweep: every policy of the paper's roster at paper
    // oversubscription rates 110%, 125%, 150% (footprint/memory), with
    // the validator checking page table <-> frames <-> policy after every
    // fault.  Any bookkeeping divergence panics.
    const Trace t = buildApp("STN", 0.25);
    for (double oversub : {1.0 / 1.1, 0.8, 1.0 / 1.5}) {
        for (PolicyKind kind : extendedPolicyKinds()) {
            StatRegistry stats;
            auto policy = makePolicy(kind, t, stats);
            const PagingOptions opts{.validate = true};
            const PagingResult r =
                runPaging(t, *policy, framesFor(t, oversub), stats, opts);
            EXPECT_EQ(r.hits + r.faults, r.references)
                << policyKindName(kind) << " @ " << oversub;
            EXPECT_GT(stats.findCounter("validator.checks").value(), 0u)
                << policyKindName(kind) << " @ " << oversub;
        }
    }
}

TEST(Validator, CatchesFrameLeak)
{
    LruPolicy lru;
    StatRegistry stats;
    UvmMemoryManager uvm(4, lru, stats, "uvm");
    StateValidator validator(uvm, stats, "v");
    uvm.handleFault(1);
    validator.check(); // consistent: fine
    // Deliberately corrupt the page table behind the manager's back.
    uvm.pageTable().map(2, 3);
    EXPECT_DEATH({ validator.check(); }, "frame conservation");
}

TEST(Validator, CatchesPolicyDivergence)
{
    LruPolicy lru;
    StatRegistry stats;
    UvmMemoryManager uvm(4, lru, stats, "uvm");
    StateValidator validator(uvm, stats, "v");
    uvm.handleFault(1);
    uvm.handleFault(2);
    // The policy learns of a page the page table never mapped.
    lru.onMigrateIn(99);
    lru.onEvict(1);
    EXPECT_DEATH({ validator.check(); }, "policy");
}

TEST(Validator, CatchesDirtyNonResident)
{
    LruPolicy lru;
    StatRegistry stats;
    UvmMemoryManager uvm(1, lru, stats, "uvm");
    uvm.handleFault(1);
    uvm.markDirty(1);
    uvm.handleFault(2); // evicts dirty page 1
    StateValidator validator(uvm, stats, "v");
    validator.check();
    EXPECT_FALSE(uvm.isDirty(1)); // the eviction consumed the dirty bit
}

} // namespace
} // namespace hpe
