/**
 * @file
 * Unit tests for the baseline eviction policies: LRU, Random, RRIP,
 * CLOCK-Pro, and Belady MIN — including MIN's optimality property.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "policy/clock_pro.hpp"
#include "policy/lru.hpp"
#include "policy/min.hpp"
#include "policy/random.hpp"
#include "policy/rrip.hpp"

namespace hpe {
namespace {

/**
 * Minimal paging harness: replays a reference string against a policy
 * with @p frames frames, enforcing the driver call protocol, and returns
 * the fault count.
 */
std::uint64_t
replay(EvictionPolicy &policy, const std::vector<PageId> &refs, std::size_t frames)
{
    std::unordered_set<PageId> resident;
    std::uint64_t faults = 0;
    for (PageId p : refs) {
        if (resident.contains(p)) {
            policy.onHit(p);
            continue;
        }
        ++faults;
        policy.onFault(p);
        if (resident.size() == frames) {
            const PageId victim = policy.selectVictim();
            EXPECT_TRUE(resident.contains(victim));
            resident.erase(victim);
            policy.onEvict(victim);
        }
        resident.insert(p);
        policy.onMigrateIn(p);
    }
    return faults;
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru;
    for (PageId p : {0, 1, 2})
        lru.onMigrateIn(p);
    lru.onHit(0); // 1 becomes LRU
    EXPECT_EQ(lru.selectVictim(), 1u);
}

TEST(Lru, EvictRemovesFromChain)
{
    LruPolicy lru;
    lru.onMigrateIn(1);
    lru.onMigrateIn(2);
    lru.onEvict(1);
    EXPECT_EQ(lru.selectVictim(), 2u);
    EXPECT_EQ(lru.size(), 1u);
}

TEST(Lru, HitOnUntrackedPageIgnored)
{
    LruPolicy lru;
    lru.onMigrateIn(1);
    lru.onHit(99); // no crash, no effect
    EXPECT_EQ(lru.selectVictim(), 1u);
}

TEST(Lru, ClassicBeladyAnomalyString)
{
    // Reference string 1..5,1,2,3,4,5 with 3 frames: LRU faults 10 times.
    std::vector<PageId> refs{1, 2, 3, 4, 5, 1, 2, 3, 4, 5};
    LruPolicy lru;
    EXPECT_EQ(replay(lru, refs, 3), 10u);
}

TEST(Lru, FaultCountOnKnownString)
{
    // Textbook string 7,0,1,2,0,3,0,4,2,3,0,3,2 with 3 frames: LRU
    // faults 9 times (7,0,1,2,3,4,2,3,0).
    std::vector<PageId> refs{7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2};
    LruPolicy lru;
    EXPECT_EQ(replay(lru, refs, 3), 9u);
}

TEST(Random, OnlyEvictsResidentPages)
{
    RandomPolicy random(7);
    std::set<PageId> resident{10, 20, 30};
    for (PageId p : resident)
        random.onMigrateIn(p);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(resident.contains(random.selectVictim()));
}

TEST(Random, DeterministicPerSeed)
{
    RandomPolicy a(3), b(3);
    for (PageId p = 0; p < 16; ++p) {
        a.onMigrateIn(p);
        b.onMigrateIn(p);
    }
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.selectVictim(), b.selectVictim());
}

TEST(Random, EvictUpdatesPopulation)
{
    RandomPolicy random(5);
    random.onMigrateIn(1);
    random.onMigrateIn(2);
    random.onEvict(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(random.selectVictim(), 2u);
}

TEST(Random, CoversThePopulation)
{
    RandomPolicy random(11);
    for (PageId p = 0; p < 8; ++p)
        random.onMigrateIn(p);
    std::set<PageId> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(random.selectVictim());
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rrip, EvictsDistantInsertedPage)
{
    RripPolicy rrip({.rrpvBits = 2, .distantInsertion = true, .delayThreshold = 0});
    rrip.onFault(1);
    rrip.onMigrateIn(1);
    rrip.onFault(2);
    rrip.onMigrateIn(2);
    EXPECT_EQ(rrip.selectVictim(), 1u); // both distant; oldest wins
}

TEST(Rrip, HitPromotionProtectsPage)
{
    RripPolicy rrip({.rrpvBits = 2, .distantInsertion = true, .delayThreshold = 0});
    for (PageId p : {1, 2}) {
        rrip.onFault(p);
        rrip.onMigrateIn(p);
    }
    rrip.onHit(1); // FP: rrpv 3 -> 2
    EXPECT_EQ(rrip.selectVictim(), 2u);
}

TEST(Rrip, AgingFindsVictimWhenNoneDistant)
{
    RripPolicy rrip({.rrpvBits = 2, .distantInsertion = false, .delayThreshold = 0});
    for (PageId p : {1, 2, 3}) {
        rrip.onFault(p);
        rrip.onMigrateIn(p);
        rrip.onHit(p);
        rrip.onHit(p); // rrpv 0
    }
    EXPECT_EQ(rrip.selectVictim(), 1u); // aged to max; oldest evicted
}

TEST(Rrip, DelayThresholdProtectsYoungPages)
{
    RripPolicy rrip({.rrpvBits = 2, .distantInsertion = true, .delayThreshold = 3});
    rrip.onFault(1);
    rrip.onMigrateIn(1); // delay=1
    rrip.onFault(2);
    rrip.onMigrateIn(2); // delay=2
    // Advance the global fault number so page 1's margin passes threshold.
    rrip.onFault(3);
    rrip.onFault(4);
    // margins: page1 = 4-1 = 3 >= 3 OK, page2 = 4-2 = 2 < 3 protected.
    EXPECT_EQ(rrip.selectVictim(), 1u);
}

TEST(Rrip, AllInsideDelayWindowFallsBackToOldest)
{
    RripPolicy rrip({.rrpvBits = 2, .distantInsertion = true,
                     .delayThreshold = 1000});
    rrip.onFault(1);
    rrip.onMigrateIn(1);
    rrip.onFault(2);
    rrip.onMigrateIn(2);
    EXPECT_EQ(rrip.selectVictim(), 1u); // widest margin
}

TEST(Rrip, ThrashingPreset)
{
    const RripConfig cfg = RripConfig::thrashing();
    EXPECT_TRUE(cfg.distantInsertion);
    EXPECT_EQ(cfg.delayThreshold, 128u);
}

TEST(ClockPro, NewPagesAreResidentCold)
{
    ClockProPolicy cp;
    cp.onFault(1);
    cp.onMigrateIn(1);
    EXPECT_EQ(cp.residentCold(), 1u);
    EXPECT_EQ(cp.residentHot(), 0u);
}

TEST(ClockPro, EvictionKeepsTestMetadata)
{
    ClockProPolicy cp;
    cp.onFault(1);
    cp.onMigrateIn(1);
    cp.onEvict(1);
    EXPECT_EQ(cp.residentCold(), 0u);
    EXPECT_EQ(cp.nonResident(), 1u);
}

TEST(ClockPro, RefaultInTestPeriodPromotesToHot)
{
    // m_c = 1 so a hot set can exist beside the cold allocation.
    ClockProPolicy cp(ClockProConfig{.coldAllocation = 1});
    for (PageId p : {1, 2, 3}) {
        cp.onFault(p);
        cp.onMigrateIn(p);
    }
    cp.onEvict(1);
    cp.onFault(1);
    cp.onMigrateIn(1); // back during its test period
    EXPECT_EQ(cp.residentHot(), 1u);
    EXPECT_EQ(cp.nonResident(), 0u);
}

TEST(ClockPro, VictimIsUnreferencedColdPage)
{
    ClockProPolicy cp;
    for (PageId p : {1, 2, 3}) {
        cp.onFault(p);
        cp.onMigrateIn(p);
    }
    cp.onHit(2); // ref bit set
    const PageId victim = cp.selectVictim();
    EXPECT_TRUE(victim == 1 || victim == 3);
}

TEST(ClockPro, SweepClearsRefBitsAndTerminates)
{
    ClockProPolicy cp;
    for (PageId p : {1, 2, 3}) {
        cp.onFault(p);
        cp.onMigrateIn(p);
        cp.onHit(p); // everyone referenced
    }
    // Must still produce a victim (after clearing bits / promotions).
    const PageId victim = cp.selectVictim();
    EXPECT_TRUE(victim >= 1 && victim <= 3);
}

TEST(ClockPro, WorksAsFullReplacementLoop)
{
    ClockProPolicy cp;
    std::vector<PageId> refs;
    for (int pass = 0; pass < 3; ++pass)
        for (PageId p = 0; p < 12; ++p)
            refs.push_back(p);
    const auto faults = replay(cp, refs, 8);
    EXPECT_GE(faults, 12u);
    EXPECT_LE(faults, refs.size());
}

TEST(Min, EvictsFarthestNextUse)
{
    auto trace = std::make_shared<std::vector<PageId>>(
        std::vector<PageId>{1, 2, 3, 2, 1, 3});
    MinPolicy min(trace);
    min.onFault(1);
    min.onMigrateIn(1); // next use at 4
    min.onFault(2);
    min.onMigrateIn(2); // next use at 3
    EXPECT_EQ(min.selectVictim(), 1u);
}

TEST(Min, NeverUsedAgainIsPreferred)
{
    auto trace = std::make_shared<std::vector<PageId>>(
        std::vector<PageId>{1, 2, 1, 1});
    MinPolicy min(trace);
    min.onFault(1);
    min.onMigrateIn(1);
    min.onFault(2);
    min.onMigrateIn(2); // page 2 never referenced again
    EXPECT_EQ(min.selectVictim(), 2u);
}

TEST(Min, KnownOptimalFaultCount)
{
    // Textbook string 7,0,1,2,0,3,0,4,2,3,0,3,2 with 3 frames: Belady
    // faults 7 times (4 compulsory + evict-never-used choices at 3, 4 and
    // the final 0).
    std::vector<PageId> refs{7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2};
    auto trace = std::make_shared<std::vector<PageId>>(refs);
    MinPolicy min(trace);
    EXPECT_EQ(replay(min, refs, 3), 7u);
}

TEST(Min, CyclicPatternOptimal)
{
    // (0..k-1)^N with m frames: OPT = k + (N-1)*(k-m) faults.
    const std::size_t k = 10, m = 7, N = 4;
    std::vector<PageId> refs;
    for (std::size_t n = 0; n < N; ++n)
        for (PageId p = 0; p < k; ++p)
            refs.push_back(p);
    auto trace = std::make_shared<std::vector<PageId>>(refs);
    MinPolicy min(trace);
    EXPECT_EQ(replay(min, refs, m), k + (N - 1) * (k - m));
}

/** Property: MIN never faults more than any other policy (optimality). */
class MinOptimalityTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MinOptimalityTest, MinIsLowerBound)
{
    Rng rng(GetParam());
    // Random reference string with locality: mixture of sequential runs
    // and random jumps over 40 pages.
    std::vector<PageId> refs;
    PageId cur = 0;
    for (int i = 0; i < 600; ++i) {
        if (rng.chance(0.3))
            cur = rng.below(40);
        else
            cur = (cur + 1) % 40;
        refs.push_back(cur);
    }
    const std::size_t frames = 8 + GetParam() % 16;

    auto trace = std::make_shared<std::vector<PageId>>(refs);
    MinPolicy min(trace);
    const auto min_faults = replay(min, refs, frames);

    LruPolicy lru;
    EXPECT_GE(replay(lru, refs, frames), min_faults);

    RandomPolicy random(GetParam());
    EXPECT_GE(replay(random, refs, frames), min_faults);

    RripPolicy rrip;
    EXPECT_GE(replay(rrip, refs, frames), min_faults);

    ClockProPolicy cp;
    EXPECT_GE(replay(cp, refs, frames), min_faults);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinOptimalityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

} // namespace
} // namespace hpe
