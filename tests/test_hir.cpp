/**
 * @file
 * Unit tests for the HIR hit-information record cache (§IV-B).
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/hir_cache.hpp"

namespace hpe {
namespace {

HpeConfig
smallHir()
{
    HpeConfig cfg;
    cfg.hirEntries = 16;
    cfg.hirWays = 2;
    return cfg;
}

TEST(Hir, RecordsCountsPerPageOffset)
{
    StatRegistry stats;
    HirCache hir(HpeConfig{}, stats, "hir");
    hir.recordHit(16 * 5 + 3); // set 5, offset 3
    hir.recordHit(16 * 5 + 3);
    hir.recordHit(16 * 5 + 7);
    const auto records = hir.flush();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].set, 5u);
    EXPECT_EQ(records[0].counts[3], 2);
    EXPECT_EQ(records[0].counts[7], 1);
    EXPECT_EQ(records[0].counts[0], 0);
}

TEST(Hir, CounterSaturatesAtTwoBits)
{
    StatRegistry stats;
    HirCache hir(HpeConfig{}, stats, "hir");
    for (int i = 0; i < 10; ++i)
        hir.recordHit(0);
    const auto records = hir.flush();
    EXPECT_EQ(records[0].counts[0], 3); // 2-bit ceiling
}

TEST(Hir, FlushPreservesFirstTouchOrder)
{
    StatRegistry stats;
    HirCache hir(HpeConfig{}, stats, "hir");
    hir.recordHit(16 * 9);
    hir.recordHit(16 * 2);
    hir.recordHit(16 * 9); // re-touch does not reorder
    hir.recordHit(16 * 4);
    const auto records = hir.flush();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].set, 9u);
    EXPECT_EQ(records[1].set, 2u);
    EXPECT_EQ(records[2].set, 4u);
}

TEST(Hir, FlushEmptiesTheCache)
{
    StatRegistry stats;
    HirCache hir(HpeConfig{}, stats, "hir");
    hir.recordHit(100);
    hir.flush();
    EXPECT_EQ(hir.occupancy(), 0u);
    EXPECT_TRUE(hir.flush().empty());
}

TEST(Hir, WayConflictDropsVictimInfo)
{
    StatRegistry stats;
    HirCache hir(smallHir(), stats, "hir");
    // 16 entries, 2 ways -> 8 sets.  Page sets 0, 8, 16 map to set 0.
    hir.recordHit(16 * 0);
    hir.recordHit(16 * 8);
    hir.recordHit(16 * 16); // conflict: evicts the LRU (set 0)
    EXPECT_EQ(hir.conflictDrops(), 1u);
    const auto records = hir.flush();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].set, 8u);
    EXPECT_EQ(records[1].set, 16u);
}

TEST(Hir, DefaultGeometryAvoidsConflictsForSequentialSets)
{
    StatRegistry stats;
    HirCache hir(HpeConfig{}, stats, "hir");
    // 1024 entries, 8 ways, 128 sets: 1024 consecutive page sets fill
    // the cache exactly without conflicts.
    for (PageId set = 0; set < 1024; ++set)
        hir.recordHit(set * 16);
    EXPECT_EQ(hir.conflictDrops(), 0u);
    EXPECT_EQ(hir.occupancy(), 1024u);
}

TEST(Hir, RecordBytesMatchesPaperEstimate)
{
    StatRegistry stats;
    HirCache hir(HpeConfig{}, stats, "hir");
    // §V-C: 48-bit tag + 16 x 2-bit counters = 80 bits = 10 bytes.
    EXPECT_EQ(hir.recordBytes(), 10u);
}

TEST(Hir, EntriesPerFlushDistributionSampled)
{
    StatRegistry stats;
    HirCache hir(HpeConfig{}, stats, "hir");
    hir.recordHit(0);
    hir.recordHit(16);
    hir.flush();
    hir.recordHit(0);
    hir.flush();
    const auto &d = stats.findDistribution("hir.entriesPerFlush");
    EXPECT_EQ(d.count(), 2u);
    EXPECT_DOUBLE_EQ(d.mean(), 1.5);
}

TEST(Hir, StrideFourWastesEntrySpace)
{
    // The MVT behaviour (§V-B): stride-4 pages touch only 4 offsets per
    // set, so covering N pages costs 4x the entries of dense access.
    StatRegistry stats;
    HirCache dense(HpeConfig{}, stats, "d");
    HirCache strided(HpeConfig{}, stats, "s");
    for (PageId p = 0; p < 256; ++p)
        dense.recordHit(p);
    for (PageId p = 0; p < 256 * 4; p += 4)
        strided.recordHit(p);
    EXPECT_EQ(dense.occupancy(), 16u);
    EXPECT_EQ(strided.occupancy(), 64u);
}

} // namespace
} // namespace hpe
