/**
 * @file
 * Timing-simulator smoke sweep over every Table II application: the full
 * stack (TLBs, walker, caches, DRAM, driver, policy) must complete and
 * produce sane results for each, under both HPE and LRU.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

class TimingSweepTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(TimingSweepTest, HpeTimingRunIsSane)
{
    const Trace t = buildApp(GetParam(), 0.5);
    RunConfig cfg;
    const auto r = runTiming(t, PolicyKind::Hpe, cfg);
    // Every line access retires.
    std::uint64_t lines = 0;
    for (const PageRef &ref : t.refs())
        lines += ref.burst;
    EXPECT_EQ(r.instructions, lines);
    // Faults at least compulsory, at most one per visit plus replay slack.
    EXPECT_GE(r.faults, t.footprintPages());
    EXPECT_LE(r.faults, t.size() + t.size() / 10);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.hostLoad, 0.0);
}

TEST_P(TimingSweepTest, HpeNeverLosesBadlyToLru)
{
    const Trace t = buildApp(GetParam(), 0.5);
    RunConfig cfg;
    const auto lru = runTiming(t, PolicyKind::Lru, cfg);
    const auto hpe = runTiming(t, PolicyKind::Hpe, cfg);
    // Fig. 10's envelope: HPE's worst per-app showing in the paper is a
    // slight loss; bound ours at 20%.
    EXPECT_GT(hpe.ipc, lru.ipc * 0.8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, TimingSweepTest,
    ::testing::Values("HOT", "LEU", "CUT", "2DC", "GEM", "SRD", "HSD", "MRQ",
                      "STN", "PAT", "DWT", "BKP", "KMN", "SAD", "NW", "BFS",
                      "MVT", "HWL", "SGM", "HIS", "SPV", "B+T", "HYB"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '+')
                c = 'p';
        return name;
    });

} // namespace
} // namespace hpe
