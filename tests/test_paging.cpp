/**
 * @file
 * Tests for the functional paging simulator and the experiment runners,
 * including cross-policy properties on the real application traces.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "policy/lru.hpp"
#include "sim/experiment.hpp"
#include "sim/paging_simulator.hpp"
#include "sim/policy_factory.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

Trace
cyclicTrace(std::size_t pages, unsigned passes)
{
    Trace t("CYC", "cyclic", "synthetic", PatternType::II);
    for (unsigned n = 0; n < passes; ++n) {
        t.beginKernel();
        for (PageId p = 0; p < pages; ++p)
            t.add(p);
    }
    return t;
}

TEST(PagingSim, NoEvictionsWhenMemoryFits)
{
    const Trace t = cyclicTrace(50, 3);
    StatRegistry stats;
    LruPolicy lru;
    const auto r = runPaging(t, lru, 50, stats);
    EXPECT_EQ(r.faults, 50u);
    EXPECT_EQ(r.evictions, 0u);
    EXPECT_EQ(r.hits, 100u);
    EXPECT_EQ(r.references, 150u);
}

TEST(PagingSim, LruThrashesOnCyclicPattern)
{
    const Trace t = cyclicTrace(50, 3);
    StatRegistry stats;
    LruPolicy lru;
    const auto r = runPaging(t, lru, 40, stats);
    EXPECT_EQ(r.faults, 150u); // every reference faults
}

TEST(PagingSim, MinOptimalOnCyclicPattern)
{
    const Trace t = cyclicTrace(50, 3);
    const RunConfig cfg{.oversub = 0.8};
    const auto r = runFunctional(t, PolicyKind::Ideal, cfg);
    // OPT = k + (N-1)(k - m) = 50 + 2*(50-40) = 70.
    EXPECT_EQ(r.faults, 70u);
}

TEST(PagingSim, FaultRate)
{
    const Trace t = cyclicTrace(10, 1);
    StatRegistry stats;
    LruPolicy lru;
    const auto r = runPaging(t, lru, 10, stats);
    EXPECT_DOUBLE_EQ(r.faultRate(), 1.0);
}

TEST(Experiment, FramesForRoundsUp)
{
    const Trace t = cyclicTrace(100, 1);
    EXPECT_EQ(framesFor(t, 0.75), 75u);
    EXPECT_EQ(framesFor(t, 0.5), 50u);
    const Trace t2 = cyclicTrace(3, 1);
    EXPECT_EQ(framesFor(t2, 0.5), 2u); // ceil(1.5)
}

TEST(Experiment, InspectableRunExposesHpe)
{
    const Trace t = cyclicTrace(100, 2);
    const auto run = runFunctionalInspect(t, PolicyKind::Hpe, RunConfig{});
    EXPECT_NE(run.hpe(), nullptr);
    const auto lru = runFunctionalInspect(t, PolicyKind::Lru, RunConfig{});
    EXPECT_EQ(lru.hpe(), nullptr);
}

TEST(PolicyFactory, NamesAndKinds)
{
    EXPECT_EQ(allPolicyKinds().size(), 6u);
    EXPECT_STREQ(policyKindName(PolicyKind::Hpe), "HPE");
    EXPECT_STREQ(policyKindName(PolicyKind::ClockPro), "CLOCK-Pro");
}

TEST(PolicyFactory, BuildsEveryKind)
{
    const Trace t = cyclicTrace(20, 2);
    StatRegistry stats;
    for (PolicyKind kind : allPolicyKinds()) {
        auto policy = makePolicy(kind, t, stats);
        ASSERT_NE(policy, nullptr);
        EXPECT_FALSE(policy->name().empty());
    }
}

TEST(PolicyFactory, RripGetsThrashingConfigForTypeII)
{
    // Type II trace: RRIP must tolerate an immediate eviction demand
    // without evicting the newest insertions (delay threshold 128).
    const Trace t = cyclicTrace(300, 2);
    const auto rrip = runFunctional(t, PolicyKind::Rrip, RunConfig{});
    EXPECT_GT(rrip.faults, 0u);
}

/** MIN lower-bounds every policy on every application (75% oversub). */
class FunctionalOptimalityTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(FunctionalOptimalityTest, IdealIsLowerBound)
{
    const Trace t = buildApp(GetParam(), 0.5); // half scale for speed
    RunConfig cfg;
    const auto ideal = runFunctional(t, PolicyKind::Ideal, cfg);
    for (PolicyKind kind : extendedPolicyKinds()) {
        if (kind == PolicyKind::Ideal)
            continue;
        const auto r = runFunctional(t, kind, cfg);
        EXPECT_GE(r.faults, ideal.faults) << policyKindName(kind);
        EXPECT_EQ(r.references, ideal.references);
    }
}

TEST_P(FunctionalOptimalityTest, EvictionsConsistentWithFaults)
{
    const Trace t = buildApp(GetParam(), 0.5);
    RunConfig cfg;
    for (PolicyKind kind : extendedPolicyKinds()) {
        const auto r = runFunctional(t, kind, cfg);
        // evictions = faults - capacity once memory has filled.
        EXPECT_EQ(r.evictions, r.faults - framesFor(t, cfg.oversub))
            << policyKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, FunctionalOptimalityTest,
    ::testing::Values("HOT", "LEU", "CUT", "2DC", "GEM", "SRD", "HSD", "MRQ",
                      "STN", "PAT", "DWT", "BKP", "KMN", "SAD", "NW", "BFS",
                      "MVT", "HWL", "SGM", "HIS", "SPV", "B+T", "HYB"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '+')
                c = 'p';
        return name;
    });

} // namespace
} // namespace hpe
