/**
 * @file
 * Randomized interleaving fuzz for the huge-page coalescer, driving the
 * UvmMemoryManager directly (no simulator loop) so faults, hits,
 * prefetches, promotions, splinters, evictions, and shootdowns interleave
 * in orders the paging loop never produces.  The StateValidator runs
 * after every single operation, so the first inconsistent page table /
 * frame pool / policy / large-page record panics at the operation that
 * caused it.
 *
 * The death-test leg pins validatePageSizes: a PageSizeConfig whose class
 * is not actually large (order 0) or does not fit the frame pool must
 * panic at attach time, and the parser must reject non-power-of-two
 * spellings before a config is ever built.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "driver/state_validator.hpp"
#include "driver/uvm_manager.hpp"
#include "mem/coalescer.hpp"
#include "mem/page_size.hpp"
#include "sim/experiment.hpp"
#include "workload/trace.hpp"

namespace hpe {
namespace {

/** A trace only used to size/construct policies (MIN reads it; direct
 *  driving then diverges from it, which every policy must tolerate). */
Trace
seedTrace(std::uint64_t seed, unsigned pages)
{
    std::mt19937_64 rng(seed);
    Trace t("FZZ", "fuzz", "fuzz", PatternType::II);
    for (unsigned i = 0; i < 64; ++i)
        t.add(rng() % pages, 1, rng() % 4 == 0);
    return t;
}

TEST(CoalesceFuzz, RandomInterleavingsKeepEveryInvariant)
{
    const auto &kinds = extendedPolicyKinds();
    for (int trial = 0; trial < 200; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 6131 + 17;
        std::mt19937_64 rng(seed);
        const std::size_t frames = std::size_t{8} << (rng() % 4); // 8..64
        const unsigned universe = static_cast<unsigned>(frames * 2);
        const PolicyKind kind =
            kinds[static_cast<std::size_t>(trial) % kinds.size()];

        // One or two large classes that fit the pool; mostly coalescing,
        // sometimes observe-only so both modes see hostile orderings.
        unsigned maxOrder = 0;
        while ((std::size_t{2} << maxOrder) <= frames)
            ++maxOrder;
        PageSizeConfig cfg;
        cfg.coalesce = rng() % 8 != 0;
        cfg.largeOrders.push_back(1 + static_cast<unsigned>(rng() % maxOrder));
        const auto second = 1 + static_cast<unsigned>(rng() % maxOrder);
        if (second != cfg.largeOrders.front() && rng() % 2 == 0)
            cfg.largeOrders.push_back(second);
        std::sort(cfg.largeOrders.begin(), cfg.largeOrders.end());

        const Trace t = seedTrace(seed, universe);
        StatRegistry stats;
        auto policy = makePolicy(kind, t, stats, {}, seed);
        UvmMemoryManager uvm(frames, *policy, stats, "uvm");
        uvm.enablePageSizes(cfg);
        std::uint64_t shootdowns = 0;
        uvm.setEvictHook([&shootdowns](PageId) { ++shootdowns; });
        StateValidator validator(uvm, stats, "validator");
        uvm.setValidateHook([&validator] { validator.check(); });

        std::uint64_t evictions = 0;
        const auto fault = [&uvm, &evictions](PageId p) {
            const FaultOutcome out = uvm.handleFault(p);
            evictions += out.evicted ? 1 : 0;
        };
        for (int op = 0; op < 400; ++op) {
            const PageId page = rng() % universe;
            switch (rng() % 5) {
              case 0: // demand fault (the only op that may evict/splinter)
                if (!uvm.resident(page))
                    fault(page);
                break;
              case 1: // hit on the page (policy sees its logical page)
                if (uvm.resident(page))
                    uvm.recordHit(page);
                break;
              case 2: // dirty it
                if (uvm.resident(page))
                    uvm.markDirty(page);
                break;
              case 3: // speculative migration (never evicts)
                uvm.prefetchIn(page);
                break;
              default: // burst of sequential faults to provoke promotion
                for (PageId p = page & ~PageId{7}; p < (page | 7) + 1; ++p)
                    if (p < universe && !uvm.resident(p))
                        fault(p);
                break;
            }
            validator.check();
        }

        const HugePageCoalescer *co = uvm.coalescer();
        ASSERT_NE(co, nullptr);
        // Splintered pages were once promoted; observe-only never mutates.
        EXPECT_LE(co->splinters(), co->promotions());
        if (!cfg.coalesce) {
            EXPECT_EQ(co->promotions(), 0u) << "observe-only promoted";
            EXPECT_EQ(co->largePages(), 0u);
        }
        EXPECT_EQ(uvm.evictions(), evictions) << "trial " << trial;
        // Translation safety: the shootdown hook must fire once per
        // evicted page plus once per remap-promoted subpage — no stale
        // TLB entry can survive either.
        const std::uint64_t remapped =
            stats.findCounter("uvm.coalesce.remappedPages").value();
        EXPECT_EQ(shootdowns, uvm.evictions() + remapped)
            << "trial " << trial;
    }
}

TEST(CoalesceFuzz, ShootdownFiresForEverySplinterEvictedHead)
{
    // Deterministic scenario: fill 16 frames with two 8-page runs under
    // LRU + a span-8 class, promote both, then fault new pages until both
    // large pages splintered; every eviction raises exactly one shootdown.
    Trace t = seedTrace(1, 64);
    StatRegistry stats;
    auto policy = makePolicy(PolicyKind::Lru, t, stats);
    UvmMemoryManager uvm(16, *policy, stats, "uvm");
    PageSizeConfig cfg;
    cfg.largeOrders = {3}; // span 8
    cfg.coalesce = true;
    uvm.enablePageSizes(cfg);
    std::vector<PageId> shot;
    uvm.setEvictHook([&shot](PageId p) { shot.push_back(p); });
    StateValidator validator(uvm, stats, "validator");
    uvm.setValidateHook([&validator] { validator.check(); });

    for (PageId p = 0; p < 16; ++p)
        uvm.handleFault(p);
    const HugePageCoalescer *co = uvm.coalescer();
    ASSERT_EQ(co->largePages(), 2u) << "sequential fill did not promote";
    ASSERT_EQ(co->coveredPages(), 16u);
    // Remap promotions (if the allocator handed out non-contiguous
    // frames) already fired per-subpage shootdowns during the fill.
    const std::size_t fillShots = shot.size();

    // Memory is full: each new fault splinters the victim's large page
    // (if any) and evicts exactly one 4 KiB page, firing its shootdown.
    for (PageId p = 100; p < 116; ++p)
        uvm.handleFault(p);
    EXPECT_EQ(co->splinters(), 2u) << "both large pages must splinter";
    EXPECT_EQ(uvm.evictions(), 16u);
    EXPECT_EQ(shot.size(), fillShots + 16u)
        << "one shootdown per evicted page";
}

TEST(CoalesceFuzzDeathTest, OrderZeroClassPanicsAtAttach)
{
    Trace t = seedTrace(2, 16);
    StatRegistry stats;
    auto policy = makePolicy(PolicyKind::Lru, t, stats);
    UvmMemoryManager uvm(16, *policy, stats, "uvm");
    PageSizeConfig cfg;
    cfg.largeOrders = {0}; // a "large" class of one subpage
    cfg.coalesce = true;
    EXPECT_DEATH({ uvm.enablePageSizes(cfg); }, "not large");
}

TEST(CoalesceFuzzDeathTest, ClassLargerThanFramePoolPanicsAtAttach)
{
    Trace t = seedTrace(3, 16);
    StatRegistry stats;
    auto policy = makePolicy(PolicyKind::Lru, t, stats);
    UvmMemoryManager uvm(8, *policy, stats, "uvm");
    PageSizeConfig cfg;
    cfg.largeOrders = {4}; // span 16 > 8 frames: promotion can never fit
    cfg.coalesce = true;
    EXPECT_DEATH({ uvm.enablePageSizes(cfg); }, "spans 16 frames");
}

TEST(CoalesceFuzz, ParserRejectsNonPowerOfTwoAndGarbage)
{
    std::string error;
    for (const char *bad : {"3k", "12k", "5m", "4x", "k", "0k", "4k,,oops",
                            "4096g", "-4k"}) {
        EXPECT_FALSE(parsePageSizes(bad, error).has_value())
            << "'" << bad << "' parsed";
    }
    // Canonicalization: case-insensitive, duplicates collapse, 4k
    // optional, orders sorted.
    const auto cfg = parsePageSizes("2M,64K,64k", error);
    ASSERT_TRUE(cfg.has_value()) << error;
    EXPECT_EQ(cfg->largeOrders, (std::vector<unsigned>{4, 9}));
    EXPECT_EQ(cfg->spell(), "4k,64k,2m");
    const auto base = parsePageSizes("4k", error);
    ASSERT_TRUE(base.has_value());
    EXPECT_FALSE(base->active());
}

} // namespace
} // namespace hpe
