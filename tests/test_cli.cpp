/**
 * @file
 * Tests for the hpe_sim command-line tool: the argument parser and the
 * subcommand implementations (driven through string streams).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "workload/trace_io.hpp"

namespace hpe::cli {
namespace {

Args
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "hpe_sim");
    return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesCommandAndOptions)
{
    const Args a = parse({"run", "--app", "HSD", "--oversub", "0.5"});
    EXPECT_EQ(a.command(), "run");
    EXPECT_EQ(a.get("app"), "HSD");
    EXPECT_DOUBLE_EQ(a.getDouble("oversub", 0.75), 0.5);
}

TEST(Args, EqualsSyntax)
{
    const Args a = parse({"run", "--app=STN", "--seed=7"});
    EXPECT_EQ(a.get("app"), "STN");
    EXPECT_EQ(a.getUint("seed", 1), 7u);
}

TEST(Args, BareFlags)
{
    const Args a = parse({"run", "--csv", "--functional"});
    EXPECT_TRUE(a.has("csv"));
    EXPECT_TRUE(a.has("functional"));
    EXPECT_FALSE(a.has("stats"));
}

TEST(Args, DefaultsWhenMissing)
{
    const Args a = parse({"run"});
    EXPECT_EQ(a.get("app", "HSD"), "HSD");
    EXPECT_DOUBLE_EQ(a.getDouble("oversub", 0.75), 0.75);
    EXPECT_EQ(a.getUint("seed", 1), 1u);
}

TEST(Args, NoCommand)
{
    const Args a = parse({});
    EXPECT_TRUE(a.command().empty());
}

TEST(Args, MalformedNumberIsFatal)
{
    const Args a = parse({"run", "--oversub", "abc"});
    EXPECT_EXIT({ a.getDouble("oversub", 0.75); },
                ::testing::ExitedWithCode(1), "expects a number");
}

TEST(Args, UnknownOptionRejected)
{
    const Args a = parse({"run", "--bogus", "1"});
    EXPECT_EXIT({ a.allowOnly({"app"}); }, ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(Commands, ListShowsAppsAndPolicies)
{
    std::ostringstream os;
    EXPECT_EQ(dispatch(parse({"list"}), os), 0);
    EXPECT_NE(os.str().find("HSD"), std::string::npos);
    EXPECT_NE(os.str().find("HPE"), std::string::npos);
    EXPECT_NE(os.str().find("CLOCK-Pro"), std::string::npos);
}

TEST(Commands, RunFunctionalCsv)
{
    std::ostringstream os;
    const Args a = parse({"run", "--app", "STN", "--policy", "LRU",
                          "--functional", "--csv", "--scale", "0.5"});
    EXPECT_EQ(dispatch(a, os), 0);
    EXPECT_NE(os.str().find("app,policy,mode"), std::string::npos);
    EXPECT_NE(os.str().find("STN,LRU,functional"), std::string::npos);
}

TEST(Commands, RunTimingTable)
{
    std::ostringstream os;
    const Args a = parse({"run", "--app", "STN", "--scale", "0.5"});
    EXPECT_EQ(dispatch(a, os), 0);
    EXPECT_NE(os.str().find("IPC"), std::string::npos);
}

TEST(Commands, RunWithStatsDump)
{
    std::ostringstream os;
    const Args a = parse({"run", "--app", "STN", "--functional", "--stats",
                          "--scale", "0.5"});
    EXPECT_EQ(dispatch(a, os), 0);
    EXPECT_NE(os.str().find("uvm.faults"), std::string::npos);
}

TEST(Commands, RunUnknownPolicyExitsWithUsageCode)
{
    std::ostringstream os;
    const Args a = parse({"run", "--policy", "NOPE", "--scale", "0.25"});
    // Unknown names exit through usageFatal(): the distinct usage exit
    // code and the registry's uniform valid-names message.
    EXPECT_EXIT({ dispatch(a, os); }, ::testing::ExitedWithCode(kUsageExitCode),
                "unknown policy 'NOPE' \\(valid: LRU, ");
}

TEST(Commands, RunUnknownAppExitsWithUsageCode)
{
    std::ostringstream os;
    const Args a = parse({"run", "--app", "NOPE", "--scale", "0.25"});
    EXPECT_EXIT({ dispatch(a, os); }, ::testing::ExitedWithCode(kUsageExitCode),
                "unknown application 'NOPE' \\(valid: ");
}

TEST(Commands, CaseInsensitiveNamesResolveToCanonical)
{
    // Case-differing spellings must neither crash nor change the result:
    // the registry canonicalizes them, so output is byte-identical.
    const auto csvRun = [](const char *app, const char *policy) {
        std::ostringstream os;
        EXPECT_EQ(dispatch(parse({"run", "--app", app, "--policy", policy,
                                  "--functional", "--csv", "--scale", "0.25"}),
                           os),
                  0);
        return os.str();
    };
    const std::string canonical = csvRun("STN", "LRU");
    EXPECT_EQ(csvRun("stn", "lru"), canonical);
    EXPECT_EQ(csvRun("Stn", "Lru"), canonical);
    EXPECT_NE(canonical.find("STN,LRU,"), std::string::npos);
}

TEST(Commands, LegacyNumericPrefetchMatchesCanonicalSpelling)
{
    const auto csvRun = [](std::vector<const char *> extra) {
        std::vector<const char *> argv = {"run",     "--app",  "STN",
                                          "--functional", "--csv", "--scale",
                                          "0.25"};
        argv.insert(argv.end(), extra.begin(), extra.end());
        std::ostringstream os;
        EXPECT_EQ(dispatch(parse(argv), os), 0);
        return os.str();
    };
    // The deprecated numeric spelling must keep working and mean exactly
    // `--prefetch sequential --prefetch-degree N`.
    EXPECT_EQ(csvRun({"--prefetch", "8"}),
              csvRun({"--prefetch", "sequential", "--prefetch-degree", "8"}));
}

TEST(Commands, CompareCoversAllPaperPolicies)
{
    std::ostringstream os;
    const Args a = parse({"compare", "--app", "STN", "--scale", "0.5"});
    EXPECT_EQ(dispatch(a, os), 0);
    for (const char *name : {"LRU", "Random", "RRIP", "CLOCK-Pro", "Ideal",
                             "HPE"})
        EXPECT_NE(os.str().find(name), std::string::npos) << name;
}

TEST(Commands, TraceRoundTripsThroughFile)
{
    const std::string path = ::testing::TempDir() + "/hpe_cli_trace.trace";
    std::ostringstream os;
    const Args a = parse(
        {"trace", "--app", "STN", "--scale", "0.25", "--out", path.c_str()});
    EXPECT_EQ(dispatch(a, os), 0);
    const Trace t = loadTraceFile(path);
    EXPECT_GT(t.size(), 0u);
    std::remove(path.c_str());
}

TEST(Commands, RunTraceJsonlToStdout)
{
    std::ostringstream os;
    const Args a = parse({"run", "--app", "STN", "--policy", "HPE",
                          "--functional", "--scale", "0.25", "--oversub",
                          "0.5", "--trace", "-"});
    EXPECT_EQ(dispatch(a, os), 0);
    EXPECT_NE(os.str().find("\"kind\":\"far_fault\""), std::string::npos);
    EXPECT_NE(os.str().find("\"summary\":{\"events\":"), std::string::npos);
}

TEST(Commands, RunTraceDigestIsStableAcrossRuns)
{
    const auto digestLine = [] {
        std::ostringstream os;
        const Args a = parse({"run", "--app", "STN", "--policy", "LRU",
                              "--functional", "--scale", "0.25", "--oversub",
                              "0.5", "--trace-digest"});
        EXPECT_EQ(dispatch(a, os), 0);
        const std::size_t at = os.str().find("trace digest ");
        EXPECT_NE(at, std::string::npos);
        return os.str().substr(at);
    };
    EXPECT_EQ(digestLine(), digestLine());
}

TEST(Commands, RunTraceEventFilterNarrowsOutput)
{
    std::ostringstream os;
    const Args a = parse({"run", "--app", "STN", "--policy", "LRU",
                          "--functional", "--scale", "0.25", "--oversub",
                          "0.5", "--trace", "-", "--trace-events",
                          "eviction"});
    EXPECT_EQ(dispatch(a, os), 0);
    EXPECT_NE(os.str().find("\"kind\":\"eviction\""), std::string::npos);
    EXPECT_EQ(os.str().find("\"kind\":\"far_fault\""), std::string::npos);
}

TEST(Commands, RunIntervalStatsCsvToFile)
{
    const std::string path = ::testing::TempDir() + "/hpe_cli_intervals.csv";
    std::ostringstream os;
    const Args a = parse({"run", "--app", "STN", "--policy", "HPE",
                          "--functional", "--scale", "0.25", "--oversub",
                          "0.5", "--interval-stats", path.c_str(),
                          "--interval", "100"});
    EXPECT_EQ(dispatch(a, os), 0);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header.find("interval,start_ref,end_ref,faults"), 0u);
    // HPE runs carry the policy-structure columns.
    EXPECT_NE(header.find("chain_length"), std::string::npos);
    std::string row;
    EXPECT_TRUE(static_cast<bool>(std::getline(in, row)));
    std::remove(path.c_str());
}

TEST(Commands, RunTraceOptionsWithoutConsumerAreFatal)
{
    std::ostringstream os;
    const Args a = parse({"run", "--app", "STN", "--scale", "0.25",
                          "--trace-events", "eviction"});
    EXPECT_EXIT({ dispatch(a, os); }, ::testing::ExitedWithCode(1),
                "need --trace");
}

TEST(Commands, ReportRendersIntervalTable)
{
    std::ostringstream os;
    const Args a = parse({"report", "--app", "STN", "--policy", "LRU",
                          "--functional", "--scale", "0.25", "--oversub",
                          "0.5", "--interval", "200"});
    EXPECT_EQ(dispatch(a, os), 0);
    EXPECT_NE(os.str().find("interval 200 refs"), std::string::npos);
    EXPECT_NE(os.str().find("occupancy"), std::string::npos);
}

TEST(Commands, ReportCsvMatchesRecorderFormat)
{
    std::ostringstream os;
    const Args a = parse({"report", "--app", "STN", "--policy", "LRU",
                          "--functional", "--scale", "0.25", "--oversub",
                          "0.5", "--csv"});
    EXPECT_EQ(dispatch(a, os), 0);
    EXPECT_EQ(os.str().find("interval,start_ref,end_ref,faults"), 0u);
}

TEST(Commands, SweepTraceDigestsByteIdenticalAcrossJobs)
{
    const auto csv = [](const char *jobs) {
        std::ostringstream os;
        const Args a = parse({"sweep", "--scale", "0.05", "--functional",
                              "--csv", "--trace-digests", "--jobs", jobs});
        EXPECT_EQ(dispatch(a, os), 0);
        return os.str();
    };
    const std::string one = csv("1");
    const std::string four = csv("4");
    EXPECT_EQ(one, four);
    EXPECT_EQ(one.substr(0, one.find('\n')),
              "app,policy,oversub,faults,evictions,ipc,trace_digest");
    // Digest cells are 16 lowercase hex digits, never zero for a traced
    // functional run.
    EXPECT_EQ(one.find("0000000000000000"), std::string::npos);
}

TEST(Commands, UnknownCommandPrintsUsageAndFails)
{
    std::ostringstream os;
    EXPECT_EQ(dispatch(parse({"frobnicate"}), os), 1);
    EXPECT_NE(os.str().find("usage"), std::string::npos);
}

TEST(Commands, NoCommandPrintsUsageAndSucceeds)
{
    std::ostringstream os;
    EXPECT_EQ(dispatch(parse({}), os), 0);
    EXPECT_NE(os.str().find("usage"), std::string::npos);
}

} // namespace
} // namespace hpe::cli
