/**
 * @file
 * Golden-trace pin: replays every ci/golden cell in-process and compares
 * the digest line and interval CSV byte-for-byte against the committed
 * files.  The demand-paging cells run with the prefetch/batching code
 * explicitly disabled (--prefetch none --fault-batch 1), proving that
 * compiling the new subsystem in changes *nothing* unless it is turned
 * on; the density cell pins the prefetcher-enabled event stream.
 *
 * Paths resolve against HPE_REPO_ROOT (a compile definition), so the test
 * works from any build directory.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"

namespace hpe {
namespace {

std::string
goldenPath(const std::string &file)
{
    return std::string(HPE_REPO_ROOT) + "/ci/golden/" + file;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ADD_FAILURE() << "cannot read golden file " << path;
        return {};
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Run one golden cell exactly as tools/regen_golden.sh does, with the
 * interval CSV routed to stdout after the digest line; the output starts
 * with digest-line + CSV — the concatenation of the two golden files —
 * followed by the human-readable run report (not golden-pinned).
 */
std::string
runCell(const std::vector<const char *> &extra, const char *scale = "0.1")
{
    std::vector<const char *> argv = {
        "hpe_sim", "run",        "--functional", "--scale",  scale,
        "--seed",  "1",          "--trace-digest", "--interval-stats", "-",
        "--interval", "500",
    };
    argv.insert(argv.end(), extra.begin(), extra.end());
    const cli::Args args =
        cli::Args::parse(static_cast<int>(argv.size()), argv.data());
    std::ostringstream os;
    EXPECT_EQ(cli::runCommand(args, os), 0);
    return os.str();
}

/** The pinned bytes must be non-empty and open the cell's output. */
void
expectPinned(const std::string &got, const std::string &expected,
             const std::string &label)
{
    ASSERT_FALSE(expected.empty()) << label;
    EXPECT_EQ(got.substr(0, expected.size()), expected)
        << "golden cell " << label << " diverged";
}

TEST(GoldenPin, DisabledPrefetchCellsAreByteIdentical)
{
    for (const char *app : {"HSD", "BFS", "KMN"}) {
        for (const char *policy : {"LRU", "HPE", "Ideal"}) {
            const std::string stem = std::string(app) + "_" + policy;
            const std::string expected = readFile(goldenPath(stem + ".digest"))
                + readFile(goldenPath(stem + ".intervals.csv"));
            const std::string got = runCell({"--app", app, "--policy", policy,
                                             "--prefetch", "none",
                                             "--fault-batch", "1"});
            expectPinned(got, expected, stem + " (prefetch disabled)");
        }
    }
}

TEST(GoldenPin, DefaultConfigMatchesDisabledConfig)
{
    // The defaults must *be* the disabled configuration.
    const std::string expected = readFile(goldenPath("HSD_HPE.digest"))
        + readFile(goldenPath("HSD_HPE.intervals.csv"));
    expectPinned(runCell({"--app", "HSD", "--policy", "HPE"}), expected,
                 "HSD_HPE (defaults)");
}

TEST(GoldenPin, DensityPrefetchCellIsByteIdentical)
{
    const std::string expected =
        readFile(goldenPath("KMN_HPE_density.digest"))
        + readFile(goldenPath("KMN_HPE_density.intervals.csv"));
    const std::string got = runCell(
        {"--app", "KMN", "--policy", "HPE", "--prefetch", "density"});
    expectPinned(got, expected, "KMN_HPE_density");
}

TEST(GoldenPin, ExplicitBaselinePageSizesMatchEveryCell)
{
    // Spelling out --page-sizes 4k must be the identity: the page-size
    // axis attaches nothing, so every pre-existing cell reproduces
    // byte-for-byte.
    for (const char *app : {"HSD", "BFS", "KMN"}) {
        for (const char *policy : {"LRU", "HPE", "Ideal"}) {
            const std::string stem = std::string(app) + "_" + policy;
            const std::string expected = readFile(goldenPath(stem + ".digest"))
                + readFile(goldenPath(stem + ".intervals.csv"));
            const std::string got = runCell({"--app", app, "--policy", policy,
                                             "--page-sizes", "4k"});
            expectPinned(got, expected, stem + " (--page-sizes 4k)");
        }
    }
}

TEST(GoldenPin, HugePageCoalescingCellsAreByteIdentical)
{
    // Pins the coalescer's event stream (coalesce/splinter events fold
    // into the digest) and the page-size interval columns.
    {
        const std::string expected =
            readFile(goldenPath("KMN_HPE_64k.digest"))
            + readFile(goldenPath("KMN_HPE_64k.intervals.csv"));
        const std::string got =
            runCell({"--app", "KMN", "--policy", "HPE", "--page-sizes",
                     "4k,64k", "--coalesce"});
        expectPinned(got, expected, "KMN_HPE_64k");
    }
    {
        // Full scale + raised oversubscription: a 2 MiB page spans 512
        // frames and must fit the pool (tools/regen_golden.sh matches).
        const std::string expected =
            readFile(goldenPath("STN_LRU_2m.digest"))
            + readFile(goldenPath("STN_LRU_2m.intervals.csv"));
        const std::string got =
            runCell({"--app", "STN", "--policy", "LRU", "--oversub", "0.85",
                     "--page-sizes", "4k,2m", "--coalesce"},
                    /*scale=*/"1.0");
        expectPinned(got, expected, "STN_LRU_2m");
    }
}

} // namespace
} // namespace hpe
