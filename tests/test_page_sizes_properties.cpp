/**
 * @file
 * Property-based differential tests for the multi-page-size GMMU, each
 * over hundreds of seeded random traces:
 *
 *  - observe-only identity: attaching the page-size axis with coalescing
 *    *disabled* is byte-identical to the 4 KiB baseline — same counts,
 *    same victim sequence, same trace digest, same interval values —
 *    across random policies, prefetchers, batch windows, and degradation,
 *    proving the axis is a pure attachment;
 *  - Belady consistency: with coalescing *enabled* the run is still a
 *    demand-paging schedule over 4 KiB faults, so no policy drops below
 *    MIN's fault count on the equivalent 4 KiB stream, conservation
 *    holds, and the cross-layer invariants (StateValidator armed on
 *    every fault service) never fire;
 *  - determinism: a coalescing run replayed under the same seed emits
 *    the identical event stream;
 *  - timing safety: the TLB-reach plumbing survives random multi-size
 *    timing runs with the validator on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/paging_simulator.hpp"
#include "trace/interval_recorder.hpp"
#include "trace/trace_sink.hpp"
#include "workload/trace.hpp"

namespace hpe {
namespace {

using prefetch::PrefetchKind;

constexpr int kTrials = 500;

/** Same shape as the prefetch property suite: sequential bursts (so runs
 *  become contiguous and promotable) plus random jumps (reuse pressure). */
Trace
randomTrace(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    const unsigned pages = 16 + static_cast<unsigned>(rng() % 48);
    const unsigned refs = 120 + static_cast<unsigned>(rng() % 180);
    Trace t("RND", "random", "prop", PatternType::II);
    PageId cursor = rng() % pages;
    for (unsigned i = 0; i < refs; ++i) {
        switch (rng() % 4) {
          case 0:
            cursor = (cursor + 1) % pages;
            break;
          case 1:
            cursor = (cursor + 3) % pages;
            break;
          default:
            cursor = rng() % pages;
            break;
        }
        t.add(cursor, 1, rng() % 8 == 0);
        if (rng() % 64 == 0)
            t.beginKernel();
    }
    return t;
}

std::size_t
randomFrames(std::mt19937_64 &rng, const Trace &t)
{
    const std::size_t fp = t.footprintPages();
    const std::size_t lo = std::max<std::size_t>(4, fp / 4);
    return lo + rng() % std::max<std::size_t>(1, fp - lo);
}

/**
 * A random multi-size config every class of which fits the frame pool
 * (validatePageSizes would rightly panic otherwise): one or two distinct
 * large orders drawn from [1, floor(log2(frames))].
 */
PageSizeConfig
randomPageSizes(std::mt19937_64 &rng, std::size_t frames, bool coalesce)
{
    unsigned maxOrder = 0;
    while ((std::size_t{2} << maxOrder) <= frames)
        ++maxOrder;
    PageSizeConfig cfg;
    cfg.coalesce = coalesce;
    cfg.largeOrders.push_back(1 + static_cast<unsigned>(rng() % maxOrder));
    if (maxOrder > 1 && rng() % 2 == 0) {
        const auto second = 1 + static_cast<unsigned>(rng() % maxOrder);
        if (second != cfg.largeOrders.front())
            cfg.largeOrders.push_back(second);
    }
    std::sort(cfg.largeOrders.begin(), cfg.largeOrders.end());
    return cfg;
}

/** Everything the differential properties compare about one run. */
struct RunEvidence
{
    PagingResult result;
    std::uint64_t digest = 0;
    std::vector<PageId> victims;
    /** Interval timeline as column -> per-interval values.  Keyed by name
     *  so the observe-only run's extra page-size columns do not offset the
     *  shared ones. */
    std::map<std::string, std::vector<std::uint64_t>> timeline;
};

RunEvidence
runWithEvidence(const Trace &t, PolicyKind kind, std::size_t frames,
                PagingOptions opts, std::uint64_t seed)
{
    RunEvidence ev;
    StatRegistry stats;
    trace::TraceSink sink;
    trace::IntervalRecorder intervals(50);
    opts.sink = &sink;
    opts.intervals = &intervals;
    auto policy = makePolicy(kind, t, stats, {}, seed);
    ev.result = runPaging(t, *policy, frames, stats, opts);
    ev.digest = sink.digest();
    for (const trace::TraceEvent &e : sink.events())
        if (e.kind == trace::EventKind::Eviction)
            ev.victims.push_back(e.page);
    const auto cols = intervals.columns();
    for (std::size_t c = 0; c < cols.size(); ++c) {
        auto &column = ev.timeline[cols[c]];
        for (const auto &s : intervals.samples())
            column.push_back(s.values[c]);
    }
    return ev;
}

TEST(PageSizeProperties, ObserveOnlyRunsAreByteIdentical)
{
    const auto &kinds = extendedPolicyKinds();
    const PrefetchKind pf_kinds[] = {PrefetchKind::None,
                                     PrefetchKind::Sequential,
                                     PrefetchKind::Stride,
                                     PrefetchKind::Density};
    for (int trial = 0; trial < kTrials; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 9391 + 7;
        const Trace t = randomTrace(seed);
        std::mt19937_64 rng(seed ^ 0x0b5e12ul);
        const std::size_t frames = randomFrames(rng, t);
        const PolicyKind kind =
            kinds[static_cast<std::size_t>(trial) % kinds.size()];

        // A random composition of every functional-mode subsystem the
        // axis must not disturb.
        PagingOptions opts;
        opts.faultBatch = 1u << (rng() % 6);
        opts.prefetch.kind = pf_kinds[rng() % 4];
        opts.prefetch.degree = 1 + static_cast<unsigned>(rng() % 8);
        opts.degradation.enabled = rng() % 4 == 0;

        const RunEvidence base = runWithEvidence(t, kind, frames, opts, seed);

        PagingOptions multi = opts;
        multi.pageSizes = randomPageSizes(rng, frames, /*coalesce=*/false);
        multi.validate = true;
        const RunEvidence obs = runWithEvidence(t, kind, frames, multi, seed);

        ASSERT_EQ(obs.result.faults, base.result.faults)
            << policyKindName(kind) << " trial " << trial << " pagesizes "
            << multi.pageSizes.spell();
        ASSERT_EQ(obs.result.hits, base.result.hits);
        ASSERT_EQ(obs.result.evictions, base.result.evictions);
        ASSERT_EQ(obs.result.dirtyEvictions, base.result.dirtyEvictions);
        ASSERT_EQ(obs.result.prefetches, base.result.prefetches);
        ASSERT_EQ(obs.victims, base.victims)
            << policyKindName(kind) << " diverged in victim order on trial "
            << trial;
        ASSERT_EQ(obs.digest, base.digest)
            << policyKindName(kind) << " observe-only changed the event "
            << "stream on trial " << trial << " (pagesizes "
            << multi.pageSizes.spell() << ")";
        // Every baseline interval column must be value-identical; the
        // observe-only run merely *adds* page-size columns.
        for (const auto &[col, values] : base.timeline) {
            const auto it = obs.timeline.find(col);
            ASSERT_NE(it, obs.timeline.end()) << "column " << col;
            ASSERT_EQ(it->second, values)
                << "interval column " << col << " diverged on trial "
                << trial;
        }
        for (const char *col : {"large_pages", "covered_pages",
                                "coalesce_promotions"})
            ASSERT_TRUE(obs.timeline.count(col) == 1)
                << "observe-only run is missing page-size column " << col;
    }
}

TEST(PageSizeProperties, CoalescingIsConsistentWithBeladyAndDeterministic)
{
    const auto &kinds = extendedPolicyKinds();
    for (int trial = 0; trial < kTrials; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 7349 + 13;
        const Trace t = randomTrace(seed);
        std::mt19937_64 rng(seed ^ 0xc0a1e5ceul);
        const std::size_t frames = randomFrames(rng, t);
        const PolicyKind kind =
            kinds[static_cast<std::size_t>(trial) % kinds.size()];

        // Belady oracle on the 4 KiB-equivalent stream (no coalescing, no
        // prefetch): provably minimal faults for any demand schedule.
        StatRegistry min_stats;
        auto min = makePolicy(PolicyKind::Ideal, t, min_stats);
        const auto min_result = runPaging(t, *min, frames, min_stats);

        PagingOptions opts;
        opts.pageSizes = randomPageSizes(rng, frames, /*coalesce=*/true);
        opts.validate = true; // StateValidator after every fault service
        const RunEvidence a = runWithEvidence(t, kind, frames, opts, seed);

        // Coalescing changes victim *selection* (the policy sees logical
        // pages) but never the fault granularity: the run is still a
        // demand schedule over 4 KiB faults, so MIN still lower-bounds it.
        EXPECT_GE(a.result.faults, min_result.faults)
            << policyKindName(kind) << " beat MIN with coalescing on trial "
            << trial << " (" << opts.pageSizes.spell() << ", " << frames
            << " frames)";
        EXPECT_EQ(a.result.faults + a.result.hits, a.result.references);
        EXPECT_LE(a.result.evictions, a.result.faults);

        // Determinism: the identical configuration replays byte-for-byte.
        const RunEvidence b = runWithEvidence(t, kind, frames, opts, seed);
        ASSERT_EQ(b.digest, a.digest)
            << policyKindName(kind) << " coalescing run is nondeterministic "
            << "on trial " << trial;
        ASSERT_EQ(b.victims, a.victims);
    }
}

TEST(PageSizeProperties, TimingMultiSizeSafetyUnderValidator)
{
    // The timing path exercises the TLB-reach translation keys, the
    // remap shootdown hook, and the walker; a small trial count keeps the
    // event-driven runs affordable.
    for (int trial = 0; trial < 24; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 1217 + 29;
        const Trace t = randomTrace(seed);
        std::mt19937_64 rng(seed ^ 0x71b17ul);
        RunConfig cfg;
        cfg.seed = seed;
        cfg.oversub = 0.5 + 0.1 * static_cast<double>(rng() % 6);
        cfg.gpu.validate = true;
        const std::size_t frames = framesFor(t, cfg.oversub);
        cfg.gpu.pageSizes =
            randomPageSizes(rng, frames, /*coalesce=*/trial % 4 != 0);
        const PolicyKind kind = trial % 3 == 0 ? PolicyKind::Hpe
            : trial % 3 == 1                   ? PolicyKind::ClockPro
                                               : PolicyKind::Lru;
        const auto r = runTiming(t, kind, cfg);
        EXPECT_GT(r.instructions, 0u) << "trial " << trial;
        EXPECT_LE(r.faults, t.size());
    }
}

} // namespace
} // namespace hpe
