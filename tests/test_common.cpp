/**
 * @file
 * Unit tests for the common module: intrusive list, RNG, saturating
 * counter, event queue, formatting, stats, and the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/event_queue.hpp"
#include "common/format.hpp"
#include "common/intrusive_list.hpp"
#include "common/rng.hpp"
#include "common/sat_counter.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace hpe {
namespace {

struct Node : IntrusiveNode
{
    explicit Node(int v) : value(v) {}
    int value;
};

TEST(IntrusiveList, StartsEmpty)
{
    IntrusiveList<Node> list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
}

TEST(IntrusiveList, PushBackOrdersFrontToBack)
{
    IntrusiveList<Node> list;
    Node a(1), b(2), c(3);
    list.pushBack(a);
    list.pushBack(b);
    list.pushBack(c);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.front().value, 1);
    EXPECT_EQ(list.back().value, 3);
}

TEST(IntrusiveList, PushFrontPrepends)
{
    IntrusiveList<Node> list;
    Node a(1), b(2);
    list.pushBack(a);
    list.pushFront(b);
    EXPECT_EQ(list.front().value, 2);
}

TEST(IntrusiveList, RemoveUnlinksNode)
{
    IntrusiveList<Node> list;
    Node a(1), b(2), c(3);
    list.pushBack(a);
    list.pushBack(b);
    list.pushBack(c);
    list.remove(b);
    EXPECT_FALSE(b.linked());
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.next(a), &c);
}

TEST(IntrusiveList, MoveToBackReorders)
{
    IntrusiveList<Node> list;
    Node a(1), b(2), c(3);
    list.pushBack(a);
    list.pushBack(b);
    list.pushBack(c);
    list.moveToBack(a);
    EXPECT_EQ(list.front().value, 2);
    EXPECT_EQ(list.back().value, 1);
}

TEST(IntrusiveList, IterationVisitsInOrder)
{
    IntrusiveList<Node> list;
    Node a(1), b(2), c(3);
    list.pushBack(a);
    list.pushBack(b);
    list.pushBack(c);
    std::vector<int> seen;
    for (Node &n : list)
        seen.push_back(n.value);
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveList, PrevNextNavigation)
{
    IntrusiveList<Node> list;
    Node a(1), b(2);
    list.pushBack(a);
    list.pushBack(b);
    EXPECT_EQ(list.prev(a), nullptr);
    EXPECT_EQ(list.next(a), &b);
    EXPECT_EQ(list.prev(b), &a);
    EXPECT_EQ(list.next(b), nullptr);
}

TEST(IntrusiveList, SpliceBackMovesAllPreservingOrder)
{
    IntrusiveList<Node> x, y;
    Node a(1), b(2), c(3), d(4);
    x.pushBack(a);
    x.pushBack(b);
    y.pushBack(c);
    y.pushBack(d);
    x.spliceBack(y);
    EXPECT_TRUE(y.empty());
    EXPECT_EQ(x.size(), 4u);
    std::vector<int> seen;
    for (Node &n : x)
        seen.push_back(n.value);
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
}

TEST(IntrusiveList, SpliceBackFromEmptyIsNoop)
{
    IntrusiveList<Node> x, y;
    Node a(1);
    x.pushBack(a);
    x.spliceBack(y);
    EXPECT_EQ(x.size(), 1u);
}

TEST(IntrusiveList, SpliceBackIntoEmpty)
{
    IntrusiveList<Node> x, y;
    Node a(1), b(2);
    y.pushBack(a);
    y.pushBack(b);
    x.spliceBack(y);
    EXPECT_EQ(x.size(), 2u);
    EXPECT_EQ(x.front().value, 1);
    EXPECT_EQ(x.back().value, 2);
}

TEST(IntrusiveList, InsertBefore)
{
    IntrusiveList<Node> list;
    Node a(1), c(3), b(2);
    list.pushBack(a);
    list.pushBack(c);
    list.insertBefore(c, b);
    std::vector<int> seen;
    for (Node &n : list)
        seen.push_back(n.value);
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(SatCounter, SaturatesAtMax)
{
    SatCounter c(64);
    for (int i = 0; i < 100; ++i)
        c.add();
    EXPECT_EQ(c.value(), 64u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, AddWithLargeIncrement)
{
    SatCounter c(10);
    c.add(7);
    EXPECT_EQ(c.value(), 7u);
    c.add(7);
    EXPECT_EQ(c.value(), 10u);
}

TEST(SatCounter, SubClampsAtZero)
{
    SatCounter c(10, 3);
    c.sub(5);
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, Reset)
{
    SatCounter c(10, 10);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.saturated());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, SimultaneousEventsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMore)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunHonorsMaxEvents)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [&] { ++fired; });
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(fired, 3);
}

TEST(Format, PlainSubstitution)
{
    EXPECT_EQ(strformat("a {} c {}", "b", 42), "a b c 42");
}

TEST(Format, HexSpec)
{
    EXPECT_EQ(strformat("{:#x}", 255), "0xff");
    EXPECT_EQ(strformat("{:x}", 255), "ff");
}

TEST(Format, FixedPrecision)
{
    EXPECT_EQ(strformat("{:.2f}", 3.14159), "3.14");
}

TEST(Format, EscapedBraces)
{
    EXPECT_EQ(strformat("{{}} {}", 1), "{} 1");
}

TEST(Format, SurplusPlaceholders)
{
    EXPECT_EQ(strformat("{} {}", 1), "1 {}");
}

TEST(Stats, CounterAccumulates)
{
    StatRegistry stats;
    Counter &c = stats.counter("x.hits");
    ++c;
    c += 4;
    EXPECT_EQ(stats.findCounter("x.hits").value(), 5u);
}

TEST(Stats, DuplicateCounterRegistrationRejected)
{
    StatRegistry stats;
    ++stats.counter("n");
    // A second registration under the same name is a wiring bug (two
    // components would silently alias one counter), not a lookup.
    EXPECT_EXIT({ stats.counter("n"); }, testing::ExitedWithCode(1),
                "already registered");
    EXPECT_EQ(stats.findCounter("n").value(), 1u);
}

TEST(Stats, DuplicateDistributionRegistrationRejected)
{
    StatRegistry stats;
    stats.distribution("lat");
    EXPECT_EXIT({ stats.distribution("lat"); }, testing::ExitedWithCode(1),
                "already registered");
}

TEST(Stats, DistributionMoments)
{
    StatRegistry stats;
    Distribution &d = stats.distribution("lat");
    d.sample(1);
    d.sample(2);
    d.sample(6);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
    EXPECT_DOUBLE_EQ(d.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(d.maximum(), 6.0);
}

TEST(Stats, ResetAllZeroes)
{
    StatRegistry stats;
    stats.counter("a") += 3;
    stats.distribution("b").sample(1.0);
    stats.resetAll();
    EXPECT_EQ(stats.findCounter("a").value(), 0u);
    EXPECT_EQ(stats.findDistribution("b").count(), 0u);
}

TEST(Stats, DumpContainsEntries)
{
    StatRegistry stats;
    stats.counter("z.faults") += 7;
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("z.faults 7"), std::string::npos);
}

TEST(Stats, DumpCsvFormat)
{
    StatRegistry stats;
    stats.counter("a.b") += 3;
    stats.distribution("c.d").sample(2.0);
    std::ostringstream os;
    stats.dumpCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name,count,value,mean,min,max"), std::string::npos);
    EXPECT_NE(out.find("a.b,1,3"), std::string::npos);
    EXPECT_NE(out.find("c.d,1,,2"), std::string::npos);
}

TEST(Table, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator line exists.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Types, PageArithmeticRoundTrips)
{
    const Addr addr = 0x12345678;
    EXPECT_EQ(addrOf(pageOf(addr)), addr & ~(kPageBytes - 1));
    EXPECT_EQ(pageOf(addrOf(42)), 42u);
}

TEST(Types, MicrosCycleConversion)
{
    EXPECT_EQ(microsToCycles(20.0), 28000u);
    EXPECT_NEAR(cyclesToMicros(28000), 20.0, 1e-9);
}

} // namespace
} // namespace hpe
