/**
 * @file
 * Tests for trace serialization (save/load round trips, format errors).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/apps.hpp"
#include "workload/trace_io.hpp"

namespace hpe {
namespace {

TEST(TraceIo, RoundTripPreservesVisits)
{
    Trace t("X", "xapp", "xsuite", PatternType::III);
    t.add(0x10, 4);
    t.add(0x2000, 8);
    t.beginKernel();
    t.add(0x10, 2);

    std::stringstream ss;
    saveTrace(t, ss);
    const Trace back = loadTrace(ss);

    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back.refs()[i].page, t.refs()[i].page);
        EXPECT_EQ(back.refs()[i].burst, t.refs()[i].burst);
    }
}

TEST(TraceIo, RoundTripPreservesIdentity)
{
    Trace t("AB", "app", "suite", PatternType::VI);
    t.add(1);
    std::stringstream ss;
    saveTrace(t, ss);
    const Trace back = loadTrace(ss);
    EXPECT_EQ(back.abbr(), "AB");
    EXPECT_EQ(back.application(), "app");
    EXPECT_EQ(back.suite(), "suite");
    EXPECT_EQ(back.pattern(), PatternType::VI);
}

TEST(TraceIo, RoundTripPreservesKernels)
{
    Trace t("X", "x", "s", PatternType::II);
    for (int pass = 0; pass < 3; ++pass) {
        t.beginKernel();
        for (PageId p = 0; p < 5; ++p)
            t.add(p);
    }
    std::stringstream ss;
    saveTrace(t, ss);
    const Trace back = loadTrace(ss);
    EXPECT_EQ(back.kernelCount(), t.kernelCount());
    for (std::size_t k = 0; k < t.kernelCount(); ++k)
        EXPECT_EQ(back.kernelRange(k), t.kernelRange(k));
}

TEST(TraceIo, RoundTripOnGeneratedApp)
{
    const Trace t = buildApp("HSD", 0.25);
    std::stringstream ss;
    saveTrace(t, ss);
    const Trace back = loadTrace(ss);
    EXPECT_EQ(back.size(), t.size());
    EXPECT_EQ(back.footprintPages(), t.footprintPages());
    EXPECT_EQ(back.kernelCount(), t.kernelCount());
    EXPECT_EQ(*back.canonicalPages(), *t.canonicalPages());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored)
{
    std::stringstream ss;
    ss << "# a comment\n\n"
       << "trace T t s I\n"
       << "# another\n"
       << "ff 4\n\n"
       << "100 2\n"
       << "end 2\n"
       << "# trailing comment is fine\n";
    const Trace t = loadTrace(ss);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.refs()[0].page, 0xffu);
    EXPECT_EQ(t.refs()[0].burst, 4);
    EXPECT_EQ(t.refs()[1].page, 0x100u);
}

TEST(TraceIo, TruncatedTraceIsTypedError)
{
    // A file cut off mid-stream has no footer: no partial trace comes back.
    std::stringstream ss;
    ss << "trace T t s I\n"
       << "ff 4\n"
       << "100 2\n";
    const TraceLoadResult r = tryLoadTrace(ss);
    EXPECT_EQ(r.status, TraceIoStatus::Truncated);
    EXPECT_FALSE(r.trace.has_value());
}

TEST(TraceIo, FooterCountMismatchIsTypedError)
{
    std::stringstream ss;
    ss << "trace T t s I\n"
       << "ff 4\n"
       << "end 5\n";
    const TraceLoadResult r = tryLoadTrace(ss);
    EXPECT_EQ(r.status, TraceIoStatus::CountMismatch);
    EXPECT_FALSE(r.trace.has_value());
}

TEST(TraceIo, TrailingDataIsTypedError)
{
    std::stringstream ss;
    ss << "trace T t s I\n"
       << "ff 4\n"
       << "end 1\n"
       << "100 2\n";
    const TraceLoadResult r = tryLoadTrace(ss);
    EXPECT_EQ(r.status, TraceIoStatus::TrailingData);
    EXPECT_FALSE(r.trace.has_value());
}

TEST(TraceIo, GarbageHeaderIsTypedError)
{
    std::stringstream ss;
    ss << "\x7f""ELF\x02\x01\x01 garbage\n";
    const TraceLoadResult r = tryLoadTrace(ss);
    EXPECT_EQ(r.status, TraceIoStatus::BadHeader);
    EXPECT_FALSE(r.trace.has_value());
}

TEST(TraceIo, EmptyStreamIsTypedError)
{
    std::stringstream ss;
    const TraceLoadResult r = tryLoadTrace(ss);
    EXPECT_EQ(r.status, TraceIoStatus::MissingHeader);
}

TEST(TraceIo, OutOfRangePageIdIsTypedError)
{
    // The page's base address must fit Addr: ids above 2^52-1 cannot.
    std::stringstream ss;
    ss << "trace T t s I\n"
       << "fffffffffffffff0 1\n"
       << "end 1\n";
    const TraceLoadResult r = tryLoadTrace(ss);
    EXPECT_EQ(r.status, TraceIoStatus::PageOutOfRange);
    EXPECT_FALSE(r.trace.has_value());
}

TEST(TraceIo, NegativeAndOverlongFieldsAreBadRecords)
{
    for (const char *record : {"-ff 4", "ff -4", "ff 4 w extra", "ff 4 x",
                               "ff 0", "ff 99999", "ff", "10q 4"}) {
        std::stringstream ss;
        ss << "trace T t s I\n" << record << "\nend 1\n";
        const TraceLoadResult r = tryLoadTrace(ss);
        EXPECT_EQ(r.status, TraceIoStatus::BadRecord) << record;
        EXPECT_FALSE(r.trace.has_value()) << record;
    }
}

TEST(TraceIo, MissingFileIsTypedError)
{
    const TraceLoadResult r = tryLoadTraceFile("/nonexistent/path/x.trace");
    EXPECT_EQ(r.status, TraceIoStatus::OpenFailed);
}

TEST(TraceIo, StatusNamesAreStable)
{
    EXPECT_STREQ(traceIoStatusName(TraceIoStatus::Ok), "Ok");
    EXPECT_STREQ(traceIoStatusName(TraceIoStatus::Truncated), "Truncated");
}

TEST(TraceIo, BadHeaderIsFatal)
{
    std::stringstream ss;
    ss << "nonsense line\n";
    EXPECT_EXIT({ loadTrace(ss); }, ::testing::ExitedWithCode(1),
                "bad trace header");
}

TEST(TraceIo, BadRecordIsFatal)
{
    std::stringstream ss;
    ss << "trace T t s I\n"
       << "zz zz zz\n";
    EXPECT_EXIT({ loadTrace(ss); }, ::testing::ExitedWithCode(1),
                "bad trace record");
}

TEST(TraceIo, BadPatternIsFatal)
{
    std::stringstream ss;
    ss << "trace T t s VII\n";
    EXPECT_EXIT({ loadTrace(ss); }, ::testing::ExitedWithCode(1),
                "bad pattern type");
}

TEST(TraceIo, FileRoundTrip)
{
    const Trace t = buildApp("STN", 0.25);
    const std::string path = ::testing::TempDir() + "/hpe_trace_io_test.trace";
    saveTraceFile(t, path);
    const Trace back = loadTraceFile(path);
    EXPECT_EQ(back.size(), t.size());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT({ loadTraceFile("/nonexistent/path/x.trace"); },
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace hpe
