/**
 * @file
 * Unit tests for the driver module: UVM memory manager protocol, PCIe
 * link occupancy, and the timing fault-service engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hpp"
#include "common/stats.hpp"
#include "driver/gpu_driver.hpp"
#include "driver/pcie.hpp"
#include "driver/uvm_manager.hpp"
#include "policy/lru.hpp"

namespace hpe {
namespace {

TEST(UvmManager, FaultMigratesPageIn)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(4, lru, stats, "uvm");
    const FaultOutcome out = uvm.handleFault(7);
    EXPECT_FALSE(out.evicted);
    EXPECT_TRUE(uvm.resident(7));
    EXPECT_EQ(uvm.faults(), 1u);
}

TEST(UvmManager, EvictionWhenFull)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(2, lru, stats, "uvm");
    uvm.handleFault(1);
    uvm.handleFault(2);
    const FaultOutcome out = uvm.handleFault(3);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victim, 1u); // LRU
    EXPECT_FALSE(uvm.resident(1));
    EXPECT_TRUE(uvm.resident(3));
    EXPECT_EQ(uvm.evictions(), 1u);
}

TEST(UvmManager, HitRefreshesPolicy)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(2, lru, stats, "uvm");
    uvm.handleFault(1);
    uvm.handleFault(2);
    uvm.recordHit(1); // 2 becomes LRU
    const FaultOutcome out = uvm.handleFault(3);
    EXPECT_EQ(out.victim, 2u);
}

TEST(UvmManager, EvictHookFires)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(1, lru, stats, "uvm");
    std::vector<PageId> shot_down;
    uvm.setEvictHook([&](PageId p) { shot_down.push_back(p); });
    uvm.handleFault(1);
    uvm.handleFault(2);
    EXPECT_EQ(shot_down, (std::vector<PageId>{1}));
}

TEST(UvmManager, RefaultCounting)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(1, lru, stats, "uvm");
    uvm.handleFault(1);
    uvm.handleFault(2); // evicts 1
    uvm.handleFault(1); // refault
    EXPECT_EQ(uvm.refaults(), 1u);
}

TEST(UvmManager, FrameReuseAfterEviction)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(1, lru, stats, "uvm");
    const FrameId f1 = uvm.handleFault(1).frame;
    const FrameId f2 = uvm.handleFault(2).frame;
    EXPECT_EQ(f1, f2); // single frame recycled
    EXPECT_EQ(uvm.residentPages(), 1u);
}

TEST(Pcie, TransferLatencyMatchesBandwidth)
{
    PcieConfig cfg{.bandwidthGBs = 16.0};
    // 16 GB/s at 1.4 GHz = 11.43 B/cycle; 4 KB page ~ 358 cycles.
    EXPECT_NEAR(static_cast<double>(cfg.cyclesForBytes(4096)), 358.0, 1.0);
}

TEST(Pcie, LinkOccupancySerializes)
{
    StatRegistry stats;
    PcieLink link(PcieConfig{}, stats, "pcie");
    const Cycle t1 = link.transfer(0, 4096);
    const Cycle t2 = link.transfer(0, 4096);
    EXPECT_EQ(t2, 2 * t1); // second transfer waits for the first
}

TEST(Pcie, IdleLinkStartsImmediately)
{
    StatRegistry stats;
    PcieLink link(PcieConfig{}, stats, "pcie");
    link.transfer(0, 1024);
    const Cycle done = link.transfer(100000, 1024);
    EXPECT_EQ(done, 100000 + PcieConfig{}.cyclesForBytes(1024));
}

TEST(Pcie, MinimumOneCycle)
{
    EXPECT_GE(PcieConfig{}.cyclesForBytes(1), 1u);
}

class DriverTest : public ::testing::Test
{
  protected:
    DriverTest()
        : uvm_(8, lru_, stats_, "uvm"), pcie_(PcieConfig{}, stats_, "pcie"),
          driver_(cfg_, uvm_, pcie_, eq_, stats_, "drv")
    {}

    DriverConfig cfg_{};
    StatRegistry stats_;
    LruPolicy lru_;
    EventQueue eq_;
    UvmMemoryManager uvm_;
    PcieLink pcie_;
    GpuDriver driver_;
};

TEST_F(DriverTest, FaultServiceTakesFixedLatency)
{
    Cycle woke = 0;
    driver_.requestPage(3, [&] { woke = eq_.now(); });
    eq_.run();
    EXPECT_EQ(woke, cfg_.faultServiceCycles);
    EXPECT_TRUE(uvm_.resident(3));
}

TEST_F(DriverTest, ConcurrentSamePageFaultsMerge)
{
    int wakeups = 0;
    EXPECT_TRUE(driver_.requestPage(3, [&] { ++wakeups; }));
    EXPECT_FALSE(driver_.requestPage(3, [&] { ++wakeups; }));
    eq_.run();
    EXPECT_EQ(wakeups, 2);
    EXPECT_EQ(uvm_.faults(), 1u);
    EXPECT_EQ(stats_.findCounter("drv.faultsMerged").value(), 1u);
}

TEST_F(DriverTest, PipelinedServiceInitiation)
{
    std::vector<Cycle> completions;
    driver_.requestPage(1, [&] { completions.push_back(eq_.now()); });
    driver_.requestPage(2, [&] { completions.push_back(eq_.now()); });
    eq_.run();
    ASSERT_EQ(completions.size(), 2u);
    // Second start is staggered by the initiation interval, not by the
    // full service latency.
    EXPECT_EQ(completions[1] - completions[0], cfg_.serviceInitiationCycles);
}

TEST_F(DriverTest, BusyCyclesAccumulatePerFault)
{
    driver_.requestPage(1, [] {});
    driver_.requestPage(2, [] {});
    eq_.run();
    EXPECT_EQ(driver_.busyCycles(), 2 * cfg_.serviceInitiationCycles);
}

TEST_F(DriverTest, SequentialFaultsBothServiced)
{
    driver_.requestPage(1, [] {});
    eq_.run();
    driver_.requestPage(2, [] {});
    eq_.run();
    EXPECT_TRUE(uvm_.resident(1));
    EXPECT_TRUE(uvm_.resident(2));
    EXPECT_EQ(stats_.findCounter("drv.faultsServiced").value(), 2u);
}

TEST_F(DriverTest, PendingCountsInFlight)
{
    driver_.requestPage(1, [] {});
    driver_.requestPage(2, [] {});
    EXPECT_EQ(driver_.pending(), 2u);
    eq_.run();
    EXPECT_EQ(driver_.pending(), 0u);
}

} // namespace
} // namespace hpe
