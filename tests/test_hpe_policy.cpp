/**
 * @file
 * Unit tests for the assembled HpePolicy: victim selection order,
 * partition preference, MRU-C vs LRU strategies, classification wiring,
 * HIR batching, page-set division end to end, and transfer accounting.
 */

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "core/hpe_policy.hpp"

namespace hpe {
namespace {

/** Driver-protocol harness around HpePolicy with explicit frame count. */
class HpeHarness
{
  public:
    HpeHarness(const HpeConfig &cfg, StatRegistry &stats, std::size_t frames)
        : policy_(cfg, stats), frames_(frames)
    {}

    /** Reference @p page; faults/evicts per the driver protocol. */
    void
    access(PageId page)
    {
        if (resident_.contains(page)) {
            policy_.onHit(page);
            return;
        }
        policy_.onFault(page);
        if (resident_.size() == frames_) {
            const PageId victim = policy_.selectVictim();
            ASSERT_TRUE(resident_.contains(victim))
                << "victim " << victim << " not resident";
            resident_.erase(victim);
            policy_.onEvict(victim);
            evicted_.push_back(victim);
        }
        resident_.insert(page);
        policy_.onMigrateIn(page);
        ++faults_;
    }

    HpePolicy &policy() { return policy_; }
    const std::vector<PageId> &evicted() const { return evicted_; }
    std::uint64_t faults() const { return faults_; }
    bool resident(PageId p) const { return resident_.contains(p); }

  private:
    HpePolicy policy_;
    std::size_t frames_;
    std::unordered_set<PageId> resident_;
    std::vector<PageId> evicted_;
    std::uint64_t faults_ = 0;
};

HpeConfig
directConfig()
{
    HpeConfig cfg;
    cfg.hitChannel = HitChannel::Direct;
    return cfg;
}

TEST(HpePolicy, ClassifiesAtFirstMemoryFull)
{
    StatRegistry stats;
    HpeHarness h(directConfig(), stats, 64);
    for (PageId p = 0; p < 64; ++p)
        h.access(p);
    EXPECT_FALSE(h.policy().classification().has_value());
    h.access(64); // first eviction
    ASSERT_TRUE(h.policy().classification().has_value());
}

TEST(HpePolicy, StreamingClassifiesRegular)
{
    StatRegistry stats;
    HpeHarness h(directConfig(), stats, 96);
    for (PageId p = 0; p <= 96; ++p)
        h.access(p);
    EXPECT_EQ(h.policy().classification()->category, Category::Regular);
    EXPECT_EQ(h.policy().adjustment().strategy(), Strategy::MruC);
}

TEST(HpePolicy, IrregularCountsClassifyIrregular2)
{
    StatRegistry stats;
    HpeHarness h(directConfig(), stats, 96);
    // Touch pages with per-page counts of 1 or 3 in a scattered way so
    // set counters are not multiples of 16.
    for (PageId p = 0; p <= 96; ++p) {
        h.access(p);
        if (p % 3 == 0) {
            h.access(p);
            h.access(p);
        }
    }
    ASSERT_TRUE(h.policy().classification().has_value());
    EXPECT_EQ(h.policy().classification()->category, Category::Irregular2);
    EXPECT_EQ(h.policy().adjustment().strategy(), Strategy::Lru);
}

TEST(HpePolicy, VictimPagesComeFromOneSetInAddressOrder)
{
    StatRegistry stats;
    HpeHarness h(directConfig(), stats, 64);
    for (PageId p = 0; p < 64; ++p)
        h.access(p);
    // Age everything into the old partition.
    std::vector<PageId> victims;
    for (PageId p = 1000; p < 1000 + 16; ++p)
        h.access(p);
    ASSERT_EQ(h.evicted().size(), 16u);
    // The first selected set is drained in ascending page order.
    const PageSetId set = h.evicted()[0] / 16;
    for (std::size_t i = 1; i < 16; ++i) {
        if (h.evicted()[i] / 16 != set)
            break; // a re-touch may have abandoned the set; order holds per set
        EXPECT_GT(h.evicted()[i], h.evicted()[i - 1]);
    }
}

TEST(HpePolicy, EvictionsPreferOldPartition)
{
    StatRegistry stats;
    HpeConfig cfg = directConfig();
    cfg.intervalLength = 16;
    HpeHarness h(cfg, stats, 64);
    // Sets 0..3 faulted early; interval boundaries age them to old.
    for (PageId p = 0; p < 64; ++p)
        h.access(p);
    // 64 faults = 4 intervals: sets 0,1 are old by now.  Fault new pages.
    h.access(10000);
    ASSERT_FALSE(h.evicted().empty());
    // The victim must come from an old set (pages 0..47), not the sets
    // touched in the current or last interval.
    EXPECT_LT(h.evicted()[0], 48u);
}

TEST(HpePolicy, MruCPrefersCounterEqualToSetSize)
{
    StatRegistry stats;
    HpeConfig cfg = directConfig();
    cfg.intervalLength = 16;
    HpeHarness h(cfg, stats, 64);
    // Sets 0 and 1: heavily reused (counter > 16); sets 2,3: single touch.
    for (PageId p = 0; p < 32; ++p) {
        h.access(p);
        h.access(p);
        h.access(p);
    }
    for (PageId p = 32; p < 64; ++p)
        h.access(p);
    h.access(10000);
    ASSERT_FALSE(h.evicted().empty());
    // MRU-C from the MRU end of old: set 3 (counter 16) qualifies before
    // the reused sets 0/1 (counter 48).
    EXPECT_GE(h.evicted()[0], 32u);
}

TEST(HpePolicy, HirChannelBatchesHits)
{
    StatRegistry stats;
    HpeConfig cfg; // HIR channel
    HpeHarness h(cfg, stats, 640);
    for (PageId p = 0; p < 320; ++p)
        h.access(p);
    // Hits recorded via HIR do not touch the chain until a transfer
    // boundary (every 16th fault).
    for (PageId p = 0; p < 64; ++p)
        h.policy().onHit(p);
    EXPECT_GT(h.policy().hir().occupancy(), 0u);
    const std::uint64_t faults_before_flush = h.policy().faultNumber();
    // Fault up to the next multiple of 16 to force the flush.
    PageId next = 5000;
    while (h.policy().faultNumber() % cfg.transferInterval != 0
           || h.policy().faultNumber() == faults_before_flush)
        h.access(next++);
    EXPECT_EQ(h.policy().hir().occupancy(), 0u);
    EXPECT_GT(h.policy().takePendingTransferBytes(), 0u);
}

TEST(HpePolicy, TransferBytesAreConsumedOnce)
{
    StatRegistry stats;
    HpeConfig cfg;
    HpeHarness h(cfg, stats, 640);
    for (PageId p = 0; p < 64; ++p) {
        h.access(p);
        h.policy().onHit(p);
    }
    (void)h.policy().takePendingTransferBytes();
    EXPECT_EQ(h.policy().takePendingTransferBytes(), 0u);
}

TEST(HpePolicy, DividedSetRoutesSecondaryPages)
{
    StatRegistry stats;
    HpeConfig cfg = directConfig();
    HpeHarness h(cfg, stats, 1024);
    // Fault even pages of set 0, then saturate its counter with hits.
    for (PageId p = 0; p < 16; p += 2)
        h.access(p);
    for (int i = 0; i < 10; ++i)
        for (PageId p = 0; p < 16; p += 2)
            h.access(p); // hits: counter reaches 64 -> division
    ASSERT_NE(h.policy().chain().find(0, false), nullptr);
    EXPECT_TRUE(h.policy().chain().find(0, false)->divided);
    // Odd pages now create the secondary entry.
    h.access(1);
    EXPECT_NE(h.policy().chain().find(0, true), nullptr);
}

TEST(HpePolicy, SetRemovedOnceAllPagesEvicted)
{
    StatRegistry stats;
    HpeHarness h(directConfig(), stats, 64);
    for (PageId p = 0; p < 64; ++p)
        h.access(p);
    for (PageId p = 1000; p < 1016; ++p)
        h.access(p); // evicts one full set
    // One of sets 0..3 is gone from the chain.
    int live = 0;
    for (PageSetId s = 0; s < 4; ++s)
        live += h.policy().chain().find(s, false) != nullptr ? 1 : 0;
    EXPECT_EQ(live, 3);
}

TEST(HpePolicy, FaultCounterTracksFaults)
{
    StatRegistry stats;
    HpeHarness h(directConfig(), stats, 64);
    for (PageId p = 0; p < 10; ++p)
        h.access(p);
    EXPECT_EQ(h.policy().faultNumber(), 10u);
}

TEST(HpePolicy, SearchComparisonsSampled)
{
    StatRegistry stats;
    HpeHarness h(directConfig(), stats, 64);
    for (PageId p = 0; p <= 80; ++p)
        h.access(p);
    if (h.policy().adjustment().strategy() == Strategy::MruC) {
        EXPECT_GT(stats.findDistribution("hpe.searchComparisons").count(), 0u);
    }
}

TEST(HpePolicy, ChainLengthSampledPerInterval)
{
    StatRegistry stats;
    HpeConfig cfg = directConfig();
    cfg.intervalLength = 16;
    HpeHarness h(cfg, stats, 256);
    for (PageId p = 0; p < 64; ++p)
        h.access(p); // 64 faults = 4 interval boundaries
    const auto &d = stats.findDistribution("hpe.chain.length");
    EXPECT_EQ(d.count(), 4u);
    // 16 pages per set: the chain is ~16x shorter than the page count.
    EXPECT_LE(d.maximum(), 64.0 / 16.0 + 1);
}

TEST(HpePolicy, ConfigValidationRejectsBadSetSize)
{
    HpeConfig cfg;
    cfg.pageSetSize = 12; // not a power of two
    EXPECT_DEATH({ cfg.validate(); }, "power of two");
}

TEST(HpePolicy, WorksWithSetSizeEight)
{
    StatRegistry stats;
    HpeConfig cfg = directConfig();
    cfg.pageSetSize = 8;
    cfg.wrongEvictionThreshold = 8;
    HpeHarness h(cfg, stats, 64);
    for (PageId p = 0; p < 200; ++p)
        h.access(p);
    EXPECT_EQ(h.faults(), 200u);
}

TEST(HpePolicy, ThrashingPatternBeatsNaiveRecencyEviction)
{
    // Cyclic references over 96 pages with 64 frames: LRU would fault on
    // every reference after the first pass (3*96 = 288 faults).  HPE's
    // MRU-C must do strictly better.
    StatRegistry stats;
    HpeConfig cfg = directConfig();
    HpeHarness h(cfg, stats, 64);
    for (int pass = 0; pass < 3; ++pass)
        for (PageId p = 0; p < 96; ++p)
            h.access(p);
    EXPECT_LT(h.faults(), 280u);
    EXPECT_GE(h.faults(), 96u + 2 * 32u); // cannot beat Belady
}

} // namespace
} // namespace hpe
