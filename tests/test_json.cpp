/**
 * @file
 * Tests for the hpe::api JSON value/parser/writer: canonical dumping
 * (the fingerprint substrate), exact 64-bit number round trips, and
 * strict parsing with located errors.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "api/json.hpp"

namespace hpe::api::json {
namespace {

Value
parseOk(const std::string &text)
{
    ParseError err;
    const auto v = parse(text, &err);
    EXPECT_TRUE(v.has_value()) << err.message << " at " << err.offset;
    return v.value_or(Value{});
}

std::string
parseFail(const std::string &text)
{
    ParseError err;
    const auto v = parse(text, &err);
    EXPECT_FALSE(v.has_value()) << "parsed: " << text;
    return err.message;
}

TEST(Json, DumpSortsObjectKeysCanonically)
{
    // Member order in the source text must not leak into the dump —
    // fingerprints hash these bytes.
    EXPECT_EQ(parseOk(R"({"b":1,"a":2,"c":3})").dump(),
              R"({"a":2,"b":1,"c":3})");
    EXPECT_EQ(parseOk(R"({"a":2,"c":3,"b":1})").dump(),
              R"({"a":2,"b":1,"c":3})");
}

TEST(Json, ScalarsRoundTrip)
{
    EXPECT_EQ(parseOk("null").dump(), "null");
    EXPECT_EQ(parseOk("true").dump(), "true");
    EXPECT_EQ(parseOk("false").dump(), "false");
    EXPECT_EQ(parseOk("0").dump(), "0");
    EXPECT_EQ(parseOk("-42").dump(), "-42");
    EXPECT_EQ(parseOk("\"hi\"").dump(), "\"hi\"");
    EXPECT_EQ(parseOk("[1,2,3]").dump(), "[1,2,3]");
}

TEST(Json, SixtyFourBitIntegersAreExact)
{
    // Seeds and digests are 64-bit; a double mantissa would corrupt them.
    const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
    const Value v = parseOk("18446744073709551615");
    EXPECT_EQ(v.asUint(), big);
    EXPECT_EQ(v.dump(), "18446744073709551615");

    const Value neg = parseOk("-9223372036854775808");
    EXPECT_EQ(neg.asInt(), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(neg.dump(), "-9223372036854775808");
}

TEST(Json, IntegralDoublesDumpWithoutDecimalPoint)
{
    // 0.75 stays fractional; 1.0 dumps as "1" so a request built from
    // C++ doubles and one parsed from JSON integers dump identically.
    EXPECT_EQ(Value(0.75).dump(), "0.75");
    EXPECT_EQ(Value(1.0).dump(), "1");
    EXPECT_EQ(Value(0.0).dump(), "0");
}

TEST(Json, StringEscapesRoundTrip)
{
    const Value v = parseOk(R"("a\"b\\c\n\tA")");
    EXPECT_EQ(v.asString(), "a\"b\\c\n\tA");
    // Control characters re-escape on dump.
    EXPECT_EQ(parseOk(v.dump()).asString(), v.asString());
}

TEST(Json, FindNavigatesObjects)
{
    const Value v = parseOk(R"({"outer":{"inner":7}})");
    const Value *outer = v.find("outer");
    ASSERT_NE(outer, nullptr);
    const Value *inner = outer->find("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->asUint(), 7u);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_EQ(inner->find("not-an-object"), nullptr);
}

TEST(Json, NumericAccessorsCrossConvert)
{
    EXPECT_DOUBLE_EQ(parseOk("7").asDouble(), 7.0);
    EXPECT_EQ(parseOk("7.0").asUint(), 7u);
    EXPECT_TRUE(parseOk("7").isNumber());
    EXPECT_FALSE(parseOk("\"7\"").isNumber());
}

TEST(Json, RejectsMalformedInput)
{
    parseFail("");
    parseFail("{");
    parseFail("[1,2,");
    parseFail(R"({"a":1,})");  // trailing comma
    parseFail(R"({'a':1})");   // single quotes
    parseFail("01");           // leading zero
    parseFail("1 2");          // trailing garbage
    parseFail("\"unterminated");
    parseFail("nul");
}

TEST(Json, ReportsErrorOffset)
{
    ParseError err;
    EXPECT_FALSE(parse(R"({"a":!})", &err).has_value());
    EXPECT_EQ(err.offset, 5u);
    EXPECT_FALSE(err.message.empty());
}

TEST(Json, DepthLimitStopsRecursion)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    parseFail(deep);
}

} // namespace
} // namespace hpe::api::json
