/**
 * @file
 * Tests for the hpe::trace subsystem: the ring-buffered TraceSink (event
 * filtering, overflow, digest stability), the IntervalRecorder boundary
 * semantics, the exporters, and the sweep-level digest determinism the CI
 * golden-trace job depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "trace/events.hpp"
#include "trace/exporters.hpp"
#include "trace/interval_recorder.hpp"
#include "trace/trace_sink.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

using trace::EventKind;
using trace::EventMask;
using trace::IntervalRecorder;
using trace::TraceEvent;
using trace::TraceSink;

TEST(EventNames, RoundTripEveryKind)
{
    for (unsigned k = 0; k < static_cast<unsigned>(EventKind::kCount); ++k) {
        const auto kind = static_cast<EventKind>(k);
        const auto back = trace::eventKindByName(trace::eventKindName(kind));
        ASSERT_TRUE(back.has_value()) << trace::eventKindName(kind);
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(trace::eventKindByName("no_such_event").has_value());
}

TEST(EventMaskParse, NamesAllAndFatalOnUnknown)
{
    EXPECT_EQ(trace::parseEventMask("all"), trace::kAllEvents);
    EXPECT_EQ(trace::parseEventMask(""), trace::kAllEvents);
    const EventMask m = trace::parseEventMask("far_fault,eviction");
    EXPECT_EQ(m, trace::maskOf(EventKind::FarFault)
                     | trace::maskOf(EventKind::Eviction));
    EXPECT_EXIT(trace::parseEventMask("bogus"), testing::ExitedWithCode(1),
                "unknown trace event");
}

TEST(TraceSink, FilterDropsUnwantedKindsEntirely)
{
    TraceSink sink(TraceSink::Config{
        .ringCapacity = 8, .mask = trace::maskOf(EventKind::Eviction)});
    sink.emit(EventKind::FarFault, 0, 1, 0);
    sink.emit(EventKind::Eviction, 0, 2, 1);
    sink.emit(EventKind::Migration, 0, 3, 0);
    EXPECT_EQ(sink.emitted(), 1u);
    ASSERT_EQ(sink.events().size(), 1u);
    EXPECT_EQ(sink.events()[0].kind, EventKind::Eviction);

    // A filtered event must not touch the digest either.
    TraceSink only_evictions(TraceSink::Config{
        .ringCapacity = 8, .mask = trace::maskOf(EventKind::Eviction)});
    only_evictions.emit(EventKind::Eviction, 0, 2, 1);
    EXPECT_EQ(sink.digest(), only_evictions.digest());
}

TEST(TraceSink, RingOverflowKeepsNewestAndCounts)
{
    TraceSink sink(TraceSink::Config{.ringCapacity = 4});
    for (std::uint64_t i = 0; i < 10; ++i)
        sink.emit(EventKind::FarFault, 0, i, 0);
    EXPECT_EQ(sink.emitted(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);
    const std::vector<TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].page, 6 + i) << "ring must keep the newest";
}

TEST(TraceSink, DigestIndependentOfRingCapacity)
{
    TraceSink small(TraceSink::Config{.ringCapacity = 2});
    TraceSink large(TraceSink::Config{.ringCapacity = 1u << 12});
    for (std::uint64_t i = 0; i < 100; ++i) {
        small.emit(EventKind::Migration, 1, i, i * 3);
        large.emit(EventKind::Migration, 1, i, i * 3);
    }
    EXPECT_GT(small.dropped(), 0u);
    EXPECT_EQ(large.dropped(), 0u);
    EXPECT_EQ(small.digest(), large.digest());
}

TEST(TraceSink, DigestCoversEveryEventField)
{
    // Any single-field change must change the digest.
    const auto digestOf = [](std::uint64_t t, EventKind k, std::uint8_t sub,
                             std::uint64_t page, std::uint64_t value) {
        TraceSink s;
        s.emitAt(t, k, sub, page, value);
        return s.digest();
    };
    const std::uint64_t base = digestOf(1, EventKind::FarFault, 0, 2, 3);
    EXPECT_NE(base, digestOf(9, EventKind::FarFault, 0, 2, 3));
    EXPECT_NE(base, digestOf(1, EventKind::Eviction, 0, 2, 3));
    EXPECT_NE(base, digestOf(1, EventKind::FarFault, 1, 2, 3));
    EXPECT_NE(base, digestOf(1, EventKind::FarFault, 0, 7, 3));
    EXPECT_NE(base, digestOf(1, EventKind::FarFault, 0, 2, 8));
}

TEST(TraceSink, ClockIsMonotonic)
{
    TraceSink sink;
    sink.advanceTo(10);
    sink.advanceTo(5); // ignored: earlier than the current clock
    sink.emit(EventKind::FarFault, 0, 1, 0);
    ASSERT_EQ(sink.events().size(), 1u);
    EXPECT_EQ(sink.events()[0].time, 10u);
}

TEST(TraceSink, KnownDigestValue)
{
    // Golden digest of a tiny fixed sequence: guards the encoding (field
    // order, little-endian byte folding) against accidental change, which
    // would silently invalidate every checked-in golden trace.
    TraceSink sink;
    sink.emitAt(1, EventKind::FarFault, 0, 42, 0);
    sink.emitAt(2, EventKind::Eviction, 0, 7, 1);
    EXPECT_EQ(sink.digestHexString(), trace::digestHex(sink.digest()));
    const std::uint64_t first = sink.digest();
    TraceSink replay;
    replay.emitAt(1, EventKind::FarFault, 0, 42, 0);
    replay.emitAt(2, EventKind::Eviction, 0, 7, 1);
    EXPECT_EQ(replay.digest(), first);
}

TEST(CombineDigests, OrderSensitiveReduction)
{
    const std::vector<std::uint64_t> ab = {1, 2};
    const std::vector<std::uint64_t> ba = {2, 1};
    EXPECT_NE(trace::combineDigests(ab), trace::combineDigests(ba));
    EXPECT_EQ(trace::combineDigests(ab), trace::combineDigests(ab));
}

TEST(IntervalRecorder, ZeroReferencesProduceNoSamples)
{
    IntervalRecorder rec(10);
    rec.finish();
    EXPECT_TRUE(rec.samples().empty());
}

TEST(IntervalRecorder, ExactMultipleProducesExactCount)
{
    IntervalRecorder rec(5);
    for (int i = 0; i < 20; ++i)
        rec.onReference();
    rec.finish(); // nothing pending: must not add a 5th sample
    ASSERT_EQ(rec.samples().size(), 4u);
    EXPECT_EQ(rec.samples()[3].startRef, 15u);
    EXPECT_EQ(rec.samples()[3].endRef, 20u);
}

TEST(IntervalRecorder, PartialTailFlushedOnceByFinish)
{
    IntervalRecorder rec(8);
    for (int i = 0; i < 11; ++i)
        rec.onReference();
    rec.finish();
    rec.finish(); // idempotent
    ASSERT_EQ(rec.samples().size(), 2u);
    EXPECT_EQ(rec.samples()[1].startRef, 8u);
    EXPECT_EQ(rec.samples()[1].endRef, 11u);
}

TEST(IntervalRecorder, CounterDeltasAndGauges)
{
    StatRegistry stats;
    Counter &c = stats.counter("c");
    std::uint64_t level = 0;
    IntervalRecorder rec(2);
    rec.addCounter("c", c);
    rec.addGauge("level", [&level] { return level; });

    ++c;
    level = 5;
    rec.onReference();
    rec.onReference(); // boundary: c delta 1, level 5
    c += 10;
    level = 3;
    rec.onReference();
    rec.finish(); // tail: c delta 10, level 3

    const auto cols = rec.columns();
    ASSERT_EQ(cols.size(), 2u);
    EXPECT_EQ(cols[0], "c");
    EXPECT_EQ(cols[1], "level");
    ASSERT_EQ(rec.samples().size(), 2u);
    EXPECT_EQ(rec.samples()[0].values, (std::vector<std::uint64_t>{1, 5}));
    EXPECT_EQ(rec.samples()[1].values, (std::vector<std::uint64_t>{10, 3}));
}

TEST(IntervalRecorder, CsvFormat)
{
    StatRegistry stats;
    IntervalRecorder rec(2);
    rec.addCounter("faults", stats.counter("f"));
    rec.onReference();
    rec.onReference();
    std::ostringstream os;
    rec.writeCsv(os);
    EXPECT_EQ(os.str(), "interval,start_ref,end_ref,faults\n0,0,2,0\n");
}

TEST(Exporters, JsonlCarriesEventsAndSummary)
{
    TraceSink sink;
    sink.emitAt(3, EventKind::Eviction, 0, 7, 1);
    std::ostringstream os;
    trace::writeJsonl(sink, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("{\"t\":3,\"kind\":\"eviction\",\"page\":7,\"value\":1}"),
              std::string::npos);
    EXPECT_NE(out.find("\"summary\":{\"events\":1,\"dropped\":0,\"digest\":\""),
              std::string::npos);
    EXPECT_NE(out.find(sink.digestHexString()), std::string::npos);
}

TEST(Exporters, ChromeTraceShape)
{
    TraceSink sink;
    sink.emitAt(5, EventKind::Migration, 1, 9, 0);
    std::ostringstream os;
    trace::writeChromeTrace(sink, os);
    const std::string out = os.str();
    EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(out.find("\"name\":\"migration:prefetch\""), std::string::npos);
    EXPECT_NE(out.find("\"ts\":5"), std::string::npos);
    EXPECT_NE(out.find("\"metadata\":{\"events\":1"), std::string::npos);
}

TEST(FunctionalTracing, RunEmitsFaultsAndIsReproducible)
{
    const Trace app = buildApp("HSD", 0.05, 1);
    RunConfig cfg;
    cfg.oversub = 0.5;

    TraceSink a, b;
    runFunctionalInspect(app, PolicyKind::Hpe, cfg, {.sink = &a});
    runFunctionalInspect(app, PolicyKind::Hpe, cfg, {.sink = &b});
    EXPECT_GT(a.emitted(), 0u);
    EXPECT_EQ(a.digest(), b.digest());

    // The event mix of an oversubscribed HPE run must include the core
    // kinds wired through driver and policy.
    bool sawFault = false, sawEvict = false, sawMigrate = false,
         sawChain = false;
    for (const TraceEvent &ev : a.events()) {
        sawFault |= ev.kind == EventKind::FarFault;
        sawEvict |= ev.kind == EventKind::Eviction;
        sawMigrate |= ev.kind == EventKind::Migration;
        sawChain |= ev.kind == EventKind::ChainOp;
    }
    EXPECT_TRUE(sawFault);
    EXPECT_TRUE(sawEvict);
    EXPECT_TRUE(sawMigrate);
    EXPECT_TRUE(sawChain);
}

TEST(FunctionalTracing, IntervalTimelineSumsToRunTotals)
{
    const Trace app = buildApp("BFS", 0.05, 1);
    RunConfig cfg;
    cfg.oversub = 0.5;
    IntervalRecorder rec(100);
    const InspectableRun run = runFunctionalInspect(
        app, PolicyKind::Lru, cfg, {.intervals = &rec});
    EXPECT_EQ(rec.references(), run.paging.references);
    std::uint64_t faults = 0;
    const auto cols = rec.columns();
    const auto fault_col = static_cast<std::size_t>(
        std::find(cols.begin(), cols.end(), "faults") - cols.begin());
    ASSERT_LT(fault_col, cols.size());
    for (const IntervalRecorder::Sample &s : rec.samples())
        faults += s.values[fault_col];
    EXPECT_EQ(faults, run.paging.faults);
}

TEST(TimingTracing, RunEmitsShootdownsAndPcieTransfers)
{
    const Trace app = buildApp("HSD", 0.03, 1);
    RunConfig cfg;
    cfg.oversub = 0.5;
    TraceSink sink;
    IntervalRecorder rec(200);
    const InspectableRun run = runTimingInspect(
        app, PolicyKind::Hpe, cfg, {.sink = &sink, .intervals = &rec});
    EXPECT_GT(run.timing.evictions, 0u);
    bool sawShootdown = false, sawPcie = false;
    for (const TraceEvent &ev : sink.events()) {
        sawShootdown |= ev.kind == EventKind::TlbShootdown;
        sawPcie |= ev.kind == EventKind::PcieTransfer;
    }
    EXPECT_TRUE(sawShootdown);
    EXPECT_TRUE(sawPcie);
    EXPECT_GT(rec.samples().size(), 0u);
}

TEST(SweepTracing, DigestsIdenticalAcrossJobCounts)
{
    const std::vector<std::string> apps = {"HSD", "BFS"};
    const std::vector<PolicyKind> kinds = {PolicyKind::Lru, PolicyKind::Hpe};
    std::vector<Trace> traces;
    for (const std::string &app : apps)
        traces.push_back(buildApp(app, 0.05, 1));
    RunConfig cfg;
    cfg.oversub = 0.5;
    SweepTraceConfig tcfg;
    tcfg.enabled = true;

    std::vector<SweepJob> jobs;
    for (const Trace &trace : traces)
        for (PolicyKind kind : kinds)
            jobs.push_back(
                SweepJob{&trace, kind, cfg, /*functional=*/true, tcfg});

    SweepRunner serial(1);
    SweepRunner parallel(4);
    const auto a = serial.run(jobs);
    const auto b = parallel.run(jobs);
    ASSERT_EQ(a.size(), b.size());
    std::vector<std::uint64_t> da, db;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GT(a[i].traceEvents, 0u) << "job " << i;
        EXPECT_EQ(a[i].traceDigest, b[i].traceDigest) << "job " << i;
        da.push_back(a[i].traceDigest);
        db.push_back(b[i].traceDigest);
    }
    EXPECT_EQ(trace::combineDigests(da), trace::combineDigests(db));
}

TEST(SweepTracing, DisabledTraceLeavesOutcomeZero)
{
    const Trace app = buildApp("HSD", 0.05, 1);
    std::vector<SweepJob> jobs = {SweepJob{&app, PolicyKind::Lru, RunConfig{},
                                           /*functional=*/true}};
    SweepRunner runner(1);
    const auto out = runner.run(jobs);
    EXPECT_EQ(out[0].traceDigest, 0u);
    EXPECT_EQ(out[0].traceEvents, 0u);
}

} // namespace
} // namespace hpe
