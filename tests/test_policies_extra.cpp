/**
 * @file
 * Tests for the extra related-work baselines (plain CLOCK, LFU), the
 * relaxed division threshold, and the extended policy factory.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/hpe_policy.hpp"
#include "policy/clock.hpp"
#include "policy/dip.hpp"
#include "policy/fifo.hpp"
#include "policy/lfu.hpp"
#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

std::uint64_t
replay(EvictionPolicy &policy, const std::vector<PageId> &refs, std::size_t frames)
{
    std::unordered_set<PageId> resident;
    std::uint64_t faults = 0;
    for (PageId p : refs) {
        if (resident.contains(p)) {
            policy.onHit(p);
            continue;
        }
        ++faults;
        policy.onFault(p);
        if (resident.size() == frames) {
            const PageId victim = policy.selectVictim();
            EXPECT_TRUE(resident.contains(victim));
            resident.erase(victim);
            policy.onEvict(victim);
        }
        resident.insert(p);
        policy.onMigrateIn(p);
    }
    return faults;
}

TEST(Clock, GivesSecondChanceToReferencedPages)
{
    ClockPolicy clock;
    for (PageId p : {1, 2, 3})
        clock.onMigrateIn(p);
    clock.onHit(1);
    // 1 is referenced: the hand clears it and takes 2 (first unreferenced).
    EXPECT_EQ(clock.selectVictim(), 2u);
}

TEST(Clock, SweepsFullCircleWhenAllReferenced)
{
    ClockPolicy clock;
    for (PageId p : {1, 2, 3}) {
        clock.onMigrateIn(p);
        clock.onHit(p);
    }
    // All bits cleared on the first sweep; first page then evictable.
    EXPECT_EQ(clock.selectVictim(), 1u);
}

TEST(Clock, HandSurvivesEviction)
{
    ClockPolicy clock;
    for (PageId p : {1, 2, 3})
        clock.onMigrateIn(p);
    const PageId v1 = clock.selectVictim();
    clock.onEvict(v1);
    const PageId v2 = clock.selectVictim();
    EXPECT_NE(v1, v2);
    clock.onEvict(v2);
    clock.onMigrateIn(10);
    const PageId v3 = clock.selectVictim();
    EXPECT_TRUE(v3 == 3 || v3 == 10);
}

TEST(Clock, ApproximatesLruOnMixedString)
{
    ClockPolicy clock;
    std::vector<PageId> refs;
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        refs.push_back(rng.below(30));
    const auto faults = replay(clock, refs, 12);
    EXPECT_GT(faults, 30u);
    EXPECT_LT(faults, 500u);
}

TEST(Lfu, EvictsLeastFrequent)
{
    LfuPolicy lfu;
    for (PageId p : {1, 2, 3})
        lfu.onMigrateIn(p);
    lfu.onHit(1);
    lfu.onHit(1);
    lfu.onHit(3);
    EXPECT_EQ(lfu.selectVictim(), 2u);
}

TEST(Lfu, TieBreaksFifo)
{
    LfuPolicy lfu;
    lfu.onMigrateIn(1);
    lfu.onMigrateIn(2);
    EXPECT_EQ(lfu.selectVictim(), 1u); // equal frequency: oldest
}

TEST(Lfu, FrequencySurvivesEviction)
{
    LfuPolicy lfu;
    lfu.onMigrateIn(1);
    lfu.onHit(1);
    lfu.onHit(1);
    lfu.onEvict(1);
    EXPECT_EQ(lfu.frequencyOf(1), 3u);
    lfu.onMigrateIn(1); // frequency 4 now
    lfu.onMigrateIn(2); // frequency 1
    EXPECT_EQ(lfu.selectVictim(), 2u);
}

TEST(Lfu, HitOnEvictedPageStillCounts)
{
    LfuPolicy lfu;
    lfu.onMigrateIn(1);
    lfu.onEvict(1);
    lfu.onHit(1); // no crash; history grows
    EXPECT_EQ(lfu.frequencyOf(1), 2u);
}

TEST(Fifo, EvictsInArrivalOrder)
{
    FifoPolicy fifo;
    for (PageId p : {3, 1, 2})
        fifo.onMigrateIn(p);
    fifo.onHit(3); // references do not matter to FIFO
    EXPECT_EQ(fifo.selectVictim(), 3u);
    fifo.onEvict(3);
    EXPECT_EQ(fifo.selectVictim(), 1u);
}

TEST(Fifo, ExhibitsBeladysAnomaly)
{
    // The classic anomaly string: FIFO faults *more* with 4 frames (10)
    // than with 3 (9) — impossible for stack algorithms like LRU/MIN.
    std::vector<PageId> refs{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
    FifoPolicy f3, f4;
    const auto faults3 = replay(f3, refs, 3);
    const auto faults4 = replay(f4, refs, 4);
    EXPECT_EQ(faults3, 9u);
    EXPECT_EQ(faults4, 10u);
    EXPECT_GT(faults4, faults3);
}

TEST(Dip, LeaderFaultsSteerSelector)
{
    DipConfig cfg;
    DipPolicy dip(cfg);
    const auto start = dip.psel();
    // Find an LRU-leader page (hash bucket 0) and fault on it repeatedly.
    PageId lru_leader = 0;
    for (PageId p = 0;; ++p) {
        DipPolicy probe(cfg);
        probe.onFault(p);
        if (probe.psel() > start) {
            lru_leader = p;
            break;
        }
    }
    for (int i = 0; i < 10; ++i)
        dip.onFault(lru_leader);
    EXPECT_EQ(dip.psel(), start + 10);
}

TEST(Dip, BipInsertionLandsAtLruEnd)
{
    // Force BIP for everyone by driving the selector high with LRU-leader
    // faults, then check follower insertions are immediately evictable.
    DipConfig cfg;
    cfg.pselMax = 4;
    DipPolicy dip(cfg);
    PageId lru_leader = 0;
    for (PageId p = 0;; ++p) {
        DipPolicy probe(cfg);
        probe.onFault(p);
        if (probe.psel() > cfg.pselMax / 2) {
            lru_leader = p;
            break;
        }
    }
    for (int i = 0; i < 4; ++i)
        dip.onFault(lru_leader);
    EXPECT_EQ(dip.psel(), cfg.pselMax);
    // With BIP winning, a long run of insertions mostly lands at the LRU
    // end: the first victim should be a recent insertion, not the oldest.
    std::vector<PageId> inserted;
    for (PageId p = 100; p < 140; ++p) {
        dip.onMigrateIn(p);
        inserted.push_back(p);
    }
    const PageId victim = dip.selectVictim();
    EXPECT_NE(victim, inserted.front());
}

TEST(Dip, AdaptsOnThrashingPattern)
{
    // Cyclic over 60 pages with 40 frames: LRU thrashes fully; DIP's BIP
    // side retains a stable subset, so DIP must beat plain LRU.
    std::vector<PageId> refs;
    for (int pass = 0; pass < 6; ++pass)
        for (PageId p = 0; p < 60; ++p)
            refs.push_back(p);
    DipPolicy dip;
    const auto dip_faults = replay(dip, refs, 40);
    EXPECT_LT(dip_faults, refs.size() * 9 / 10);
}

TEST(ExtendedFactory, BuildsEveryKind)
{
    const Trace t = buildApp("STN", 0.25);
    StatRegistry stats;
    EXPECT_EQ(extendedPolicyKinds().size(), 12u);
    for (PolicyKind kind : extendedPolicyKinds()) {
        auto policy = makePolicy(kind, t, stats);
        ASSERT_NE(policy, nullptr);
    }
    EXPECT_STREQ(policyKindName(PolicyKind::Clock), "CLOCK");
    EXPECT_STREQ(policyKindName(PolicyKind::Lfu), "LFU");
}

TEST(ExtendedFactory, ClockAndLfuRunFunctionally)
{
    const Trace t = buildApp("SRD", 0.5);
    RunConfig cfg;
    const auto ideal = runFunctional(t, PolicyKind::Ideal, cfg);
    for (PolicyKind kind : {PolicyKind::Clock, PolicyKind::Lfu}) {
        const auto r = runFunctional(t, kind, cfg);
        EXPECT_GE(r.faults, ideal.faults) << policyKindName(kind);
    }
}

TEST(DivisionThreshold, RelaxedThresholdDividesEarlier)
{
    StatRegistry stats_strict, stats_relaxed;
    HpeConfig strict;
    strict.hitChannel = HitChannel::Direct;
    HpeConfig relaxed = strict;
    relaxed.divisionThreshold = 24;

    auto run = [](const HpeConfig &cfg, StatRegistry &stats) {
        PageSetChain chain(cfg, stats, "chain");
        // Even pages faulted once, then hit once more: counter 16+16=32.
        for (PageId p = 0; p < 16; p += 2)
            chain.touch(p, 1, true);
        for (PageId p = 0; p < 16; p += 2)
            chain.touch(p, 3, false);
        ChainEntry *e = chain.find(0, false);
        return e != nullptr && e->divided;
    };
    EXPECT_FALSE(run(strict, stats_strict));   // 32 < 64: no division
    EXPECT_TRUE(run(relaxed, stats_relaxed));  // 32 >= 24: divided
}

TEST(DivisionThreshold, RelaxationIncreasesNwDivisions)
{
    // §V-B: "if more page sets are divided by relaxing the division
    // requirement, the performance of NW can be improved".
    const Trace t = buildApp("NW");
    RunConfig strict, relaxed;
    relaxed.hpe.divisionThreshold = 32;
    const auto a = runFunctionalInspect(t, PolicyKind::Hpe, strict);
    const auto b = runFunctionalInspect(t, PolicyKind::Hpe, relaxed);
    EXPECT_GE(b.stats->findCounter("hpe.chain.divisions").value(),
              a.stats->findCounter("hpe.chain.divisions").value());
}

TEST(DivisionThreshold, ValidationRejectsZero)
{
    HpeConfig cfg;
    cfg.divisionThreshold = 0;
    EXPECT_DEATH({ cfg.validate(); }, "division threshold");
}

} // namespace
} // namespace hpe
