/**
 * @file
 * Tests for the networked, sharded face of hpe_serve: the endpoint
 * grammar, TCP listeners on ephemeral ports, the versioned wire
 * protocol (the pinned v1 shape and the structured v2 shape),
 * robustness against hostile or broken TCP clients (malformed frames,
 * oversized lines, slowloris senders, mid-request disconnects), the
 * fingerprint→shard routing property, and reshard-on-restart journal
 * migration.  (Single-socket daemon behaviour lives in test_serve.cpp;
 * the journal format in test_store.cpp.)
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "api/json.hpp"
#include "api/protocol.hpp"
#include "serve/client.hpp"
#include "serve/endpoint.hpp"
#include "serve/server.hpp"
#include "serve/sharded_store.hpp"

namespace hpe::serve {
namespace {

using api::json::Value;
namespace protocol = api::protocol;

// -------------------------------------------------------- endpoint grammar

TEST(EndpointGrammar, ParsesEverySpelling)
{
    Endpoint ep;
    std::string error;

    ASSERT_TRUE(parseEndpoint("unix:/tmp/hpe.sock", ep, error)) << error;
    EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(ep.path, "/tmp/hpe.sock");
    EXPECT_EQ(ep.spell(), "unix:/tmp/hpe.sock");

    // Back-compat: a bare path is a Unix socket.
    ASSERT_TRUE(parseEndpoint("/tmp/bare.sock", ep, error)) << error;
    EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(ep.path, "/tmp/bare.sock");

    ASSERT_TRUE(parseEndpoint("tcp:127.0.0.1:8080", ep, error)) << error;
    EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 8080);
    EXPECT_EQ(ep.spell(), "tcp:127.0.0.1:8080");

    // Port 0 = "pick an ephemeral port" (daemon side).
    ASSERT_TRUE(parseEndpoint("tcp:localhost:0", ep, error)) << error;
    EXPECT_EQ(ep.port, 0);
}

TEST(EndpointGrammar, RejectsMalformedSpellings)
{
    Endpoint ep;
    for (const char *bad : {"", "unix:", "tcp:", "tcp:hostonly",
                            "tcp::1234", "tcp:host:", "tcp:host:notaport",
                            "tcp:host:70000", "tcp:host:-1"}) {
        std::string error;
        EXPECT_FALSE(parseEndpoint(bad, ep, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

// ----------------------------------------------------------- test fixtures

/** A started server; listeners given by the caller; tears down on
 *  destruction.  `endpoint()` is the first bound spelling (ephemeral
 *  TCP ports resolved), which is what clients should dial. */
struct NetServer
{
    explicit NetServer(std::vector<std::string> listen, unsigned shards = 1,
                       std::size_t maxQueue = 64)
    {
        cfg.listen = std::move(listen);
        cfg.shards = shards;
        cfg.maxQueue = maxQueue;
        server = std::make_unique<Server>(cfg);
        std::string error;
        EXPECT_TRUE(server->start(error)) << error;
    }

    ~NetServer() { server->stop(); }

    const std::string &endpoint() const
    {
        return server->boundEndpoints().front();
    }

    /** One request line over a fresh connection; EXPECT success. */
    Value
    roundTrip(const std::string &request,
              const std::string &endpointText = "")
    {
        std::string response, error;
        EXPECT_TRUE(submitLine(
            endpointText.empty() ? endpoint() : endpointText, request,
            response, error))
            << error;
        api::json::ParseError perr;
        const auto v = api::json::parse(response, &perr);
        EXPECT_TRUE(v.has_value()) << perr.message << ": " << response;
        return v.value_or(Value{});
    }

    /** Like roundTrip but returning the raw response bytes (for the
     *  byte-for-byte v1 shape pins). */
    std::string
    rawRoundTrip(const std::string &request)
    {
        std::string response, error;
        EXPECT_TRUE(submitLine(endpoint(), request, response, error))
            << error;
        return response;
    }

    ServeConfig cfg;
    std::unique_ptr<Server> server;
};

/** A tcp:127.0.0.1:0 listener spelling (every test binds ephemeral). */
std::vector<std::string>
tcpOnly()
{
    return {"tcp:127.0.0.1:0"};
}

/** A tiny run request (fast functional cell); seed varies the cell. */
std::string
runRequest(std::uint64_t seed = 0, int version = 0)
{
    std::string line = R"({"type":"run",)";
    if (version != 0)
        line += "\"v\":" + std::to_string(version) + ",";
    line += R"("request":{"app":"STN","policy":"LRU","functional":true,)"
            R"("scale":0.1,"trace_digest":true)";
    if (seed != 0)
        line += ",\"seed\":" + std::to_string(seed);
    return line + "}}";
}

/** Blocking connect to @p endpointText; returns the raw fd (>= 0). */
int
rawConnect(const std::string &endpointText)
{
    Endpoint ep;
    std::string error;
    EXPECT_TRUE(parseEndpoint(endpointText, ep, error)) << error;
    const int fd = connectEndpoint(ep, error);
    EXPECT_GE(fd, 0) << error;
    return fd;
}

/** Read one '\n'-terminated line from @p fd (newline stripped); ""
 *  on EOF-before-newline.  A receive timeout bounds hangs. */
std::string
rawReadLine(int fd)
{
    timeval tv{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    std::string line;
    char ch = 0;
    while (true) {
        const ssize_t n = ::recv(fd, &ch, 1, 0);
        if (n <= 0)
            return "";
        if (ch == '\n')
            return line;
        line.push_back(ch);
    }
}

// ---------------------------------------------------------- TCP listeners

TEST(ServeTcp, EphemeralPortRoundTripsPingAndRun)
{
    NetServer ts(tcpOnly());
    // The bound spelling resolved port 0 to a real port.
    ASSERT_EQ(ts.server->boundEndpoints().size(), 1u);
    EXPECT_EQ(ts.endpoint().rfind("tcp:127.0.0.1:", 0), 0u);
    EXPECT_NE(ts.endpoint(), "tcp:127.0.0.1:0");

    const Value pong = ts.roundTrip(R"({"type":"ping","id":"tcp"})");
    EXPECT_TRUE(pong.find("ok")->asBool());
    EXPECT_EQ(pong.find("id")->asString(), "tcp");

    const Value first = ts.roundTrip(runRequest());
    ASSERT_TRUE(first.find("ok")->asBool());
    const Value second = ts.roundTrip(runRequest());
    ASSERT_TRUE(second.find("ok")->asBool());
    // Cache hits over TCP return the same bytes as the computation.
    EXPECT_TRUE(second.find("cached")->asBool());
    EXPECT_EQ(second.find("result")->dump(), first.find("result")->dump());
}

TEST(ServeTcp, MixedUnixAndTcpListenersShareOneCache)
{
    NetServer ts({"unix:" + ::testing::TempDir() + "/hpe_mixed.sock",
                  "tcp:127.0.0.1:0"});
    ASSERT_EQ(ts.server->boundEndpoints().size(), 2u);
    const std::string &unixEp = ts.server->boundEndpoints()[0];
    const std::string &tcpEp = ts.server->boundEndpoints()[1];

    const Value viaUnix = ts.roundTrip(runRequest(), unixEp);
    ASSERT_TRUE(viaUnix.find("ok")->asBool());
    const Value viaTcp = ts.roundTrip(runRequest(), tcpEp);
    ASSERT_TRUE(viaTcp.find("ok")->asBool());
    // One experiment, one computation, whatever socket family asked.
    EXPECT_TRUE(viaTcp.find("cached")->asBool());
    EXPECT_EQ(viaTcp.find("result")->dump(), viaUnix.find("result")->dump());

    // stats reports both bound endpoints, canonical spelling.
    const Value stats = ts.roundTrip(R"({"type":"stats"})");
    const Value *endpoints = stats.find("stats")->find("endpoints");
    ASSERT_NE(endpoints, nullptr);
    ASSERT_EQ(endpoints->asArray().size(), 2u);
    EXPECT_EQ(endpoints->asArray()[0].asString(), unixEp);
    EXPECT_EQ(endpoints->asArray()[1].asString(), tcpEp);
}

// ------------------------------------------------------- protocol v1 pins

TEST(ProtocolV1, ResponsesNeverCarryVersionOrStructuredErrors)
{
    NetServer ts(tcpOnly());
    // Success path: no "v" member on an unversioned request.
    const Value pong = ts.roundTrip(R"({"type":"ping","id":"tag"})");
    EXPECT_EQ(pong.find("v"), nullptr);
    const Value run = ts.roundTrip(runRequest());
    ASSERT_TRUE(run.find("ok")->asBool());
    EXPECT_EQ(run.find("v"), nullptr);

    // The v1 error shape is pinned byte for byte: a bare string
    // "error", no version echo, and *no id echo* even when the
    // request carried one — exactly what pre-v2 clients parse.
    EXPECT_EQ(ts.rawRoundTrip(R"({"type":"transmogrify","id":"tag"})"),
              R"x({"error":"unknown request type 'transmogrify' )x"
              R"x((valid: run, stats, ping, shutdown)","ok":false})x");
}

TEST(ProtocolV1, ShedResponsesSpellRetryHintTopLevel)
{
    NetServer ts(tcpOnly(), 1, 1);
    // Hold the only computation slot so a cold run request is shed.
    const auto holder = ts.server->cache().acquire("held-slot");
    ASSERT_EQ(holder.role, ResultCache::Role::Compute);

    const Value shed = ts.roundTrip(runRequest());
    EXPECT_FALSE(shed.find("ok")->asBool());
    ASSERT_NE(shed.find("error"), nullptr);
    EXPECT_TRUE(shed.find("error")->isString());
    // v1 spells the backoff hint at the top level...
    ASSERT_NE(shed.find("retry_after_ms"), nullptr);
    EXPECT_GT(shed.find("retry_after_ms")->asUint(), 0u);
    EXPECT_EQ(shed.find("v"), nullptr);
    // ...and the version-blind accessor still finds it.
    EXPECT_GT(protocol::retryAfterMs(shed).value_or(0), 0u);
    ts.server->cache().complete(holder.entry, "freed");
}

// ------------------------------------------------------------ protocol v2

TEST(ProtocolV2, ResponsesEchoVersionAndId)
{
    NetServer ts(tcpOnly());
    EXPECT_EQ(ts.rawRoundTrip(R"({"v":2,"type":"ping","id":"x"})"),
              R"({"id":"x","ok":true,"type":"pong","v":2})");

    const Value run = ts.roundTrip(
        R"({"v":2,"type":"run","id":7,"request":{"app":"STN",)"
        R"("policy":"LRU","functional":true,"scale":0.1,)"
        R"("trace_digest":true}})");
    ASSERT_TRUE(run.find("ok")->asBool());
    EXPECT_EQ(run.find("v")->asUint(), 2u);
    EXPECT_EQ(run.find("id")->asUint(), 7u);
}

TEST(ProtocolV2, ErrorsAreStructuredObjectsWithCodeAndId)
{
    NetServer ts(tcpOnly(), 1, 1);
    const Value bad =
        ts.roundTrip(R"({"v":2,"type":"transmogrify","id":"tag"})");
    EXPECT_FALSE(bad.find("ok")->asBool());
    EXPECT_EQ(bad.find("v")->asUint(), 2u);
    EXPECT_EQ(bad.find("id")->asString(), "tag");
    const Value *error = bad.find("error");
    ASSERT_NE(error, nullptr);
    ASSERT_TRUE(error->isObject());
    EXPECT_EQ(error->find("code")->asString(), protocol::kErrUnknownType);
    EXPECT_NE(error->find("message")->asString().find("transmogrify"),
              std::string::npos);

    // Retryable failures nest the hint inside the error object — and
    // nowhere else.
    const auto holder = ts.server->cache().acquire("held-slot");
    const Value shed = ts.roundTrip(runRequest(0, 2));
    EXPECT_FALSE(shed.find("ok")->asBool());
    ASSERT_TRUE(shed.find("error")->isObject());
    EXPECT_GT(shed.find("error")->find("retry_after_ms")->asUint(), 0u);
    EXPECT_EQ(shed.find("retry_after_ms"), nullptr);
    EXPECT_GT(protocol::retryAfterMs(shed).value_or(0), 0u);
    ts.server->cache().complete(holder.entry, "freed");
}

TEST(ProtocolV2, UnsupportedVersionsAreRefusedInV2Shape)
{
    NetServer ts(tcpOnly());
    const Value tooNew = ts.roundTrip(R"({"v":3,"type":"ping","id":"n"})");
    EXPECT_FALSE(tooNew.find("ok")->asBool());
    EXPECT_EQ(tooNew.find("id")->asString(), "n");
    ASSERT_TRUE(tooNew.find("error")->isObject());
    EXPECT_EQ(tooNew.find("error")->find("code")->asString(),
              protocol::kErrUnsupportedVersion);
    EXPECT_NE(tooNew.find("error")->find("message")->asString().find(
                  "unsupported protocol version 3"),
              std::string::npos);

    const Value notANumber = ts.roundTrip(R"({"v":"two","type":"ping"})");
    EXPECT_FALSE(notANumber.find("ok")->asBool());
    EXPECT_EQ(notANumber.find("error")->find("code")->asString(),
              protocol::kErrUnsupportedVersion);

    // The daemon survived; v1 and v2 still speak.
    EXPECT_TRUE(ts.roundTrip(R"({"type":"ping"})").find("ok")->asBool());
}

TEST(ProtocolV2, VersionLivesOutsideTheFingerprint)
{
    NetServer ts(tcpOnly());
    const Value v1 = ts.roundTrip(runRequest());
    ASSERT_TRUE(v1.find("ok")->asBool());
    EXPECT_FALSE(v1.find("cached")->asBool());

    // The same experiment asked for by a v2 client is a cache hit with
    // identical bytes: "v" rides the envelope, never the fingerprint.
    const Value v2 = ts.roundTrip(runRequest(0, 2));
    ASSERT_TRUE(v2.find("ok")->asBool());
    EXPECT_TRUE(v2.find("cached")->asBool());
    EXPECT_EQ(v2.find("fingerprint")->asString(),
              v1.find("fingerprint")->asString());
    EXPECT_EQ(v2.find("result")->dump(), v1.find("result")->dump());
}

// --------------------------------------------- hostile / broken TCP peers

TEST(ServeTcpRobustness, MalformedFrameGetsErrorAndDaemonSurvives)
{
    NetServer ts(tcpOnly());
    const int fd = rawConnect(ts.endpoint());
    // Binary junk with an embedded NUL (sized explicitly: the NUL
    // must go over the wire, not truncate the literal).
    constexpr char kGarbage[] = "\x01\x02\xff not a frame \x00!\n";
    const std::string garbage(kGarbage, sizeof kGarbage - 1);
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(garbage.size()));
    const std::string response = rawReadLine(fd);
    api::json::ParseError perr;
    const auto v = api::json::parse(response, &perr);
    ASSERT_TRUE(v.has_value()) << response;
    EXPECT_FALSE(v->find("ok")->asBool());
    EXPECT_NE(protocol::errorMessage(*v).find("parse error"),
              std::string::npos);
    // Same connection keeps working after the bad frame...
    const std::string ping = "{\"type\":\"ping\"}\n";
    ASSERT_EQ(::send(fd, ping.data(), ping.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(ping.size()));
    EXPECT_NE(rawReadLine(fd).find("pong"), std::string::npos);
    ::close(fd);
    // ...and so does the daemon.
    EXPECT_TRUE(ts.roundTrip(R"({"type":"ping"})").find("ok")->asBool());
}

TEST(ServeTcpRobustness, OversizedLineIsRefusedAndConnectionClosed)
{
    NetServer ts(tcpOnly());
    ts.server->stop();
    // Rebuild with a tiny line cap so the test stays fast.
    ts.cfg.maxLineBytes = 1024;
    ts.server = std::make_unique<Server>(ts.cfg);
    std::string error;
    ASSERT_TRUE(ts.server->start(error)) << error;

    const int fd = rawConnect(ts.endpoint());
    const std::string flood(8192, 'x'); // no newline anywhere
    ASSERT_EQ(::send(fd, flood.data(), flood.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(flood.size()));
    const std::string response = rawReadLine(fd);
    api::json::ParseError perr;
    const auto v = api::json::parse(response, &perr);
    ASSERT_TRUE(v.has_value()) << response;
    EXPECT_FALSE(v->find("ok")->asBool());
    EXPECT_NE(protocol::errorMessage(*v).find("exceeds 1024 bytes"),
              std::string::npos);
    // After the error the daemon hangs up: EOF, not a second response.
    EXPECT_EQ(rawReadLine(fd), "");
    ::close(fd);
    EXPECT_TRUE(ts.roundTrip(R"({"type":"ping"})").find("ok")->asBool());
}

TEST(ServeTcpRobustness, SlowlorisByteAtATimeSenderStillGetsAnswered)
{
    NetServer ts(tcpOnly());
    const int fd = rawConnect(ts.endpoint());
    const std::string request = "{\"type\":\"ping\",\"id\":\"slow\"}\n";
    for (const char ch : request) {
        ASSERT_EQ(::send(fd, &ch, 1, MSG_NOSIGNAL), 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::string response = rawReadLine(fd);
    EXPECT_NE(response.find("pong"), std::string::npos) << response;
    EXPECT_NE(response.find("slow"), std::string::npos) << response;
    ::close(fd);
}

TEST(ServeTcpRobustness, MidRequestDisconnectLeavesDaemonHealthy)
{
    NetServer ts(tcpOnly());
    // A client that dies mid-line: half a request, no newline, gone.
    int fd = rawConnect(ts.endpoint());
    const std::string half = R"({"type":"run","request":{"app":)";
    ASSERT_EQ(::send(fd, half.data(), half.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(half.size()));
    ::close(fd);

    // A client that sends a full run request and vanishes before the
    // answer: the computation must not take the daemon down with it.
    fd = rawConnect(ts.endpoint());
    const std::string full = runRequest(99) + "\n";
    ASSERT_EQ(::send(fd, full.data(), full.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(full.size()));
    ::close(fd);

    // The daemon answers the next client as if nothing happened, and
    // the abandoned computation still landed in the cache.
    EXPECT_TRUE(ts.roundTrip(R"({"type":"ping"})").find("ok")->asBool());
    for (int i = 0; i < 200; ++i) {
        if (ts.server->cache().misses() >= 1
            && ts.server->cache().pending() == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const Value retry = ts.roundTrip(runRequest(99));
    ASSERT_TRUE(retry.find("ok")->asBool());
    EXPECT_TRUE(retry.find("cached")->asBool());
}

// ---------------------------------------------------------------- sharding

TEST(Sharding, FingerprintRoutingIsDeterministicAndCoversEveryShard)
{
    constexpr unsigned kShards = 4;
    std::set<unsigned> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::string fp = "fingerprint-" + std::to_string(i);
        const unsigned shard = ShardedResultStore::shardOf(fp, kShards);
        ASSERT_LT(shard, kShards);
        // Same fingerprint, same shard — every time.
        EXPECT_EQ(ShardedResultStore::shardOf(fp, kShards), shard);
        EXPECT_EQ(ShardedResultStore::shardOf(fp, 1), 0u);
        seen.insert(shard);
    }
    // FNV-1a spreads arbitrary fingerprints over all shards.
    EXPECT_EQ(seen.size(), kShards);
}

TEST(Sharding, RequestsLandOnTheOwningShardCache)
{
    constexpr unsigned kShards = 4;
    NetServer ts(tcpOnly(), kShards);
    ASSERT_EQ(ts.server->shards(), kShards);

    constexpr std::uint64_t kCells = 8;
    for (std::uint64_t seed = 1; seed <= kCells; ++seed) {
        const Value first = ts.roundTrip(runRequest(seed));
        ASSERT_TRUE(first.find("ok")->asBool());
        const std::string fp = first.find("fingerprint")->asString();
        const unsigned owner = ShardedResultStore::shardOf(fp, kShards);

        // The repeat hits — and the hit lands on the owning shard.
        const std::uint64_t hitsBefore =
            ts.server->shardCache(owner).hits();
        const Value again = ts.roundTrip(runRequest(seed));
        EXPECT_TRUE(again.find("cached")->asBool());
        EXPECT_EQ(ts.server->shardCache(owner).hits(), hitsBefore + 1);
    }

    std::uint64_t misses = 0, hits = 0;
    for (unsigned i = 0; i < kShards; ++i) {
        misses += ts.server->shardCache(i).misses();
        hits += ts.server->shardCache(i).hits();
    }
    EXPECT_EQ(misses, kCells);
    EXPECT_EQ(hits, kCells);
}

TEST(Sharding, StatsExposePerShardRowsBesideAggregates)
{
    NetServer ts(tcpOnly(), 2);
    ts.roundTrip(runRequest(1));
    ts.roundTrip(runRequest(1));

    const Value stats = ts.roundTrip(R"({"type":"stats"})");
    const Value *body = stats.find("stats");
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->find("shard_count")->asUint(), 2u);
    // Aggregates keep their pre-sharding names and meanings...
    EXPECT_EQ(body->find("cache_hits")->asUint(), 1u);
    EXPECT_EQ(body->find("cache_misses")->asUint(), 1u);
    // ...the per-shard array sums to them...
    const auto &shards = body->find("shards")->asArray();
    ASSERT_EQ(shards.size(), 2u);
    std::uint64_t hits = 0, misses = 0;
    for (const Value &shard : shards) {
        hits += shard.find("cache_hits")->asUint();
        misses += shard.find("cache_misses")->asUint();
    }
    EXPECT_EQ(hits, 1u);
    EXPECT_EQ(misses, 1u);
    // ...and the CSV carries both aggregate and per-shard rows.
    const std::string csv = body->find("stats_csv")->asString();
    EXPECT_NE(csv.find("serve.cache.hits,1,1"), std::string::npos);
    EXPECT_NE(csv.find("serve.shard0.cache."), std::string::npos);
    EXPECT_NE(csv.find("serve.shard1.cache."), std::string::npos);
    EXPECT_NE(csv.find("serve.shards,1,2"), std::string::npos);
}

TEST(Sharding, ReshardRestartRecoversEveryFrame)
{
    ServeConfig cfg;
    cfg.listen = tcpOnly();
    cfg.shards = 3;
    cfg.storeDir = ::testing::TempDir() + "/hpe_reshard_store";
    std::filesystem::remove_all(cfg.storeDir);

    constexpr std::uint64_t kCells = 6;
    std::map<std::string, std::string> expected; // fingerprint -> result
    {
        Server server(cfg);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;
        const std::string endpoint = server.boundEndpoints().front();
        for (std::uint64_t seed = 1; seed <= kCells; ++seed) {
            std::string response, err;
            ASSERT_TRUE(submitLine(endpoint, runRequest(seed), response,
                                   err))
                << err;
            const Value v = api::json::parse(response).value_or(Value{});
            ASSERT_TRUE(v.find("ok")->asBool());
            expected[v.find("fingerprint")->asString()] =
                v.find("result")->dump();
        }
        ASSERT_NE(server.store(), nullptr);
        EXPECT_EQ(server.store()->appendCount(), kCells);
        server.stop();
    }
    ASSERT_EQ(expected.size(), kCells);

    // Restart over the same journals with a different shard count: the
    // stray shard-2 journal is migrated, every frame survives, and
    // every cell answers as a warm hit with identical bytes.
    cfg.shards = 2;
    Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ASSERT_NE(server.store(), nullptr);
    EXPECT_EQ(server.store()->recoveredCount(), kCells);
    EXPECT_EQ(server.store()->shards(), 2u);
    EXPECT_FALSE(
        std::filesystem::exists(cfg.storeDir + "/shard-2"));

    const std::string endpoint = server.boundEndpoints().front();
    for (std::uint64_t seed = 1; seed <= kCells; ++seed) {
        std::string response, err;
        ASSERT_TRUE(submitLine(endpoint, runRequest(seed), response, err))
            << err;
        const Value v = api::json::parse(response).value_or(Value{});
        ASSERT_TRUE(v.find("ok")->asBool());
        EXPECT_TRUE(v.find("cached")->asBool());
        const std::string fp = v.find("fingerprint")->asString();
        ASSERT_EQ(expected.count(fp), 1u);
        EXPECT_EQ(v.find("result")->dump(), expected.at(fp));
    }
    std::uint64_t misses = 0;
    for (unsigned i = 0; i < server.shards(); ++i)
        misses += server.shardCache(i).misses();
    EXPECT_EQ(misses, 0u); // nothing was recomputed
    server.stop();
}

} // namespace
} // namespace hpe::serve
