/**
 * @file
 * Tests for the bucketed-wheel event engine: deterministic (cycle, seq)
 * ordering across the wheel/overflow split, wheel wraparound, arena
 * recycling, and a differential replay against a reference heap model.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <utility>
#include <vector>

#include "common/event_queue.hpp"

using namespace hpe;

namespace {

TEST(EventQueue, SameCycleFifoAcrossManySchedulers)
{
    EventQueue eq;
    std::vector<int> order;
    // Interleave two cycles so same-cycle FIFO has to survive bucket
    // appends that are not contiguous in schedule order.
    for (int i = 0; i < 50; ++i) {
        eq.schedule(100, [&order, i] { order.push_back(i); });
        eq.schedule(200, [&order, i] { order.push_back(1000 + i); });
    }
    eq.run();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(50 + i)], 1000 + i);
}

TEST(EventQueue, WheelWraparoundKeepsOrder)
{
    EventQueue eq;
    std::vector<Cycle> fired;
    // March time past several wheel spans; each event schedules the next
    // just under one span ahead, exercising cursor wrap continuously.
    const Cycle hop = EventQueue::kWheelSpan - 3;
    std::uint64_t remaining = 10;
    std::function<void()> next = [&] {
        fired.push_back(eq.now());
        if (--remaining > 0)
            eq.scheduleIn(hop, next);
    };
    eq.schedule(1, next);
    eq.run();
    ASSERT_EQ(fired.size(), 10u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], fired[i - 1] + hop);
    EXPECT_GT(eq.now(), EventQueue::kWheelSpan * 8);
}

TEST(EventQueue, FarFutureEventsPromoteFromOverflow)
{
    EventQueue eq;
    std::vector<int> order;
    const Cycle far = EventQueue::kWheelSpan * 3 + 17;
    eq.schedule(far, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    EXPECT_EQ(eq.stats().overflowScheduled, 1u);
    EXPECT_EQ(eq.nextEventCycle(), 5u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), far);
    // With the wheel drained the overflow event pops directly — no
    // promotion detour (promotion is covered below).
    EXPECT_EQ(eq.stats().overflowPromoted, 0u);
}

TEST(EventQueue, OverflowPromotionPreservesSameCycleFifo)
{
    EventQueue eq;
    std::vector<int> order;
    const Cycle target = EventQueue::kWheelSpan + 100;
    // First event lands in overflow (beyond the window from now=0)...
    eq.schedule(target, [&] { order.push_back(0); });
    // ...then time advances far enough that the same cycle is schedulable
    // straight into the wheel, with larger seqs.
    eq.schedule(200, [&] {
        eq.schedule(target, [&] { order.push_back(1); });
        eq.schedule(target, [&] { order.push_back(2); });
    });
    eq.run();
    // The overflow event carries the smallest seq and must fire first —
    // it was promoted into a bucket already holding larger-seq events.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.stats().overflowPromoted, 1u);
}

TEST(EventQueue, SchedulingIntoThePastDies)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH({ eq.schedule(5, [] {}); }, "into the past");
}

TEST(EventQueue, ArenaRecyclesNodesUnderChurn)
{
    EventQueue eq;
    // Steady-state churn: a handful of events in flight at a time, far
    // more events total.  The arena must serve this from recycled nodes,
    // not grow with the event count.
    std::uint64_t fired = 0;
    std::deque<std::function<void()>> chains; // stable addresses for self-capture
    for (int chain = 0; chain < 8; ++chain) {
        chains.emplace_back();
        std::function<void()> &self = chains.back();
        self = [&eq, &fired, &self] {
            if (++fired < 8 * 2500)
                eq.scheduleIn(3, self);
        };
        eq.scheduleIn(1, self);
    }
    eq.run();
    // Once the shared budget is hit, up to 7 sibling events drain without
    // rescheduling.
    EXPECT_GE(eq.stats().fired, 8u * 2500u);
    EXPECT_LE(eq.stats().fired, 8u * 2500u + 7u);
    // At most the initial in-flight population plus one block of slack.
    EXPECT_LE(eq.stats().arenaNodes, 1024u);
    EXPECT_EQ(eq.stats().peakPending, 8u);
}

TEST(EventQueue, StatsCountSchedulesAndFires)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(1, [] {});
    eq.schedule(EventQueue::kWheelSpan * 2, [] {});
    EXPECT_EQ(eq.stats().scheduled, 3u);
    EXPECT_EQ(eq.stats().peakPending, 3u);
    eq.run();
    EXPECT_EQ(eq.stats().fired, 3u);
    EXPECT_EQ(eq.stats().overflowScheduled, 1u);
    EXPECT_EQ(eq.stats().heapCallbacks, 0u);
}

TEST(EventQueue, PendingCallbacksDestroyedOnTeardown)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        EventQueue eq;
        eq.schedule(50, [keep = std::move(token)] { (void)keep; });
        eq.schedule(EventQueue::kWheelSpan * 4, [] {});
        // Destroyed with both events (wheel and overflow) still pending.
    }
    EXPECT_TRUE(watch.expired());
}

/**
 * Differential test: replay a randomized schedule-and-fire workload —
 * including callback-driven rescheduling, same-cycle bursts, and
 * far-future overflow events — against a reference (cycle, seq) min-heap.
 * Pop order must match seq for seq, which is exactly the old
 * priority-queue engine's total order (golden digests depend on it).
 */
TEST(EventQueueDifferential, MatchesReferenceHeapOrder)
{
    using Key = std::pair<Cycle, std::uint64_t>; // (when, seq)

    EventQueue eq;
    std::priority_queue<Key, std::vector<Key>, std::greater<Key>> model;
    std::vector<Key> engineOrder;
    std::uint64_t nextSeq = 0;
    std::mt19937 rng(12345);

    // Delays mix same-cycle (0), near, wraparound-scale, and overflow.
    const auto randomDelay = [&rng]() -> Cycle {
        static const Cycle choices[] = {0,    1,     3,     97,
                                        4096, 60000, 65535, 70000,
                                        EventQueue::kWheelSpan * 2 + 11};
        return choices[rng() % (sizeof(choices) / sizeof(choices[0]))];
    };

    // Each fired event records its identity and occasionally schedules
    // more work, so scheduling happens at many distinct "now" values.
    std::function<void(int)> spawn = [&](int fanout) {
        const Cycle when = eq.now() + randomDelay();
        const std::uint64_t seq = nextSeq++;
        model.emplace(when, seq);
        eq.schedule(when, [&, when, seq, fanout] {
            engineOrder.emplace_back(when, seq);
            for (int i = 0; i < fanout; ++i)
                spawn(engineOrder.size() < 3000 ? static_cast<int>(rng() % 3)
                                                : 0);
        });
    };
    for (int i = 0; i < 64; ++i)
        spawn(2);
    eq.run();

    ASSERT_EQ(engineOrder.size(), nextSeq);
    for (const Key &got : engineOrder) {
        ASSERT_FALSE(model.empty());
        EXPECT_EQ(got, model.top());
        model.pop();
    }
    EXPECT_TRUE(model.empty());
}

} // namespace
