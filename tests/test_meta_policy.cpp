/**
 * @file
 * Tests for the adaptive meta-policy: feature pipeline, duel and bandit
 * selectors, resident-set mirroring under the StateValidator contract,
 * config validation, and end-to-end determinism through the api funnel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <vector>

#include "api/api.hpp"
#include "common/rng.hpp"
#include "policy/clock.hpp"
#include "policy/dip.hpp"
#include "policy/fifo.hpp"
#include "policy/lru.hpp"
#include "policy/meta/features.hpp"
#include "policy/meta/meta_policy.hpp"
#include "policy/rrip.hpp"
#include "sim/policy_factory.hpp"
#include "sim/sweep.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

using meta::MetaCandidate;
using meta::MetaConfig;
using meta::MetaPolicy;
using meta::SelectorKind;

/** Build a candidate around an already-constructed policy instance. */
MetaCandidate
candidate(std::string name, std::unique_ptr<EvictionPolicy> live,
          std::unique_ptr<EvictionPolicy> shadow = nullptr)
{
    MetaCandidate c;
    c.name = std::move(name);
    c.live = std::move(live);
    c.shadow = std::move(shadow);
    return c;
}

/** The duel roster used by the synthetic tests: LRU vs thrash-RRIP. */
std::vector<MetaCandidate>
lruVsRrip()
{
    std::vector<MetaCandidate> cands;
    cands.push_back(candidate("LRU", std::make_unique<LruPolicy>(),
                              std::make_unique<LruPolicy>()));
    cands.push_back(
        candidate("RRIP",
                  std::make_unique<RripPolicy>(RripConfig::thrashing()),
                  std::make_unique<RripPolicy>(RripConfig::thrashing())));
    return cands;
}

/** Drive @p policy with the driver's exact protocol sequence. */
std::uint64_t
replay(EvictionPolicy &policy, const std::vector<PageId> &refs,
       std::size_t frames)
{
    std::unordered_set<PageId> resident;
    std::uint64_t faults = 0;
    for (PageId p : refs) {
        if (resident.contains(p)) {
            policy.onHit(p);
            continue;
        }
        ++faults;
        policy.onFault(p);
        if (resident.size() == frames) {
            const PageId victim = policy.selectVictim();
            EXPECT_TRUE(resident.contains(victim));
            resident.erase(victim);
            policy.onEvict(victim);
        }
        resident.insert(p);
        policy.onMigrateIn(p);
    }
    return faults;
}

/** A two-phase string: cyclic thrash over @p big pages, then a tight
 *  loop over @p hot pages — no static candidate is right for both. */
std::vector<PageId>
twoPhaseTrace(std::size_t big, unsigned bigPasses, std::size_t hot,
              unsigned hotPasses)
{
    std::vector<PageId> refs;
    for (unsigned pass = 0; pass < bigPasses; ++pass)
        for (PageId p = 0; p < big; ++p)
            refs.push_back(p);
    for (unsigned pass = 0; pass < hotPasses; ++pass)
        for (PageId p = 0; p < hot; ++p)
            refs.push_back(1000 + p);
    return refs;
}

TEST(FeaturePipeline, SummarizesOneInterval)
{
    meta::FeaturePipeline fp(/*setShift=*/2);
    // Pages 0..3 fault (one 4-page set), page 0 hits twice, page 1 hits.
    for (PageId p = 0; p < 4; ++p)
        fp.onFault(p);
    fp.onHit(0);
    fp.onHit(0);
    fp.onHit(1);
    const meta::IntervalFeatures f = fp.endInterval();
    EXPECT_EQ(f.index, 0u);
    EXPECT_EQ(f.refs, 7u);
    EXPECT_EQ(f.faults, 4u);
    EXPECT_EQ(f.hits, 3u);
    EXPECT_EQ(f.refaults, 0u);
    EXPECT_DOUBLE_EQ(f.faultRate, 4.0 / 7.0);
    EXPECT_EQ(f.maxFaultRun, 4u);
    EXPECT_EQ(f.distinctSets, 1u);
}

TEST(FeaturePipeline, TracksRefaultDistance)
{
    meta::FeaturePipeline fp;
    fp.onFault(7);
    fp.onEvict(7); // evicted at ref 1
    fp.onHit(1);
    fp.onHit(2);
    fp.onFault(7); // refault, distance 2 -> log2 bucket 1
    const meta::IntervalFeatures f = fp.endInterval();
    EXPECT_EQ(f.refaults, 1u);
    EXPECT_EQ(f.refaultDistanceLog2[1], 1u);
    EXPECT_GT(f.meanRefaultDistanceLog2, 0.0);
}

TEST(MetaDuel, ConvergesToRripUnderThrashThenBackToLru)
{
    MetaConfig cfg;
    cfg.selector = SelectorKind::Duel;
    cfg.intervalRefs = 64;
    MetaPolicy policy(cfg, lruVsRrip());
    ASSERT_EQ(policy.activeIndex(), 0u); // starts on LRU

    // Cyclic thrash over 60 pages with 40 frames: LRU's shadow faults on
    // everything, RRIP's retains a subset -> the duel must hand victim
    // selection to RRIP.
    const auto thrashing = twoPhaseTrace(60, 12, 0, 0);
    replay(policy, thrashing, 40);
    EXPECT_EQ(policy.candidateNames()[policy.activeIndex()], "RRIP");
    EXPECT_GE(policy.switches(), 1u);
    EXPECT_GT(policy.intervals(), 0u);

    // The decision log records the switch with its interval metrics.
    ASSERT_FALSE(policy.decisions().empty());
    const MetaPolicy::Decision &d = policy.decisions().front();
    EXPECT_EQ(d.from, 0u);
    EXPECT_EQ(d.to, 1u);
    EXPECT_LT(d.metricTo, d.metricFrom); // fewer shadow faults won
}

TEST(MetaDuel, EqualRunsProduceEqualDecisionLogs)
{
    MetaConfig cfg;
    cfg.selector = SelectorKind::Duel;
    cfg.intervalRefs = 64;
    const auto refs = twoPhaseTrace(60, 8, 12, 40);
    MetaPolicy a(cfg, lruVsRrip());
    MetaPolicy b(cfg, lruVsRrip());
    replay(a, refs, 40);
    replay(b, refs, 40);
    EXPECT_EQ(a.decisions(), b.decisions());
    EXPECT_EQ(a.activeIndex(), b.activeIndex());
}

TEST(MetaBandit, EqualSeedsGiveEqualDecisionLogs)
{
    const auto refs = twoPhaseTrace(60, 10, 12, 60);
    auto roster = [] {
        std::vector<MetaCandidate> cands;
        cands.push_back(candidate("LRU", std::make_unique<LruPolicy>()));
        cands.push_back(candidate(
            "RRIP", std::make_unique<RripPolicy>(RripConfig::thrashing())));
        cands.push_back(candidate("CLOCK", std::make_unique<ClockPolicy>()));
        return cands;
    };
    MetaConfig cfg;
    cfg.selector = SelectorKind::Bandit;
    cfg.intervalRefs = 64;
    cfg.seed = 7;
    MetaPolicy a(cfg, roster());
    MetaPolicy b(cfg, roster());
    replay(a, refs, 40);
    replay(b, refs, 40);
    EXPECT_EQ(a.decisions(), b.decisions());

    // Cold start pulls every arm once, in index order.
    ASSERT_GE(a.decisions().size(), 2u);
    EXPECT_EQ(a.decisions()[0].to, 1u);
    EXPECT_EQ(a.decisions()[1].to, 2u);
}

TEST(MetaPolicy, TrackedResidencyMatchesDriverAcross200Trials)
{
    // Property: whatever the selectors decide, MetaPolicy's tracked
    // resident set (the active candidate's) must equal the driver's —
    // the invariant the StateValidator checks after every fault service.
    for (unsigned trial = 0; trial < 200; ++trial) {
        Rng rng(trial + 1);
        MetaConfig cfg;
        cfg.selector =
            trial % 2 == 0 ? SelectorKind::Duel : SelectorKind::Bandit;
        cfg.intervalRefs = 16 + rng.below(64);
        cfg.seed = trial;
        std::vector<MetaCandidate> cands;
        cands.push_back(candidate("LRU", std::make_unique<LruPolicy>(),
                                  std::make_unique<LruPolicy>()));
        cands.push_back(candidate("FIFO", std::make_unique<FifoPolicy>(),
                                  std::make_unique<FifoPolicy>()));
        cands.push_back(candidate(
            "RRIP", std::make_unique<RripPolicy>(RripConfig::thrashing()),
            std::make_unique<RripPolicy>(RripConfig::thrashing())));
        MetaPolicy policy(cfg, std::move(cands));

        const std::size_t frames = 4 + rng.below(28);
        const std::size_t span = frames + 1 + rng.below(60);
        std::unordered_set<PageId> resident;
        for (unsigned step = 0; step < 400; ++step) {
            const PageId p = rng.below(span);
            if (resident.contains(p)) {
                policy.onHit(p);
            } else {
                policy.onFault(p);
                if (resident.size() == frames) {
                    const PageId victim = policy.selectVictim();
                    ASSERT_TRUE(resident.contains(victim))
                        << "trial " << trial << " step " << step;
                    resident.erase(victim);
                    policy.onEvict(victim);
                }
                resident.insert(p);
                policy.onMigrateIn(p);
            }
            if (step % 64 == 0 || step == 399) {
                const auto tracked = policy.trackedResidentPages();
                ASSERT_TRUE(tracked.has_value());
                std::vector<PageId> got = *tracked;
                std::vector<PageId> want(resident.begin(), resident.end());
                std::sort(got.begin(), got.end());
                std::sort(want.begin(), want.end());
                ASSERT_EQ(got, want) << "trial " << trial << " step "
                                     << step << " active "
                                     << policy.activeName();
            }
        }
    }
}

TEST(MetaPolicy, ValidationRejectsBadConfigs)
{
    auto build = [](MetaConfig cfg, std::size_t n) {
        std::vector<MetaCandidate> cands;
        for (std::size_t i = 0; i < n; ++i)
            cands.push_back(candidate("LRU", std::make_unique<LruPolicy>(),
                                      std::make_unique<LruPolicy>()));
        MetaPolicy p(cfg, std::move(cands));
    };
    MetaConfig solo;
    EXPECT_DEATH(build(solo, 1), "candidates");
    MetaConfig zeroInterval;
    zeroInterval.intervalRefs = 0;
    EXPECT_DEATH(build(zeroInterval, 2), "interval");
    MetaConfig thinLeaders;
    thinLeaders.leaderFraction = 1;
    EXPECT_DEATH(build(thinLeaders, 2), "leader");
}

TEST(Dip, ValidationRejectsDegenerateConfigs)
{
    // bipEpsilonInverse = 0 would silently turn BIP into always-MRU
    // (Rng::below(0) returns 0), making the duel meaningless.
    DipConfig zeroEps;
    zeroEps.bipEpsilonInverse = 0;
    EXPECT_DEATH(DipPolicy{zeroEps}, "BIP epsilon");
    // A non-power-of-two ceiling leaves the selector off-center.
    DipConfig oddPsel;
    oddPsel.pselMax = 1000;
    EXPECT_DEATH(DipPolicy{oddPsel}, "power of two");
    DipConfig noFollowers;
    noFollowers.leaderFraction = 2;
    EXPECT_DEATH(DipPolicy{noFollowers}, "follower");
}

TEST(MetaPolicy, GaugesAppearInIntervalTimeline)
{
    api::ExperimentRequest req;
    req.app = "KMN";
    req.scale = 0.1;
    req.policy = "Meta-duel";
    req.functional = true;
    req.interval = 200;
    req.normalize();
    const api::ExperimentResult r = api::runExperiment(req);
    EXPECT_NE(r.intervalsCsv.find("meta_active"), std::string::npos);
    EXPECT_NE(r.intervalsCsv.find("meta_switches"), std::string::npos);

    req.policy = "DIP";
    req.normalize();
    const api::ExperimentResult d = api::runExperiment(req);
    EXPECT_NE(d.intervalsCsv.find("dip.psel"), std::string::npos);
}

TEST(MetaPolicy, DigestsByteIdenticalAcrossJobs)
{
    // The golden-pin property for the adaptive layer: a meta-duel cell's
    // event digest (which folds its policy_switch events) must not
    // depend on sweep parallelism.
    const Trace trace = buildApp("MXT", 0.1, 1);
    api::ExperimentRequest req;
    req.app = "MXT";
    req.scale = 0.1;
    req.policy = "Meta-duel";
    req.functional = true;
    req.traceDigest = true;
    req.normalize();

    SweepRunner serial(1), parallel(4);
    const auto one = serial.map(4, [&](std::size_t) {
        return api::runExperiment(req, &trace).traceDigest;
    });
    const auto four = parallel.map(4, [&](std::size_t) {
        return api::runExperiment(req, &trace).traceDigest;
    });
    ASSERT_FALSE(one[0].empty());
    for (const std::string &digest : one)
        EXPECT_EQ(digest, one[0]);
    for (const std::string &digest : four)
        EXPECT_EQ(digest, one[0]);
}

TEST(MetaPolicy, AdaptsOnPhaseChangingCoRunSchedule)
{
    // The headline behaviour on the schedules the tournament pins: the
    // meta-policy must actually switch candidates on a phase-changing
    // co-run trace (a static policy never would), and its fault count
    // must at least match the worst static candidate's.
    const Trace trace = buildApp("MXT", 0.1, 1);
    api::ExperimentRequest req;
    req.app = "MXT";
    req.scale = 0.1;
    req.policy = "Meta-duel";
    req.functional = true;
    req.oversub = 0.5;
    req.interval = 500;
    req.normalize();
    const api::ExperimentResult r = api::runExperiment(req, &trace);
    // meta_switches is the last interval CSV column; the final row's
    // value is the cumulative switch count — nonzero means it adapted.
    const std::string &csv = r.intervalsCsv;
    const auto lastRow = csv.find_last_of('\n', csv.size() - 2);
    ASSERT_NE(lastRow, std::string::npos);
    const auto lastComma = csv.find_last_of(',');
    const std::uint64_t switches =
        std::stoull(csv.substr(lastComma + 1));
    EXPECT_GE(switches, 1u);
}

} // namespace
} // namespace hpe
