/**
 * @file
 * Tests for the hpe_serve daemon: the ResultCache protocol (coalescing,
 * admission control, eviction, warm-start seeding), and in-process
 * socket round trips — request/response framing, content-addressed
 * cache hits with identical bytes, error responses that never kill the
 * daemon, stats counters, tiered load shedding, store-backed restart
 * warm hits, stale-socket reclamation, and graceful shutdown.
 * (The ResultStore journal itself is covered in test_store.cpp.)
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/json.hpp"
#include "serve/client.hpp"
#include "serve/result_cache.hpp"
#include "serve/result_store.hpp"
#include "serve/server.hpp"

namespace hpe::serve {
namespace {

using api::json::Value;

// ------------------------------------------------------------ ResultCache

TEST(ResultCache, ComputeThenHit)
{
    ResultCache cache(8, 4);
    const auto first = cache.acquire("fp");
    ASSERT_EQ(first.role, ResultCache::Role::Compute);
    cache.complete(first.entry, "payload");

    const auto second = cache.acquire("fp");
    EXPECT_EQ(second.role, ResultCache::Role::Hit);
    EXPECT_EQ(second.entry->payload, "payload");
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.pending(), 0u);
}

TEST(ResultCache, ConcurrentDuplicatesCoalesceOntoOneComputation)
{
    ResultCache cache(8, 4);
    const auto owner = cache.acquire("fp");
    ASSERT_EQ(owner.role, ResultCache::Role::Compute);

    // A duplicate arriving while the computation runs waits on the same
    // entry instead of computing again.
    const auto dup = cache.acquire("fp");
    ASSERT_EQ(dup.role, ResultCache::Role::Wait);
    EXPECT_EQ(dup.entry, owner.entry);

    std::thread completer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        cache.complete(owner.entry, "once");
    });
    EXPECT_TRUE(cache.wait(dup.entry, std::nullopt));
    completer.join();
    EXPECT_EQ(dup.entry->payload, "once");
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.coalesced(), 1u);
}

TEST(ResultCache, RejectsNewWorkWhenSaturatedButStillServesHits)
{
    ResultCache cache(8, 1);
    const auto done = cache.acquire("done");
    cache.complete(done.entry, "ready");

    const auto inflight = cache.acquire("inflight");
    ASSERT_EQ(inflight.role, ResultCache::Role::Compute);

    // The pending bound is reached: new fingerprints are rejected...
    const auto overflow = cache.acquire("overflow");
    EXPECT_EQ(overflow.role, ResultCache::Role::Rejected);
    EXPECT_EQ(overflow.entry, nullptr);
    EXPECT_EQ(cache.rejected(), 1u);
    // ...but hits and coalesced waits are always admitted.
    EXPECT_EQ(cache.acquire("done").role, ResultCache::Role::Hit);
    EXPECT_EQ(cache.acquire("inflight").role, ResultCache::Role::Wait);

    cache.complete(inflight.entry, "now done");
    EXPECT_EQ(cache.acquire("overflow").role, ResultCache::Role::Compute);
}

TEST(ResultCache, WaitHonoursDeadlines)
{
    ResultCache cache(8, 4);
    const auto owner = cache.acquire("fp");
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::milliseconds(10);
    EXPECT_FALSE(cache.wait(owner.entry, deadline));
    cache.complete(owner.entry, "late");
    EXPECT_TRUE(cache.wait(owner.entry, deadline));
}

TEST(ResultCache, EvictsOldestCompletedFirst)
{
    ResultCache cache(2, 4);
    for (const char *fp : {"a", "b", "c"})
        cache.complete(cache.acquire(fp).entry, fp);
    EXPECT_EQ(cache.size(), 2u);
    // "a" (oldest) was evicted; "c" (newest) survives.
    EXPECT_EQ(cache.acquire("a").role, ResultCache::Role::Compute);
    EXPECT_EQ(cache.acquire("c").role, ResultCache::Role::Hit);
}

TEST(ResultCache, NeverEvictsPendingEntries)
{
    ResultCache cache(1, 4);
    const auto pending = cache.acquire("pending");
    // Completing other entries overflows capacity, but the pending entry
    // (whose waiters hold the pointer) must survive.
    cache.complete(cache.acquire("x").entry, "x");
    cache.complete(cache.acquire("y").entry, "y");
    EXPECT_EQ(cache.acquire("pending").role, ResultCache::Role::Wait);
    cache.complete(pending.entry, "done");
    EXPECT_EQ(cache.acquire("pending").role, ResultCache::Role::Hit);
}

TEST(ResultCache, FailedComputationsAreCachedAsFailures)
{
    ResultCache cache(8, 4);
    cache.complete(cache.acquire("fp").entry, "boom", true);
    const auto hit = cache.acquire("fp");
    EXPECT_EQ(hit.role, ResultCache::Role::Hit);
    EXPECT_TRUE(hit.entry->failed);
}

TEST(ResultCache, CapacityOneKeepsExactlyTheNewestCompletedEntry)
{
    ResultCache cache(1, 4);
    cache.complete(cache.acquire("a").entry, "a");
    cache.complete(cache.acquire("b").entry, "b");
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.acquire("b").role, ResultCache::Role::Hit);
    EXPECT_EQ(cache.acquire("a").role, ResultCache::Role::Compute);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResultCache, EvictionPressureWithPendingEntriesEvictsOnlyCompleted)
{
    ResultCache cache(2, 8);
    // Two pending entries occupy the cache...
    const auto p1 = cache.acquire("p1");
    const auto p2 = cache.acquire("p2");
    // ...and a stream of completions overflows capacity repeatedly.
    for (const char *fp : {"c1", "c2", "c3"})
        cache.complete(cache.acquire(fp).entry, fp);
    // Only completed entries were evicted; both pending survive.
    EXPECT_EQ(cache.acquire("p1").role, ResultCache::Role::Wait);
    EXPECT_EQ(cache.acquire("p2").role, ResultCache::Role::Wait);
    cache.complete(p1.entry, "done1");
    cache.complete(p2.entry, "done2");
    EXPECT_EQ(cache.acquire("p2").role, ResultCache::Role::Hit);
}

TEST(ResultCache, FailedResultEvictedThenReadmittedAsFreshComputation)
{
    ResultCache cache(1, 4);
    cache.complete(cache.acquire("flaky").entry, "boom", true);
    const auto failedHit = cache.acquire("flaky");
    ASSERT_EQ(failedHit.role, ResultCache::Role::Hit);
    EXPECT_TRUE(failedHit.entry->failed);

    // Push the failed entry out, then ask again: a fresh computation,
    // not a stale failure.
    cache.complete(cache.acquire("pusher").entry, "fine");
    const auto retry = cache.acquire("flaky");
    ASSERT_EQ(retry.role, ResultCache::Role::Compute);
    cache.complete(retry.entry, "recovered");
    EXPECT_FALSE(cache.acquire("flaky").entry->failed);
}

TEST(ResultCache, AdmitNewFalseRejectsOnlyUnknownFingerprints)
{
    ResultCache cache(8, 4);
    cache.complete(cache.acquire("done").entry, "ready");
    const auto inflight = cache.acquire("inflight");

    // Hit-and-coalesce mode: known fingerprints answer as usual...
    EXPECT_EQ(cache.acquire("done", false).role, ResultCache::Role::Hit);
    EXPECT_EQ(cache.acquire("inflight", false).role, ResultCache::Role::Wait);
    // ...an unknown one is rejected without consuming a pending slot.
    const std::uint64_t pendingBefore = cache.pending();
    EXPECT_EQ(cache.acquire("unknown", false).role,
              ResultCache::Role::Rejected);
    EXPECT_EQ(cache.pending(), pendingBefore);
    cache.complete(inflight.entry, "done");
}

TEST(ResultCache, SeedWarmStartsWithoutCountingHitsOrMisses)
{
    ResultCache cache(2, 4);
    cache.seed("warm", "from-journal");
    EXPECT_EQ(cache.seeded(), 1u);
    EXPECT_EQ(cache.misses(), 0u);

    const auto hit = cache.acquire("warm");
    ASSERT_EQ(hit.role, ResultCache::Role::Hit);
    EXPECT_EQ(hit.entry->payload, "from-journal");

    // An existing entry wins over a later seed (live state beats the
    // journal)...
    cache.seed("warm", "stale-journal");
    EXPECT_EQ(cache.acquire("warm").entry->payload, "from-journal");
    // ...and seeding respects capacity: the oldest entry is evicted.
    cache.seed("w2", "p2");
    cache.seed("w3", "p3");
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.acquire("warm").role, ResultCache::Role::Compute);
}

TEST(ResultCache, EvictionObserverSeesEveryEvictedFingerprint)
{
    ResultCache cache(1, 4);
    std::vector<std::string> observed;
    cache.setEvictionObserver(
        [&](const std::string &fp) { observed.push_back(fp); });
    cache.complete(cache.acquire("a").entry, "a");
    cache.complete(cache.acquire("b").entry, "b");
    cache.seed("c", "c");
    ASSERT_EQ(observed.size(), 2u);
    EXPECT_EQ(observed[0], "a");
    EXPECT_EQ(observed[1], "b");
    EXPECT_EQ(cache.evictions(), 2u);
}

// ------------------------------------------------------------- the daemon

/** A started server on a unique socket; tears down on destruction. */
struct TestServer
{
    explicit TestServer(const std::string &name, std::size_t maxQueue = 64)
    {
        cfg.socketPath = ::testing::TempDir() + "/hpe_" + name + ".sock";
        cfg.maxQueue = maxQueue;
        server = std::make_unique<Server>(cfg);
        std::string error;
        EXPECT_TRUE(server->start(error)) << error;
    }

    ~TestServer() { server->stop(); }

    /** One request line over a fresh connection; EXPECT success. */
    Value
    roundTrip(const std::string &request)
    {
        std::string response, error;
        EXPECT_TRUE(submitLine(cfg.socketPath, request, response, error))
            << error;
        api::json::ParseError perr;
        const auto v = api::json::parse(response, &perr);
        EXPECT_TRUE(v.has_value()) << perr.message << ": " << response;
        return v.value_or(Value{});
    }

    ServeConfig cfg;
    std::unique_ptr<Server> server;
};

/** A tiny run request (fast functional cell). */
std::string
runRequest()
{
    return R"({"type":"run","request":{"app":"STN","policy":"LRU",)"
           R"("functional":true,"scale":0.1,"trace_digest":true}})";
}

TEST(Serve, PingPongRoundTrip)
{
    TestServer ts("ping");
    const Value response = ts.roundTrip(R"({"type":"ping","id":"tag"})");
    EXPECT_TRUE(response.find("ok")->asBool());
    EXPECT_EQ(response.find("type")->asString(), "pong");
    // The id echoes back so clients can match responses to requests.
    EXPECT_EQ(response.find("id")->asString(), "tag");
}

TEST(Serve, RepeatedRequestIsServedFromCacheWithIdenticalBytes)
{
    TestServer ts("cache");
    const Value first = ts.roundTrip(runRequest());
    ASSERT_TRUE(first.find("ok")->asBool());
    EXPECT_FALSE(first.find("cached")->asBool());

    const Value second = ts.roundTrip(runRequest());
    ASSERT_TRUE(second.find("ok")->asBool());
    EXPECT_TRUE(second.find("cached")->asBool());
    // The cached payload is byte-identical to the computed one.
    EXPECT_EQ(second.find("result")->dump(), first.find("result")->dump());
    EXPECT_EQ(second.find("fingerprint")->asString(),
              first.find("fingerprint")->asString());
    EXPECT_EQ(ts.server->cache().hits(), 1u);
    EXPECT_EQ(ts.server->cache().misses(), 1u);
}

TEST(Serve, CaseDifferingSpellingsShareOneCacheSlot)
{
    TestServer ts("spelling");
    const Value canonical = ts.roundTrip(runRequest());
    const Value lower = ts.roundTrip(
        R"({"type":"run","request":{"app":"stn","policy":"lru",)"
        R"("functional":true,"scale":0.1,"trace_digest":true}})");
    ASSERT_TRUE(lower.find("ok")->asBool());
    // Content addressing: same experiment, same fingerprint, cache hit.
    EXPECT_TRUE(lower.find("cached")->asBool());
    EXPECT_EQ(lower.find("fingerprint")->asString(),
              canonical.find("fingerprint")->asString());
    EXPECT_EQ(lower.find("result")->dump(), canonical.find("result")->dump());
}

TEST(Serve, ConcurrentIdenticalSubmitsComputeOnce)
{
    TestServer ts("concurrent");
    constexpr int kClients = 4;
    std::vector<std::string> results(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            std::string response, error;
            ASSERT_TRUE(submitLine(ts.cfg.socketPath, runRequest(), response,
                                   error))
                << error;
            results[static_cast<std::size_t>(i)] = response;
        });
    for (std::thread &t : clients)
        t.join();

    // Exactly one computation; every other client hit or coalesced, and
    // all of them received the same result bytes.
    const ResultCache &cache = ts.server->cache();
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits() + cache.coalesced(),
              static_cast<std::uint64_t>(kClients - 1));
    api::json::ParseError perr;
    const std::string expected =
        api::json::parse(results[0], &perr)->find("result")->dump();
    for (const std::string &r : results)
        EXPECT_EQ(api::json::parse(r, &perr)->find("result")->dump(),
                  expected);
}

TEST(Serve, InvalidRequestsGetErrorResponsesNotCrashes)
{
    TestServer ts("errors");
    const Value badJson = ts.roundTrip("this is not json");
    EXPECT_FALSE(badJson.find("ok")->asBool());
    EXPECT_NE(badJson.find("error")->asString().find("parse error"),
              std::string::npos);

    const Value badName = ts.roundTrip(
        R"({"type":"run","request":{"policy":"NOPE"}})");
    EXPECT_FALSE(badName.find("ok")->asBool());
    EXPECT_NE(badName.find("error")->asString().find(
                  "unknown policy 'NOPE' (valid: "),
              std::string::npos);

    const Value badType = ts.roundTrip(R"({"type":"transmogrify"})");
    EXPECT_FALSE(badType.find("ok")->asBool());
    EXPECT_NE(badType.find("error")->asString().find("unknown request type"),
              std::string::npos);

    // The daemon survived all of it.
    EXPECT_TRUE(ts.roundTrip(R"({"type":"ping"})").find("ok")->asBool());
    EXPECT_EQ(ts.server->cache().misses(), 0u);
}

TEST(Serve, StatsSurfaceCacheAndQueueCounters)
{
    TestServer ts("stats");
    ts.roundTrip(runRequest());
    ts.roundTrip(runRequest());
    const Value stats = ts.roundTrip(R"({"type":"stats"})");
    ASSERT_TRUE(stats.find("ok")->asBool());
    const Value *body = stats.find("stats");
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->find("cache_hits")->asUint(), 1u);
    EXPECT_EQ(body->find("cache_misses")->asUint(), 1u);
    EXPECT_EQ(body->find("served")->asUint(), 2u);
    EXPECT_EQ(body->find("queue_depth")->asUint(), 0u);
    EXPECT_EQ(body->find("in_flight")->asUint(), 0u);
    // The same counters ride the StatRegistry CSV machinery.
    const std::string csv = body->find("stats_csv")->asString();
    EXPECT_NE(csv.find("serve.cache.hits,1,1"), std::string::npos);
    EXPECT_NE(csv.find("serve.cache.misses,1,1"), std::string::npos);
}

TEST(Serve, ShutdownRequestDrainsGracefully)
{
    TestServer ts("shutdown");
    const Value ack = ts.roundTrip(R"({"type":"shutdown"})");
    EXPECT_TRUE(ack.find("ok")->asBool());
    EXPECT_EQ(ack.find("type")->asString(), "shutting_down");

    ts.server->wait(); // returns because the request stopped the daemon
    ts.server->stop();
    // The socket file is gone; new connections are refused.
    std::string response, error;
    EXPECT_FALSE(
        submitLine(ts.cfg.socketPath, R"({"type":"ping"})", response, error));
}

TEST(Serve, SaturatedDaemonRejectsWithRetryHint)
{
    // maxQueue = 0 is clamped to 1 by the server; use a cache primed with
    // an in-flight entry to hold the only slot, then submit new work.
    TestServer ts("saturated", 1);
    const auto holder = ts.server->cache().acquire("held-slot");
    ASSERT_EQ(holder.role, ResultCache::Role::Compute);

    const Value rejected = ts.roundTrip(runRequest());
    EXPECT_FALSE(rejected.find("ok")->asBool());
    // The held slot pushes the load depth past the hit-only threshold,
    // so the cold fingerprint is shed (tiered shedding, PR 6).
    EXPECT_NE(rejected.find("error")->asString().find("shedding load"),
              std::string::npos);
    ASSERT_NE(rejected.find("retry_after_ms"), nullptr);
    EXPECT_GT(rejected.find("retry_after_ms")->asUint(), 0u);

    // Releasing the slot re-admits the same request.
    ts.server->cache().complete(holder.entry, "freed");
    EXPECT_TRUE(ts.roundTrip(runRequest()).find("ok")->asBool());
}

TEST(Serve, StartFailsCleanlyOnUnusableSocketPath)
{
    ServeConfig cfg;
    cfg.socketPath = "/nonexistent-dir/hpe.sock";
    Server server(cfg);
    std::string error;
    EXPECT_FALSE(server.start(error));
    EXPECT_NE(error.find("bind"), std::string::npos);
}

// -------------------------------------------- shedding, durability, sockets

/** A cold run request nothing else submits (seed varies the fingerprint). */
std::string
coldRequest(std::uint64_t seed)
{
    return R"({"type":"run","request":{"app":"STN","policy":"LRU",)"
           R"("functional":true,"scale":0.1,"trace_digest":true,"seed":)"
           + std::to_string(seed) + "}}";
}

TEST(Serve, ShedTiersDegradeUnderDepthAndRecoverWhenItDrains)
{
    ServeConfig cfg;
    cfg.socketPath = ::testing::TempDir() + "/hpe_shed.sock";
    cfg.maxQueue = 8;
    cfg.shedHitOnlyDepth = 2;
    cfg.shedRejectDepth = 4;
    Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    auto roundTrip = [&](const std::string &request) {
        std::string response, err;
        EXPECT_TRUE(submitLine(cfg.socketPath, request, response, err)) << err;
        return api::json::parse(response).value_or(Value{});
    };

    // Prime the cache while the daemon is idle (depth 1 <= 2: full).
    ASSERT_TRUE(roundTrip(runRequest()).find("ok")->asBool());
    EXPECT_EQ(server.shedMode(), ShedMode::Full);

    // Hold two computation slots: depth = 1 + 2 = 3 > 2 -> hit_only.
    const auto h1 = server.cache().acquire("hold-1");
    const auto h2 = server.cache().acquire("hold-2");
    const Value cold = roundTrip(coldRequest(777));
    EXPECT_FALSE(cold.find("ok")->asBool());
    EXPECT_NE(cold.find("error")->asString().find("hit_only"),
              std::string::npos);
    ASSERT_NE(cold.find("retry_after_ms"), nullptr);
    EXPECT_GT(cold.find("retry_after_ms")->asUint(), 0u);
    // The cached fingerprint still answers in hit_only mode.
    const Value warm = roundTrip(runRequest());
    EXPECT_TRUE(warm.find("ok")->asBool());
    EXPECT_TRUE(warm.find("cached")->asBool());

    // Two more holds: depth = 1 + 4 = 5 > 4 -> reject, even for hits.
    const auto h3 = server.cache().acquire("hold-3");
    const auto h4 = server.cache().acquire("hold-4");
    const Value rejected = roundTrip(runRequest());
    EXPECT_FALSE(rejected.find("ok")->asBool());
    EXPECT_NE(rejected.find("error")->asString().find("reject"),
              std::string::npos);
    EXPECT_EQ(server.shedMode(), ShedMode::Reject);

    const Value stats = roundTrip(R"({"type":"stats"})");
    const Value *body = stats.find("stats");
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->find("shed_mode")->asString(), "reject");
    EXPECT_GE(body->find("shed_transitions")->asUint(), 2u);
    EXPECT_GE(body->find("shed_cold_rejections")->asUint(), 1u);
    EXPECT_GE(body->find("shed_rejections")->asUint(), 1u);

    // Drain the holds: the next request is served in full mode again.
    for (const auto &hold : {h1, h2, h3, h4})
        server.cache().complete(hold.entry, "freed");
    EXPECT_TRUE(roundTrip(runRequest()).find("ok")->asBool());
    EXPECT_EQ(server.shedMode(), ShedMode::Full);
    server.stop();
}

TEST(Serve, StoreBackedRestartServesWarmHitsWithIdenticalBytes)
{
    ServeConfig cfg;
    cfg.socketPath = ::testing::TempDir() + "/hpe_warm.sock";
    cfg.storeDir = ::testing::TempDir() + "/hpe_warm_store";
    std::filesystem::remove_all(cfg.storeDir);

    std::string firstResult, fingerprint;
    {
        Server server(cfg);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;
        std::string response, err;
        ASSERT_TRUE(submitLine(cfg.socketPath, runRequest(), response, err))
            << err;
        const Value v = api::json::parse(response).value_or(Value{});
        ASSERT_TRUE(v.find("ok")->asBool());
        EXPECT_FALSE(v.find("cached")->asBool());
        firstResult = v.find("result")->dump();
        fingerprint = v.find("fingerprint")->asString();
        ASSERT_NE(server.store(), nullptr);
        EXPECT_EQ(server.store()->appendCount(), 1u);
        server.stop();
    }

    // A new daemon over the same store directory answers the same
    // request as a warm cache hit with byte-identical result payload —
    // without recomputing anything.
    Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ASSERT_NE(server.store(), nullptr);
    EXPECT_EQ(server.store()->recoveredCount(), 1u);
    EXPECT_EQ(server.cache().seeded(), 1u);

    std::string response, err;
    ASSERT_TRUE(submitLine(cfg.socketPath, runRequest(), response, err))
        << err;
    const Value v = api::json::parse(response).value_or(Value{});
    ASSERT_TRUE(v.find("ok")->asBool());
    EXPECT_TRUE(v.find("cached")->asBool());
    EXPECT_EQ(v.find("result")->dump(), firstResult);
    EXPECT_EQ(v.find("fingerprint")->asString(), fingerprint);
    EXPECT_EQ(server.cache().misses(), 0u);
    server.stop();
}

TEST(Serve, SecondDaemonOnTheSameStoreDirFailsFastWithoutTouchingIt)
{
    ServeConfig cfg;
    cfg.socketPath = ::testing::TempDir() + "/hpe_dualstore_a.sock";
    cfg.storeDir = ::testing::TempDir() + "/hpe_dualstore";
    std::filesystem::remove_all(cfg.storeDir);

    Server live(cfg);
    std::string error;
    ASSERT_TRUE(live.start(error)) << error;
    std::string response, err;
    ASSERT_TRUE(submitLine(cfg.socketPath, runRequest(), response, err))
        << err;

    // A second daemon on a *different* socket but the same store dir
    // must fail at the store lock — before any replay could misread
    // the live daemon's journal tail and truncate it.
    ServeConfig second = cfg;
    second.socketPath = ::testing::TempDir() + "/hpe_dualstore_b.sock";
    Server intruder(second);
    std::string intruderError;
    EXPECT_FALSE(intruder.start(intruderError));
    EXPECT_NE(intruderError.find("locked"), std::string::npos)
        << intruderError;
    // The loser cleaned up its freshly bound socket path.
    EXPECT_NE(::access(second.socketPath.c_str(), F_OK), 0);

    // The live daemon's journal is intact: a restart over it recovers
    // the computed cell with no torn-tail truncation.
    live.stop();
    Server restarted(cfg);
    ASSERT_TRUE(restarted.start(error)) << error;
    ASSERT_NE(restarted.store(), nullptr);
    EXPECT_EQ(restarted.store()->recoveredCount(), 1u);
    EXPECT_EQ(restarted.store()->tornTruncations(), 0u);
    restarted.stop();
}

TEST(Serve, FailedResultsSurviveRestartAsCachedFailures)
{
    ServeConfig cfg;
    cfg.socketPath = ::testing::TempDir() + "/hpe_warmfail.sock";
    cfg.storeDir = ::testing::TempDir() + "/hpe_warmfail_store";
    std::filesystem::remove_all(cfg.storeDir);

    // Journal a failed computation directly (the daemon does this for
    // experiments that throw), then boot a daemon over it.
    {
        ResultStoreConfig storeCfg;
        storeCfg.dir = cfg.storeDir;
        ResultStore store(storeCfg);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        store.append("fail-fp", "experiment failed: boom", true);
    }
    Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    const auto hit = server.cache().acquire("fail-fp");
    ASSERT_EQ(hit.role, ResultCache::Role::Hit);
    EXPECT_TRUE(hit.entry->failed);
    EXPECT_EQ(hit.entry->payload, "experiment failed: boom");
    server.stop();
}

TEST(Serve, StaleSocketIsReclaimedOnStart)
{
    const std::string path = ::testing::TempDir() + "/hpe_stale.sock";
    ::unlink(path.c_str());
    // Fake a crashed daemon: a bound socket file with no listener behind
    // it (bind creates the file; closing the fd does not remove it).
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                     sizeof addr),
              0);
    ::close(fd);

    ServeConfig cfg;
    cfg.socketPath = path;
    Server server(cfg);
    std::string error;
    // start() probes the socket, finds nobody home, reclaims the path.
    ASSERT_TRUE(server.start(error)) << error;
    std::string response, err;
    EXPECT_TRUE(submitLine(path, R"({"type":"ping"})", response, err)) << err;
    server.stop();
}

TEST(Serve, LiveDaemonSocketIsNeverStolen)
{
    TestServer ts("live");
    Server second(ts.cfg);
    std::string error;
    // The probe pings the live daemon, gets an answer, and keeps the
    // bind error instead of unlinking a working socket.
    EXPECT_FALSE(second.start(error));
    EXPECT_NE(error.find("bind"), std::string::npos);
    // The original daemon is untouched.
    EXPECT_TRUE(ts.roundTrip(R"({"type":"ping"})").find("ok")->asBool());
}

} // namespace
} // namespace hpe::serve
