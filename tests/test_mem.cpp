/**
 * @file
 * Unit tests for the mem module: set-associative array, data caches,
 * FR-FCFS DRAM, page table, and frame allocator.
 */

#include <gtest/gtest.h>

#include <variant>
#include <vector>

#include "common/event_queue.hpp"
#include "common/stats.hpp"
#include "mem/data_cache.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "mem/set_assoc.hpp"

namespace hpe {
namespace {

TEST(SetAssoc, InsertAndFind)
{
    SetAssocArray<int> arr(16, 4);
    arr.insert(0x10).data = 7;
    auto *e = arr.find(0x10);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->data, 7);
}

TEST(SetAssoc, MissReturnsNull)
{
    SetAssocArray<int> arr(16, 4);
    EXPECT_EQ(arr.find(0x99), nullptr);
}

TEST(SetAssoc, LruEvictionWithinSet)
{
    // 8 entries, 4 ways -> 2 sets; even keys map to set 0.
    SetAssocArray<int> arr(8, 4);
    for (std::uint64_t k = 0; k < 8; k += 2)
        arr.insert(k); // fills set 0: keys 0,2,4,6
    arr.find(0);       // refresh key 0
    SetAssocArray<int>::Entry victim;
    arr.insert(8, &victim); // set 0 overflows
    EXPECT_EQ(victim.tag, 2u); // LRU among {2,4,6}
    EXPECT_EQ(arr.probe(0) != nullptr, true);
    EXPECT_EQ(arr.probe(2), nullptr);
}

TEST(SetAssoc, ConflictEvictionsCounted)
{
    SetAssocArray<int> arr(4, 2); // 2 sets
    arr.insert(0);
    arr.insert(2);
    arr.insert(4); // evicts in set 0
    EXPECT_EQ(arr.conflictEvictions(), 1u);
}

TEST(SetAssoc, EraseRemoves)
{
    SetAssocArray<int> arr(16, 4);
    arr.insert(5);
    EXPECT_TRUE(arr.erase(5));
    EXPECT_FALSE(arr.erase(5));
    EXPECT_EQ(arr.probe(5), nullptr);
}

TEST(SetAssoc, ClearEmptiesEverything)
{
    SetAssocArray<int> arr(16, 4);
    arr.insert(1);
    arr.insert(2);
    arr.clear();
    EXPECT_EQ(arr.occupancy(), 0u);
}

TEST(SetAssoc, NonPowerOfTwoSetCount)
{
    // 12 sets (like the 1.5 MB L2): modulo indexing must still work.
    SetAssocArray<int> arr(96, 8);
    for (std::uint64_t k = 0; k < 96; ++k)
        arr.insert(k * 12 + 5); // all map to set 5
    EXPECT_EQ(arr.occupancy(), 8u);
}

TEST(SetAssoc, ForEachVisitsValidOnly)
{
    SetAssocArray<int> arr(16, 4);
    arr.insert(1);
    arr.insert(9);
    int n = 0;
    arr.forEach([&](auto &) { ++n; });
    EXPECT_EQ(n, 2);
}

TEST(DataCache, HitAfterFill)
{
    StatRegistry stats;
    DataCache cache({.sizeBytes = 1024, .ways = 4, .lineBytes = 64,
                     .hitLatency = 1},
                    stats, "c");
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x13f)); // same 64 B line as 0x100
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(DataCache, DistinctLinesMiss)
{
    StatRegistry stats;
    DataCache cache({.sizeBytes = 1024, .ways = 4, .lineBytes = 64,
                     .hitLatency = 1},
                    stats, "c");
    cache.access(0x000);
    EXPECT_FALSE(cache.access(0x040));
}

TEST(DataCache, InvalidatePageDropsItsLines)
{
    StatRegistry stats;
    DataCache cache({.sizeBytes = 64 * 1024, .ways = 4, .lineBytes = 128,
                     .hitLatency = 1},
                    stats, "c");
    const Addr in_page = addrOf(3) + 256;
    const Addr other = addrOf(7);
    cache.access(in_page);
    cache.access(other);
    cache.invalidatePage(3);
    EXPECT_FALSE(cache.access(in_page));
    EXPECT_TRUE(cache.access(other));
}

TEST(PageTable, MapLookupUnmap)
{
    PageTable pt;
    EXPECT_FALSE(pt.resident(4));
    pt.map(4, 9);
    EXPECT_TRUE(pt.resident(4));
    EXPECT_EQ(pt.lookup(4), 9u);
    EXPECT_EQ(pt.unmap(4), 9u);
    EXPECT_EQ(pt.lookup(4), kInvalidId);
}

TEST(PageTable, SizeTracksMappings)
{
    PageTable pt;
    pt.map(1, 1);
    pt.map(2, 2);
    EXPECT_EQ(pt.size(), 2u);
    pt.unmap(1);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(FrameAllocator, AllocatesAllFramesOnce)
{
    FrameAllocator alloc(4);
    std::vector<FrameId> frames;
    for (int i = 0; i < 4; ++i)
        frames.push_back(alloc.allocate());
    EXPECT_TRUE(alloc.full());
    std::sort(frames.begin(), frames.end());
    EXPECT_EQ(frames, (std::vector<FrameId>{0, 1, 2, 3}));
}

TEST(FrameAllocator, ReleaseMakesFrameAvailable)
{
    FrameAllocator alloc(1);
    const FrameId f = alloc.allocate();
    EXPECT_TRUE(alloc.full());
    alloc.release(f);
    EXPECT_FALSE(alloc.full());
    EXPECT_EQ(alloc.allocate(), f);
}

TEST(FrameAllocator, AscendingFirstHandout)
{
    FrameAllocator alloc(3);
    EXPECT_EQ(alloc.allocate(), 0u);
    EXPECT_EQ(alloc.allocate(), 1u);
}

class DramTest : public ::testing::Test
{
  protected:
    DramTest() : dram_(cfg_, eq_, stats_, "dram") {}

    DramConfig cfg_{.channels = 2,
                    .banksPerChannel = 2,
                    .rowBytes = 1024,
                    .lineBytes = 128,
                    .rowHitLatency = 10,
                    .rowMissLatency = 50,
                    .burstCycles = 4};
    EventQueue eq_;
    StatRegistry stats_;
    Dram dram_;
};

TEST_F(DramTest, SingleReadCompletes)
{
    bool done = false;
    dram_.read(0, [&] { done = true; });
    eq_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(eq_.now(), cfg_.rowMissLatency + cfg_.burstCycles);
}

TEST_F(DramTest, RowHitIsFaster)
{
    Cycle first = 0, second = 0;
    dram_.read(0, [&] { first = eq_.now(); });
    eq_.run();
    dram_.read(64, [&] { second = eq_.now(); }); // same row
    eq_.run();
    EXPECT_EQ(second - first, cfg_.rowHitLatency + cfg_.burstCycles);
    EXPECT_EQ(dram_.rowHits(), 1u);
    EXPECT_EQ(dram_.rowMisses(), 1u);
}

TEST_F(DramTest, FrFcfsPrefersRowHitOverOlder)
{
    // Address layout: channel = (addr/128)%2, bank = (addr/1024)%2,
    // row = addr/1024/2.  Use channel-0 addresses only (line index even).
    const Addr row0 = 0;         // ch0, bank0, row0
    const Addr row1 = 4096;      // ch0, bank0, row1
    const Addr row0_b = 256;     // ch0, bank0, row0 (second line)
    std::vector<int> order;
    dram_.read(row0, [&] { order.push_back(0); });
    // Queue while busy: an older row-miss request and a younger row-hit.
    dram_.read(row1, [&] { order.push_back(1); });
    dram_.read(row0_b, [&] { order.push_back(2); });
    eq_.run();
    // FR-FCFS services the row0 hit (younger) before the row1 miss.
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(DramTest, ChannelsServiceInParallel)
{
    Cycle a = 0, b = 0;
    dram_.read(0, [&] { a = eq_.now(); });   // channel 0
    dram_.read(128, [&] { b = eq_.now(); }); // channel 1
    eq_.run();
    EXPECT_EQ(a, b); // independent channels, same completion cycle
}

TEST_F(DramTest, IdleReflectsState)
{
    EXPECT_TRUE(dram_.idle());
    dram_.read(0, [] {});
    EXPECT_FALSE(dram_.idle());
    eq_.run();
    EXPECT_TRUE(dram_.idle());
}

} // namespace
} // namespace hpe
