/**
 * @file
 * Unit tests for the statistics-based classifier (§IV-D, Table III).
 */

#include <gtest/gtest.h>

#include <cmath>
#include "common/stats.hpp"
#include "core/classifier.hpp"
#include "core/page_set_chain.hpp"

namespace hpe {
namespace {

class ClassifierTest : public ::testing::Test
{
  protected:
    ClassifierTest() : chain_(cfg_, stats_, "chain") {}

    /** Create @p n page sets whose counters equal @p counter. */
    void
    addSets(std::size_t n, std::uint32_t counter)
    {
        for (std::size_t i = 0; i < n; ++i)
            chain_.touch(16 * nextSet_++, counter, true);
    }

    HpeConfig cfg_{};
    StatRegistry stats_;
    PageSetChain chain_;
    PageSetId nextSet_ = 0;
};

TEST_F(ClassifierTest, MostlySmallRegularIsRegular)
{
    addSets(95, 16);
    addSets(5, 17); // a few irregular
    const auto r = classify(cfg_, chain_);
    EXPECT_EQ(r.category, Category::Regular);
    EXPECT_NEAR(r.ratio1, 5.0 / 95.0, 1e-9);
    EXPECT_LT(r.ratio2, 2.0);
}

TEST_F(ClassifierTest, LargeRegularCountersAreIrregular1)
{
    addSets(20, 48);
    addSets(70, 64);
    addSets(8, 16);
    const auto r = classify(cfg_, chain_);
    EXPECT_EQ(r.category, Category::Irregular1);
    EXPECT_GE(r.ratio2, 2.0);
    EXPECT_LE(r.ratio1, cfg_.ratio1Threshold);
}

TEST_F(ClassifierTest, IrregularCountersAreIrregular2)
{
    addSets(50, 7);
    addSets(50, 16);
    const auto r = classify(cfg_, chain_);
    EXPECT_EQ(r.category, Category::Irregular2);
    EXPECT_GT(r.ratio1, cfg_.ratio1Threshold);
}

TEST_F(ClassifierTest, ThresholdBoundaryExactlyPointThreeIsRegular)
{
    addSets(30, 5);  // irregular
    addSets(100, 16); // regular small
    const auto r = classify(cfg_, chain_);
    EXPECT_DOUBLE_EQ(r.ratio1, 0.3);
    EXPECT_EQ(r.category, Category::Regular); // <= threshold
}

TEST_F(ClassifierTest, Ratio2BoundaryExactlyTwoIsIrregular1)
{
    addSets(10, 16); // small regular
    addSets(20, 64); // large regular
    const auto r = classify(cfg_, chain_);
    EXPECT_DOUBLE_EQ(r.ratio2, 2.0);
    EXPECT_EQ(r.category, Category::Irregular1); // >= 2
}

TEST_F(ClassifierTest, CounterBuckets)
{
    addSets(1, 16); // small regular
    addSets(1, 32); // small regular
    addSets(1, 48); // large regular
    addSets(1, 64); // large regular
    addSets(1, 40); // 40 % 16 != 0: irregular
    const auto r = classify(cfg_, chain_);
    EXPECT_EQ(r.smallRegular, 2u);
    EXPECT_EQ(r.largeRegular, 2u);
    EXPECT_EQ(r.regularCounters, 4u);
    EXPECT_EQ(r.irregularCounters, 1u);
}

TEST_F(ClassifierTest, NoRegularCountersGivesInfiniteRatio1)
{
    addSets(10, 3);
    const auto r = classify(cfg_, chain_);
    EXPECT_TRUE(std::isinf(r.ratio1));
    EXPECT_EQ(r.category, Category::Irregular2);
}

TEST_F(ClassifierTest, EmptyChainIsRegular)
{
    const auto r = classify(cfg_, chain_);
    EXPECT_EQ(r.ratio1, 0.0);
    EXPECT_EQ(r.ratio2, 0.0);
    EXPECT_EQ(r.category, Category::Regular);
}

TEST_F(ClassifierTest, OldPartitionPopulationRecorded)
{
    addSets(5, 16);
    chain_.endInterval();
    chain_.endInterval(); // the five sets are now old
    addSets(2, 16);       // two sets in new
    const auto r = classify(cfg_, chain_);
    EXPECT_EQ(r.oldPartitionSets, 5u);
}

TEST(ClassifierNames, CategoryNames)
{
    EXPECT_STREQ(categoryName(Category::Regular), "regular");
    EXPECT_STREQ(categoryName(Category::Irregular1), "irregular#1");
    EXPECT_STREQ(categoryName(Category::Irregular2), "irregular#2");
}

} // namespace
} // namespace hpe
