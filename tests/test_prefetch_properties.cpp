/**
 * @file
 * Property-based differential tests for the fault-batching + prefetch
 * subsystem, each over hundreds of seeded random traces:
 *
 *  - Belady oracle: with prefetching off, no policy produces fewer faults
 *    than Belady MIN on any trace (MIN is provably optimal functionally);
 *  - batching equivalence: with the prefetcher off, a batched run is
 *    *identical* to an unbatched one — same fault/eviction/hit counts,
 *    same victim sequence, same trace digest — for every policy and
 *    every window size;
 *  - speculation safety: random prefetcher/degree/batch combinations
 *    never violate the cross-layer invariants (StateValidator armed on
 *    every fault), never evict on behalf of speculation, and never hold
 *    more resident pages than frames.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/paging_simulator.hpp"
#include "trace/trace_sink.hpp"
#include "workload/trace.hpp"

namespace hpe {
namespace {

using prefetch::PrefetchKind;

constexpr int kTrials = 500;

/**
 * A small random workload: a mix of sequential bursts (so prefetchers
 * have something to find) and uniform random visits (so policies face
 * reuse), with random writes and kernel boundaries.
 */
Trace
randomTrace(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    const unsigned pages = 16 + static_cast<unsigned>(rng() % 48);
    const unsigned refs = 120 + static_cast<unsigned>(rng() % 180);
    Trace t("RND", "random", "prop", PatternType::II);
    PageId cursor = rng() % pages;
    for (unsigned i = 0; i < refs; ++i) {
        switch (rng() % 4) {
          case 0: // sequential step
            cursor = (cursor + 1) % pages;
            break;
          case 1: // strided step
            cursor = (cursor + 3) % pages;
            break;
          default: // random jump
            cursor = rng() % pages;
            break;
        }
        t.add(cursor, 1, rng() % 8 == 0);
        if (rng() % 64 == 0)
            t.beginKernel();
    }
    return t;
}

std::size_t
randomFrames(std::mt19937_64 &rng, const Trace &t)
{
    const std::size_t fp = t.footprintPages();
    const std::size_t lo = std::max<std::size_t>(2, fp / 4);
    return lo + rng() % std::max<std::size_t>(1, fp - lo);
}

/** One functional run with full observability, returning the evidence the
 *  differential properties compare. */
struct RunEvidence
{
    PagingResult result;
    std::uint64_t digest = 0;
    std::vector<PageId> victims;
};

RunEvidence
runWithEvidence(const Trace &t, PolicyKind kind, std::size_t frames,
                const PagingOptions &base)
{
    RunEvidence ev;
    StatRegistry stats;
    trace::TraceSink sink;
    PagingOptions opts = base;
    opts.sink = &sink;
    auto policy = makePolicy(kind, t, stats);
    ev.result = runPaging(t, *policy, frames, stats, opts);
    ev.digest = sink.digest();
    for (const trace::TraceEvent &e : sink.events())
        if (e.kind == trace::EventKind::Eviction)
            ev.victims.push_back(e.page);
    return ev;
}

TEST(PrefetchProperties, BeladyOracleNoPolicyBeatsMin)
{
    for (int trial = 0; trial < kTrials; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 7919 + 1;
        const Trace t = randomTrace(seed);
        std::mt19937_64 rng(seed ^ 0xbe1adu);
        const std::size_t frames = randomFrames(rng, t);
        StatRegistry min_stats;
        auto min = makePolicy(PolicyKind::Ideal, t, min_stats);
        const auto min_result = runPaging(t, *min, frames, min_stats);
        // Rotate through the policy zoo; every policy sees ~1/9 of trials.
        const auto &kinds = extendedPolicyKinds();
        const PolicyKind kind = kinds[static_cast<std::size_t>(trial)
                                      % kinds.size()];
        StatRegistry stats;
        auto policy = makePolicy(kind, t, stats, {}, seed);
        const auto result = runPaging(t, *policy, frames, stats);
        EXPECT_GE(result.faults, min_result.faults)
            << policyKindName(kind) << " beat MIN on trial " << trial
            << " (frames " << frames << ")";
        EXPECT_EQ(result.faults + result.hits, result.references);
    }
}

TEST(PrefetchProperties, BatchingEquivalenceWithPrefetchOff)
{
    const auto &kinds = extendedPolicyKinds();
    for (int trial = 0; trial < kTrials; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 6271 + 11;
        const Trace t = randomTrace(seed);
        std::mt19937_64 rng(seed ^ 0xba7c4u);
        const std::size_t frames = randomFrames(rng, t);
        const PolicyKind kind =
            kinds[static_cast<std::size_t>(trial) % kinds.size()];
        const RunEvidence base = runWithEvidence(t, kind, frames, {});
        for (unsigned window : {2u, 16u, 256u}) {
            PagingOptions opts;
            opts.faultBatch = window;
            const RunEvidence batched = runWithEvidence(t, kind, frames, opts);
            ASSERT_EQ(batched.result.faults, base.result.faults)
                << policyKindName(kind) << " window " << window << " trial "
                << trial;
            ASSERT_EQ(batched.result.hits, base.result.hits);
            ASSERT_EQ(batched.result.evictions, base.result.evictions);
            ASSERT_EQ(batched.result.dirtyEvictions,
                      base.result.dirtyEvictions);
            ASSERT_EQ(batched.victims, base.victims)
                << policyKindName(kind) << " diverged in victim order";
            ASSERT_EQ(batched.digest, base.digest)
                << policyKindName(kind) << " window " << window
                << " changed the event stream on trial " << trial;
        }
    }
}

TEST(PrefetchProperties, SpeculationSafetyUnderRandomConfigs)
{
    const auto &kinds = extendedPolicyKinds();
    const PrefetchKind pf_kinds[] = {PrefetchKind::Sequential,
                                     PrefetchKind::Stride,
                                     PrefetchKind::Density};
    for (int trial = 0; trial < kTrials; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 4447 + 3;
        const Trace t = randomTrace(seed);
        std::mt19937_64 rng(seed ^ 0x5afe7u);
        const std::size_t frames = randomFrames(rng, t);
        const PolicyKind kind =
            kinds[static_cast<std::size_t>(trial) % kinds.size()];
        PagingOptions opts;
        opts.validate = true; // StateValidator after every fault service
        opts.faultBatch = 1u << (rng() % 9); // 1..256
        opts.prefetch.kind = pf_kinds[rng() % 3];
        opts.prefetch.degree = 1 + static_cast<unsigned>(rng() % 16);
        opts.prefetch.strideConfidence = 1 + static_cast<unsigned>(rng() % 3);
        opts.prefetch.densityThreshold = 0.25 + 0.25 * static_cast<double>(rng() % 3);
        StatRegistry stats;
        auto policy = makePolicy(kind, t, stats, {}, seed);
        const auto result = runPaging(t, *policy, frames, stats, opts);
        // Conservation: every reference is exactly one hit or one fault,
        // and speculation charges neither.
        EXPECT_EQ(result.faults + result.hits, result.references)
            << policyKindName(kind) << " trial " << trial;
        // Accounting closure: every prefetched page is still speculative,
        // was proven useful, or was evicted unused.
        EXPECT_GE(result.prefetches,
                  result.prefetchUseful + result.prefetchWasted);
        EXPECT_LE(result.faults, result.references);
    }
}

TEST(PrefetchProperties, TimingSpeculationSafetyUnderChaos)
{
    // The timing path exercises the driver's waiters/batch/stream plumbing;
    // a smaller trial count keeps the event-driven runs affordable.
    for (int trial = 0; trial < 24; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 911 + 5;
        const Trace t = randomTrace(seed);
        std::mt19937_64 rng(seed ^ 0x7151u);
        RunConfig cfg;
        cfg.seed = seed;
        cfg.oversub = 0.5 + 0.1 * static_cast<double>(rng() % 6);
        cfg.gpu.validate = true;
        cfg.gpu.driver.batchSize = 1u << (rng() % 6);
        cfg.gpu.driver.prefetch.kind =
            static_cast<PrefetchKind>(1 + rng() % 3);
        cfg.gpu.driver.prefetch.degree = 1 + static_cast<unsigned>(rng() % 8);
        if (trial % 2 == 0) {
            cfg.gpu.chaos.enabled = true;
            cfg.gpu.chaos.seed = seed;
            cfg.gpu.chaos.pcieFailProb = 0.01;
            cfg.gpu.chaos.serviceTimeoutProb = 0.01;
            cfg.gpu.chaos.walkErrorProb = 0.005;
        }
        const PolicyKind kind = trial % 3 == 0 ? PolicyKind::Hpe
            : trial % 3 == 1                   ? PolicyKind::ClockPro
                                               : PolicyKind::Lru;
        const auto r = runTiming(t, kind, cfg);
        EXPECT_GT(r.instructions, 0u) << "trial " << trial;
        EXPECT_LE(r.faults, t.size());
    }
}

} // namespace
} // namespace hpe
