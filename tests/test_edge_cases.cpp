/**
 * @file
 * Edge-case and failure-injection tests across modules: invariant
 * violations must die loudly (HPE_ASSERT), and boundary geometries must
 * work.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "driver/pcie.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "mem/set_assoc.hpp"
#include "policy/lru.hpp"
#include "sim/experiment.hpp"

namespace hpe {
namespace {

TEST(Death, PageTableDoubleMap)
{
    PageTable pt;
    pt.map(1, 1);
    EXPECT_DEATH({ pt.map(1, 2); }, "double map");
}

TEST(Death, PageTableUnmapMissing)
{
    PageTable pt;
    EXPECT_DEATH({ pt.unmap(1); }, "non-resident");
}

TEST(Death, FrameAllocatorExhausted)
{
    FrameAllocator alloc(1);
    alloc.allocate();
    EXPECT_DEATH({ alloc.allocate(); }, "exhausted");
}

TEST(Death, SetAssocDuplicateInsert)
{
    SetAssocArray<int> arr(8, 2);
    arr.insert(1);
    EXPECT_DEATH({ arr.insert(1); }, "duplicate insert");
}

TEST(Death, EventQueueSchedulingIntoThePast)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH({ eq.schedule(5, [] {}); }, "into the past");
}

TEST(Death, TableRowArityMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH({ t.addRow({"only one"}); }, "row has 1 cells");
}

TEST(Death, LruEvictUntracked)
{
    LruPolicy lru;
    lru.onMigrateIn(1);
    EXPECT_DEATH({ lru.onEvict(99); }, "untracked");
}

TEST(Death, UvmFaultOnResidentPage)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(4, lru, stats, "uvm");
    uvm.handleFault(1);
    EXPECT_DEATH({ uvm.handleFault(1); }, "resident");
}

TEST(Death, MarkDirtyNonResident)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(4, lru, stats, "uvm");
    EXPECT_DEATH({ uvm.markDirty(7); }, "non-resident");
}

TEST(EventQueueEdge, NextEventCycle)
{
    EventQueue eq;
    eq.schedule(42, [] {});
    EXPECT_EQ(eq.nextEventCycle(), 42u);
}

TEST(SetAssocEdge, DirectMappedGeometry)
{
    SetAssocArray<int> arr(8, 1); // direct-mapped
    arr.insert(0);
    arr.insert(8); // same set: conflict
    EXPECT_EQ(arr.probe(0), nullptr);
    EXPECT_NE(arr.probe(8), nullptr);
    EXPECT_EQ(arr.conflictEvictions(), 1u);
}

TEST(SetAssocEdge, FullyAssociativeGeometry)
{
    SetAssocArray<int> arr(4, 4); // one set
    for (std::uint64_t k = 100; k < 104; ++k)
        arr.insert(k);
    EXPECT_EQ(arr.occupancy(), 4u);
    arr.insert(999); // evicts LRU = 100
    EXPECT_EQ(arr.probe(100), nullptr);
}

TEST(DramEdge, ManyRequestsOneBankAllComplete)
{
    EventQueue eq;
    StatRegistry stats;
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    Dram dram(cfg, eq, stats, "d");
    int done = 0;
    for (Addr a = 0; a < 64 * cfg.lineBytes; a += cfg.lineBytes)
        dram.read(a, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 64);
    EXPECT_TRUE(dram.idle());
    // Sequential lines in one row: mostly row hits after the opener.
    EXPECT_GT(dram.rowHits(), dram.rowMisses());
}

TEST(ExperimentEdge, OversubBoundsChecked)
{
    Trace t("X", "x", "s", PatternType::I);
    t.add(1);
    EXPECT_DEATH({ framesFor(t, 0.0); }, "oversubscription");
    EXPECT_DEATH({ framesFor(t, 1.5); }, "oversubscription");
}

TEST(ExperimentEdge, MinimumOneFrame)
{
    Trace t("X", "x", "s", PatternType::I);
    t.add(1);
    EXPECT_EQ(framesFor(t, 1.0), 1u);
}

TEST(Death, ZeroFramePoolRejected)
{
    EXPECT_DEATH({ FrameAllocator alloc(0); }, "empty frame pool");
}

TEST(Death, ZeroFrameUvmRejected)
{
    StatRegistry stats;
    LruPolicy lru;
    EXPECT_DEATH({ UvmMemoryManager uvm(0, lru, stats, "uvm"); },
                 "empty frame pool");
}

TEST(EdgeGeometry, OneFramePoolUnderEveryPolicy)
{
    // With a single frame the policy has no real choice: every distinct
    // page faults, every back-to-back revisit hits, and each migration
    // past the first evicts.  Those counts are policy-independent, so the
    // whole roster (validator on) must agree on them.
    Trace t("X", "x", "s", PatternType::I);
    for (PageId p : {1, 1, 2, 2, 3, 1})
        t.add(p);
    for (PolicyKind kind : extendedPolicyKinds()) {
        StatRegistry stats;
        auto policy = makePolicy(kind, t, stats);
        const PagingOptions opts{.validate = true};
        const PagingResult r = runPaging(t, *policy, 1, stats, opts);
        EXPECT_EQ(r.references, 6u) << policyKindName(kind);
        EXPECT_EQ(r.faults, 4u) << policyKindName(kind);
        EXPECT_EQ(r.hits, 2u) << policyKindName(kind);
        EXPECT_EQ(r.evictions, 3u) << policyKindName(kind);
    }
}

TEST(PcieEdge, ZeroByteTransferIsANoOp)
{
    StatRegistry stats;
    PcieLink link(PcieConfig{}, stats, "p");
#ifdef NDEBUG
    // Release builds: no link hold, no transfer counted.
    link.transfer(0, kPageBytes);
    const Cycle horizon = link.horizon();
    EXPECT_EQ(link.transfer(horizon + 5, 0), horizon + 5);
    EXPECT_EQ(link.horizon(), horizon);
    EXPECT_EQ(stats.findCounter("p.transfers").value(), 1u);
#else
    // Debug builds: the caller bug is asserted on.
    EXPECT_DEATH({ link.transfer(0, 0); }, "zero-byte");
#endif
}

} // namespace
} // namespace hpe
