/**
 * @file
 * Tests for the driver realism features: dirty-page writeback, sequential
 * block prefetch, and fault batching — all defaulted off / to the paper's
 * behaviour.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hpp"
#include "common/stats.hpp"
#include "driver/gpu_driver.hpp"
#include "driver/pcie.hpp"
#include "driver/uvm_manager.hpp"
#include "policy/lru.hpp"
#include "sim/experiment.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"

namespace hpe {
namespace {

TEST(DirtyPages, MarkAndEvict)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(2, lru, stats, "uvm");
    uvm.handleFault(1);
    uvm.handleFault(2);
    uvm.markDirty(1);
    EXPECT_TRUE(uvm.isDirty(1));
    EXPECT_FALSE(uvm.isDirty(2));
    const FaultOutcome out = uvm.handleFault(3); // evicts 1 (LRU)
    EXPECT_TRUE(out.victimDirty);
    EXPECT_EQ(uvm.dirtyEvictions(), 1u);
    // Dirtiness does not survive eviction.
    EXPECT_FALSE(uvm.isDirty(1));
}

TEST(DirtyPages, CleanEvictionReportsClean)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(1, lru, stats, "uvm");
    uvm.handleFault(1);
    const FaultOutcome out = uvm.handleFault(2);
    EXPECT_FALSE(out.victimDirty);
    EXPECT_EQ(uvm.dirtyEvictions(), 0u);
}

TEST(DirtyPages, FunctionalRunCountsDirtyEvictions)
{
    Trace t("W", "writer", "synthetic", PatternType::II);
    for (int pass = 0; pass < 2; ++pass) {
        t.beginKernel();
        for (PageId p = 0; p < 64; ++p)
            t.add(p, 4, /*write=*/true);
    }
    StatRegistry stats;
    LruPolicy lru;
    const auto r = runPaging(t, lru, 48, stats);
    EXPECT_GT(r.dirtyEvictions, 0u);
    EXPECT_EQ(r.dirtyEvictions, r.evictions); // every page was written
}

TEST(DirtyPages, WritebackChargesPcieInTimingMode)
{
    Trace t("W", "writer", "synthetic", PatternType::II);
    for (int pass = 0; pass < 2; ++pass) {
        t.beginKernel();
        for (PageId p = 0; p < 64; ++p)
            t.add(p, 4, /*write=*/true);
    }
    Trace clean("R", "reader", "synthetic", PatternType::II);
    for (int pass = 0; pass < 2; ++pass) {
        clean.beginKernel();
        for (PageId p = 0; p < 64; ++p)
            clean.add(p, 4);
    }
    RunConfig cfg;
    cfg.oversub = 0.75;
    const auto dirty_run = runTimingInspect(t, PolicyKind::Lru, cfg);
    const auto clean_run = runTimingInspect(clean, PolicyKind::Lru, cfg);
    EXPECT_GT(dirty_run.stats->findCounter("pcie.bytes").value(),
              clean_run.stats->findCounter("pcie.bytes").value());
}

TEST(DirtyPages, AppTracesCarryWrites)
{
    const Trace t = buildApp("HSD");
    EXPECT_NEAR(t.writeFraction(), 0.5, 0.05);
    const Trace ro = buildApp("SPV");
    EXPECT_LT(ro.writeFraction(), 0.2);
}

TEST(DirtyPages, MarkWritesIsDeterministic)
{
    const Trace a = buildApp("HSD", 1.0, 3);
    const Trace b = buildApp("HSD", 1.0, 3);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.refs()[i].write, b.refs()[i].write);
}

class PrefetchTest : public ::testing::Test
{
  protected:
    PrefetchTest()
        : uvm_(64, lru_, stats_, "uvm"), pcie_(PcieConfig{}, stats_, "pcie")
    {
        cfg_.prefetchDegree = 4;
    }

    GpuDriver
    makeDriver()
    {
        return GpuDriver(cfg_, uvm_, pcie_, eq_, stats_, "drv");
    }

    DriverConfig cfg_{};
    StatRegistry stats_;
    LruPolicy lru_;
    EventQueue eq_;
    UvmMemoryManager uvm_;
    PcieLink pcie_;
};

TEST_F(PrefetchTest, FaultPrefetchesFollowingBlockPages)
{
    GpuDriver driver = makeDriver();
    driver.requestPage(32, [] {});
    eq_.run();
    EXPECT_TRUE(uvm_.resident(32));
    for (PageId q = 33; q <= 36; ++q)
        EXPECT_TRUE(uvm_.resident(q)) << q;
    EXPECT_FALSE(uvm_.resident(37));
    EXPECT_EQ(uvm_.prefetches(), 4u);
    EXPECT_EQ(uvm_.faults(), 1u);
}

TEST_F(PrefetchTest, PrefetchStopsAtBlockBoundary)
{
    GpuDriver driver = makeDriver();
    driver.requestPage(46, [] {}); // block [32, 48): only 47 follows
    eq_.run();
    EXPECT_TRUE(uvm_.resident(47));
    EXPECT_FALSE(uvm_.resident(48));
    EXPECT_EQ(uvm_.prefetches(), 1u);
}

TEST_F(PrefetchTest, PrefetchNeverEvicts)
{
    // Fill memory completely, then fault: the eviction happens for the
    // demand page, but no prefetch may displace anything.
    GpuDriver driver = makeDriver();
    for (PageId p = 1000; p < 1064; ++p)
        uvm_.handleFault(p);
    driver.requestPage(0, [] {});
    eq_.run();
    EXPECT_TRUE(uvm_.resident(0));
    EXPECT_EQ(uvm_.prefetches(), 0u);
    EXPECT_EQ(uvm_.evictions(), 1u);
}

TEST_F(PrefetchTest, PrefetchSkipsQueuedFaults)
{
    GpuDriver driver = makeDriver();
    int wakeups = 0;
    driver.requestPage(32, [&] { ++wakeups; });
    driver.requestPage(33, [&] { ++wakeups; }); // queued before 32 completes
    eq_.run();
    EXPECT_EQ(wakeups, 2);
    EXPECT_TRUE(uvm_.resident(33));
    // Page 33 was served by its own fault, not the prefetcher.
    EXPECT_EQ(uvm_.faults(), 2u);
}

TEST(PrefetchTiming, CutsStreamingFaultsAtLowConcurrency)
{
    // With hundreds of concurrent warps the demand faults for a block
    // all queue before the first completes, so sequential prefetch has no
    // window (the realistic fault-storm case).  At low memory-level
    // parallelism — one warp streaming — every block costs one fault
    // instead of sixteen.
    Trace t("S", "stream", "synthetic", PatternType::I);
    for (PageId p = 0; p < 256; ++p)
        t.add(p, 4);
    RunConfig off, on;
    // No capacity pressure: the prefetcher never evicts, so it only works
    // while free frames remain.
    off.oversub = on.oversub = 1.0;
    off.gpu.numSms = on.gpu.numSms = 1;
    off.gpu.warpsPerSm = on.gpu.warpsPerSm = 1;
    on.gpu.driver.prefetchDegree = 15;
    const auto base = runTiming(t, PolicyKind::Lru, off);
    const auto pf = runTiming(t, PolicyKind::Lru, on);
    EXPECT_EQ(base.faults, 256u);
    EXPECT_EQ(pf.faults, 16u); // one demand fault per 16-page block
    EXPECT_GT(pf.ipc, base.ipc);
}

TEST(Batching, BatchedFaultsServicedTogether)
{
    StatRegistry stats;
    LruPolicy lru;
    EventQueue eq;
    UvmMemoryManager uvm(16, lru, stats, "uvm");
    PcieLink pcie(PcieConfig{}, stats, "pcie");
    DriverConfig cfg;
    cfg.batchSize = 4;
    cfg.batchTimeoutCycles = 1000;
    GpuDriver driver(cfg, uvm, pcie, eq, stats, "drv");

    std::vector<Cycle> done;
    for (PageId p = 0; p < 4; ++p)
        driver.requestPage(p, [&] { done.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    // The batch launched when it filled (no timeout wait): first fault
    // completes at the service latency.
    EXPECT_EQ(done.front(), cfg.faultServiceCycles);
}

TEST(Batching, PartialBatchFlushesOnTimeout)
{
    StatRegistry stats;
    LruPolicy lru;
    EventQueue eq;
    UvmMemoryManager uvm(16, lru, stats, "uvm");
    PcieLink pcie(PcieConfig{}, stats, "pcie");
    DriverConfig cfg;
    cfg.batchSize = 8;
    cfg.batchTimeoutCycles = 500;
    GpuDriver driver(cfg, uvm, pcie, eq, stats, "drv");

    Cycle done = 0;
    driver.requestPage(1, [&] { done = eq.now(); });
    eq.run();
    // One fault alone: waits the flush timeout, then the full service.
    EXPECT_EQ(done, cfg.batchTimeoutCycles + cfg.faultServiceCycles);
}

TEST(Batching, DefaultBatchSizeOneIsImmediate)
{
    StatRegistry stats;
    LruPolicy lru;
    EventQueue eq;
    UvmMemoryManager uvm(16, lru, stats, "uvm");
    PcieLink pcie(PcieConfig{}, stats, "pcie");
    GpuDriver driver(DriverConfig{}, uvm, pcie, eq, stats, "drv");
    Cycle done = 0;
    driver.requestPage(1, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, DriverConfig{}.faultServiceCycles);
}

TEST(Batching, TimingRunWithBatchingCompletes)
{
    const Trace t = buildApp("STN", 0.5);
    RunConfig cfg;
    cfg.gpu.driver.batchSize = 8;
    const auto r = runTiming(t, PolicyKind::Hpe, cfg);
    EXPECT_GT(r.instructions, 0u);
}

} // namespace
} // namespace hpe
