/**
 * @file
 * Unit tests for the dynamic-adjustment controller (§IV-E, Algorithm 1).
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/adjustment.hpp"

namespace hpe {
namespace {

ClassificationResult
classified(Category cat, std::size_t old_sets = 1000)
{
    ClassificationResult r;
    r.category = cat;
    r.oldPartitionSets = old_sets;
    return r;
}

class AdjustmentTest : public ::testing::Test
{
  protected:
    AdjustmentTest() : ctl_(cfg_, stats_, "adj") {}

    /** Evict @p n pages then fault on all of them (wrong evictions). */
    void
    wrongEvictions(std::uint32_t n, PageId base = 1000)
    {
        for (std::uint32_t i = 0; i < n; ++i)
            ctl_.onEvict(base + i);
        for (std::uint32_t i = 0; i < n; ++i)
            ctl_.onFault(base + i, ++fault_);
    }

    HpeConfig cfg_{};
    StatRegistry stats_;
    AdjustmentController ctl_;
    std::uint64_t fault_ = 0;
};

TEST_F(AdjustmentTest, InitialStrategyByCategory)
{
    ctl_.start(classified(Category::Regular), 0);
    EXPECT_EQ(ctl_.strategy(), Strategy::MruC);
}

TEST_F(AdjustmentTest, IrregularStartsWithLru)
{
    ctl_.start(classified(Category::Irregular1), 0);
    EXPECT_EQ(ctl_.strategy(), Strategy::Lru);
}

TEST_F(AdjustmentTest, NotStartedIgnoresEvents)
{
    EXPECT_FALSE(ctl_.started());
    ctl_.onEvict(1);
    ctl_.onFault(1, 1);
    EXPECT_TRUE(ctl_.timeline().empty());
}

TEST_F(AdjustmentTest, RegularJumpsSearchPointOnThreshold)
{
    ctl_.start(classified(Category::Regular), 0);
    EXPECT_EQ(ctl_.searchOffset(), 0u);
    wrongEvictions(cfg_.wrongEvictionThreshold);
    EXPECT_EQ(ctl_.searchOffset(), cfg_.searchJump);
    EXPECT_EQ(ctl_.strategy(), Strategy::MruC); // strategy unchanged
}

TEST_F(AdjustmentTest, RegularJumpsAccumulate)
{
    ctl_.start(classified(Category::Regular), 0);
    wrongEvictions(cfg_.wrongEvictionThreshold, 1000);
    wrongEvictions(cfg_.wrongEvictionThreshold, 2000);
    EXPECT_EQ(ctl_.searchOffset(), 2 * cfg_.searchJump);
}

TEST_F(AdjustmentTest, SmallFootprintGuardBlocksJump)
{
    // Old partition below 4 x page set size at first-full (the STN case).
    ctl_.start(classified(Category::Regular, /*old_sets=*/10), 0);
    wrongEvictions(cfg_.wrongEvictionThreshold);
    EXPECT_EQ(ctl_.searchOffset(), 0u);
}

TEST_F(AdjustmentTest, Irregular1NeverSwitches)
{
    ctl_.start(classified(Category::Irregular1), 0);
    wrongEvictions(3 * cfg_.wrongEvictionThreshold);
    EXPECT_EQ(ctl_.strategy(), Strategy::Lru);
    EXPECT_EQ(ctl_.timeline().size(), 1u); // only the start event
}

TEST_F(AdjustmentTest, Irregular2SwitchesToOtherStrategy)
{
    ctl_.start(classified(Category::Irregular2), 0);
    EXPECT_EQ(ctl_.strategy(), Strategy::Lru);
    wrongEvictions(cfg_.wrongEvictionThreshold);
    EXPECT_EQ(ctl_.strategy(), Strategy::MruC);
    EXPECT_EQ(ctl_.timeline().size(), 2u);
}

TEST_F(AdjustmentTest, Irregular2CanSwitchBack)
{
    ctl_.start(classified(Category::Irregular2), 0);
    wrongEvictions(cfg_.wrongEvictionThreshold, 1000); // -> MRU-C
    // Let MRU-C run a while so LRU's (shorter) history does not block the
    // switch back.
    for (int i = 0; i < 8; ++i)
        ctl_.onIntervalEnd();
    wrongEvictions(cfg_.wrongEvictionThreshold, 2000);
    EXPECT_EQ(ctl_.strategy(), Strategy::Lru);
}

TEST_F(AdjustmentTest, WrongEvictionCounterResetsAtIntervalEnd)
{
    ctl_.start(classified(Category::Irregular2), 0);
    wrongEvictions(cfg_.wrongEvictionThreshold - 1);
    ctl_.onIntervalEnd(); // resets the counter just below threshold
    wrongEvictions(cfg_.wrongEvictionThreshold - 1, 5000);
    EXPECT_EQ(ctl_.strategy(), Strategy::Lru); // never reached threshold
}

TEST_F(AdjustmentTest, FaultOnNonEvictedPageIsNotWrong)
{
    ctl_.start(classified(Category::Irregular2), 0);
    for (int i = 0; i < 100; ++i)
        ctl_.onFault(i, ++fault_);
    EXPECT_EQ(stats_.findCounter("adj.wrongEvictions").value(), 0u);
}

TEST_F(AdjustmentTest, FifoDepthBoundsMemory)
{
    ctl_.start(classified(Category::Irregular2), 0);
    // Evict fifoDepth + 50 pages; the first 50 have been pushed out.
    for (std::uint32_t i = 0; i < cfg_.fifoDepth + 50; ++i)
        ctl_.onEvict(i);
    for (std::uint32_t i = 0; i < 50; ++i)
        ctl_.onFault(i, ++fault_);
    EXPECT_EQ(stats_.findCounter("adj.wrongEvictions").value(), 0u);
}

TEST_F(AdjustmentTest, TimelineRecordsFaultNumbers)
{
    ctl_.start(classified(Category::Irregular2), 7);
    wrongEvictions(cfg_.wrongEvictionThreshold);
    ASSERT_EQ(ctl_.timeline().size(), 2u);
    EXPECT_EQ(ctl_.timeline()[0].faultNumber, 7u);
    EXPECT_EQ(ctl_.timeline()[0].strategy, Strategy::Lru);
    EXPECT_EQ(ctl_.timeline()[1].strategy, Strategy::MruC);
}

TEST_F(AdjustmentTest, DisabledAdjustmentNeverTriggers)
{
    HpeConfig cfg;
    cfg.dynamicAdjustment = false;
    StatRegistry stats;
    AdjustmentController ctl(cfg, stats, "a");
    ctl.start(classified(Category::Irregular2), 0);
    std::uint64_t fault = 0;
    for (std::uint32_t i = 0; i < 3 * cfg.wrongEvictionThreshold; ++i) {
        ctl.onEvict(9000 + i);
        ctl.onFault(9000 + i, ++fault);
    }
    EXPECT_EQ(ctl.strategy(), Strategy::Lru);
}

TEST(AdjustmentNames, StrategyNames)
{
    EXPECT_STREQ(strategyName(Strategy::Lru), "LRU");
    EXPECT_STREQ(strategyName(Strategy::MruC), "MRU-C");
}

} // namespace
} // namespace hpe
