/**
 * @file
 * Integration tests tying the whole stack together: per-application
 * classification targets (Fig. 9 / §V-C), strategy-usage expectations
 * (Fig. 13), and the headline performance shapes of the paper (Fig. 10,
 * Fig. 3) at both oversubscription rates.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

/** §V-C: applications that used LRU for their entire execution. */
const std::map<std::string, Category> kExpectedCategory = {
    // regular (MRU-C initial strategy)
    {"HOT", Category::Regular},  {"LEU", Category::Regular},
    {"CUT", Category::Regular},  {"2DC", Category::Regular},
    {"GEM", Category::Regular},  {"SRD", Category::Regular},
    {"HSD", Category::Regular},  {"MRQ", Category::Regular},
    {"STN", Category::Regular},  {"PAT", Category::Regular},
    {"DWT", Category::Regular},  {"BKP", Category::Regular},
    {"SGM", Category::Regular},
    // irregular#2 (LRU initial, may switch)
    {"KMN", Category::Irregular2}, {"SAD", Category::Irregular2},
    {"BFS", Category::Irregular2}, {"HIS", Category::Irregular2},
    {"SPV", Category::Irregular2}, {"MVT", Category::Irregular2},
    {"NW", Category::Irregular2},
    // irregular#1 (LRU, never switches)
    {"B+T", Category::Irregular1}, {"HYB", Category::Irregular1},
    {"HWL", Category::Irregular1},
};

class ClassificationTargetTest
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ClassificationTargetTest, MatchesPaperCategory)
{
    const Trace t = buildApp(GetParam());
    const auto run = runFunctionalInspect(t, PolicyKind::Hpe, RunConfig{});
    ASSERT_TRUE(run.hpe()->classification().has_value())
        << "memory never filled";
    EXPECT_EQ(run.hpe()->classification()->category,
              kExpectedCategory.at(GetParam()))
        << "ratio1=" << run.hpe()->classification()->ratio1
        << " ratio2=" << run.hpe()->classification()->ratio2;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, ClassificationTargetTest,
    ::testing::Values("HOT", "LEU", "CUT", "2DC", "GEM", "SRD", "HSD", "MRQ",
                      "STN", "PAT", "DWT", "BKP", "KMN", "SAD", "NW", "BFS",
                      "MVT", "HWL", "SGM", "HIS", "SPV", "B+T", "HYB"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '+')
                c = 'p';
        return name;
    });

TEST(PaperShapes, TypeIIHpeBeatsLruFunctional)
{
    // Fig. 11: for LRU-averse workloads HPE evicts far fewer pages.
    for (const char *app : {"SRD", "HSD", "MRQ", "STN"}) {
        const Trace t = buildApp(app);
        const auto lru = runFunctional(t, PolicyKind::Lru, RunConfig{});
        const auto hpe = runFunctional(t, PolicyKind::Hpe, RunConfig{});
        EXPECT_LT(hpe.evictions, lru.evictions * 0.7) << app;
    }
}

TEST(PaperShapes, TypeIHpeMatchesLru)
{
    // Fig. 10/11: for streaming workloads HPE behaves like LRU.
    for (const char *app : {"HOT", "LEU", "CUT", "2DC"}) {
        const Trace t = buildApp(app);
        const auto lru = runFunctional(t, PolicyKind::Lru, RunConfig{});
        const auto hpe = runFunctional(t, PolicyKind::Hpe, RunConfig{});
        EXPECT_EQ(hpe.faults, lru.faults) << app;
    }
}

TEST(PaperShapes, TypeVILruFriendlyAndHpeClose)
{
    for (const char *app : {"B+T", "HYB"}) {
        const Trace t = buildApp(app);
        const auto lru = runFunctional(t, PolicyKind::Lru, RunConfig{});
        const auto ideal = runFunctional(t, PolicyKind::Ideal, RunConfig{});
        const auto hpe = runFunctional(t, PolicyKind::Hpe, RunConfig{});
        EXPECT_EQ(lru.faults, ideal.faults) << app; // LRU is optimal here
        EXPECT_LE(hpe.faults, lru.faults * 1.15) << app;
    }
}

TEST(PaperShapes, HpeWithinReasonOfIdeal)
{
    // §V-B: on average HPE evicts ~18% more pages than Ideal at 75%
    // (average of per-app normalized evictions).  Our synthetic traces
    // are harsher on a few apps (GEM, MVT, HWL — see EXPERIMENTS.md), so
    // the regression bound is 2.0x rather than the paper's 1.18x; the
    // per-pattern shapes are asserted by the other PaperShapes tests.
    double ratio_sum = 0;
    int n = 0;
    for (const AppSpec &spec : appSpecs()) {
        const Trace t = buildApp(spec.abbr);
        const auto hpe = runFunctional(t, PolicyKind::Hpe, RunConfig{});
        const auto ideal = runFunctional(t, PolicyKind::Ideal, RunConfig{});
        if (ideal.evictions == 0)
            continue;
        ratio_sum += static_cast<double>(hpe.evictions)
                     / static_cast<double>(ideal.evictions);
        ++n;
    }
    EXPECT_LT(ratio_sum / n, 2.0);
}

TEST(PaperShapes, HpeTimingSpeedupOverLruAt75)
{
    // Fig. 10: average speedup 1.34x at 75% oversubscription; our scaled
    // traces land in the same regime (> 1.15x geomean, strongest for
    // type II).
    double log_sum = 0;
    int n = 0;
    for (const char *app : {"HOT", "SRD", "HSD", "MRQ", "STN", "NW", "B+T"}) {
        const Trace t = buildApp(app);
        RunConfig cfg;
        const auto lru = runTiming(t, PolicyKind::Lru, cfg);
        const auto hpe = runTiming(t, PolicyKind::Hpe, cfg);
        log_sum += std::log(hpe.ipc / lru.ipc);
        ++n;
    }
    EXPECT_GT(std::exp(log_sum / n), 1.15);
}

TEST(PaperShapes, OversubFiftyIsMilderThanSeventyFive)
{
    // Fig. 10: the 50% rate yields a smaller average speedup than 75%
    // (more memory pressure -> more to win).  Check on the type II set.
    double gain75 = 0, gain50 = 0;
    for (const char *app : {"SRD", "HSD"}) {
        const Trace t = buildApp(app);
        RunConfig hi, lo;
        hi.oversub = 0.75;
        lo.oversub = 0.50;
        const auto lru75 = runFunctional(t, PolicyKind::Lru, hi);
        const auto hpe75 = runFunctional(t, PolicyKind::Hpe, hi);
        const auto lru50 = runFunctional(t, PolicyKind::Lru, lo);
        const auto hpe50 = runFunctional(t, PolicyKind::Hpe, lo);
        gain75 += static_cast<double>(lru75.faults) / hpe75.faults;
        gain50 += static_cast<double>(lru50.faults) / hpe50.faults;
    }
    EXPECT_GT(gain75, 1.5);
    EXPECT_GT(gain50, 1.0);
}

TEST(PaperShapes, RripThrashesWithLruOnSrdHsd)
{
    // Fig. 3: "RRIP incurs significant thrashing for SRD and HSD".
    for (const char *app : {"SRD", "HSD"}) {
        const Trace t = buildApp(app);
        const auto lru = runFunctional(t, PolicyKind::Lru, RunConfig{});
        const auto rrip = runFunctional(t, PolicyKind::Rrip, RunConfig{});
        EXPECT_GE(rrip.faults, lru.faults * 0.95) << app;
    }
}

TEST(PaperShapes, BaselinesWorseThanLruOnTypeVI)
{
    // Fig. 12: random, RRIP and CLOCK-Pro fall behind LRU for type VI.
    for (const char *app : {"B+T", "HYB"}) {
        const Trace t = buildApp(app);
        const auto lru = runFunctional(t, PolicyKind::Lru, RunConfig{});
        const auto rnd = runFunctional(t, PolicyKind::Random, RunConfig{});
        const auto cp = runFunctional(t, PolicyKind::ClockPro, RunConfig{});
        EXPECT_GT(rnd.faults + cp.faults, 2 * lru.faults) << app;
    }
}

TEST(StrategyUsage, LruEntireExecutionApps)
{
    // §V-C: KMN, B+T, HYB and SPV used LRU for the entire run.  (The
    // paper also lists NW and MVT; our synthetic traces make LRU trigger
    // enough wrong evictions there that the adjustment switches — see
    // EXPERIMENTS.md — so those two only check the initial strategy.)
    for (const char *app : {"KMN", "B+T", "HYB", "SPV"}) {
        const Trace t = buildApp(app);
        const auto run = runFunctionalInspect(t, PolicyKind::Hpe, RunConfig{});
        const auto &timeline = run.hpe()->adjustment().timeline();
        ASSERT_FALSE(timeline.empty()) << app;
        for (const AdjustmentEvent &ev : timeline)
            EXPECT_EQ(ev.strategy, Strategy::Lru) << app;
    }
    for (const char *app : {"NW", "MVT"}) {
        const Trace t = buildApp(app);
        const auto run = runFunctionalInspect(t, PolicyKind::Hpe, RunConfig{});
        ASSERT_FALSE(run.hpe()->adjustment().timeline().empty()) << app;
        EXPECT_EQ(run.hpe()->adjustment().timeline().front().strategy,
                  Strategy::Lru)
            << app;
    }
}

TEST(StrategyUsage, MruCEntireExecutionApps)
{
    // §V-C: HOT, BKP, PAT, LEU, CUT, MRQ, 2DC and GEM used MRU-C with no
    // strategy switch under both rates (STN adjusts nothing either).
    for (const char *app : {"HOT", "BKP", "PAT", "LEU", "CUT", "2DC"}) {
        const Trace t = buildApp(app);
        const auto run = runFunctionalInspect(t, PolicyKind::Hpe, RunConfig{});
        const auto &timeline = run.hpe()->adjustment().timeline();
        ASSERT_FALSE(timeline.empty()) << app;
        for (const AdjustmentEvent &ev : timeline)
            EXPECT_EQ(ev.strategy, Strategy::MruC) << app;
    }
}

TEST(StrategyUsage, StnFootprintGuardBlocksJump)
{
    // §IV-E: STN's small old partition blocks the search-point jump.
    const Trace t = buildApp("STN");
    const auto run = runFunctionalInspect(t, PolicyKind::Hpe, RunConfig{});
    EXPECT_EQ(run.hpe()->adjustment().searchOffset(), 0u);
}

TEST(Determinism, FunctionalRunsAreReproducible)
{
    const Trace t = buildApp("BFS");
    const auto a = runFunctional(t, PolicyKind::Hpe, RunConfig{});
    const auto b = runFunctional(t, PolicyKind::Hpe, RunConfig{});
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.evictions, b.evictions);
}

} // namespace
} // namespace hpe
