/**
 * @file
 * Tests for the multi-level translation substrate: the radix page table,
 * the page walk cache, the multi-level walker, and their integration with
 * the UVM manager and the timing simulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "driver/uvm_manager.hpp"
#include "gpu/gpu_system.hpp"
#include "mem/radix_page_table.hpp"
#include "policy/lru.hpp"
#include "sim/experiment.hpp"
#include "tlb/multi_level_walker.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

TEST(RadixTable, MapLookupUnmap)
{
    RadixPageTable pt;
    pt.map(0x12345, 7);
    EXPECT_EQ(pt.lookup(0x12345), 7u);
    EXPECT_TRUE(pt.resident(0x12345));
    EXPECT_EQ(pt.unmap(0x12345), 7u);
    EXPECT_FALSE(pt.resident(0x12345));
}

TEST(RadixTable, LookupMissReturnsInvalid)
{
    RadixPageTable pt;
    EXPECT_EQ(pt.lookup(42), kInvalidId);
}

TEST(RadixTable, IndexAndPrefixArithmetic)
{
    RadixPageTable pt; // 9 bits per level
    const PageId page = (3ull << 27) | (5ull << 18) | (7ull << 9) | 11;
    EXPECT_EQ(pt.indexAt(page, 4), 3u);
    EXPECT_EQ(pt.indexAt(page, 3), 5u);
    EXPECT_EQ(pt.indexAt(page, 2), 7u);
    EXPECT_EQ(pt.indexAt(page, 1), 11u);
    EXPECT_EQ(pt.prefixAt(page, 1), page);
    EXPECT_EQ(pt.prefixAt(page, 4), 3u);
}

TEST(RadixTable, NodesAllocatedPerDistinctPath)
{
    RadixPageTable pt;
    pt.map(0, 0);
    EXPECT_EQ(pt.nodeCount(), 3u); // L3, L2, L1 nodes under the root
    pt.map(1, 1);                  // same leaf node
    EXPECT_EQ(pt.nodeCount(), 3u);
    pt.map(1ull << 9, 2); // new L1 node
    EXPECT_EQ(pt.nodeCount(), 4u);
}

TEST(RadixTable, UnmapPrunesEmptyNodes)
{
    RadixPageTable pt;
    pt.map(0, 0);
    pt.map(1ull << 27, 1); // a second full path
    EXPECT_EQ(pt.nodeCount(), 6u);
    pt.unmap(0);
    EXPECT_EQ(pt.nodeCount(), 3u);
    pt.unmap(1ull << 27);
    EXPECT_EQ(pt.nodeCount(), 0u);
    EXPECT_EQ(pt.size(), 0u);
}

TEST(RadixTable, SizeTracksMappings)
{
    RadixPageTable pt;
    for (PageId p = 0; p < 100; ++p)
        pt.map(p, p);
    EXPECT_EQ(pt.size(), 100u);
    for (PageId p = 0; p < 50; ++p)
        pt.unmap(p);
    EXPECT_EQ(pt.size(), 50u);
    for (PageId p = 50; p < 100; ++p)
        EXPECT_EQ(pt.lookup(p), p);
}

TEST(RadixTable, WalkVisitsEveryLevelOnHit)
{
    RadixPageTable pt;
    pt.map(5, 9);
    std::vector<unsigned> levels;
    EXPECT_EQ(pt.walk(5, [&](unsigned l) { levels.push_back(l); }), 9u);
    EXPECT_EQ(levels, (std::vector<unsigned>{4, 3, 2, 1}));
}

TEST(RadixTable, WalkStopsAtFirstAbsentEntry)
{
    RadixPageTable pt;
    pt.map(5, 9);
    std::vector<unsigned> levels;
    // A page sharing no path with page 5: missing at level 4.
    EXPECT_EQ(pt.walk(1ull << 27, [&](unsigned l) { levels.push_back(l); }),
              kInvalidId);
    EXPECT_EQ(levels, (std::vector<unsigned>{4}));
}

TEST(MultiLevelWalker, ColdWalkPaysFullDepth)
{
    StatRegistry stats;
    RadixPageTable pt;
    pt.map(5, 9);
    MultiLevelWalkerConfig cfg;
    MultiLevelWalker walker(pt, cfg, stats, "w");
    const WalkResult r = walker.walk(5);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.frame, 9u);
    EXPECT_EQ(r.latency, 4 * cfg.levelAccessCycles);
}

TEST(MultiLevelWalker, PwcAcceleratesWarmWalks)
{
    StatRegistry stats;
    RadixPageTable pt;
    pt.map(5, 9);
    pt.map(6, 10);
    MultiLevelWalkerConfig cfg;
    MultiLevelWalker walker(pt, cfg, stats, "w");
    walker.walk(5);
    // Page 6 shares all upper levels with page 5: only the leaf access
    // costs a full memory access.
    const WalkResult r = walker.walk(6);
    EXPECT_EQ(r.latency, 3 * cfg.pwcHitCycles + cfg.levelAccessCycles);
    EXPECT_GT(walker.pwcHitRate(), 0.0);
}

TEST(MultiLevelWalker, FaultLatencyStopsAtMissingLevel)
{
    StatRegistry stats;
    RadixPageTable pt;
    pt.map(5, 9);
    MultiLevelWalkerConfig cfg;
    MultiLevelWalker walker(pt, cfg, stats, "w");
    walker.walk(5); // warm the PWC
    // Different level-4 subtree: one cold level-4 access, then stop.
    const WalkResult r = walker.walk(1ull << 27);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, cfg.levelAccessCycles);
    EXPECT_EQ(stats.findCounter("w.faults").value(), 1u);
}

TEST(MultiLevelWalker, HitObserverFires)
{
    StatRegistry stats;
    RadixPageTable pt;
    pt.map(5, 9);
    MultiLevelWalkerConfig cfg;
    MultiLevelWalker walker(pt, cfg, stats, "w");
    std::vector<PageId> observed;
    walker.setHitObserver([&](PageId p) { observed.push_back(p); });
    walker.walk(5);
    walker.walk(99); // fault: no notification
    EXPECT_EQ(observed, (std::vector<PageId>{5}));
}

TEST(UvmManager, RadixMirrorStaysInSync)
{
    StatRegistry stats;
    LruPolicy lru;
    UvmMemoryManager uvm(2, lru, stats, "uvm");
    RadixPageTable radix;
    uvm.setRadixMirror(&radix);
    uvm.handleFault(1);
    uvm.handleFault(2);
    EXPECT_EQ(radix.size(), 2u);
    uvm.handleFault(3); // evicts page 1
    EXPECT_EQ(radix.size(), 2u);
    EXPECT_FALSE(radix.resident(1));
    EXPECT_TRUE(radix.resident(3));
    EXPECT_EQ(radix.lookup(3), uvm.pageTable().lookup(3));
}

TEST(MultiLevelMode, TimingRunCompletes)
{
    const Trace t = buildApp("STN", 0.5);
    RunConfig cfg;
    cfg.gpu.walkerMode = WalkerMode::MultiLevel;
    const auto r = runTiming(t, PolicyKind::Lru, cfg);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.faults, 0u);
}

TEST(MultiLevelMode, SameFaultShapeAsFixedLatency)
{
    // The walker design changes walk latency, not which pages fault; the
    // fault counts should be close (small divergence from timing skew).
    const Trace t = buildApp("HSD", 0.5);
    RunConfig fixed, multi;
    multi.gpu.walkerMode = WalkerMode::MultiLevel;
    const auto a = runTiming(t, PolicyKind::Lru, fixed);
    const auto b = runTiming(t, PolicyKind::Lru, multi);
    EXPECT_NEAR(static_cast<double>(b.faults) / static_cast<double>(a.faults),
                1.0, 0.15);
}

TEST(MultiLevelMode, PwcSeesTraffic)
{
    const Trace t = buildApp("MRQ");
    RunConfig cfg;
    cfg.gpu.walkerMode = WalkerMode::MultiLevel;
    const auto run = runTimingInspect(t, PolicyKind::Hpe, cfg);
    EXPECT_GT(run.stats->findCounter("gpu.walker.pwcHits").value(), 0u);
    EXPECT_GT(run.stats->findCounter("gpu.walker.pwcMisses").value(), 0u);
}

TEST(MultiLevelMode, HpeStillBeatsLruOnThrash)
{
    const Trace t = buildApp("HSD", 0.5);
    RunConfig cfg;
    cfg.gpu.walkerMode = WalkerMode::MultiLevel;
    const auto lru = runTiming(t, PolicyKind::Lru, cfg);
    const auto hpe = runTiming(t, PolicyKind::Hpe, cfg);
    EXPECT_GT(hpe.ipc, lru.ipc * 1.2);
}

} // namespace
} // namespace hpe
