/**
 * @file
 * Cross-cutting property tests:
 *
 *  - the stack (inclusion) property: LRU and MIN are stack algorithms, so
 *    their fault counts are monotonically non-increasing in memory size
 *    (parameterized over applications);
 *  - HPE's parameter space: the policy runs correctly across page-set
 *    sizes and interval lengths (parameterized sweep);
 *  - oversubscription monotonicity of the headline comparison.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

class StackPropertyTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(StackPropertyTest, LruFaultsMonotoneInMemorySize)
{
    const Trace t = buildApp(GetParam(), 0.5);
    std::uint64_t prev = UINT64_MAX;
    for (double oversub : {0.3, 0.5, 0.7, 0.9, 1.0}) {
        RunConfig cfg;
        cfg.oversub = oversub;
        const auto r = runFunctional(t, PolicyKind::Lru, cfg);
        EXPECT_LE(r.faults, prev) << "oversub " << oversub;
        prev = r.faults;
    }
}

TEST_P(StackPropertyTest, MinFaultsMonotoneInMemorySize)
{
    const Trace t = buildApp(GetParam(), 0.5);
    std::uint64_t prev = UINT64_MAX;
    for (double oversub : {0.3, 0.5, 0.7, 0.9, 1.0}) {
        RunConfig cfg;
        cfg.oversub = oversub;
        const auto r = runFunctional(t, PolicyKind::Ideal, cfg);
        EXPECT_LE(r.faults, prev) << "oversub " << oversub;
        prev = r.faults;
    }
}

TEST_P(StackPropertyTest, FullMemoryMeansCompulsoryFaultsOnly)
{
    const Trace t = buildApp(GetParam(), 0.5);
    RunConfig cfg;
    cfg.oversub = 1.0;
    for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Hpe,
                            PolicyKind::Ideal}) {
        const auto r = runFunctional(t, kind, cfg);
        EXPECT_EQ(r.faults, t.footprintPages()) << policyKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, StackPropertyTest,
                         ::testing::Values("HOT", "GEM", "HSD", "KMN", "NW",
                                           "BFS", "HIS", "B+T"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '+')
                                     c = 'p';
                             return name;
                         });

/** HPE parameter sweep: (page set size, interval length). */
class HpeParamSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>>
{};

TEST_P(HpeParamSweepTest, RunsCorrectlyAndBeatsThrashingLru)
{
    const auto [set_size, interval] = GetParam();
    const Trace t = buildApp("HSD", 0.5);
    RunConfig cfg;
    cfg.hpe.pageSetSize = set_size;
    cfg.hpe.intervalLength = interval;
    cfg.hpe.wrongEvictionThreshold = set_size;
    cfg.hpe.fifoDepth = 2 * interval;
    const auto hpe = runFunctional(t, PolicyKind::Hpe, cfg);
    const auto lru = runFunctional(t, PolicyKind::Lru, cfg);
    const auto ideal = runFunctional(t, PolicyKind::Ideal, cfg);
    EXPECT_GE(hpe.faults, ideal.faults);
    // Every configuration must still beat LRU on the thrashing pattern
    // (the policy's raison d'etre); the paper itself reports interval 128
    // "performs unstably" for type II, so only the shorter intervals get
    // the strong bound.
    EXPECT_LT(hpe.faults, lru.faults)
        << "set size " << set_size << ", interval " << interval;
    if (interval <= 64) {
        EXPECT_LT(hpe.faults, lru.faults * 0.8)
            << "set size " << set_size << ", interval " << interval;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HpeParamSweepTest,
    ::testing::Combine(::testing::Values(8u, 16u, 32u),
                       ::testing::Values(32u, 64u, 128u)),
    [](const auto &info) {
        return "set" + std::to_string(std::get<0>(info.param)) + "_interval"
            + std::to_string(std::get<1>(info.param));
    });

TEST_P(StackPropertyTest, PrefetchNeverWorsensFullMemory)
{
    // At oversub 1.0 a prefetcher can only convert compulsory faults into
    // speculative migrations: every footprint page becomes resident via a
    // fault or a prefetch, and the only memory pressure speculation can
    // create is its own (the density prefetcher may guess past the
    // footprint edge in the last partial basin) — so any eviction must be
    // an unreferenced speculative page, never tracked data.
    const Trace t = buildApp(GetParam(), 0.5);
    RunConfig cfg;
    cfg.oversub = 1.0;
    cfg.gpu.driver.prefetch.kind = prefetch::PrefetchKind::Density;
    cfg.gpu.driver.prefetch.degree = 16;
    const auto r = runFunctional(t, PolicyKind::Lru, cfg);
    EXPECT_LE(r.faults, t.footprintPages());
    EXPECT_EQ(r.faults + r.hits, r.references);
    EXPECT_EQ(r.evictions, r.prefetchWasted);
    EXPECT_LE(t.footprintPages(), r.faults + r.prefetches);
}

TEST(GpuCorners, SingleVisitTrace)
{
    Trace t("1", "one", "s", PatternType::I);
    t.add(5, 1);
    RunConfig cfg;
    cfg.oversub = 1.0;
    const auto r = runTiming(t, PolicyKind::Lru, cfg);
    EXPECT_EQ(r.instructions, 1u);
    EXPECT_EQ(r.faults, 1u);
}

TEST(GpuCorners, ManyKernelsOfOneVisit)
{
    Trace t("K", "kernels", "s", PatternType::VI);
    for (PageId p = 0; p < 20; ++p) {
        t.beginKernel();
        t.add(p, 2);
    }
    RunConfig cfg;
    cfg.oversub = 1.0;
    const auto r = runTiming(t, PolicyKind::Lru, cfg);
    EXPECT_EQ(r.instructions, 40u);
    EXPECT_EQ(r.faults, 20u);
}

TEST(GpuCorners, TinyMemoryOfOneFrame)
{
    Trace t("T", "tiny", "s", PatternType::II);
    for (int pass = 0; pass < 2; ++pass)
        for (PageId p = 0; p < 4; ++p)
            t.add(p, 1);
    StatRegistry stats;
    auto policy = makePolicy(PolicyKind::Lru, t, stats);
    const auto r = runPaging(t, *policy, 1, stats);
    EXPECT_EQ(r.faults, 8u); // one frame: everything faults
}

TEST(GpuCorners, HpeWithOneFrame)
{
    Trace t("T", "tiny", "s", PatternType::II);
    for (int pass = 0; pass < 3; ++pass)
        for (PageId p = 0; p < 4; ++p)
            t.add(p, 1);
    StatRegistry stats;
    auto policy = makePolicy(PolicyKind::Hpe, t, stats);
    const auto r = runPaging(t, *policy, 1, stats);
    EXPECT_EQ(r.faults, 12u);
}

} // namespace
} // namespace hpe
