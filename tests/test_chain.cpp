/**
 * @file
 * Unit tests for the page-set chain: partitions, interval rotation,
 * counters, bit vectors, division, and the history buffer (§IV-C).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "core/page_set_chain.hpp"

namespace hpe {
namespace {

class ChainTest : public ::testing::Test
{
  protected:
    ChainTest() : chain_(cfg_, stats_, "chain") {}

    std::vector<PageSetId>
    partitionSets(Partition p)
    {
        std::vector<PageSetId> out;
        for (ChainEntry &e : chain_.partition(p))
            out.push_back(e.set);
        return out;
    }

    HpeConfig cfg_{};
    StatRegistry stats_;
    PageSetChain chain_;
};

TEST_F(ChainTest, SetArithmetic)
{
    EXPECT_EQ(chain_.setOf(0x123), 0x12u);
    EXPECT_EQ(chain_.offsetOf(0x123), 3u);
    EXPECT_EQ(chain_.pageAt(0x12, 3), 0x123u);
}

TEST_F(ChainTest, TouchCreatesEntryInNewPartition)
{
    const TouchResult r = chain_.touch(16 * 7 + 2, 1, true);
    EXPECT_TRUE(r.created);
    EXPECT_EQ(r.entry->set, 7u);
    EXPECT_EQ(r.entry->part, Partition::New);
    EXPECT_EQ(r.entry->counter, 1u);
    EXPECT_EQ(r.entry->bitVec, std::uint64_t{1} << 2);
}

TEST_F(ChainTest, HitsDoNotSetBitVector)
{
    const TouchResult r = chain_.touch(5, 3, /*is_fault=*/false);
    EXPECT_EQ(r.entry->counter, 3u);
    EXPECT_EQ(r.entry->bitVec, 0u);
}

TEST_F(ChainTest, CounterSaturates)
{
    ChainEntry *e = chain_.touch(0, 60, true).entry;
    chain_.touch(0, 60, true);
    EXPECT_EQ(e->counter, cfg_.counterMax);
}

TEST_F(ChainTest, NewEntriesOrderedMruAtBack)
{
    chain_.touch(16 * 1, 1, true);
    chain_.touch(16 * 2, 1, true);
    chain_.touch(16 * 3, 1, true);
    EXPECT_EQ(partitionSets(Partition::New), (std::vector<PageSetId>{1, 2, 3}));
}

TEST_F(ChainTest, IntervalRotationMovesPartitions)
{
    chain_.touch(16 * 1, 1, true);
    chain_.endInterval();
    chain_.touch(16 * 2, 1, true);
    EXPECT_EQ(partitionSets(Partition::Middle), (std::vector<PageSetId>{1}));
    EXPECT_EQ(partitionSets(Partition::New), (std::vector<PageSetId>{2}));
    chain_.endInterval();
    EXPECT_EQ(partitionSets(Partition::Old), (std::vector<PageSetId>{1}));
    EXPECT_EQ(partitionSets(Partition::Middle), (std::vector<PageSetId>{2}));
    EXPECT_TRUE(chain_.partition(Partition::New).empty());
}

TEST_F(ChainTest, OldAbsorbsMiddlePreservingRecencyOrder)
{
    chain_.touch(16 * 1, 1, true);
    chain_.endInterval();
    chain_.touch(16 * 2, 1, true);
    chain_.endInterval();
    chain_.touch(16 * 3, 1, true);
    chain_.endInterval();
    // Sets 1 and 2 are now both old; 1 (older) stays nearer the LRU end.
    EXPECT_EQ(partitionSets(Partition::Old), (std::vector<PageSetId>{1, 2}));
}

TEST_F(ChainTest, TouchMovesOldEntryToNewMru)
{
    chain_.touch(16 * 1, 1, true);
    chain_.touch(16 * 2, 1, true);
    chain_.endInterval();
    chain_.endInterval();
    ASSERT_EQ(partitionSets(Partition::Old).size(), 2u);
    chain_.touch(16 * 1 + 5, 1, true);
    EXPECT_EQ(partitionSets(Partition::Old), (std::vector<PageSetId>{2}));
    EXPECT_EQ(partitionSets(Partition::New), (std::vector<PageSetId>{1}));
}

TEST_F(ChainTest, NoReorderWithinNewPartition)
{
    chain_.touch(16 * 1, 1, true);
    chain_.touch(16 * 2, 1, true);
    chain_.touch(16 * 1, 1, true); // re-touch: no movement (§IV-C note 2)
    EXPECT_EQ(partitionSets(Partition::New), (std::vector<PageSetId>{1, 2}));
    EXPECT_EQ(stats_.findCounter("chain.movements").value(), 0u);
}

TEST_F(ChainTest, DivisionOnSaturationWithIncompleteBitVector)
{
    // Fault only even offsets; saturate the counter with hits.
    for (std::uint32_t off = 0; off < 16; off += 2)
        chain_.touch(off, 1, true);
    TouchResult r = chain_.touch(0, 60, false); // saturates at 64
    EXPECT_TRUE(r.dividedNow);
    EXPECT_TRUE(r.entry->divided);
    EXPECT_EQ(r.entry->primaryMask, 0x5555u);
}

TEST_F(ChainTest, NoDivisionWhenFullyPopulated)
{
    for (std::uint32_t off = 0; off < 16; ++off)
        chain_.touch(off, 4, true); // counter 64, all bits set
    ChainEntry *e = chain_.find(0, false);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->counter == cfg_.counterMax);
    EXPECT_FALSE(e->divided);
}

TEST_F(ChainTest, SecondaryEntryCreatedForNonPrimaryPages)
{
    for (std::uint32_t off = 0; off < 16; off += 2)
        chain_.touch(off, 1, true);
    chain_.touch(0, 60, false); // divide: primary = even offsets
    // Touching an odd page now creates the secondary entry.
    const TouchResult r = chain_.touch(3, 1, true);
    EXPECT_TRUE(r.created);
    EXPECT_TRUE(r.entry->secondary);
    EXPECT_NE(chain_.find(0, true), nullptr);
    EXPECT_NE(chain_.find(0, false), chain_.find(0, true));
}

TEST_F(ChainTest, BelongsToPrimaryConsultsLiveDividedEntry)
{
    for (std::uint32_t off = 0; off < 16; off += 2)
        chain_.touch(off, 1, true);
    chain_.touch(0, 60, false);
    EXPECT_TRUE(chain_.belongsToPrimary(2));
    EXPECT_FALSE(chain_.belongsToPrimary(3));
}

TEST_F(ChainTest, HistoryRecordsFirstDivisionOnRemoval)
{
    for (std::uint32_t off = 0; off < 16; off += 2)
        chain_.touch(off, 1, true);
    chain_.touch(0, 60, false);
    ChainEntry *primary = chain_.find(0, false);
    chain_.remove(*primary);
    EXPECT_EQ(chain_.historySize(), 1u);
    // After removal, the history still routes odd pages to the secondary.
    EXPECT_TRUE(chain_.belongsToPrimary(4));
    EXPECT_FALSE(chain_.belongsToPrimary(5));
}

TEST_F(ChainTest, ReinsertedPrimaryInheritsFirstDivision)
{
    for (std::uint32_t off = 0; off < 16; off += 2)
        chain_.touch(off, 1, true);
    chain_.touch(0, 60, false);
    chain_.remove(*chain_.find(0, false));
    // Re-touch an even page: a fresh primary entry with the sticky mask.
    const TouchResult r = chain_.touch(2, 1, true);
    EXPECT_TRUE(r.created);
    EXPECT_TRUE(r.entry->divided);
    EXPECT_EQ(r.entry->primaryMask, 0x5555u);
}

TEST_F(ChainTest, FirstDivisionResultIsSticky)
{
    for (std::uint32_t off = 0; off < 16; off += 2)
        chain_.touch(off, 1, true);
    chain_.touch(0, 60, false);
    chain_.remove(*chain_.find(0, false));
    // Second life: fault odd pages into the secondary, saturate primary
    // again with a different population; the history keeps mask #1.
    chain_.touch(2, 60, false);
    chain_.remove(*chain_.find(0, false));
    EXPECT_EQ(chain_.historySize(), 1u);
    EXPECT_FALSE(chain_.belongsToPrimary(1));
}

TEST_F(ChainTest, RemoveDropsEntry)
{
    chain_.touch(16 * 4, 1, true);
    chain_.remove(*chain_.find(4, false));
    EXPECT_EQ(chain_.find(4, false), nullptr);
    EXPECT_EQ(chain_.size(), 0u);
}

TEST_F(ChainTest, SecondaryNeverDivides)
{
    for (std::uint32_t off = 0; off < 16; off += 2)
        chain_.touch(off, 1, true);
    chain_.touch(0, 60, false); // divide
    chain_.touch(1, 1, true);   // secondary, one odd page faulted
    chain_.touch(1, 63, false); // saturate the secondary
    ChainEntry *sec = chain_.find(0, true);
    ASSERT_NE(sec, nullptr);
    EXPECT_FALSE(sec->divided);
}

TEST_F(ChainTest, ForEachVisitsAllPartitions)
{
    chain_.touch(16 * 1, 1, true);
    chain_.endInterval();
    chain_.touch(16 * 2, 1, true);
    chain_.endInterval();
    chain_.touch(16 * 3, 1, true);
    int n = 0;
    chain_.forEach([&](ChainEntry &) { ++n; });
    EXPECT_EQ(n, 3);
}

TEST(ChainConfig, PageSetSizeEightWorks)
{
    StatRegistry stats;
    HpeConfig cfg;
    cfg.pageSetSize = 8;
    PageSetChain chain(cfg, stats, "c");
    EXPECT_EQ(chain.setOf(17), 2u);
    EXPECT_EQ(chain.offsetOf(17), 1u);
    chain.touch(17, 1, true);
    EXPECT_NE(chain.find(2, false), nullptr);
}

TEST(ChainConfig, PageSetSizeThirtyTwoWorks)
{
    StatRegistry stats;
    HpeConfig cfg;
    cfg.pageSetSize = 32;
    cfg.counterMax = 64;
    PageSetChain chain(cfg, stats, "c");
    chain.touch(33, 1, true);
    EXPECT_NE(chain.find(1, false), nullptr);
}

} // namespace
} // namespace hpe
