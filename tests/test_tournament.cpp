/**
 * @file
 * Tests for the tournament harness: canonical cell order, reduction
 * arithmetic, byte-identical JSON across --jobs, and the leaderboard
 * document structure the CI gate consumes.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/tournament.hpp"

namespace hpe {
namespace {

TournamentConfig
tinyConfig(unsigned jobs)
{
    TournamentConfig cfg;
    cfg.apps = {"STN", "MXT"};
    cfg.policies = {"LRU", "RRIP", "Meta-duel"};
    cfg.prefetchers = {"none"};
    cfg.oversubs = {0.5};
    cfg.scale = 0.1;
    cfg.seed = 1;
    cfg.jobs = jobs;
    return cfg;
}

TEST(Tournament, CellsFollowCanonicalOrder)
{
    const Leaderboard board = runTournament(tinyConfig(1));
    ASSERT_EQ(board.cells.size(), 6u);
    // app outer, policy inner; every cell carries digest + fingerprint.
    EXPECT_EQ(board.cells[0].app, "STN");
    EXPECT_EQ(board.cells[0].policy, "LRU");
    EXPECT_EQ(board.cells[2].policy, "Meta-duel");
    EXPECT_EQ(board.cells[3].app, "MXT");
    for (const TournamentCell &cell : board.cells) {
        EXPECT_FALSE(cell.digest.empty());
        EXPECT_EQ(cell.fingerprint.size(), 16u);
        EXPECT_GT(cell.references, 0u);
    }
}

TEST(Tournament, JsonByteIdenticalAcrossJobs)
{
    const std::string one = runTournament(tinyConfig(1)).toJson().dump();
    const std::string four = runTournament(tinyConfig(4)).toJson().dump();
    EXPECT_EQ(one, four);
    EXPECT_NE(one.find("\"tool_version\":\"hpe-tournament/1\""),
              std::string::npos)
        << one.substr(0, 200);
}

TEST(Tournament, LeaderboardAggregatesAreConsistent)
{
    const Leaderboard board = runTournament(tinyConfig(2));
    ASSERT_EQ(board.rows.size(), 3u);
    // Rows are sorted best geomean first, and LRU's speedup vs itself
    // is exactly 1.
    for (std::size_t i = 1; i < board.rows.size(); ++i)
        EXPECT_GE(board.rows[i - 1].geomeanSpeedupVsLru,
                  board.rows[i].geomeanSpeedupVsLru);
    const auto lru = std::find_if(
        board.rows.begin(), board.rows.end(),
        [](const TournamentRow &r) { return r.policy == "LRU"; });
    ASSERT_NE(lru, board.rows.end());
    EXPECT_DOUBLE_EQ(lru->geomeanSpeedupVsLru, 1.0);

    // Win matrix is antisymmetric-with-ties: wins(i,j) + wins(j,i) can
    // never exceed the number of cell groups (2 here).
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) {
            if (i == j)
                continue;
            EXPECT_LE(board.winMatrix[i][j] + board.winMatrix[j][i], 2u);
        }

    const std::string md = board.toMarkdown();
    EXPECT_NE(md.find("## Standings"), std::string::npos);
    EXPECT_NE(md.find("## Win matrix"), std::string::npos);
    EXPECT_NE(md.find("## Adaptive wins"), std::string::npos);
}

TEST(Tournament, QuickConfigPinsTheCiProbeSet)
{
    const TournamentConfig cfg = TournamentConfig::quick();
    EXPECT_EQ(cfg.apps.size(), 6u);
    EXPECT_EQ(cfg.policies.size(), 6u);
    EXPECT_EQ(cfg.prefetchers.size(), 4u);
    EXPECT_EQ(cfg.oversubs.size(), 2u);
    EXPECT_EQ(cfg.cellCount(), 6u * 6u * 4u * 2u);
    EXPECT_DOUBLE_EQ(cfg.scale, 0.1);
    // The probe set must include the phase-changing co-run schedules —
    // they are where the adaptive-win claim lives.
    for (const char *mix : {"MXT", "MXS", "MXR"})
        EXPECT_NE(std::find(cfg.apps.begin(), cfg.apps.end(), mix),
                  cfg.apps.end());
}

TEST(Tournament, RejectsConfigWithoutLruBaseline)
{
    TournamentConfig cfg = tinyConfig(1);
    cfg.policies = {"RRIP", "HPE"};
    EXPECT_DEATH(runTournament(cfg), "LRU baseline");
}

} // namespace
} // namespace hpe
