/**
 * @file
 * Randomized property tests on the page-set chain and the full HPE
 * policy: for arbitrary touch/interval/remove sequences the chain's
 * internal structure must stay consistent, and for random reference
 * strings HPE must uphold the driver protocol.
 */

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/hpe_policy.hpp"
#include "core/page_set_chain.hpp"

namespace hpe {
namespace {

/** Structural invariants that must hold after any operation sequence. */
void
checkChainInvariants(PageSetChain &chain)
{
    std::size_t linked = 0;
    std::unordered_set<std::uint64_t> seen;
    for (Partition p : {Partition::Old, Partition::Middle, Partition::New}) {
        for (ChainEntry &e : chain.partition(p)) {
            ++linked;
            // Every entry knows which partition list holds it.
            ASSERT_EQ(e.part, p);
            // No duplicate (set, secondary) keys anywhere on the chain.
            ASSERT_TRUE(seen.insert(ChainEntry::keyOf(e.set, e.secondary)).second);
            // Counters never exceed the ceiling.
            ASSERT_LE(e.counter, HpeConfig{}.counterMax);
            // A divided primary's mask is a nonempty strict subset.
            if (e.divided && !e.secondary) {
                ASSERT_NE(e.primaryMask, 0u);
                ASSERT_NE(e.primaryMask, 0xFFFFu);
            }
        }
    }
    // The index and the three lists agree on the population.
    ASSERT_EQ(linked, chain.size());
}

class ChainFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ChainFuzzTest, InvariantsSurviveRandomOperations)
{
    Rng rng(GetParam());
    StatRegistry stats;
    HpeConfig cfg;
    PageSetChain chain(cfg, stats, "chain");

    for (int op = 0; op < 4000; ++op) {
        const auto roll = rng.below(100);
        if (roll < 70) {
            // Touch a page (faults and hits, varying counts).
            chain.touch(rng.below(600), 1 + rng.below(4) % 4,
                        rng.chance(0.5));
        } else if (roll < 80) {
            chain.endInterval();
        } else if (roll < 95) {
            // Remove a random entry if one exists.
            const PageSetId set = rng.below(40);
            const bool secondary = rng.chance(0.2);
            if (ChainEntry *e = chain.find(set, secondary); e != nullptr)
                chain.remove(*e);
        } else {
            checkChainInvariants(chain);
        }
    }
    checkChainInvariants(chain);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class HpeFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(HpeFuzzTest, DriverProtocolHoldsOnRandomStrings)
{
    Rng rng(GetParam());
    StatRegistry stats;
    HpeConfig cfg;
    // Exercise both hit channels across the seeds.
    if (GetParam() % 2 == 0)
        cfg.hitChannel = HitChannel::Direct;
    HpePolicy policy(cfg, stats);

    const std::size_t frames = 48 + GetParam() % 32;
    std::unordered_set<PageId> resident;

    PageId cursor = 0;
    for (int i = 0; i < 6000; ++i) {
        // Mixture of sequential runs, jumps, and revisits over 300 pages.
        if (rng.chance(0.2))
            cursor = rng.below(300);
        else
            cursor = (cursor + 1) % 300;
        const PageId page = cursor;

        if (resident.contains(page)) {
            policy.onHit(page);
            continue;
        }
        policy.onFault(page);
        if (resident.size() == frames) {
            const PageId victim = policy.selectVictim();
            ASSERT_TRUE(resident.contains(victim))
                << "victim " << victim << " not resident (seed "
                << GetParam() << ", step " << i << ")";
            resident.erase(victim);
            policy.onEvict(victim);
        }
        resident.insert(page);
        policy.onMigrateIn(page);
    }
    // The policy's residency bookkeeping agrees with the driver's.
    EXPECT_EQ(resident.size(), frames);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HpeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

} // namespace
} // namespace hpe
