/**
 * @file
 * Tests for the workload module: trace mechanics, pattern-builder
 * properties, and per-application invariants (parameterized over all 23
 * applications of Table II).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"
#include "workload/trace.hpp"

namespace hpe {
namespace {

TEST(Trace, AddAndSize)
{
    Trace t("X", "x", "s", PatternType::I);
    t.add(1);
    t.add(2, 4);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.refs()[1].burst, 4);
}

TEST(Trace, FootprintCountsUniquePages)
{
    Trace t("X", "x", "s", PatternType::I);
    t.add(1);
    t.add(2);
    t.add(1);
    EXPECT_EQ(t.footprintPages(), 2u);
}

TEST(Trace, CanonicalPagesMatchesRefs)
{
    Trace t("X", "x", "s", PatternType::I);
    t.add(5);
    t.add(9);
    auto pages = t.canonicalPages();
    EXPECT_EQ(*pages, (std::vector<PageId>{5, 9}));
}

TEST(Trace, SingleKernelByDefault)
{
    Trace t("X", "x", "s", PatternType::I);
    t.add(1);
    t.add(2);
    EXPECT_EQ(t.kernelCount(), 1u);
    EXPECT_EQ(t.kernelRange(0), (std::pair<std::size_t, std::size_t>{0, 2}));
}

TEST(Trace, KernelBoundariesPartitionRefs)
{
    Trace t("X", "x", "s", PatternType::II);
    t.beginKernel();
    t.add(1);
    t.add(2);
    t.beginKernel();
    t.add(3);
    EXPECT_EQ(t.kernelCount(), 2u);
    EXPECT_EQ(t.kernelRange(0), (std::pair<std::size_t, std::size_t>{0, 2}));
    EXPECT_EQ(t.kernelRange(1), (std::pair<std::size_t, std::size_t>{2, 3}));
}

TEST(Trace, LeadingRefsBeforeFirstBoundaryFormAKernel)
{
    Trace t("X", "x", "s", PatternType::II);
    t.add(1);
    t.beginKernel();
    t.add(2);
    EXPECT_EQ(t.kernelCount(), 2u);
    EXPECT_EQ(t.kernelRange(0), (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(Trace, ConsecutiveBoundariesCollapse)
{
    Trace t("X", "x", "s", PatternType::II);
    t.beginKernel();
    t.beginKernel();
    t.add(1);
    EXPECT_EQ(t.kernelCount(), 1u);
}

TEST(Patterns, StreamVisitsEachPageOnce)
{
    Trace t("X", "x", "s", PatternType::I);
    patterns::stream(t, 100, 8, 1);
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.refs().front().page, 100u);
    EXPECT_EQ(t.refs().back().page, 107u);
}

TEST(Patterns, StreamWithRefsRepeatsBackToBack)
{
    Trace t("X", "x", "s", PatternType::I);
    patterns::stream(t, 0, 3, 2);
    std::vector<PageId> pages;
    for (auto &r : t.refs())
        pages.push_back(r.page);
    EXPECT_EQ(pages, (std::vector<PageId>{0, 0, 1, 1, 2, 2}));
}

TEST(Patterns, ThrashRepeatsAndMarksKernels)
{
    Trace t("X", "x", "s", PatternType::II);
    patterns::thrash(t, 0, 10, 3);
    EXPECT_EQ(t.size(), 30u);
    EXPECT_EQ(t.kernelCount(), 3u);
    EXPECT_EQ(t.footprintPages(), 10u);
}

TEST(Patterns, StridedSweepSkipsPages)
{
    Trace t("X", "x", "s", PatternType::IV);
    patterns::stridedSweep(t, 0, 16, 4, 1, 1);
    std::vector<PageId> pages;
    for (auto &r : t.refs())
        pages.push_back(r.page);
    EXPECT_EQ(pages, (std::vector<PageId>{0, 4, 8, 12}));
}

TEST(Patterns, EvenOddPhasesSeparateParities)
{
    Trace t("X", "x", "s", PatternType::IV);
    patterns::evenOddPhases(t, 0, 6, 1, 1);
    std::vector<PageId> pages;
    for (auto &r : t.refs())
        pages.push_back(r.page);
    EXPECT_EQ(pages, (std::vector<PageId>{0, 2, 4, 1, 3, 5}));
    EXPECT_EQ(t.kernelCount(), 2u);
}

TEST(Patterns, RegionMovingCoversAllRegionsInOrder)
{
    Trace t("X", "x", "s", PatternType::VI);
    patterns::regionMoving(t, 0, 40, 4, 2, 1);
    // Region r pages = [10r, 10r+10); once a later region starts, earlier
    // pages never reappear.
    PageId max_region_seen = 0;
    for (auto &r : t.refs()) {
        const PageId region = r.page / 10;
        EXPECT_GE(region + 1, max_region_seen + 1 - 1);
        max_region_seen = std::max(max_region_seen, region);
        EXPECT_EQ(region, max_region_seen); // never revisit older regions
    }
    EXPECT_EQ(t.footprintPages(), 40u);
}

TEST(Patterns, PartRepetitiveBlocksKeepsBlockUniformCounts)
{
    Trace t("X", "x", "s", PatternType::III);
    Rng rng(5);
    patterns::partRepetitiveBlocks(t, 0, 160, 16, 0.5, 1, rng);
    std::map<PageId, int> counts;
    for (auto &r : t.refs())
        ++counts[r.page];
    // Within every 16-page block all pages have the same count.
    for (PageId block = 0; block < 10; ++block) {
        const int c0 = counts[block * 16];
        for (PageId off = 1; off < 16; ++off)
            EXPECT_EQ(counts[block * 16 + off], c0) << "block " << block;
    }
}

TEST(Patterns, PartRepetitivePagesProducesVaryingCounts)
{
    Trace t("X", "x", "s", PatternType::III);
    Rng rng(5);
    patterns::partRepetitivePages(t, 0, 320, 0.5, 3, 16, rng);
    std::map<PageId, int> counts;
    for (auto &r : t.refs())
        ++counts[r.page];
    std::set<int> distinct;
    for (auto &[p, c] : counts)
        distinct.insert(c);
    EXPECT_GE(distinct.size(), 3u); // 1..4 visits occur
    EXPECT_EQ(t.footprintPages(), 320u);
}

TEST(Patterns, FrontierLevelsStaysInRange)
{
    Trace t("X", "x", "s", PatternType::IV);
    Rng rng(9);
    patterns::frontierLevels(t, 0, 200, 3, 0.4, rng);
    for (auto &r : t.refs())
        EXPECT_LT(r.page, 200u);
    EXPECT_EQ(t.kernelCount(), 3u);
}

TEST(Patterns, SkewedRandomConcentratesOnHotPages)
{
    Trace t("X", "x", "s", PatternType::V);
    Rng rng(3);
    patterns::skewedRandom(t, 0, 1000, 10000, 0.1, 0.6, rng);
    std::size_t hot_hits = 0;
    for (auto &r : t.refs())
        hot_hits += r.page < 100 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hot_hits) / 10000.0, 0.6, 0.05);
}

TEST(Apps, TwentyThreeApplications)
{
    EXPECT_EQ(appSpecs().size(), 23u);
}

TEST(Apps, ExtraElidedApplicationsBuild)
{
    EXPECT_EQ(extraAppSpecs().size(), 4u);
    for (const AppSpec &spec : extraAppSpecs()) {
        const Trace t = buildApp(spec.abbr);
        EXPECT_GT(t.size(), 0u) << spec.abbr;
        EXPECT_EQ(t.pattern(), spec.type) << spec.abbr;
        EXPECT_GE(t.footprintPages(), 64u) << spec.abbr;
    }
}

TEST(Apps, ExtraAppsNotInTableTwo)
{
    for (const AppSpec &extra : extraAppSpecs())
        for (const AppSpec &main_app : appSpecs())
            EXPECT_STRNE(extra.abbr, main_app.abbr);
}

TEST(Apps, MyocyteFootprintIsTiny)
{
    // "Too small footprint" is why the paper elided it.
    EXPECT_LT(buildApp("MYO").footprintPages(), 256u);
}

TEST(Apps, WriteFractionsAssigned)
{
    EXPECT_GT(buildApp("HSD").writeFraction(), 0.4);
    EXPECT_LT(buildApp("SPV").writeFraction(), 0.2);
}

TEST(Apps, LookupByAbbreviation)
{
    EXPECT_STREQ(appSpec("HSD").name, "hotspot3D");
    EXPECT_EQ(appSpec("MVT").type, PatternType::IV);
}

TEST(Apps, PatternTypeCountsMatchTableII)
{
    std::map<PatternType, int> per_type;
    for (const AppSpec &s : appSpecs())
        ++per_type[s.type];
    EXPECT_EQ(per_type[PatternType::I], 5);
    EXPECT_EQ(per_type[PatternType::II], 4);
    EXPECT_EQ(per_type[PatternType::III], 5);
    EXPECT_EQ(per_type[PatternType::IV], 3);
    EXPECT_EQ(per_type[PatternType::V], 4);
    EXPECT_EQ(per_type[PatternType::VI], 2);
}

TEST(Apps, NwTouchesEvenPagesBeforeOdd)
{
    const Trace t = buildApp("NW");
    // The first half of the first phase touches only even pages.
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(t.refs()[i].page % 2, 0u) << "ref " << i;
}

TEST(Apps, MvtTouchesStrideFourPagesOnly)
{
    const Trace t = buildApp("MVT");
    for (auto &r : t.refs())
        EXPECT_EQ(r.page % 4, 0u);
}

TEST(Apps, HsdHasSixThrashPasses)
{
    const Trace t = buildApp("HSD");
    EXPECT_EQ(t.kernelCount(), 6u);
    EXPECT_EQ(t.size(), 6 * t.footprintPages());
}

TEST(Apps, ScaleGrowsFootprint)
{
    const Trace small = buildApp("HOT", 0.5);
    const Trace big = buildApp("HOT", 2.0);
    EXPECT_LT(small.footprintPages(), big.footprintPages());
    EXPECT_NEAR(static_cast<double>(big.footprintPages())
                    / static_cast<double>(small.footprintPages()),
                4.0, 0.2);
}

/** Per-application invariants, parameterized over all 23 apps. */
class AppTraceTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(AppTraceTest, NonEmptyAndPageSetAligned)
{
    const Trace t = buildApp(GetParam());
    EXPECT_GT(t.size(), 0u);
    EXPECT_GT(t.footprintPages(), 63u);
    EXPECT_EQ(appSpec(GetParam()).type, t.pattern());
}

TEST_P(AppTraceTest, DeterministicForEqualSeeds)
{
    const Trace a = buildApp(GetParam(), 1.0, 7);
    const Trace b = buildApp(GetParam(), 1.0, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.refs()[i].page, b.refs()[i].page);
}

TEST_P(AppTraceTest, PagesWithinFootprintRange)
{
    const Trace t = buildApp(GetParam());
    PageId max_page = 0;
    for (auto &r : t.refs())
        max_page = std::max(max_page, r.page);
    // Pages are dense-ish: the top page is within 4x of the unique count.
    EXPECT_LT(max_page, 4 * t.footprintPages() + 64);
}

TEST_P(AppTraceTest, KernelRangesCoverTraceExactly)
{
    const Trace t = buildApp(GetParam());
    std::size_t covered = 0;
    for (std::size_t k = 0; k < t.kernelCount(); ++k) {
        const auto [b, e] = t.kernelRange(k);
        EXPECT_EQ(b, covered);
        EXPECT_LE(e, t.size());
        covered = e;
    }
    EXPECT_EQ(covered, t.size());
}

TEST_P(AppTraceTest, BurstsArePositive)
{
    const Trace t = buildApp(GetParam());
    for (auto &r : t.refs())
        EXPECT_GT(r.burst, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppTraceTest,
    ::testing::Values("HOT", "LEU", "CUT", "2DC", "GEM", "SRD", "HSD", "MRQ",
                      "STN", "PAT", "DWT", "BKP", "KMN", "SAD", "NW", "BFS",
                      "MVT", "HWL", "SGM", "HIS", "SPV", "B+T", "HYB"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '+')
                c = 'p';
        return name;
    });

} // namespace
} // namespace hpe
