/**
 * @file
 * Tests for the ResultStore write-ahead journal: append/recover round
 * trips, supersede and tombstone semantics, segment rotation,
 * compaction, degradation to memory-only on append failure, and the
 * crash-recovery property the kill-9 proof rests on — a journal
 * truncated at *any* byte offset (the randomized torn-tail property)
 * recovers exactly the records whose frames are intact and truncates
 * the tear instead of refusing to start.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "serve/result_store.hpp"

namespace hpe::serve {
namespace {

namespace fs = std::filesystem;

/** A fresh store directory under the test temp dir, wiped up front. */
fs::path
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / ("store_" + name);
    fs::remove_all(dir);
    return dir;
}

ResultStoreConfig
config(const fs::path &dir)
{
    ResultStoreConfig cfg;
    cfg.dir = dir.string();
    return cfg;
}

/** Journal segment files in @p dir, sorted by name (= sequence). */
std::vector<fs::path>
segmentFiles(const fs::path &dir)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind("journal-", 0) == 0)
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(ResultStore, AppendsRecoverAcrossReopenInLastWriteOrder)
{
    const fs::path dir = freshDir("roundtrip");
    {
        ResultStore store(config(dir));
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        EXPECT_EQ(store.recoveredCount(), 0u);
        store.append("fp-a", "payload-a", false);
        store.append("fp-b", "payload-b", true);
        store.append("fp-c", "payload-c", false);
        EXPECT_EQ(store.appendCount(), 3u);
        EXPECT_EQ(store.liveCount(), 3u);
        EXPECT_TRUE(store.healthy());
    }
    ResultStore store(config(dir));
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    const auto &records = store.recovered();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].fingerprint, "fp-a");
    EXPECT_EQ(records[0].payload, "payload-a");
    EXPECT_FALSE(records[0].failed);
    EXPECT_EQ(records[1].fingerprint, "fp-b");
    EXPECT_TRUE(records[1].failed);
    EXPECT_EQ(records[2].fingerprint, "fp-c");
    EXPECT_EQ(store.tornTruncations(), 0u);
}

TEST(ResultStore, LatestWriteOfAFingerprintWins)
{
    const fs::path dir = freshDir("supersede");
    {
        ResultStore store(config(dir));
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        store.append("fp", "stale", false);
        store.append("other", "other-payload", false);
        store.append("fp", "fresh", false);
        EXPECT_EQ(store.liveCount(), 2u);
        EXPECT_EQ(store.frameCount(), 3u);
    }
    ResultStore store(config(dir));
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    const auto &records = store.recovered();
    ASSERT_EQ(records.size(), 2u);
    // "fp" was rewritten after "other", so it recovers last, fresh.
    EXPECT_EQ(records[0].fingerprint, "other");
    EXPECT_EQ(records[1].fingerprint, "fp");
    EXPECT_EQ(records[1].payload, "fresh");
}

TEST(ResultStore, TombstoneDeletesAcrossReopen)
{
    const fs::path dir = freshDir("tombstone");
    {
        ResultStore store(config(dir));
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        store.append("keep", "kept", false);
        store.append("drop", "dropped", false);
        store.appendTombstone("drop");
        EXPECT_EQ(store.liveCount(), 1u);
        EXPECT_EQ(store.tombstoneCount(), 1u);
    }
    ResultStore store(config(dir));
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    ASSERT_EQ(store.recovered().size(), 1u);
    EXPECT_EQ(store.recovered()[0].fingerprint, "keep");
}

TEST(ResultStore, TombstoneForUnknownFingerprintWritesNoFrame)
{
    const fs::path dir = freshDir("tombstone_unknown");
    ResultStore store(config(dir));
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    store.append("fp", "payload", false);
    const std::uint64_t frames = store.frameCount();
    // A tombstone for a fingerprint the journal does not hold would be
    // pure dead weight; it is suppressed.
    store.appendTombstone("never-written");
    EXPECT_EQ(store.frameCount(), frames);
    EXPECT_EQ(store.tombstoneCount(), 0u);
}

TEST(ResultStore, RotatesSegmentsAtThresholdAndRecoversAll)
{
    const fs::path dir = freshDir("rotate");
    ResultStoreConfig cfg = config(dir);
    cfg.segmentBytes = 256; // a few frames per segment
    cfg.compactDeadRatio = 2.0; // never auto-compact: pure rotation
    {
        ResultStore store(cfg);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        for (int i = 0; i < 32; ++i)
            store.append("fp-" + std::to_string(i),
                         "payload-" + std::to_string(i), false);
        EXPECT_GT(store.segmentCount(), 1u);
    }
    EXPECT_GT(segmentFiles(dir).size(), 1u);
    ResultStore store(cfg);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    ASSERT_EQ(store.recovered().size(), 32u);
    EXPECT_EQ(store.recovered()[0].fingerprint, "fp-0");
    EXPECT_EQ(store.recovered()[31].fingerprint, "fp-31");
}

TEST(ResultStore, CompactionDropsDeadFramesAndPreservesTheLiveSet)
{
    const fs::path dir = freshDir("compact");
    ResultStoreConfig cfg = config(dir);
    cfg.compactDeadRatio = 2.0; // compact only when asked
    {
        ResultStore store(cfg);
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        for (int round = 0; round < 8; ++round)
            for (int i = 0; i < 4; ++i)
                store.append("fp-" + std::to_string(i),
                             "round-" + std::to_string(round), false);
        store.append("doomed", "doomed-payload", false);
        store.appendTombstone("doomed");
        EXPECT_EQ(store.frameCount(), 34u);
        EXPECT_EQ(store.liveCount(), 4u);

        store.compact();
        EXPECT_EQ(store.compactions(), 1u);
        EXPECT_EQ(store.frameCount(), 4u);
        EXPECT_EQ(store.liveCount(), 4u);
        EXPECT_EQ(store.segmentCount(), 1u);
    }
    EXPECT_EQ(segmentFiles(dir).size(), 1u);
    ResultStore store(cfg);
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    ASSERT_EQ(store.recovered().size(), 4u);
    for (const auto &record : store.recovered())
        EXPECT_EQ(record.payload, "round-7");
}

TEST(ResultStore, AppendsKeepWorkingAfterCompaction)
{
    const fs::path dir = freshDir("compact_append");
    ResultStore store(config(dir));
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    store.append("a", "1", false);
    store.append("a", "2", false);
    store.compact();
    store.append("b", "3", false);
    store.close();

    ResultStore reopened(config(dir));
    ASSERT_TRUE(reopened.open(error)) << error;
    ASSERT_EQ(reopened.recovered().size(), 2u);
    EXPECT_EQ(reopened.recovered()[0].fingerprint, "a");
    EXPECT_EQ(reopened.recovered()[0].payload, "2");
    EXPECT_EQ(reopened.recovered()[1].fingerprint, "b");
}

TEST(ResultStore, OpenFailsCleanlyWhenDirectoryCannotBeCreated)
{
    ResultStoreConfig cfg;
    cfg.dir = "/nonexistent-root/nested/store";
    ResultStore store(cfg);
    std::string error;
    EXPECT_FALSE(store.open(error));
    EXPECT_FALSE(error.empty());
}

TEST(ResultStore, AppendFailureDegradesToMemoryOnlyNotACrash)
{
    const fs::path dir = freshDir("degrade");
    ResultStore store(config(dir));
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    store.append("before", "payload", false);
    EXPECT_TRUE(store.healthy());
    // Yank the directory out from under the store; the open fd keeps
    // plain appends working, so force rotation to a path that now
    // cannot be created.
    fs::remove_all(dir);
    ResultStoreConfig tiny = config(dir);
    // (fresh store whose directory vanishes before the first append)
    fs::remove_all(dir);
    ResultStore gone(tiny);
    // Not opened: appends are no-ops, never a crash.
    gone.append("fp", "payload", false);
    gone.appendTombstone("fp");
    gone.compact();
    EXPECT_EQ(gone.appendCount(), 0u);
}

TEST(ResultStore, SecondOpenOnALockedDirectoryFailsWithTheStoreUntouched)
{
    const fs::path dir = freshDir("lock");
    ResultStore owner(config(dir));
    std::string error;
    ASSERT_TRUE(owner.open(error)) << error;
    owner.append("fp", "payload", false);

    // The loser must fail before reading a byte: no torn-tail
    // truncation of the owner's active segment, no compaction.
    ResultStore intruder(config(dir));
    std::string intruderError;
    EXPECT_FALSE(intruder.open(intruderError));
    EXPECT_NE(intruderError.find("locked"), std::string::npos)
        << intruderError;
    EXPECT_EQ(intruder.recoveredCount(), 0u);

    owner.append("fp-2", "payload-2", false);
    owner.close();

    // close() released the flock; the journal held both appends.
    ResultStore reopened(config(dir));
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.recovered().size(), 2u);
    EXPECT_EQ(reopened.tornTruncations(), 0u);
}

TEST(ResultStore, ReleaseRecoveredDropsTheSnapshotButKeepsTheCount)
{
    const fs::path dir = freshDir("release");
    {
        ResultStore store(config(dir));
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        store.append("a", "1", false);
        store.append("b", "2", false);
    }
    ResultStore store(config(dir));
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    ASSERT_EQ(store.recovered().size(), 2u);
    store.releaseRecovered();
    EXPECT_TRUE(store.recovered().empty());
    EXPECT_EQ(store.recoveredCount(), 2u);
    // The store keeps journaling normally after the release.
    store.append("c", "3", false);
    EXPECT_EQ(store.liveCount(), 3u);
    EXPECT_TRUE(store.healthy());
}

// ------------------------------------------------- crash recovery proof

/** The frames of a reference journal, in append order. */
struct Frame
{
    std::string fingerprint;
    std::string payload;
    std::size_t size; // on-disk bytes
};

TEST(ResultStore, TornTailIsTruncatedAtEveryRandomizedOffset)
{
    // Property: for a journal of K intact frames truncated at ANY byte
    // offset, recovery yields exactly the frames wholly before the cut,
    // reports a torn truncation iff the cut is not on a frame boundary,
    // and leaves the file truncated to the last intact boundary.
    std::vector<Frame> frames;
    for (int i = 0; i < 6; ++i) {
        Frame f;
        f.fingerprint = "fp-" + std::to_string(i);
        f.payload = "payload-" + std::to_string(i * 37) + "-"
                    + std::string(static_cast<std::size_t>(i * 11), 'x');
        f.size = ResultStore::frameSize(f.fingerprint.size(),
                                        f.payload.size());
        frames.push_back(std::move(f));
    }

    std::mt19937_64 rng(20260807);
    for (int trial = 0; trial < 40; ++trial) {
        const fs::path dir = freshDir("torn_" + std::to_string(trial));
        {
            ResultStore store(config(dir));
            std::string error;
            ASSERT_TRUE(store.open(error)) << error;
            for (const Frame &f : frames)
                store.append(f.fingerprint, f.payload, false);
        }
        const auto files = segmentFiles(dir);
        ASSERT_EQ(files.size(), 1u);
        const std::uintmax_t fullSize = fs::file_size(files[0]);

        // Cut anywhere in (0, fullSize]; fullSize itself = no tear.
        const std::uintmax_t cut = 1 + rng() % fullSize;
        fs::resize_file(files[0], cut);

        // How many frames survive the cut, and where is the last
        // intact frame boundary?
        std::size_t intact = 0;
        std::uintmax_t boundary = 0;
        while (intact < frames.size()
               && boundary + frames[intact].size <= cut)
            boundary += frames[intact++].size;

        ResultStore store(config(dir));
        std::string error;
        ASSERT_TRUE(store.open(error)) << error; // a tear never refuses
        ASSERT_EQ(store.recovered().size(), intact) << "cut=" << cut;
        for (std::size_t i = 0; i < intact; ++i) {
            EXPECT_EQ(store.recovered()[i].fingerprint,
                      frames[i].fingerprint);
            EXPECT_EQ(store.recovered()[i].payload, frames[i].payload);
        }
        const bool torn = cut != boundary;
        EXPECT_EQ(store.tornTruncations(), torn ? 1u : 0u)
            << "cut=" << cut << " boundary=" << boundary;
        // The tear is gone from disk: the file ends at the boundary.
        EXPECT_EQ(fs::file_size(files[0]), boundary) << "cut=" << cut;
    }
}

TEST(ResultStore, CorruptedMidFrameTruncatesFromTheCorruptionOn)
{
    const fs::path dir = freshDir("corrupt");
    {
        ResultStore store(config(dir));
        std::string error;
        ASSERT_TRUE(store.open(error)) << error;
        store.append("first", "first-payload", false);
        store.append("second", "second-payload", false);
        store.append("third", "third-payload", false);
    }
    const auto files = segmentFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    // Flip one payload byte inside the second frame: its checksum fails,
    // and replay must stop there — the third (intact) frame is after the
    // corruption and is dropped with it, never trusted blindly.
    const std::size_t first =
        ResultStore::frameSize(std::string("first").size(),
                               std::string("first-payload").size());
    std::fstream file(files[0],
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(first
                                           + ResultStore::kHeaderBytes + 8));
    file.put('X');
    file.close();

    ResultStore store(config(dir));
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    ASSERT_EQ(store.recovered().size(), 1u);
    EXPECT_EQ(store.recovered()[0].fingerprint, "first");
    EXPECT_EQ(store.tornTruncations(), 1u);
}

TEST(ResultStore, EncodeFrameMatchesTheDocumentedLayout)
{
    const std::string frame = ResultStore::encodeFrame("fp", "payload", 0);
    ASSERT_EQ(frame.size(), ResultStore::frameSize(2, 7));
    EXPECT_EQ(frame[0], 'H');
    EXPECT_EQ(frame[1], 'P');
    EXPECT_EQ(frame[2], 'E');
    EXPECT_EQ(frame[3], 'J');
    EXPECT_EQ(static_cast<std::uint8_t>(frame[4]), ResultStore::kVersion);
    // Little-endian section lengths at offsets 8 and 12.
    EXPECT_EQ(static_cast<std::uint8_t>(frame[8]), 2);
    EXPECT_EQ(static_cast<std::uint8_t>(frame[12]), 7);
    EXPECT_EQ(frame.substr(ResultStore::kHeaderBytes, 2), "fp");
    EXPECT_EQ(frame.substr(ResultStore::kHeaderBytes + 2, 7), "payload");
}

} // namespace
} // namespace hpe::serve
