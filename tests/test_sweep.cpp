/**
 * @file
 * Tests for the sweep engine: job-count resolution (explicit > HPE_JOBS
 * env > hardware), index-aligned map(), and the determinism contract —
 * a multi-threaded sweep must produce results byte-identical to
 * --jobs 1, all the way up to CLI table output.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "sim/sweep.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

/** RAII guard: sets HPE_JOBS for a test, restores on exit. */
class JobsEnv
{
  public:
    explicit JobsEnv(const char *value)
    {
        const char *old = std::getenv("HPE_JOBS");
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value != nullptr)
            ::setenv("HPE_JOBS", value, 1);
        else
            ::unsetenv("HPE_JOBS");
    }

    ~JobsEnv()
    {
        if (had_)
            ::setenv("HPE_JOBS", saved_.c_str(), 1);
        else
            ::unsetenv("HPE_JOBS");
    }

  private:
    bool had_ = false;
    std::string saved_;
};

TEST(ResolveJobs, ExplicitRequestWins)
{
    JobsEnv env("3");
    EXPECT_EQ(resolveJobs(5), 5u);
}

TEST(ResolveJobs, EnvironmentVariableApplies)
{
    JobsEnv env("3");
    EXPECT_EQ(resolveJobs(0), 3u);
}

TEST(ResolveJobs, ZeroEnvironmentMeansAuto)
{
    JobsEnv env("0");
    EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareThreads());
}

TEST(ResolveJobs, UnsetEnvironmentMeansAuto)
{
    JobsEnv env(nullptr);
    EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareThreads());
}

TEST(ResolveJobsDeathTest, GarbageEnvironmentIsFatal)
{
    JobsEnv env("8cores");
    EXPECT_EXIT(resolveJobs(0), testing::ExitedWithCode(1), "HPE_JOBS");
}

TEST(SweepRunner, MapResultsAlignWithIndices)
{
    for (unsigned jobs : {1u, 4u}) {
        SweepRunner runner(jobs);
        const auto out =
            runner.map(257, [](std::size_t i) { return 3 * i + 1; });
        ASSERT_EQ(out.size(), 257u);
        for (std::size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i], 3 * i + 1);
    }
}

TEST(SweepRunner, MapItemsAlignWithInputs)
{
    SweepRunner runner(4);
    const std::vector<std::string> items = {"a", "bb", "ccc", "dddd"};
    const auto out = runner.mapItems(
        items, [](const std::string &s) { return s.size(); });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], items[i].size());
}

TEST(SweepRunner, ParallelRunMatchesSerialExactly)
{
    // A small Fig. 12-style sweep: every outcome from an 8-way runner
    // must equal the serial runner's, field for field.
    const std::vector<std::string> apps = {"HSD", "BFS", "MVT"};
    const std::vector<PolicyKind> kinds = {PolicyKind::Lru, PolicyKind::Rrip,
                                           PolicyKind::Hpe};
    std::vector<Trace> traces;
    for (const std::string &app : apps)
        traces.push_back(buildApp(app, 0.05, 1));
    RunConfig cfg;
    cfg.oversub = 0.75;

    std::vector<SweepJob> jobs;
    for (const Trace &trace : traces)
        for (PolicyKind kind : kinds)
            jobs.push_back(SweepJob{&trace, kind, cfg, /*functional=*/true});

    SweepRunner serial(1);
    SweepRunner parallel(8);
    const auto a = serial.run(jobs);
    const auto b = parallel.run(jobs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].paging.faults, b[i].paging.faults) << "job " << i;
        ASSERT_EQ(a[i].paging.evictions, b[i].paging.evictions)
            << "job " << i;
    }
}

/** Run `hpe_sim sweep` with the given extra argv; return its stdout. */
std::string
sweepOutput(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), {"hpe_sim", "sweep"});
    const cli::Args args =
        cli::Args::parse(static_cast<int>(argv.size()), argv.data());
    std::ostringstream os;
    EXPECT_EQ(cli::sweepCommand(args, os), 0);
    return os.str();
}

TEST(SweepCommand, OutputIsByteIdenticalAcrossJobCounts)
{
    const std::string one =
        sweepOutput({"--scale", "0.05", "--functional", "--jobs", "1"});
    const std::string eight =
        sweepOutput({"--scale", "0.05", "--functional", "--jobs", "8"});
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, eight);
}

TEST(SweepCommand, CsvIsByteIdenticalAcrossJobCounts)
{
    const std::string one = sweepOutput(
        {"--scale", "0.05", "--functional", "--csv", "--jobs", "1"});
    const std::string six = sweepOutput(
        {"--scale", "0.05", "--functional", "--csv", "--jobs", "6"});
    EXPECT_EQ(one, six);
    EXPECT_EQ(one.substr(0, one.find('\n')),
              "app,policy,oversub,faults,evictions,ipc");
}

} // namespace
} // namespace hpe
