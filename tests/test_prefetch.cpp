/**
 * @file
 * Unit tests for the fault-batching + prefetch subsystem: the FaultBatcher
 * window, the prefetcher implementations, the typed prefetchIn outcomes,
 * cold placement of speculative arrivals in each policy, and the CLI
 * spellings of the new options.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "core/hpe_policy.hpp"
#include "driver/uvm_manager.hpp"
#include "policy/clock_pro.hpp"
#include "policy/lru.hpp"
#include "prefetch/fault_batcher.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/experiment.hpp"
#include "sim/paging_simulator.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

using prefetch::FaultBatcher;
using prefetch::PrefetchConfig;
using prefetch::PrefetchKind;

bool
notResident(PageId)
{
    return false;
}

TEST(FaultBatcherTest, FillsFlushesInArrivalOrder)
{
    FaultBatcher b(3);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.window(), 3u);
    EXPECT_FALSE(b.push(10, false, 0));
    EXPECT_FALSE(b.push(20, true, 1));
    EXPECT_TRUE(b.contains(10));
    EXPECT_FALSE(b.contains(30));
    EXPECT_TRUE(b.push(30, false, 5)); // window full
    EXPECT_TRUE(b.full());

    const auto batch = b.flush();
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].page, 10u);
    EXPECT_EQ(batch[1].page, 20u);
    EXPECT_TRUE(batch[1].write);
    EXPECT_EQ(batch[1].arrival, 1u);
    EXPECT_EQ(batch[2].arrival, 5u);
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.contains(10));
}

TEST(FaultBatcherTest, DefaultWindowMirrorsHardwareFaultBuffer)
{
    FaultBatcher b;
    EXPECT_EQ(b.window(), FaultBatcher::kDefaultWindow);
    EXPECT_EQ(FaultBatcher::kDefaultWindow, 256u);
}

TEST(PrefetcherFactory, NamesRoundTripAndNoneIsNull)
{
    for (PrefetchKind kind : prefetch::allPrefetchKinds())
        EXPECT_EQ(prefetch::prefetchKindByName(prefetch::prefetchKindName(kind)),
                  kind);
    EXPECT_FALSE(prefetch::prefetchKindByName("bogus").has_value());
    EXPECT_EQ(prefetch::makePrefetcher(PrefetchConfig{}), nullptr);
    for (PrefetchKind kind :
         {PrefetchKind::Sequential, PrefetchKind::Stride, PrefetchKind::Density}) {
        PrefetchConfig cfg;
        cfg.kind = kind;
        const auto p = prefetch::makePrefetcher(cfg);
        ASSERT_NE(p, nullptr);
        EXPECT_STREQ(p->name(), prefetch::prefetchKindName(kind));
    }
}

TEST(SequentialPrefetcherTest, WindowClipsAtAlignedBlockEnd)
{
    PrefetchConfig cfg;
    cfg.kind = PrefetchKind::Sequential;
    cfg.degree = 4;
    const auto p = prefetch::makePrefetcher(cfg);
    std::vector<PageId> out;
    p->candidates(32, 0, notResident, out);
    EXPECT_EQ(out, (std::vector<PageId>{33, 34, 35, 36}));
    out.clear();
    p->candidates(46, 0, notResident, out); // block [32, 48): one page left
    EXPECT_EQ(out, (std::vector<PageId>{47}));
    out.clear();
    p->candidates(47, 0, notResident, out); // last page of its block
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcherTest, ArmsAfterConfidenceAndRetrainsOnMiss)
{
    PrefetchConfig cfg;
    cfg.kind = PrefetchKind::Stride;
    cfg.degree = 3;
    cfg.strideConfidence = 2;
    const auto p = prefetch::makePrefetcher(cfg);
    std::vector<PageId> out;
    p->candidates(100, 0, notResident, out); // first sighting
    p->candidates(104, 0, notResident, out); // delta 4, confidence 1
    EXPECT_TRUE(out.empty());
    p->candidates(108, 0, notResident, out); // delta 4 again: armed
    EXPECT_EQ(out, (std::vector<PageId>{112, 116, 120}));
    out.clear();
    p->candidates(7, 0, notResident, out); // mispredict: retrain, disarm
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcherTest, StreamsTrainIndependently)
{
    PrefetchConfig cfg;
    cfg.kind = PrefetchKind::Stride;
    cfg.degree = 1;
    cfg.strideConfidence = 2;
    const auto p = prefetch::makePrefetcher(cfg);
    std::vector<PageId> out;
    p->candidates(10, 0, notResident, out);
    p->candidates(12, 0, notResident, out);
    // Stream 1 interleaves with a different pattern; stream 0 stays armed.
    p->candidates(500, 1, notResident, out);
    EXPECT_TRUE(out.empty());
    p->candidates(14, 0, notResident, out);
    EXPECT_EQ(out, (std::vector<PageId>{16}));
}

TEST(StridePrefetcherTest, NegativeStrideStopsAtPageZero)
{
    PrefetchConfig cfg;
    cfg.kind = PrefetchKind::Stride;
    cfg.degree = 4;
    cfg.strideConfidence = 2;
    const auto p = prefetch::makePrefetcher(cfg);
    std::vector<PageId> out;
    p->candidates(9, 0, notResident, out);
    p->candidates(6, 0, notResident, out);
    p->candidates(3, 0, notResident, out); // armed with stride -3
    EXPECT_EQ(out, (std::vector<PageId>{0})); // 0, then -3 falls off
}

TEST(DensityPrefetcherTest, TriggersAtBasinThreshold)
{
    PrefetchConfig cfg;
    cfg.kind = PrefetchKind::Density;
    cfg.degree = 16;
    cfg.basinPages = 8;
    cfg.densityThreshold = 0.5;
    const auto p = prefetch::makePrefetcher(cfg);
    std::vector<PageId> out;
    p->candidates(8, 0, notResident, out);  // basin 1: 1/8 faulted
    p->candidates(10, 0, notResident, out); // 2/8
    p->candidates(12, 0, notResident, out); // 3/8
    EXPECT_TRUE(out.empty());
    p->candidates(14, 0, notResident, out); // 4/8: threshold reached
    EXPECT_EQ(out, (std::vector<PageId>{9, 11, 13, 15}));
}

TEST(DensityPrefetcherTest, SkipsResidentPagesAndHonoursDegree)
{
    PrefetchConfig cfg;
    cfg.kind = PrefetchKind::Density;
    cfg.degree = 2;
    cfg.basinPages = 8;
    cfg.densityThreshold = 0.5;
    const auto p = prefetch::makePrefetcher(cfg);
    std::vector<PageId> out;
    for (PageId q : {0, 2, 4}) // 3/8
        p->candidates(q, 0, notResident, out);
    EXPECT_TRUE(out.empty());
    p->candidates(6, 0, [](PageId q) { return q == 1; }, out);
    EXPECT_EQ(out, (std::vector<PageId>{3, 5})); // 1 resident, degree caps 7
}

class PrefetchOutcomeTest : public ::testing::Test
{
  protected:
    StatRegistry stats_;
    LruPolicy policy_;
    UvmMemoryManager uvm_{2, policy_, stats_, "uvm"};
};

TEST_F(PrefetchOutcomeTest, PrefetchedIntoFreeFrame)
{
    EXPECT_EQ(uvm_.prefetchIn(7), PrefetchOutcome::Prefetched);
    EXPECT_TRUE(uvm_.resident(7));
    EXPECT_EQ(uvm_.prefetches(), 1u);
    EXPECT_EQ(uvm_.faults(), 0u); // speculation charges no fault
}

TEST_F(PrefetchOutcomeTest, AlreadyResidentIsBenign)
{
    uvm_.handleFault(7);
    EXPECT_EQ(uvm_.prefetchIn(7), PrefetchOutcome::AlreadyResident);
    EXPECT_EQ(uvm_.prefetches(), 0u);
}

TEST_F(PrefetchOutcomeTest, NoFreeFrameNeverEvicts)
{
    uvm_.handleFault(1);
    uvm_.handleFault(2);
    EXPECT_EQ(uvm_.prefetchIn(7), PrefetchOutcome::NoFreeFrame);
    EXPECT_FALSE(uvm_.resident(7));
    EXPECT_EQ(uvm_.evictions(), 0u);
    EXPECT_TRUE(uvm_.resident(1));
    EXPECT_TRUE(uvm_.resident(2));
}

TEST_F(PrefetchOutcomeTest, UsefulWastedAndLateCounters)
{
    EXPECT_EQ(uvm_.prefetchIn(7), PrefetchOutcome::Prefetched);
    uvm_.recordHit(7); // referenced before eviction: useful
    EXPECT_EQ(uvm_.prefetchUseful(), 1u);
    EXPECT_EQ(uvm_.prefetchIn(8), PrefetchOutcome::Prefetched);
    uvm_.handleFault(1); // memory full now; 8 is the LRU-end victim
    EXPECT_EQ(uvm_.prefetchWasted(), 1u);
    EXPECT_FALSE(uvm_.resident(8));
    uvm_.notePrefetchLate();
    EXPECT_EQ(uvm_.prefetchLate(), 1u);
}

TEST(PrefetchPlacement, LruEvictsSpeculationFirst)
{
    StatRegistry stats;
    LruPolicy policy;
    UvmMemoryManager uvm(3, policy, stats, "uvm");
    uvm.handleFault(1);
    uvm.handleFault(2);
    EXPECT_EQ(uvm.prefetchIn(9), PrefetchOutcome::Prefetched);
    uvm.handleFault(3); // full: the untouched speculative page goes first
    EXPECT_FALSE(uvm.resident(9));
    EXPECT_TRUE(uvm.resident(1));
}

TEST(PrefetchPlacement, ClockProSpeculationEntersColdSet)
{
    StatRegistry stats;
    trace::TraceSink sink;
    ClockProPolicy policy;
    policy.setTraceSink(&sink);
    UvmMemoryManager uvm(3, policy, stats, "uvm");
    uvm.setTraceSink(&sink);
    EXPECT_EQ(uvm.prefetchIn(9), PrefetchOutcome::Prefetched);
    EXPECT_EQ(policy.residentCold(), 1u);
    EXPECT_EQ(policy.residentHot(), 0u);
    bool saw_speculative_demotion = false;
    for (const trace::TraceEvent &ev : sink.events())
        if (ev.kind == trace::EventKind::Demotion && ev.page == 9
            && ev.value == 1)
            saw_speculative_demotion = true;
    EXPECT_TRUE(saw_speculative_demotion);
}

TEST(PrefetchPlacement, HpeSpeculationEntersOldPartitionCold)
{
    StatRegistry stats;
    HpeConfig cfg;
    HpePolicy policy(cfg, stats);
    UvmMemoryManager uvm(8, policy, stats, "uvm");
    EXPECT_EQ(uvm.prefetchIn(100), PrefetchOutcome::Prefetched);
    ChainEntry *entry = policy.chain().find(policy.chain().setOf(100), false);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->part, Partition::Old);
    EXPECT_EQ(entry->counter, 0u); // no frequency credit for speculation
    // A demand fault on the same set promotes it like any touched set.
    uvm.handleFault(101);
    EXPECT_EQ(entry->part, Partition::New);
}

TEST(PrefetchPlacement, HpeDrainsSpeculationBeforeTrackedSets)
{
    StatRegistry stats;
    HpeConfig cfg;
    HpePolicy policy(cfg, stats);
    UvmMemoryManager uvm(3, policy, stats, "uvm");
    uvm.handleFault(0);
    uvm.handleFault(1);
    // Speculative page from a distant set: its entry sits at the old
    // partition's LRU end while the faulted set is in the new partition.
    EXPECT_EQ(uvm.prefetchIn(640), PrefetchOutcome::Prefetched);
    uvm.handleFault(2); // full: victim must be the speculative page
    EXPECT_FALSE(uvm.resident(640));
    EXPECT_TRUE(uvm.resident(0));
    EXPECT_TRUE(uvm.resident(1));
}

TEST(PrefetchFunctional, SequentialPrefetchReducesFaultsOnStreamingApp)
{
    const Trace t = buildApp("HSD", 0.1);
    RunConfig cfg;
    cfg.oversub = 0.9;
    const auto base = runFunctional(t, PolicyKind::Lru, cfg);
    cfg.gpu.driver.prefetch.kind = PrefetchKind::Sequential;
    cfg.gpu.driver.prefetch.degree = 8;
    const auto pf = runFunctional(t, PolicyKind::Lru, cfg);
    EXPECT_LT(pf.faults, base.faults);
    EXPECT_GT(pf.prefetches, 0u);
    EXPECT_GT(pf.prefetchAccuracy(), 0.0);
}

TEST(PrefetchFunctional, LegacyNumericDegreeMatchesSequentialKind)
{
    const Trace t = buildApp("BFS", 0.1);
    RunConfig legacy;
    legacy.gpu.driver.prefetchDegree = 4;
    RunConfig modern;
    modern.gpu.driver.prefetch.kind = PrefetchKind::Sequential;
    modern.gpu.driver.prefetch.degree = 4;
    const auto a = runFunctional(t, PolicyKind::Lru, legacy);
    const auto b = runFunctional(t, PolicyKind::Lru, modern);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.prefetches, b.prefetches);
    EXPECT_EQ(a.evictions, b.evictions);
}

namespace clitest {

cli::Args
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "hpe_sim");
    return cli::Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(PrefetchCli, KindNameAndDegreeSpellings)
{
    std::ostringstream os;
    EXPECT_EQ(cli::runCommand(parse({"run", "--app", "HSD", "--policy", "LRU",
                                     "--functional", "--scale", "0.05",
                                     "--prefetch", "density",
                                     "--prefetch-degree", "8", "--csv"}),
                              os),
              0);
    EXPECT_NE(os.str().find("functional"), std::string::npos);
}

TEST(PrefetchCli, LegacyNumericSpellingStillAccepted)
{
    std::ostringstream os;
    EXPECT_EQ(cli::runCommand(parse({"run", "--app", "HSD", "--policy", "LRU",
                                     "--functional", "--scale", "0.05",
                                     "--prefetch", "4", "--csv"}),
              os),
              0);
}

TEST(PrefetchCli, FaultBatchFlagRuns)
{
    std::ostringstream os;
    EXPECT_EQ(cli::runCommand(parse({"run", "--app", "BFS", "--policy", "HPE",
                                     "--functional", "--scale", "0.05",
                                     "--fault-batch", "64", "--trace-digest"}),
                              os),
              0);
    EXPECT_NE(os.str().find("trace digest"), std::string::npos);
}

} // namespace clitest

} // namespace
} // namespace hpe
