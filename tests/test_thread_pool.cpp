/**
 * @file
 * Tests for the ThreadPool parallel-for primitive: coverage of every
 * index, edge sizes, nesting, and the exception contract (all indices
 * run; the lowest failing index's exception is rethrown) — the
 * guarantees the deterministic sweep engine is built on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace hpe {
namespace {

TEST(ThreadPool, ReportsRequestedParallelism)
{
    EXPECT_EQ(ThreadPool(1).threads(), 1u);
    EXPECT_EQ(ThreadPool(3).threads(), 3u);
    EXPECT_EQ(ThreadPool(0).threads(), ThreadPool::hardwareThreads());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, ZeroIndicesRunsNothing)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    constexpr std::size_t kN = 10'000;
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(kN);
        pool.parallelFor(kN, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                         << threads << " threads";
    }
}

TEST(ThreadPool, PoolIsReusableAcrossBatches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i) { sum += i; });
        ASSERT_EQ(sum.load(), 100u * 99u / 2);
    }
}

TEST(ThreadPool, LowestFailingIndexWins)
{
    // All indices run even when some throw, and the caller sees the
    // exception of the LOWEST failing index — on 1 thread and many, so
    // behaviour cannot depend on the parallelism degree.
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(100);
        try {
            pool.parallelFor(100, [&](std::size_t i) {
                ++hits[i];
                if (i == 7 || i == 42)
                    throw std::runtime_error("fail at "
                                             + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "fail at 7");
        }
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> inner_calls{0};
    pool.parallelFor(8, [&](std::size_t) {
        // A nested call must complete (inline) rather than deadlock on
        // the busy pool.
        pool.parallelFor(10, [&](std::size_t) { ++inner_calls; });
    });
    EXPECT_EQ(inner_calls.load(), 8 * 10);
}

TEST(ThreadPool, NestedExceptionPropagates)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(4,
                                  [&](std::size_t) {
                                      pool.parallelFor(4, [](std::size_t j) {
                                          if (j == 2)
                                              throw std::logic_error("inner");
                                      });
                                  }),
                 std::logic_error);
}

} // namespace
} // namespace hpe
