/**
 * @file
 * Tests for the multi-application sharing driver.
 */

#include <gtest/gtest.h>

#include "sim/multi_app.hpp"
#include "workload/apps.hpp"
#include "workload/patterns.hpp"

namespace hpe {
namespace {

Trace
stream(const char *abbr, std::size_t pages)
{
    Trace t(abbr, abbr, "synthetic", PatternType::I);
    patterns::stream(t, 0, pages, 1, 4);
    return t;
}

TEST(MultiApp, SingleAppMatchesSoloRun)
{
    const Trace t = buildApp("STN", 0.5);
    const auto r = runShared({t}, PolicyKind::Lru, 200);
    ASSERT_EQ(r.apps.size(), 1u);
    EXPECT_EQ(r.apps[0].faults, r.apps[0].soloFaults);
    EXPECT_NEAR(r.fairness(), 1.0, 1e-9);
}

TEST(MultiApp, ReferencesAttributedPerApp)
{
    const Trace a = stream("A", 100);
    const Trace b = stream("B", 50);
    const auto r = runShared({a, b}, PolicyKind::Lru, 200);
    EXPECT_EQ(r.apps[0].references, 100u);
    EXPECT_EQ(r.apps[1].references, 50u);
    EXPECT_EQ(r.totalFaults, 150u); // memory fits both: compulsory only
}

TEST(MultiApp, AddressSlicesDoNotCollide)
{
    // Both apps use pages 0..99 in their own space; with memory for all,
    // faults must be 200 (no aliasing between the apps' pages).
    const Trace a = stream("A", 100);
    const Trace b = stream("B", 100);
    const auto r = runShared({a, b}, PolicyKind::Lru, 400);
    EXPECT_EQ(r.totalFaults, 200u);
}

TEST(MultiApp, SharingInflatesFaultsUnderPressure)
{
    const Trace a = buildApp("HSD", 0.5);
    const Trace b = buildApp("SRD", 0.5);
    // Memory that would hold either app alone comfortably, but not both.
    const std::size_t frames = 1200;
    const auto r = runShared({a, b}, PolicyKind::Lru, frames);
    EXPECT_GT(r.apps[0].slowdown(), 1.0);
    EXPECT_GT(r.apps[1].slowdown(), 1.0);
    EXPECT_LE(r.fairness(), 1.0);
    EXPECT_GT(r.fairness(), 0.0);
}

TEST(MultiApp, IdealLowerBoundsSharedRuns)
{
    const Trace a = buildApp("STN", 0.5);
    const Trace b = buildApp("MRQ", 0.5);
    const std::size_t frames = 600;
    const auto ideal = runShared({a, b}, PolicyKind::Ideal, frames);
    for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Hpe,
                            PolicyKind::ClockPro}) {
        const auto r = runShared({a, b}, kind, frames);
        EXPECT_GE(r.totalFaults, ideal.totalFaults) << policyKindName(kind);
    }
}

TEST(MultiApp, HpeHandlesSlicedAddressSpaces)
{
    // Real memory pressure (the combined footprint is 1792 pages): the
    // thrashing co-runner is where HPE earns its keep.  (In the near-fit
    // regime LRU already retains everything and HPE's proactive MRU-C
    // evictions cost it — visible at frames ~1100-1200.)
    const Trace a = buildApp("HSD", 0.5);
    const Trace b = buildApp("B+T", 0.5);
    const auto lru = runShared({a, b}, PolicyKind::Lru, 1000);
    const auto hpe = runShared({a, b}, PolicyKind::Hpe, 1000);
    EXPECT_LT(hpe.totalFaults, lru.totalFaults * 0.8);
}

TEST(MultiApp, DeterministicAcrossRuns)
{
    const Trace a = buildApp("STN", 0.5);
    const Trace b = buildApp("NW", 0.5);
    const auto r1 = runShared({a, b}, PolicyKind::Hpe, 700);
    const auto r2 = runShared({a, b}, PolicyKind::Hpe, 700);
    EXPECT_EQ(r1.totalFaults, r2.totalFaults);
    EXPECT_EQ(r1.apps[0].faults, r2.apps[0].faults);
}

} // namespace
} // namespace hpe
