/**
 * @file
 * Tests for the timing GPU simulator: completion, determinism, kernel
 * barriers, TLB behaviour, fault overlap, and IPC sanity.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "gpu/gpu_system.hpp"
#include "policy/lru.hpp"
#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace hpe {
namespace {

Trace
smallStream(std::size_t pages, std::uint16_t burst = 4)
{
    Trace t("S", "stream", "synthetic", PatternType::I);
    for (PageId p = 0; p < pages; ++p)
        t.add(p, burst);
    return t;
}

GpuConfig
tinyGpu()
{
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.warpsPerSm = 4;
    cfg.maxCycles = 1'000'000'000;
    return cfg;
}

TEST(GpuSystem, RunsToCompletion)
{
    const Trace t = smallStream(64);
    StatRegistry stats;
    LruPolicy lru;
    GpuSystem gpu(tinyGpu(), t, lru, 64, stats);
    const TimingResult r = gpu.run();
    EXPECT_EQ(r.instructions, 64u * 4u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
}

TEST(GpuSystem, EveryPageFaultsOnce)
{
    const Trace t = smallStream(64);
    StatRegistry stats;
    LruPolicy lru;
    GpuSystem gpu(tinyGpu(), t, lru, 64, stats);
    const TimingResult r = gpu.run();
    EXPECT_EQ(r.faults, 64u);
    EXPECT_EQ(r.evictions, 0u);
}

TEST(GpuSystem, OversubscriptionCausesEvictions)
{
    Trace t("T", "thrash", "synthetic", PatternType::II);
    for (int pass = 0; pass < 2; ++pass) {
        t.beginKernel();
        for (PageId p = 0; p < 64; ++p)
            t.add(p, 2);
    }
    StatRegistry stats;
    LruPolicy lru;
    GpuSystem gpu(tinyGpu(), t, lru, 48, stats);
    const TimingResult r = gpu.run();
    EXPECT_GT(r.evictions, 0u);
    EXPECT_GT(r.faults, 64u);
}

TEST(GpuSystem, DeterministicAcrossRuns)
{
    const Trace t = buildApp("STN", 0.5);
    RunConfig cfg;
    const auto a = runTiming(t, PolicyKind::Hpe, cfg);
    const auto b = runTiming(t, PolicyKind::Hpe, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(GpuSystem, FaultLatencyDominatesStreamingTime)
{
    const Trace t = smallStream(64);
    StatRegistry stats;
    LruPolicy lru;
    GpuSystem gpu(tinyGpu(), t, lru, 64, stats);
    const TimingResult r = gpu.run();
    // 64 faults at 5 us initiation spacing lower-bounds the makespan.
    EXPECT_GE(r.cycles, 63 * microsToCycles(5.0));
}

TEST(GpuSystem, TlbHitsFilterRepeatVisits)
{
    Trace t("R", "reuse", "synthetic", PatternType::I);
    for (int rep = 0; rep < 8; ++rep)
        for (PageId p = 0; p < 4; ++p)
            t.add(p, 2);
    StatRegistry stats;
    LruPolicy lru;
    GpuSystem gpu(tinyGpu(), t, lru, 8, stats);
    gpu.run();
    // Only 4 serviced faults (the walker may see concurrent faulting
    // walks from several warps, but the driver merges them).
    EXPECT_EQ(stats.findCounter("driver.uvm.faults").value(), 4u);
    EXPECT_GT(stats.findCounter("gpu.sm0.l1tlb.hits").value(), 0u);
}

TEST(GpuSystem, EvictionShootsDownTlb)
{
    // Two kernels over disjoint page ranges with memory for only one:
    // after kernel 2 evicts kernel 1's pages, re-touching them must fault
    // again (a stale TLB entry would wrongly hit).
    Trace t("K", "kernels", "synthetic", PatternType::VI);
    t.beginKernel();
    for (PageId p = 0; p < 32; ++p)
        t.add(p, 2);
    t.beginKernel();
    for (PageId p = 100; p < 132; ++p)
        t.add(p, 2);
    t.beginKernel();
    for (PageId p = 0; p < 32; ++p)
        t.add(p, 2);
    StatRegistry stats;
    LruPolicy lru;
    GpuSystem gpu(tinyGpu(), t, lru, 32, stats);
    const TimingResult r = gpu.run();
    EXPECT_EQ(r.faults, 96u); // all three kernels fault fully
}

TEST(GpuSystem, HostLoadWithinBounds)
{
    const Trace t = buildApp("HOT", 0.5);
    const auto r = runTiming(t, PolicyKind::Lru, RunConfig{});
    EXPECT_GT(r.hostLoad, 0.0);
    EXPECT_LE(r.hostLoad, 1.0 + 1e-9);
}

TEST(GpuSystem, HpeChargesHirTransferOnPcie)
{
    // The resident set must exceed the 512-entry shared L2 TLB or no
    // page-walk hits (and hence no HIR traffic) ever occur; HSD's 75%
    // capacity is 1152 frames.
    const Trace t = buildApp("HSD");
    const auto run = runTimingInspect(t, PolicyKind::Hpe, RunConfig{});
    EXPECT_GT(run.stats->findCounter("pcie.bytes").value(), 0u);
}

TEST(GpuSystem, BaselinesSeeEveryVisitAsReference)
{
    // Ideal-model channel: hits + faults observed by the policy equal the
    // trace's visit count (merged faults arrive as hits after wakeup).
    const Trace t = buildApp("STN", 0.5);
    const auto run = runTimingInspect(t, PolicyKind::Lru, RunConfig{});
    const auto &hits = run.stats->findCounter("driver.uvm.hits");
    // Every visit reaches the policy exactly once (a visit whose page is
    // evicted between fault service and replay can fault twice, so allow
    // a small overshoot).
    EXPECT_GE(hits.value() + run.timing.faults, t.size());
    EXPECT_LE(hits.value() + run.timing.faults, t.size() + t.size() / 20);
}

TEST(GpuSystem, WalkerHitsFeedHpeHir)
{
    const Trace t = buildApp("MRQ");
    const auto run = runTimingInspect(t, PolicyKind::Hpe, RunConfig{});
    EXPECT_GT(run.stats->findCounter("hpe.hir.hitsRecorded").value(), 0u);
    EXPECT_GT(run.stats->findCounter("hpe.hirFlushes").value(), 0u);
}

TEST(GpuSystem, DramSeesTrafficUnderCacheMisses)
{
    const Trace t = buildApp("LEU", 0.5);
    const auto run = runTimingInspect(t, PolicyKind::Lru, RunConfig{});
    EXPECT_GT(run.stats->findCounter("gpu.dram.reads").value(), 0u);
}

TEST(GpuSystem, MoreWarpsDoNotChangeInstructionCount)
{
    const Trace t = smallStream(128);
    StatRegistry s1, s2;
    LruPolicy p1, p2;
    GpuConfig few = tinyGpu();
    GpuConfig many = tinyGpu();
    many.warpsPerSm = 16;
    GpuSystem g1(few, t, p1, 128, s1);
    GpuSystem g2(many, t, p2, 128, s2);
    EXPECT_EQ(g1.run().instructions, g2.run().instructions);
}

TEST(GpuSystem, WalkLatencySensitivityIsSmall)
{
    // §V-B: page-walk latency of 8 vs 20 cycles has minimal effect.
    const Trace t = buildApp("STN", 0.5);
    RunConfig fast, slow;
    slow.gpu.walkLatency = 20;
    const auto a = runTiming(t, PolicyKind::Lru, fast);
    const auto b = runTiming(t, PolicyKind::Lru, slow);
    EXPECT_NEAR(b.ipc / a.ipc, 1.0, 0.05);
}

} // namespace
} // namespace hpe
