/**
 * @file
 * Unit tests for the TLB hierarchy and the page table walker.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "mem/page_table.hpp"
#include "tlb/tlb.hpp"
#include "tlb/walker.hpp"

namespace hpe {
namespace {

TEST(Tlb, MissThenFillThenHit)
{
    StatRegistry stats;
    Tlb tlb(l1TlbConfig(), stats, "t");
    EXPECT_FALSE(tlb.lookup(5));
    tlb.fill(5);
    EXPECT_TRUE(tlb.lookup(5));
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, InvalidateDropsTranslation)
{
    StatRegistry stats;
    Tlb tlb(l1TlbConfig(), stats, "t");
    tlb.fill(5);
    tlb.invalidate(5);
    EXPECT_FALSE(tlb.lookup(5));
}

TEST(Tlb, FlushDropsEverything)
{
    StatRegistry stats;
    Tlb tlb(l1TlbConfig(), stats, "t");
    tlb.fill(1);
    tlb.fill(2);
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(1));
    EXPECT_FALSE(tlb.lookup(2));
}

TEST(Tlb, CapacityEvictsLru)
{
    StatRegistry stats;
    TlbConfig cfg{.entries = 4, .ways = 4, .latency = 1, .ports = 1};
    Tlb tlb(cfg, stats, "t");
    for (PageId p = 0; p < 4; ++p)
        tlb.fill(p);
    tlb.lookup(0); // refresh 0
    tlb.fill(99);  // evicts LRU = 1
    EXPECT_TRUE(tlb.lookup(0));
    EXPECT_FALSE(tlb.lookup(1));
}

TEST(Tlb, DoubleFillIsIdempotent)
{
    StatRegistry stats;
    TlbConfig cfg{.entries = 2, .ways = 2, .latency = 1, .ports = 1};
    Tlb tlb(cfg, stats, "t");
    tlb.fill(7);
    tlb.fill(7);
    tlb.fill(8);
    EXPECT_TRUE(tlb.lookup(7));
    EXPECT_TRUE(tlb.lookup(8));
}

TEST(Tlb, SinglePortSerializesLookups)
{
    StatRegistry stats;
    TlbConfig cfg{.entries = 4, .ways = 4, .latency = 10, .ports = 1};
    Tlb tlb(cfg, stats, "t");
    EXPECT_EQ(tlb.issueDelay(100), 0u);  // port free
    EXPECT_EQ(tlb.issueDelay(100), 10u); // waits for the first lookup
    EXPECT_EQ(tlb.issueDelay(100), 20u);
}

TEST(Tlb, TwoPortsAllowTwoConcurrent)
{
    StatRegistry stats;
    TlbConfig cfg{.entries = 4, .ways = 4, .latency = 10, .ports = 2};
    Tlb tlb(cfg, stats, "t");
    EXPECT_EQ(tlb.issueDelay(0), 0u);
    EXPECT_EQ(tlb.issueDelay(0), 0u);  // second port
    EXPECT_EQ(tlb.issueDelay(0), 10u); // both busy
}

TEST(Tlb, PortFreesAfterLatency)
{
    StatRegistry stats;
    TlbConfig cfg{.entries = 4, .ways = 4, .latency = 10, .ports = 1};
    Tlb tlb(cfg, stats, "t");
    tlb.issueDelay(0);
    EXPECT_EQ(tlb.issueDelay(50), 0u); // long past the busy window
}

TEST(Tlb, TableIDefaults)
{
    EXPECT_EQ(l1TlbConfig().entries, 128u);
    EXPECT_EQ(l1TlbConfig().latency, 1u);
    EXPECT_EQ(l2TlbConfig().entries, 512u);
    EXPECT_EQ(l2TlbConfig().ways, 16u);
    EXPECT_EQ(l2TlbConfig().latency, 10u);
    EXPECT_EQ(l2TlbConfig().ports, 2u);
}

TEST(Walker, HitReturnsFrameAndLatency)
{
    StatRegistry stats;
    PageTable pt;
    pt.map(3, 42);
    PageWalker walker(pt, 8, stats, "w");
    const WalkResult r = walker.walk(3);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.frame, 42u);
    EXPECT_EQ(r.latency, 8u);
}

TEST(Walker, MissIsFault)
{
    StatRegistry stats;
    PageTable pt;
    PageWalker walker(pt, 8, stats, "w");
    const WalkResult r = walker.walk(3);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.frame, kInvalidId);
}

TEST(Walker, HitObserverFiresOnHitsOnly)
{
    StatRegistry stats;
    PageTable pt;
    pt.map(1, 0);
    PageWalker walker(pt, 8, stats, "w");
    std::vector<PageId> observed;
    walker.setHitObserver([&](PageId p) { observed.push_back(p); });
    walker.walk(1);
    walker.walk(2); // fault: no observation
    walker.walk(1);
    EXPECT_EQ(observed, (std::vector<PageId>{1, 1}));
}

TEST(Walker, StatsCountWalks)
{
    StatRegistry stats;
    PageTable pt;
    pt.map(1, 0);
    PageWalker walker(pt, 8, stats, "w");
    walker.walk(1);
    walker.walk(2);
    EXPECT_EQ(stats.findCounter("w.walks").value(), 2u);
    EXPECT_EQ(stats.findCounter("w.hits").value(), 1u);
    EXPECT_EQ(stats.findCounter("w.faults").value(), 1u);
}

} // namespace
} // namespace hpe
