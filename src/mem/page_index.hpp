/**
 * @file
 * Dense page-keyed containers for the fault hot path.
 *
 * Every reference the functional simulator replays consults page-keyed
 * state at least twice (residency, then policy/dirty bookkeeping).  The
 * traces address a small, bounded page-id space starting near zero, so a
 * direct-indexed array beats a hash map: no hashing, no probing, one
 * cache line per query.  Page ids outside the dense window — in practice
 * only the multi-app driver's address-space slices, which set bit 40 —
 * fall back to a hash container, so correctness never depends on the
 * bound.
 *
 * The dense window grows lazily to the highest page actually touched
 * (rounded up to a power of two), so memory tracks the workload
 * footprint, not the configured limit.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace hpe {

/**
 * Pages below this id use direct indexing (4 M pages = 16 GB of virtual
 * address space at 4 KB); pages above it use the overflow hash container.
 */
inline constexpr PageId kDensePageLimit = PageId{1} << 22;

/**
 * Page -> V map: direct-indexed below kDensePageLimit, hashed above.
 * @p Invalid marks empty dense slots and must never be stored as a value.
 */
template <typename V, V Invalid>
class DensePageMap
{
  public:
    /** @return the value of @p page, or Invalid if absent. */
    V
    lookup(PageId page) const
    {
        if (page < dense_.size()) [[likely]]
            return dense_[page];
        if (page < kDensePageLimit)
            return Invalid;
        auto it = overflow_.find(page);
        return it == overflow_.end() ? Invalid : it->second;
    }

    bool contains(PageId page) const { return lookup(page) != Invalid; }

    /** Insert (@p page -> @p value); @p page must be absent. */
    void
    insert(PageId page, V value)
    {
        if (page < kDensePageLimit) {
            if (page >= dense_.size())
                grow(page);
            dense_[page] = value;
        } else {
            overflow_.emplace(page, value);
        }
        ++size_;
    }

    /** Remove @p page. @return its value, or Invalid if it was absent. */
    V
    erase(PageId page)
    {
        if (page < dense_.size()) {
            const V old = dense_[page];
            if (old != Invalid) {
                dense_[page] = Invalid;
                --size_;
            }
            return old;
        }
        if (page < kDensePageLimit)
            return Invalid;
        auto it = overflow_.find(page);
        if (it == overflow_.end())
            return Invalid;
        const V old = it->second;
        overflow_.erase(it);
        --size_;
        return old;
    }

    std::size_t size() const { return size_; }

    /** Visit every (page, value) pair: dense ascending, then overflow. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (PageId page = 0; page < dense_.size(); ++page)
            if (dense_[page] != Invalid)
                fn(page, dense_[page]);
        for (const auto &[page, value] : overflow_)
            fn(page, value);
    }

  private:
    void
    grow(PageId page)
    {
        std::size_t capacity = dense_.empty() ? 1024 : dense_.size();
        while (capacity <= page)
            capacity *= 2;
        dense_.resize(capacity, Invalid);
    }

    std::vector<V> dense_;
    std::unordered_map<PageId, V> overflow_;
    std::size_t size_ = 0;
};

/** Page set: one bit per page below kDensePageLimit, hashed above. */
class DensePageSet
{
  public:
    bool
    contains(PageId page) const
    {
        const std::size_t word = static_cast<std::size_t>(page >> 6);
        if (word < bits_.size()) [[likely]]
            return (bits_[word] >> (page & 63)) & 1;
        if (page < kDensePageLimit)
            return false;
        return overflow_.contains(page);
    }

    /** @return true if @p page was newly inserted. */
    bool
    insert(PageId page)
    {
        if (page < kDensePageLimit) {
            const std::size_t word = static_cast<std::size_t>(page >> 6);
            if (word >= bits_.size())
                grow(word);
            const std::uint64_t mask = std::uint64_t{1} << (page & 63);
            if (bits_[word] & mask)
                return false;
            bits_[word] |= mask;
            ++size_;
            return true;
        }
        const bool inserted = overflow_.insert(page).second;
        size_ += inserted ? 1 : 0;
        return inserted;
    }

    /** @return true if @p page was present and removed. */
    bool
    erase(PageId page)
    {
        const std::size_t word = static_cast<std::size_t>(page >> 6);
        if (word < bits_.size()) {
            const std::uint64_t mask = std::uint64_t{1} << (page & 63);
            if (!(bits_[word] & mask))
                return false;
            bits_[word] &= ~mask;
            --size_;
            return true;
        }
        if (page < kDensePageLimit)
            return false;
        const bool erased = overflow_.erase(page) > 0;
        size_ -= erased ? 1 : 0;
        return erased;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        bits_.clear();
        overflow_.clear();
        size_ = 0;
    }

    /** Visit every member page: dense ascending, then overflow. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t word = 0; word < bits_.size(); ++word) {
            std::uint64_t w = bits_[word];
            while (w != 0) {
                const unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
                fn(static_cast<PageId>(word * 64 + bit));
                w &= w - 1;
            }
        }
        for (PageId page : overflow_)
            fn(page);
    }

  private:
    void
    grow(std::size_t word)
    {
        std::size_t capacity = bits_.empty() ? 16 : bits_.size();
        while (capacity <= word)
            capacity *= 2;
        bits_.resize(capacity, 0);
    }

    std::vector<std::uint64_t> bits_;
    std::unordered_set<PageId> overflow_;
    std::size_t size_ = 0;
};

/**
 * Per-region residency counter for the huge-page coalescer: counts how
 * many 4 KiB pages are resident in each naturally-aligned 2^order-page
 * region.  Regions below kDensePageLimit use a direct-indexed array (one
 * counter per region — at order >= 4 this is a small fraction of the page
 * table itself); higher regions fall back to a hash map, mirroring the
 * DensePageMap convention, so correctness never depends on the window.
 */
class DenseRegionCounter
{
  public:
    /** @param order region size as log2 subpages (4 = 64 KiB regions). */
    explicit DenseRegionCounter(unsigned order)
        : order_(order)
    {
        HPE_ASSERT(order >= 1 && order < 20, "bad region order {}", order);
    }

    unsigned order() const { return order_; }

    /** Count of resident pages in @p page's region. */
    std::uint32_t
    count(PageId page) const
    {
        const PageId region = page >> order_;
        if (region < dense_.size())
            return dense_[region];
        if (region < (kDensePageLimit >> order_))
            return 0;
        auto it = overflow_.find(region);
        return it == overflow_.end() ? 0 : it->second;
    }

    /** A page in @p page's region became resident. @return the new count. */
    std::uint32_t
    increment(PageId page)
    {
        const PageId region = page >> order_;
        if (region < (kDensePageLimit >> order_)) {
            if (region >= dense_.size())
                grow(region);
            const std::uint32_t now = ++dense_[region];
            HPE_ASSERT(now <= (std::uint32_t{1} << order_),
                       "region {:#x} overfull", region);
            return now;
        }
        return ++overflow_[region];
    }

    /** A page in @p page's region was evicted. @return the new count. */
    std::uint32_t
    decrement(PageId page)
    {
        const PageId region = page >> order_;
        if (region < (kDensePageLimit >> order_)) {
            HPE_ASSERT(region < dense_.size() && dense_[region] > 0,
                       "region {:#x} count underflow", region);
            return --dense_[region];
        }
        auto it = overflow_.find(region);
        HPE_ASSERT(it != overflow_.end() && it->second > 0,
                   "region {:#x} count underflow", region);
        const std::uint32_t now = --it->second;
        if (now == 0)
            overflow_.erase(it);
        return now;
    }

  private:
    void
    grow(PageId region)
    {
        std::size_t capacity = dense_.empty() ? 256 : dense_.size();
        while (capacity <= region)
            capacity *= 2;
        dense_.resize(capacity, 0);
    }

    unsigned order_;
    std::vector<std::uint32_t> dense_;
    std::unordered_map<PageId, std::uint32_t> overflow_;
};

/**
 * Doubly-linked recency chain over pages in struct-of-arrays layout.
 *
 * Replaces the node-per-page `IntrusiveList` + `unordered_map<PageId,
 * unique_ptr<Node>>` idiom in recency policies: links live in parallel
 * `uint32_t` arrays indexed by slot, the page->slot lookup rides
 * DensePageMap's direct-indexed fast path, and freed slots recycle
 * through a free list — so the per-reference chain update touches two
 * small arrays instead of chasing heap nodes, and tracking a page costs
 * no allocation after warm-up.
 *
 * Chain order is front (head) to back (tail); recency policies keep the
 * eviction candidate at the front.
 */
class DensePageChain
{
  public:
    bool contains(PageId page) const { return slotOf_.lookup(page) != kNoSlot; }

    /** Append @p page at the back (MRU end); must not be present. */
    void
    pushBack(PageId page)
    {
        const std::uint32_t s = allocSlot(page);
        prev_[s] = tail_;
        next_[s] = kNoSlot;
        if (tail_ != kNoSlot)
            next_[tail_] = s;
        else
            head_ = s;
        tail_ = s;
    }

    /** Insert @p page at the front (LRU end); must not be present. */
    void
    pushFront(PageId page)
    {
        const std::uint32_t s = allocSlot(page);
        prev_[s] = kNoSlot;
        next_[s] = head_;
        if (head_ != kNoSlot)
            prev_[head_] = s;
        else
            tail_ = s;
        head_ = s;
    }

    /** Move @p page to the back. @return false if it is not tracked. */
    bool
    moveToBack(PageId page)
    {
        const std::uint32_t s = slotOf_.lookup(page);
        if (s == kNoSlot)
            return false;
        if (s == tail_)
            return true;
        unlink(s);
        prev_[s] = tail_;
        next_[s] = kNoSlot;
        next_[tail_] = s;
        tail_ = s;
        return true;
    }

    /** Remove @p page. @return false if it was not tracked. */
    bool
    remove(PageId page)
    {
        const std::uint32_t s = slotOf_.erase(page);
        if (s == kNoSlot)
            return false;
        unlink(s);
        next_[s] = freeHead_;
        freeHead_ = s;
        --size_;
        return true;
    }

    /** Page at the front (eviction candidate); chain must be nonempty. */
    PageId
    front() const
    {
        HPE_ASSERT(size_ != 0, "front() on an empty page chain");
        return page_[head_];
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    reserve(std::size_t n)
    {
        prev_.reserve(n);
        next_.reserve(n);
        page_.reserve(n);
    }

    /** Visit pages front to back (LRU to MRU). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint32_t s = head_; s != kNoSlot; s = next_[s])
            fn(page_[s]);
    }

  private:
    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    std::uint32_t
    allocSlot(PageId page)
    {
        HPE_ASSERT(!contains(page), "page {:#x} already chained", page);
        std::uint32_t s;
        if (freeHead_ != kNoSlot) {
            s = freeHead_;
            freeHead_ = next_[s];
            page_[s] = page;
        } else {
            s = static_cast<std::uint32_t>(page_.size());
            prev_.push_back(kNoSlot);
            next_.push_back(kNoSlot);
            page_.push_back(page);
        }
        slotOf_.insert(page, s);
        ++size_;
        return s;
    }

    void
    unlink(std::uint32_t s)
    {
        if (prev_[s] != kNoSlot)
            next_[prev_[s]] = next_[s];
        else
            head_ = next_[s];
        if (next_[s] != kNoSlot)
            prev_[next_[s]] = prev_[s];
        else
            tail_ = prev_[s];
    }

    std::vector<std::uint32_t> prev_;
    std::vector<std::uint32_t> next_;
    std::vector<PageId> page_;
    DensePageMap<std::uint32_t, kNoSlot> slotOf_;
    std::uint32_t head_ = kNoSlot;
    std::uint32_t tail_ = kNoSlot;
    std::uint32_t freeHead_ = kNoSlot;
    std::size_t size_ = 0;
};

} // namespace hpe
