/**
 * @file
 * Huge-page coalescer/splinterer of the GMMU (Mosaic direction).
 *
 * Watches every mapping change through UvmMemoryManager and, when a
 * naturally-aligned run of 4 KiB pages becomes fully resident, promotes
 * it into one large page; under eviction pressure the large page is
 * splintered back into its 4 KiB constituents.  The design choices:
 *
 *  - 4 KiB stays the fault and transfer granularity (as in Mosaic): the
 *    page table keeps one leaf per 4 KiB subpage at all times, so the
 *    walkers, frame conservation, and dirty/speculative bookkeeping are
 *    untouched.  A large page is a side record (head -> span) plus the
 *    policy and TLB treating the whole run as ONE logical page.
 *  - Promotion prefers *in-place* coalescing: the allocator hands out
 *    ascending frames, so runs faulted sequentially usually already sit
 *    in an aligned contiguous frame run and promotion costs nothing —
 *    Mosaic's "controlled allocation" observation.  Otherwise the
 *    subpages are remapped into a freshly claimed aligned run
 *    (FrameAllocator::allocateRun); when fragmentation leaves none, the
 *    promotion is *blocked* and counted — the fragmentation signal the
 *    experiments sweep.
 *  - The eviction policy sees one logical page per large page: at
 *    promotion the non-head subpages leave the policy (onEvict — every
 *    policy already tolerates driver-chosen evictions of any tracked
 *    page), and the head now stands for the whole span.  At splinter the
 *    non-head subpages re-enter through onPrefetchIn, the cold-insertion
 *    tier, since their individual recency was lost while coalesced.
 *  - Splintering happens when the policy selects a large head as victim:
 *    the driver splinters first, then evicts just the head — eviction
 *    pressure breaks large pages apart before it frees memory, which
 *    keeps the single-victim fault protocol intact.
 *
 * With PageSizeConfig::coalesce false the coalescer is observe-only: it
 * tracks region residency and fragmentation gauges but never changes a
 * mapping, which is the configuration the differential property suite
 * proves byte-identical to the 4 KiB baseline.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/page_index.hpp"
#include "mem/page_size.hpp"
#include "mem/page_table.hpp"
#include "mem/radix_page_table.hpp"
#include "policy/eviction_policy.hpp"
#include "trace/trace_sink.hpp"

namespace hpe {

/** The GMMU's multi-page-size manager; owned by UvmMemoryManager. */
class HugePageCoalescer
{
  public:
    /** Translation-shootdown callback for remapped subpages (timing mode
     *  wires TLB/cache invalidation here; functional mode leaves it unset). */
    using ShootdownHook = std::function<void(PageId)>;

    /**
     * @param cfg    enabled size classes; must be active().
     * @param table  the GPU page table (per-4 KiB leaves, shared).
     * @param frames frame pool; run tracking must already be enabled.
     * @param policy eviction policy seeing logical pages.
     * @param stats  registry receiving "<name>.*".
     * @param name   stat prefix, e.g. "uvm.coalesce".
     */
    HugePageCoalescer(const PageSizeConfig &cfg, PageTable &table,
                      FrameAllocator &frames, EvictionPolicy &policy,
                      StatRegistry &stats, const std::string &name)
        : cfg_(cfg), table_(table), frames_(frames), policy_(policy),
          promotionsInPlace_(stats.counter(name + ".promotionsInPlace")),
          promotionsRemap_(stats.counter(name + ".promotionsRemap")),
          blocked_(stats.counter(name + ".blocked")),
          splinters_(stats.counter(name + ".splinters")),
          subsumed_(stats.counter(name + ".subsumed")),
          remappedPages_(stats.counter(name + ".remappedPages"))
    {
        HPE_ASSERT(cfg.active(), "coalescer attached with no large classes");
        validatePageSizes(cfg, frames.capacity());
        HPE_ASSERT(frames.runTracking(),
                   "coalescer requires frame run tracking");
        // Largest class first: promotion checks prefer the biggest page
        // a newly-full region can form.
        for (auto it = cfg.largeOrders.rbegin(); it != cfg.largeOrders.rend();
             ++it)
            classes_.push_back(SizeClass{*it, std::uint32_t{1} << *it,
                                         std::make_unique<DenseRegionCounter>(*it)});
    }

    void setTraceSink(trace::TraceSink *sink) { sink_ = sink; }
    void setRadixMirror(RadixPageTable *radix) { radixMirror_ = radix; }
    void setShootdownHook(ShootdownHook hook) { shootdown_ = std::move(hook); }

    const PageSizeConfig &config() const { return cfg_; }

    /** True if @p page is the head (logical page id) of a large page. */
    bool isLargeHead(PageId page) const { return largeSpan_.lookup(page) != 0; }

    /** Span in subpages of the large page headed by @p head (0 if none). */
    std::uint32_t spanOf(PageId head) const { return largeSpan_.lookup(head); }

    /**
     * The logical page standing for @p page in the policy and the TLBs:
     * the covering large page's head, or @p page itself.
     */
    PageId
    logicalPageOf(PageId page) const
    {
        for (const SizeClass &c : classes_) {
            const PageId head = page & ~static_cast<PageId>(c.span - 1);
            if (largeSpan_.lookup(head) == c.span)
                return head;
        }
        return page;
    }

    /** Number of live large pages. */
    std::size_t largePages() const { return largeSpan_.size(); }

    /** Total 4 KiB pages currently covered by large pages. */
    std::size_t coveredPages() const { return coveredPages_; }

    std::uint64_t
    promotions() const
    {
        return promotionsInPlace_.value() + promotionsRemap_.value();
    }
    std::uint64_t blockedPromotions() const { return blocked_.value(); }
    std::uint64_t splinters() const { return splinters_.value(); }

    /** Visit every large page as (head, span). */
    template <typename Fn>
    void
    forEachLarge(Fn &&fn) const
    {
        largeSpan_.forEach(fn);
    }

    /**
     * A 4 KiB page became resident (fault or prefetch; the policy has
     * already been told).  Updates region residency and, with coalescing
     * on, attempts the largest promotion the newly-full regions allow.
     */
    void
    onMap(PageId page)
    {
        bool full = false;
        for (const SizeClass &c : classes_)
            full |= c.resident->increment(page) == c.span;
        if (!cfg_.coalesce || !full)
            return;
        for (const SizeClass &c : classes_) {
            if (c.resident->count(page) != c.span)
                continue;
            const PageId head = page & ~static_cast<PageId>(c.span - 1);
            // Already covered by an equal-or-larger page? Nothing to do.
            const PageId lp = logicalPageOf(page);
            if (lp != page && largeSpan_.lookup(lp) >= c.span)
                return;
            if (promote(head, c.span))
                return;
            // Blocked at this class; a smaller enabled class may still fit.
        }
    }

    /**
     * The (4 KiB, uncovered) page @p page is being evicted; update region
     * residency.  The driver calls beforeEvict() first, so a large page
     * can never lose a subpage without splintering.
     */
    void
    onUnmap(PageId page)
    {
        HPE_ASSERT(logicalPageOf(page) == page && !isLargeHead(page),
                   "unmap of covered page {:#x} without splinter", page);
        for (const SizeClass &c : classes_)
            c.resident->decrement(page);
    }

    /**
     * The policy chose @p victim for eviction.  If it heads a large page,
     * splinter it back into 4 KiB pages first: the non-head subpages
     * re-enter the policy cold (onPrefetchIn) and only the head itself is
     * then evicted — eviction pressure is exactly what breaks large pages.
     */
    void
    beforeEvict(PageId victim)
    {
        const std::uint32_t span = largeSpan_.lookup(victim);
        if (span != 0)
            splinter(victim, span);
    }

  private:
    struct SizeClass
    {
        unsigned order;
        std::uint32_t span;
        std::unique_ptr<DenseRegionCounter> resident;
    };

    /**
     * Try to promote the fully-resident region [head, head+span).
     * @return true on success; false (and a blocked count) when
     * fragmentation prevents building an aligned frame run.
     */
    bool
    promote(PageId head, std::uint32_t span)
    {
        const FrameId f0 = table_.lookup(head);
        bool in_place = (f0 % span) == 0;
        for (std::uint32_t i = 1; in_place && i < span; ++i)
            in_place = table_.lookup(head + i) == f0 + i;

        if (!in_place) {
            const auto base = frames_.allocateRun(span);
            if (!base.has_value()) {
                ++blocked_;
                if (sink_ != nullptr)
                    sink_->emit(trace::EventKind::Coalesce,
                                static_cast<std::uint8_t>(
                                    trace::CoalesceKind::Blocked),
                                head, span);
                return false;
            }
            // Remap every subpage into the claimed run.  The data move is
            // GPU-local (no PCIe) and modelled as free, as in Mosaic; the
            // translation change still costs shootdowns in timing mode.
            for (std::uint32_t i = 0; i < span; ++i) {
                const PageId p = head + i;
                const FrameId old = table_.unmap(p);
                table_.map(p, *base + i);
                if (radixMirror_ != nullptr) {
                    radixMirror_->unmap(p);
                    radixMirror_->map(p, *base + i);
                }
                frames_.release(old);
                ++remappedPages_;
                if (shootdown_)
                    shootdown_(p);
            }
        }

        // Membership transfer: every logical page inside the region except
        // the new head leaves the policy; smaller large pages are subsumed.
        PageId p = head;
        while (p < head + span) {
            const std::uint32_t inner = largeSpan_.lookup(p);
            if (inner != 0) {
                largeSpan_.erase(p);
                coveredPages_ -= inner;
                ++subsumed_;
                if (p != head)
                    policy_.onEvict(p);
                p += inner;
            } else {
                if (p != head)
                    policy_.onEvict(p);
                p += 1;
            }
        }

        largeSpan_.insert(head, span);
        coveredPages_ += span;
        Counter &ctr = in_place ? promotionsInPlace_ : promotionsRemap_;
        ++ctr;
        if (sink_ != nullptr)
            sink_->emit(trace::EventKind::Coalesce,
                        static_cast<std::uint8_t>(
                            in_place ? trace::CoalesceKind::InPlace
                                     : trace::CoalesceKind::Remap),
                        head, span);
        return true;
    }

    void
    splinter(PageId head, std::uint32_t span)
    {
        largeSpan_.erase(head);
        coveredPages_ -= span;
        ++splinters_;
        if (sink_ != nullptr)
            sink_->emit(trace::EventKind::Splinter, 0, head, span);
        // Non-head subpages re-enter the policy cold; their individual
        // recency was folded into the head while coalesced.  Region
        // residency is unchanged — the pages are still mapped.
        for (std::uint32_t i = 1; i < span; ++i)
            policy_.onPrefetchIn(head + i);
    }

    PageSizeConfig cfg_;
    PageTable &table_;
    FrameAllocator &frames_;
    EvictionPolicy &policy_;
    RadixPageTable *radixMirror_ = nullptr;
    trace::TraceSink *sink_ = nullptr;
    ShootdownHook shootdown_;

    /** Large pages: head -> span in subpages (0 = sentinel, never stored). */
    DensePageMap<std::uint32_t, 0> largeSpan_;
    /** Size classes, largest span first. */
    std::vector<SizeClass> classes_;
    std::size_t coveredPages_ = 0;

    Counter &promotionsInPlace_;
    Counter &promotionsRemap_;
    Counter &blocked_;
    Counter &splinters_;
    Counter &subsumed_;
    Counter &remappedPages_;
};

} // namespace hpe
