/**
 * @file
 * The page-size axis of the memory system (Mosaic direction).
 *
 * The paper studies eviction at a fixed 4 KiB page; real GPU memory
 * managers went on to manage multiple page sizes transparently, coalescing
 * contiguous small pages into large pages for TLB reach and splintering
 * them back under eviction pressure.  A PageSizeConfig names the enabled
 * size classes (4 KiB is always present and always the fault/transfer
 * granularity) and whether the coalescer may actually promote; parsing and
 * validation live here so the CLI, the api facade, and the tests share one
 * spelling ("4k,64k,2m").
 *
 * The default config is 4 KiB-only with coalescing off, and nothing in the
 * memory system changes behaviour unless PageSizeConfig::active() — that
 * is the bit-exactness guarantee the golden digests pin.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace hpe {

/**
 * One enabled large-page size class, expressed relative to the 4 KiB base
 * page: order = log2(subpages), so 64 KiB has order 4 (16 subpages) and
 * 2 MiB has order 9 (512 subpages).
 */
struct PageSizeClass
{
    unsigned order = 0;
    std::uint32_t span() const { return std::uint32_t{1} << order; }
    std::uint64_t bytes() const { return std::uint64_t{kPageBytes} << order; }
};

/** The page-size axis of one run. */
struct PageSizeConfig
{
    /**
     * Enabled large-page orders (log2 subpages), sorted ascending, without
     * the always-present order-0 base class.  Empty = 4 KiB only.
     */
    std::vector<unsigned> largeOrders;
    /**
     * Promote fully-resident aligned runs into large pages (and splinter
     * them under eviction pressure).  When false with largeOrders set, the
     * coalescer runs in observe-only mode: it tracks region residency and
     * fragmentation but never changes a mapping — the configuration the
     * differential property suite proves byte-identical to the baseline.
     */
    bool coalesce = false;

    /** True when any machinery must be attached at all. */
    bool active() const { return !largeOrders.empty(); }

    /** Largest enabled span in subpages (1 when 4 KiB-only). */
    std::uint32_t
    maxSpan() const
    {
        return largeOrders.empty()
                   ? 1u
                   : std::uint32_t{1} << largeOrders.back();
    }

    /** Canonical spelling, e.g. "4k", "4k,64k", "4k,64k,2m". */
    std::string
    spell() const
    {
        std::string out = "4k";
        for (unsigned order : largeOrders)
            out += "," + sizeName(order);
        return out;
    }

    /** "64k" / "2m" / "32k"-style name of an order. */
    static std::string
    sizeName(unsigned order)
    {
        const std::uint64_t bytes = std::uint64_t{kPageBytes} << order;
        if (bytes >= (std::uint64_t{1} << 20))
            return std::to_string(bytes >> 20) + "m";
        return std::to_string(bytes >> 10) + "k";
    }
};

/**
 * Parse one size token ("4k", "64K", "2m", "2M") into its order, or
 * nullopt for a malformed/non-power-of-two/out-of-range size.  Accepted
 * range: 4 KiB .. 1 GiB (orders 0..18) — anything above a gigantic page
 * is a typo, not a configuration.
 */
inline std::optional<unsigned>
parsePageSizeToken(std::string_view token)
{
    if (token.size() < 2)
        return std::nullopt;
    const char suffix = token.back();
    std::uint64_t mult = 0;
    if (suffix == 'k' || suffix == 'K')
        mult = std::uint64_t{1} << 10;
    else if (suffix == 'm' || suffix == 'M')
        mult = std::uint64_t{1} << 20;
    else if (suffix == 'g' || suffix == 'G')
        mult = std::uint64_t{1} << 30;
    else
        return std::nullopt;
    std::uint64_t num = 0;
    for (char c : token.substr(0, token.size() - 1)) {
        if (c < '0' || c > '9')
            return std::nullopt;
        num = num * 10 + static_cast<std::uint64_t>(c - '0');
        if (num > (std::uint64_t{1} << 30))
            return std::nullopt;
    }
    if (num == 0)
        return std::nullopt;
    const std::uint64_t bytes = num * mult;
    if (bytes < kPageBytes || (bytes & (bytes - 1)) != 0
        || bytes > (std::uint64_t{1} << 30))
        return std::nullopt;
    unsigned order = 0;
    while ((std::uint64_t{kPageBytes} << order) < bytes)
        ++order;
    return order;
}

/**
 * Parse a "4k,64k,2m" list into a PageSizeConfig (coalesce untouched).
 * The base 4 KiB class may be spelled or omitted; duplicates collapse.
 * On a malformed list, @p error receives a message and nullopt returns —
 * callers that prefer exiting wrap this in a fatal().
 */
inline std::optional<PageSizeConfig>
parsePageSizes(std::string_view list, std::string &error)
{
    PageSizeConfig cfg;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string_view token = list.substr(
            pos, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - pos);
        if (!token.empty()) {
            const auto order = parsePageSizeToken(token);
            if (!order.has_value()) {
                error = "bad page size '" + std::string(token)
                        + "' (expected a power-of-two like 4k, 64k, 2m)";
                return std::nullopt;
            }
            if (*order > 0) {
                bool dup = false;
                for (unsigned o : cfg.largeOrders)
                    dup = dup || o == *order;
                if (!dup)
                    cfg.largeOrders.push_back(*order);
            }
        }
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    std::sort(cfg.largeOrders.begin(), cfg.largeOrders.end());
    return cfg;
}

/**
 * Panic unless @p cfg is usable with a frame pool of @p frames pages: a
 * large page must fit in GPU memory, or promotion could never succeed and
 * the aligned-run allocator's bitmap math would be meaningless.  The
 * EXPECT_DEATH leg of the coalescer fuzz suite pins this check.
 */
inline void
validatePageSizes(const PageSizeConfig &cfg, std::size_t frames)
{
    for (unsigned order : cfg.largeOrders) {
        const std::uint64_t span = std::uint64_t{1} << order;
        HPE_ASSERT(span >= 2,
                   "large page class of order {} is not large", order);
        HPE_ASSERT(span <= frames,
                   "page size {} spans {} frames but the pool holds only {}",
                   PageSizeConfig::sizeName(order), span, frames);
    }
}

} // namespace hpe
