/**
 * @file
 * Data cache model (L1 per SM, shared L2) from Table I of the paper.
 *
 * The caches are hit/miss filters in front of the DRAM model: the eviction
 * study does not depend on coherence or writeback traffic, so lines are
 * allocate-on-fill with LRU replacement and the model tracks hits, misses
 * and fills.  Latencies are applied by the requester.
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/page_index.hpp"
#include "mem/set_assoc.hpp"

namespace hpe {

/** Geometry and latency of one cache level. */
struct DataCacheConfig
{
    std::size_t sizeBytes = 16 * 1024;
    std::size_t ways = 4;
    std::size_t lineBytes = 128;
    Cycle hitLatency = 1;
};

/** Set-associative, LRU, allocate-on-fill data cache. */
class DataCache
{
  public:
    /**
     * @param cfg   geometry and hit latency.
     * @param stats registry receiving "<name>.hits" / "<name>.misses".
     * @param name  hierarchical stat prefix, e.g. "gpu.sm3.l1d".
     */
    DataCache(const DataCacheConfig &cfg, StatRegistry &stats, const std::string &name)
        : cfg_(cfg),
          array_(cfg.sizeBytes / cfg.lineBytes, cfg.ways),
          hits_(stats.counter(name + ".hits")),
          misses_(stats.counter(name + ".misses"))
    {}

    /**
     * Look up the line containing @p addr; fill it on a miss.
     * @return true on hit.
     */
    bool
    access(Addr addr)
    {
        const std::uint64_t line = addr / cfg_.lineBytes;
        if (array_.find(line) != nullptr) {
            ++hits_;
            return true;
        }
        ++misses_;
        SetAssocArray<std::monostate>::Entry victim;
        array_.insert(line, &victim);
        if (victim.valid)
            bumpLines(pageOfLine(victim.tag), -1);
        bumpLines(pageOfLine(line), +1);
        return false;
    }

    /**
     * Drop every line whose address falls inside page @p page.
     *
     * Eviction invalidations mostly target pages the cache no longer
     * holds (the victim went cold long before the policy chose it), so
     * a per-page resident-line count turns the common case into one
     * lookup and bounds the rest to the lines actually present.
     */
    void
    invalidatePage(PageId page)
    {
        std::uint32_t remaining = lineCount(page);
        if (remaining == 0)
            return;
        const std::uint64_t first = addrOf(page) / cfg_.lineBytes;
        const std::uint64_t count = kPageBytes / cfg_.lineBytes;
        for (std::uint64_t l = first; l < first + count && remaining > 0; ++l)
            if (array_.erase(l))
                --remaining;
        zeroLines(page);
    }

    Cycle hitLatency() const { return cfg_.hitLatency; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    PageId
    pageOfLine(std::uint64_t line) const
    {
        return line * cfg_.lineBytes / kPageBytes;
    }

    std::uint32_t
    lineCount(PageId page) const
    {
        if (page < denseLines_.size()) [[likely]]
            return denseLines_[page];
        if (page < kDensePageLimit)
            return 0;
        auto it = overflowLines_.find(page);
        return it == overflowLines_.end() ? 0 : it->second;
    }

    void
    bumpLines(PageId page, std::int32_t delta)
    {
        if (page < kDensePageLimit) [[likely]] {
            if (page >= denseLines_.size()) {
                std::size_t cap = denseLines_.empty() ? 1024 : denseLines_.size();
                while (cap <= page)
                    cap *= 2;
                denseLines_.resize(cap, 0);
            }
            denseLines_[page] += static_cast<std::uint32_t>(delta);
        } else {
            auto [it, inserted] = overflowLines_.try_emplace(page, 0);
            it->second += static_cast<std::uint32_t>(delta);
            if (it->second == 0)
                overflowLines_.erase(it);
        }
    }

    void
    zeroLines(PageId page)
    {
        if (page < denseLines_.size())
            denseLines_[page] = 0;
        else if (page >= kDensePageLimit)
            overflowLines_.erase(page);
    }

    DataCacheConfig cfg_;
    SetAssocArray<std::monostate> array_;
    Counter &hits_;
    Counter &misses_;
    /** Resident-line count per page: dense window + sparse overflow. */
    std::vector<std::uint32_t> denseLines_;
    std::unordered_map<PageId, std::uint32_t> overflowLines_;
};

} // namespace hpe
