/**
 * @file
 * Data cache model (L1 per SM, shared L2) from Table I of the paper.
 *
 * The caches are hit/miss filters in front of the DRAM model: the eviction
 * study does not depend on coherence or writeback traffic, so lines are
 * allocate-on-fill with LRU replacement and the model tracks hits, misses
 * and fills.  Latencies are applied by the requester.
 */

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/set_assoc.hpp"

namespace hpe {

/** Geometry and latency of one cache level. */
struct DataCacheConfig
{
    std::size_t sizeBytes = 16 * 1024;
    std::size_t ways = 4;
    std::size_t lineBytes = 128;
    Cycle hitLatency = 1;
};

/** Set-associative, LRU, allocate-on-fill data cache. */
class DataCache
{
  public:
    /**
     * @param cfg   geometry and hit latency.
     * @param stats registry receiving "<name>.hits" / "<name>.misses".
     * @param name  hierarchical stat prefix, e.g. "gpu.sm3.l1d".
     */
    DataCache(const DataCacheConfig &cfg, StatRegistry &stats, const std::string &name)
        : cfg_(cfg),
          array_(cfg.sizeBytes / cfg.lineBytes, cfg.ways),
          hits_(stats.counter(name + ".hits")),
          misses_(stats.counter(name + ".misses"))
    {}

    /**
     * Look up the line containing @p addr; fill it on a miss.
     * @return true on hit.
     */
    bool
    access(Addr addr)
    {
        const std::uint64_t line = addr / cfg_.lineBytes;
        if (array_.find(line) != nullptr) {
            ++hits_;
            return true;
        }
        ++misses_;
        array_.insert(line);
        return false;
    }

    /** Drop every line whose address falls inside page @p page. */
    void
    invalidatePage(PageId page)
    {
        const std::uint64_t first = addrOf(page) / cfg_.lineBytes;
        const std::uint64_t count = kPageBytes / cfg_.lineBytes;
        for (std::uint64_t l = first; l < first + count; ++l)
            array_.erase(l);
    }

    Cycle hitLatency() const { return cfg_.hitLatency; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    DataCacheConfig cfg_;
    SetAssocArray<std::monostate> array_;
    Counter &hits_;
    Counter &misses_;
};

} // namespace hpe
