/**
 * @file
 * GDDR5 DRAM model with FR-FCFS scheduling (Table I: 12 channels,
 * 177 GB/s aggregate, FR-FCFS).
 *
 * Each channel owns a request queue and a set of banks with open-row state.
 * When a channel is idle it picks the first row-buffer-hit request in queue
 * order, or the oldest request if none hits — the FR-FCFS discipline.
 * Completion is signalled through the shared EventQueue.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/event_queue.hpp"
#include "common/small_function.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace hpe {

/** DRAM geometry and timing (cycles are GPU core cycles). */
struct DramConfig
{
    std::size_t channels = 12;
    std::size_t banksPerChannel = 16;
    std::size_t rowBytes = 2048;
    std::size_t lineBytes = 128;
    /** Column access on an open row. */
    Cycle rowHitLatency = 40;
    /** Precharge + activate + column access. */
    Cycle rowMissLatency = 120;
    /** Data transfer occupancy of the channel per request. */
    Cycle burstCycles = 4;
};

/** Multi-channel DRAM with per-channel FR-FCFS queues. */
class Dram
{
  public:
    /** Completion continuation; move-only, inline up to 32 bytes. */
    using Callback = SmallFunction<32>;

    /**
     * @param cfg   geometry/timing.
     * @param eq    event queue driving completions.
     * @param stats registry receiving "<name>.*" counters.
     * @param name  stat prefix, e.g. "gpu.dram".
     */
    Dram(const DramConfig &cfg, EventQueue &eq, StatRegistry &stats,
         const std::string &name)
        : cfg_(cfg), eq_(eq),
          reads_(stats.counter(name + ".reads")),
          rowHits_(stats.counter(name + ".rowHits")),
          rowMisses_(stats.counter(name + ".rowMisses")),
          channels_(cfg.channels)
    {
        for (auto &ch : channels_)
            ch.openRow.assign(cfg_.banksPerChannel, kInvalidId);
    }

    /**
     * Enqueue a read of the line containing @p addr; @p done fires when the
     * data would be returned.
     */
    void
    read(Addr addr, Callback done)
    {
        ++reads_;
        const std::size_t chan = channelOf(addr);
        Channel &ch = channels_[chan];
        // Bank/row are functions of the address alone; computing them once
        // here keeps the FR-FCFS scan free of per-element divisions.
        ch.queue.push_back(
            Request{addr, bankOf(addr), rowOf(addr), std::move(done), true});
        if (!ch.busy)
            serviceNext(chan);
    }

    /** True when every channel queue is empty and idle. */
    bool
    idle() const
    {
        for (const Channel &ch : channels_)
            if (ch.busy || !ch.queue.empty())
                return false;
        return true;
    }

    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }

  private:
    struct Request
    {
        Addr addr;
        std::size_t bank;
        std::uint64_t row;
        Callback done;
        /** False once serviced out of FIFO order (tombstone; see below). */
        bool live;
    };

    struct Channel
    {
        std::deque<Request> queue;
        std::vector<std::uint64_t> openRow;
        bool busy = false;
    };

    std::size_t
    channelOf(Addr addr) const
    {
        // Interleave at line granularity across channels.
        return (addr / cfg_.lineBytes) % cfg_.channels;
    }

    std::size_t
    bankOf(Addr addr) const
    {
        return (addr / cfg_.rowBytes) % cfg_.banksPerChannel;
    }

    std::uint64_t
    rowOf(Addr addr) const
    {
        return addr / cfg_.rowBytes / cfg_.banksPerChannel;
    }

    /**
     * FR-FCFS pick: first row hit in queue order, else the oldest.
     *
     * Requests picked out of FIFO order are tombstoned (live = false)
     * rather than erased — erasing from the middle of the deque would
     * shift every younger request (and relocate its callback) on each
     * row hit.  Tombstones are reclaimed when they reach the front, so
     * the queue never grows past the deepest in-flight backlog.
     */
    void
    serviceNext(std::size_t chan_idx)
    {
        Channel &ch = channels_[chan_idx];
        while (!ch.queue.empty() && !ch.queue.front().live)
            ch.queue.pop_front();
        if (ch.queue.empty())
            return;
        std::size_t pick = 0; // front is live here, so 0 == oldest
        bool hit = false;
        for (std::size_t i = 0; i < ch.queue.size(); ++i) {
            const Request &r = ch.queue[i];
            if (r.live && ch.openRow[r.bank] == r.row) {
                pick = i;
                hit = true;
                break;
            }
        }
        Request req = std::move(ch.queue[pick]);
        if (pick == 0)
            ch.queue.pop_front();
        else
            ch.queue[pick].live = false;

        Cycle latency = cfg_.burstCycles + (hit ? cfg_.rowHitLatency : cfg_.rowMissLatency);
        if (hit)
            ++rowHits_;
        else
            ++rowMisses_;
        ch.openRow[req.bank] = req.row;
        ch.busy = true;
        eq_.scheduleIn(latency, [this, chan_idx, done = std::move(req.done)]() {
            done();
            Channel &c = channels_[chan_idx];
            c.busy = false;
            serviceNext(chan_idx);
        });
    }

    DramConfig cfg_;
    EventQueue &eq_;
    Counter &reads_;
    Counter &rowHits_;
    Counter &rowMisses_;
    std::vector<Channel> channels_;
};

} // namespace hpe
