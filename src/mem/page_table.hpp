/**
 * @file
 * Single-level GPU page table (the paper simplifies to one level with a
 * fixed walk latency) and the physical frame allocator.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "mem/page_index.hpp"

namespace hpe {

/**
 * Maps virtual pages to GPU physical frames.
 *
 * The walker consults this table on every translation and the driver on
 * every reference, so the backing store is a dense direct-indexed array
 * over the trace's bounded page-id space (with a hash fallback for
 * out-of-window ids; see mem/page_index.hpp) rather than a hash map.
 */
class PageTable
{
  public:
    /** @return the frame of @p page, or kInvalidId if not resident. */
    FrameId lookup(PageId page) const { return map_.lookup(page); }

    /** True if @p page currently has a GPU mapping. */
    bool resident(PageId page) const { return map_.lookup(page) != kInvalidId; }

    /** Install a mapping; @p page must not already be mapped. */
    void
    map(PageId page, FrameId frame)
    {
        HPE_ASSERT(!resident(page), "double map of page {:#x}", page);
        map_.insert(page, frame);
    }

    /** Remove the mapping of @p page. @return the frame it occupied. */
    FrameId
    unmap(PageId page)
    {
        const FrameId frame = map_.erase(page);
        HPE_ASSERT(frame != kInvalidId, "unmap of non-resident page {:#x}", page);
        return frame;
    }

    /** Number of resident pages. */
    std::size_t size() const { return map_.size(); }

    /** Visit every (page, frame) mapping, in no particular order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        map_.forEach(fn);
    }

  private:
    DensePageMap<FrameId, kInvalidId> map_;
};

/**
 * Free-list allocator over a fixed pool of GPU physical frames.  Its
 * capacity is what the oversubscription rate constrains.
 *
 * Multi-page-size runs additionally enable *run tracking*: a free-frame
 * bitmap beside the LIFO free list, so the huge-page coalescer can claim
 * aligned contiguous frame runs (allocateRun) and the fragmentation
 * gauges can count how many such runs remain (freeRunsOf) or histogram
 * the maximal free runs (freeRunHistogram).  With tracking off — the
 * default — allocate/release behave exactly as before (same frames in the
 * same order), which is part of the 4 KiB bit-exactness guarantee.
 */
class FrameAllocator
{
  public:
    /** @param num_frames GPU memory capacity in 4 KB frames. */
    explicit FrameAllocator(std::size_t num_frames)
        : capacity_(num_frames)
    {
        HPE_ASSERT(num_frames > 0, "empty frame pool");
        free_.reserve(num_frames);
        // Hand out ascending frame numbers first (pop from the back).
        for (std::size_t f = num_frames; f > 0; --f)
            free_.push_back(f - 1);
        freeCount_ = num_frames;
    }

    /** True when no frame is free (an eviction is needed before a fill). */
    bool full() const { return freeCount_ == 0; }

    std::size_t capacity() const { return capacity_; }
    std::size_t freeCount() const { return freeCount_; }

    /** Take a free frame; pool must not be full. */
    FrameId
    allocate()
    {
        HPE_ASSERT(freeCount_ > 0, "allocate() from exhausted frame pool");
        if (freeBits_.empty()) [[likely]] {
            FrameId f = free_.back();
            free_.pop_back();
            --freeCount_;
            return f;
        }
        // Run tracking: allocateRun() claims frames without purging their
        // stale free-list entries, so pop until a genuinely free frame
        // surfaces (the bitmap is the truth; the list is the LIFO order).
        while (true) {
            HPE_ASSERT(!free_.empty(), "free list lost track of free frames");
            const FrameId f = free_.back();
            free_.pop_back();
            if (testFree(f)) {
                clearFree(f);
                --freeCount_;
                return f;
            }
        }
    }

    /** Return @p frame to the pool. */
    void
    release(FrameId frame)
    {
        HPE_ASSERT(frame < capacity_, "release of bogus frame {}", frame);
        free_.push_back(frame);
        ++freeCount_;
        HPE_ASSERT(freeCount_ <= capacity_, "double release detected");
        if (!freeBits_.empty()) {
            HPE_ASSERT(!testFree(frame), "double release of frame {}", frame);
            setFree(frame);
        }
    }

    /**
     * Arm the free-frame bitmap (idempotent).  Required before
     * allocateRun/freeRunsOf/freeRunHistogram; enabled by the coalescer,
     * never on the default path.
     */
    void
    enableRunTracking()
    {
        if (!freeBits_.empty())
            return;
        freeBits_.assign((capacity_ + 63) / 64, 0);
        for (FrameId f : free_)
            setFree(f);
    }

    bool runTracking() const { return !freeBits_.empty(); }

    /**
     * Claim an aligned run of @p span free frames (span a power of two).
     * Scans ascending, so the lowest-addressed eligible run wins — a
     * deterministic choice the differential tests rely on.  @return the
     * base frame, or nullopt when fragmentation leaves no such run.
     */
    std::optional<FrameId>
    allocateRun(std::uint32_t span)
    {
        HPE_ASSERT(runTracking(), "allocateRun without run tracking");
        HPE_ASSERT(span >= 2 && (span & (span - 1)) == 0,
                   "bad run span {}", span);
        HPE_ASSERT(span <= capacity_, "run span {} exceeds pool {}", span,
                   capacity_);
        const auto base = findRun(span);
        if (!base.has_value())
            return std::nullopt;
        for (std::uint32_t i = 0; i < span; ++i)
            clearFree(*base + i);
        freeCount_ -= span;
        return base;
    }

    /** Count of aligned fully-free runs of @p span frames (fragmentation
     *  gauge: how many promotions of this class could succeed right now). */
    std::size_t
    freeRunsOf(std::uint32_t span) const
    {
        HPE_ASSERT(runTracking(), "freeRunsOf without run tracking");
        std::size_t runs = 0;
        for (FrameId base = 0; base + span <= capacity_; base += span)
            runs += runFree(base, span) ? 1 : 0;
        return runs;
    }

    /**
     * Histogram of *maximal* free runs by floor-log2 length: bucket b
     * counts runs of [2^b, 2^(b+1)) consecutive free frames.  O(capacity);
     * meant for interval gauges and reports, not the fault path.
     */
    std::vector<std::size_t>
    freeRunHistogram() const
    {
        HPE_ASSERT(runTracking(), "freeRunHistogram without run tracking");
        std::vector<std::size_t> buckets;
        std::size_t run = 0;
        const auto flush = [&] {
            if (run == 0)
                return;
            unsigned b = 0;
            while ((std::size_t{2} << b) <= run)
                ++b;
            if (buckets.size() <= b)
                buckets.resize(b + 1, 0);
            ++buckets[b];
            run = 0;
        };
        for (FrameId f = 0; f < capacity_; ++f) {
            if (testFree(f))
                ++run;
            else
                flush();
        }
        flush();
        return buckets;
    }

  private:
    bool
    testFree(FrameId f) const
    {
        return (freeBits_[f >> 6] >> (f & 63)) & 1;
    }
    void setFree(FrameId f) { freeBits_[f >> 6] |= std::uint64_t{1} << (f & 63); }
    void
    clearFree(FrameId f)
    {
        freeBits_[f >> 6] &= ~(std::uint64_t{1} << (f & 63));
    }

    /** All of [base, base+span) free? */
    bool
    runFree(FrameId base, std::uint32_t span) const
    {
        if (span >= 64) {
            for (std::uint32_t w = 0; w < span / 64; ++w)
                if (freeBits_[(base >> 6) + w] != ~std::uint64_t{0})
                    return false;
            return true;
        }
        const std::uint64_t mask = (std::uint64_t{1} << span) - 1;
        return ((freeBits_[base >> 6] >> (base & 63)) & mask) == mask;
    }

    std::optional<FrameId>
    findRun(std::uint32_t span) const
    {
        for (FrameId base = 0; base + span <= capacity_; base += span)
            if (runFree(base, span))
                return base;
        return std::nullopt;
    }

    std::size_t capacity_;
    std::vector<FrameId> free_;
    std::size_t freeCount_ = 0;
    /** One bit per frame, set = free; empty vector = tracking disabled. */
    std::vector<std::uint64_t> freeBits_;
};

} // namespace hpe
