/**
 * @file
 * Single-level GPU page table (the paper simplifies to one level with a
 * fixed walk latency) and the physical frame allocator.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "mem/page_index.hpp"

namespace hpe {

/**
 * Maps virtual pages to GPU physical frames.
 *
 * The walker consults this table on every translation and the driver on
 * every reference, so the backing store is a dense direct-indexed array
 * over the trace's bounded page-id space (with a hash fallback for
 * out-of-window ids; see mem/page_index.hpp) rather than a hash map.
 */
class PageTable
{
  public:
    /** @return the frame of @p page, or kInvalidId if not resident. */
    FrameId lookup(PageId page) const { return map_.lookup(page); }

    /** True if @p page currently has a GPU mapping. */
    bool resident(PageId page) const { return map_.lookup(page) != kInvalidId; }

    /** Install a mapping; @p page must not already be mapped. */
    void
    map(PageId page, FrameId frame)
    {
        HPE_ASSERT(!resident(page), "double map of page {:#x}", page);
        map_.insert(page, frame);
    }

    /** Remove the mapping of @p page. @return the frame it occupied. */
    FrameId
    unmap(PageId page)
    {
        const FrameId frame = map_.erase(page);
        HPE_ASSERT(frame != kInvalidId, "unmap of non-resident page {:#x}", page);
        return frame;
    }

    /** Number of resident pages. */
    std::size_t size() const { return map_.size(); }

    /** Visit every (page, frame) mapping, in no particular order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        map_.forEach(fn);
    }

  private:
    DensePageMap<FrameId, kInvalidId> map_;
};

/**
 * Free-list allocator over a fixed pool of GPU physical frames.  Its
 * capacity is what the oversubscription rate constrains.
 */
class FrameAllocator
{
  public:
    /** @param num_frames GPU memory capacity in 4 KB frames. */
    explicit FrameAllocator(std::size_t num_frames)
        : capacity_(num_frames)
    {
        HPE_ASSERT(num_frames > 0, "empty frame pool");
        free_.reserve(num_frames);
        // Hand out ascending frame numbers first (pop from the back).
        for (std::size_t f = num_frames; f > 0; --f)
            free_.push_back(f - 1);
    }

    /** True when no frame is free (an eviction is needed before a fill). */
    bool full() const { return free_.empty(); }

    std::size_t capacity() const { return capacity_; }
    std::size_t freeCount() const { return free_.size(); }

    /** Take a free frame; pool must not be full. */
    FrameId
    allocate()
    {
        HPE_ASSERT(!free_.empty(), "allocate() from exhausted frame pool");
        FrameId f = free_.back();
        free_.pop_back();
        return f;
    }

    /** Return @p frame to the pool. */
    void
    release(FrameId frame)
    {
        HPE_ASSERT(frame < capacity_, "release of bogus frame {}", frame);
        free_.push_back(frame);
        HPE_ASSERT(free_.size() <= capacity_, "double release detected");
    }

  private:
    std::size_t capacity_;
    std::vector<FrameId> free_;
};

} // namespace hpe
