/**
 * @file
 * Single-level GPU page table (the paper simplifies to one level with a
 * fixed walk latency) and the physical frame allocator.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace hpe {

/**
 * Maps virtual pages to GPU physical frames.
 *
 * The walker consults this table; the driver installs and removes mappings
 * as pages migrate in and out of GPU memory.
 */
class PageTable
{
  public:
    /** @return the frame of @p page, or kInvalidId if not resident. */
    FrameId
    lookup(PageId page) const
    {
        auto it = map_.find(page);
        return it == map_.end() ? kInvalidId : it->second;
    }

    /** True if @p page currently has a GPU mapping. */
    bool resident(PageId page) const { return map_.contains(page); }

    /** Install a mapping; @p page must not already be mapped. */
    void
    map(PageId page, FrameId frame)
    {
        auto [it, inserted] = map_.emplace(page, frame);
        HPE_ASSERT(inserted, "double map of page {:#x}", page);
    }

    /** Remove the mapping of @p page. @return the frame it occupied. */
    FrameId
    unmap(PageId page)
    {
        auto it = map_.find(page);
        HPE_ASSERT(it != map_.end(), "unmap of non-resident page {:#x}", page);
        FrameId frame = it->second;
        map_.erase(it);
        return frame;
    }

    /** Number of resident pages. */
    std::size_t size() const { return map_.size(); }

    /** Visit every (page, frame) mapping, in no particular order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[page, frame] : map_)
            fn(page, frame);
    }

  private:
    std::unordered_map<PageId, FrameId> map_;
};

/**
 * Free-list allocator over a fixed pool of GPU physical frames.  Its
 * capacity is what the oversubscription rate constrains.
 */
class FrameAllocator
{
  public:
    /** @param num_frames GPU memory capacity in 4 KB frames. */
    explicit FrameAllocator(std::size_t num_frames)
        : capacity_(num_frames)
    {
        HPE_ASSERT(num_frames > 0, "empty frame pool");
        free_.reserve(num_frames);
        // Hand out ascending frame numbers first (pop from the back).
        for (std::size_t f = num_frames; f > 0; --f)
            free_.push_back(f - 1);
    }

    /** True when no frame is free (an eviction is needed before a fill). */
    bool full() const { return free_.empty(); }

    std::size_t capacity() const { return capacity_; }
    std::size_t freeCount() const { return free_.size(); }

    /** Take a free frame; pool must not be full. */
    FrameId
    allocate()
    {
        HPE_ASSERT(!free_.empty(), "allocate() from exhausted frame pool");
        FrameId f = free_.back();
        free_.pop_back();
        return f;
    }

    /** Return @p frame to the pool. */
    void
    release(FrameId frame)
    {
        HPE_ASSERT(frame < capacity_, "release of bogus frame {}", frame);
        free_.push_back(frame);
        HPE_ASSERT(free_.size() <= capacity_, "double release detected");
    }

  private:
    std::size_t capacity_;
    std::vector<FrameId> free_;
};

} // namespace hpe
