/**
 * @file
 * Four-level radix page table (x86-64 style, 9 bits per level).
 *
 * The paper simplifies to a single-level table with a fixed 8-cycle walk;
 * §II's background describes the real design this models: a multi-level
 * table whose walker touches one node per level, accelerated by a shared
 * page walk cache (Power et al. [17]).  Nodes are allocated and pruned as
 * mappings come and go, so table-structure statistics (node count, walk
 * depth) are real rather than assumed.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/log.hpp"
#include "common/types.hpp"

namespace hpe {

/** Geometry of the radix tree. */
struct RadixConfig
{
    unsigned levels = 4;       ///< tree depth (leaf PTEs live at level 1)
    unsigned bitsPerLevel = 9; ///< children per node = 2^bitsPerLevel
};

/** A pruned radix tree mapping virtual pages to frames. */
class RadixPageTable
{
  public:
    explicit RadixPageTable(const RadixConfig &cfg = {})
        : cfg_(cfg), root_(std::make_unique<Node>())
    {
        HPE_ASSERT(cfg.levels >= 2 && cfg.levels <= 6, "bad level count");
        HPE_ASSERT(cfg.bitsPerLevel >= 1 && cfg.bitsPerLevel <= 12,
                   "bad bits per level");
    }

    /** Index of @p page within its level-@p level node. */
    std::uint32_t
    indexAt(PageId page, unsigned level) const
    {
        const unsigned shift = cfg_.bitsPerLevel * (level - 1);
        return static_cast<std::uint32_t>((page >> shift)
                                          & ((1u << cfg_.bitsPerLevel) - 1));
    }

    /**
     * The page-number prefix identifying the level-@p level node that a
     * walk for @p page traverses (usable as a walk-cache tag).
     */
    PageId
    prefixAt(PageId page, unsigned level) const
    {
        return page >> (cfg_.bitsPerLevel * (level - 1));
    }

    /** Install a mapping, allocating interior nodes as needed. */
    void
    map(PageId page, FrameId frame)
    {
        Node *node = root_.get();
        for (unsigned level = cfg_.levels; level >= 2; --level) {
            ++node->population;
            auto &child = node->children[indexAt(page, level)];
            if (!child) {
                child = std::make_unique<Node>();
                ++nodeCount_;
            }
            node = child.get();
        }
        const auto [it, inserted] = node->leaves.emplace(indexAt(page, 1), frame);
        (void)it;
        HPE_ASSERT(inserted, "double map of page {:#x}", page);
        ++node->population;
        ++size_;
    }

    /** Remove a mapping, pruning emptied interior nodes. */
    FrameId
    unmap(PageId page)
    {
        FrameId frame = kInvalidId;
        prune(*root_, page, cfg_.levels, frame);
        HPE_ASSERT(frame != kInvalidId, "unmap of non-resident page {:#x}", page);
        --size_;
        return frame;
    }

    /** @return the frame of @p page, or kInvalidId. */
    FrameId
    lookup(PageId page) const
    {
        const Node *node = root_.get();
        for (unsigned level = cfg_.levels; level >= 2; --level) {
            auto it = node->children.find(indexAt(page, level));
            if (it == node->children.end())
                return kInvalidId;
            node = it->second.get();
        }
        auto it = node->leaves.find(indexAt(page, 1));
        return it == node->leaves.end() ? kInvalidId : it->second;
    }

    bool resident(PageId page) const { return lookup(page) != kInvalidId; }

    /**
     * Walk the tree for @p page invoking @p visit(level) top-down for
     * every level the walker actually touches (it stops at the first
     * absent entry, like real hardware).
     * @return the frame, or kInvalidId on a fault.
     */
    template <typename Fn>
    FrameId
    walk(PageId page, Fn &&visit) const
    {
        const Node *node = root_.get();
        for (unsigned level = cfg_.levels; level >= 2; --level) {
            visit(level);
            auto it = node->children.find(indexAt(page, level));
            if (it == node->children.end())
                return kInvalidId;
            node = it->second.get();
        }
        visit(1u);
        auto it = node->leaves.find(indexAt(page, 1));
        return it == node->leaves.end() ? kInvalidId : it->second;
    }

    std::size_t size() const { return size_; }

    /** Interior nodes currently allocated (excluding the root). */
    std::size_t nodeCount() const { return nodeCount_; }

    const RadixConfig &config() const { return cfg_; }

  private:
    struct Node
    {
        std::unordered_map<std::uint32_t, std::unique_ptr<Node>> children;
        std::unordered_map<std::uint32_t, FrameId> leaves;
        /** Mappings reachable through this node (for pruning). */
        std::size_t population = 0;
    };

    /** Recursive unmap with empty-node pruning. */
    void
    prune(Node &node, PageId page, unsigned level, FrameId &frame)
    {
        if (level == 1) {
            auto it = node.leaves.find(indexAt(page, 1));
            if (it == node.leaves.end())
                return;
            frame = it->second;
            node.leaves.erase(it);
            --node.population;
            return;
        }
        auto it = node.children.find(indexAt(page, level));
        if (it == node.children.end())
            return;
        prune(*it->second, page, level - 1, frame);
        if (frame == kInvalidId)
            return;
        --node.population;
        if (it->second->population == 0) {
            node.children.erase(it);
            --nodeCount_;
        }
    }

    RadixConfig cfg_;
    std::unique_ptr<Node> root_;
    std::size_t size_ = 0;
    std::size_t nodeCount_ = 0;
};

} // namespace hpe
