/**
 * @file
 * Generic set-associative array with LRU replacement.
 *
 * Shared by the TLBs, the data caches, and the HIR hit-information record
 * cache — they differ only in tag semantics and per-entry payload.
 */

#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "mem/page_index.hpp"

namespace hpe {

/**
 * A ways x sets array of entries tagged with 64-bit keys.
 *
 * @tparam Payload per-entry user data, default-constructed on insertion.
 *
 * LRU state is an age stamp per entry; the arrays here are small (hundreds
 * to thousands of entries), so stamp comparison within a set is cheap and
 * exact.
 *
 * Tags are mirrored in a struct-of-arrays vector so the probe loop
 * touches densely packed 8-byte tags instead of striding across full
 * Entry structs.  The Entry remains the authority: a mirrored tag match
 * is confirmed against entry.valid and entry.tag, so a stale mirror
 * (left by erase) can cost a compare but never a wrong result.
 *
 * Fully-associative geometries (the per-SM L1 TLBs: one set, 128 ways,
 * probed on every line access in timing mode) additionally keep a
 * tag -> way index so probes are O(1) instead of a 128-way scan.  The
 * index is pure acceleration — it never influences victim choice — so
 * hit/miss/eviction behaviour is identical with or without it.
 */
template <typename Payload>
class SetAssocArray
{
  public:
    /** One resident entry. */
    struct Entry
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
        Payload data{};
    };

    /**
     * @param num_entries total capacity; must be a multiple of @p num_ways.
     * @param num_ways    associativity; the set count must be a power of two.
     */
    SetAssocArray(std::size_t num_entries, std::size_t num_ways)
        : ways_(num_ways), sets_(num_entries / num_ways),
          entries_(num_entries), tags_(num_entries, kEmptyTag),
          indexed_(sets_ == 1)
    {
        HPE_ASSERT(num_ways > 0 && num_entries % num_ways == 0,
                   "bad geometry: {} entries, {} ways", num_entries, num_ways);
    }

    std::size_t numWays() const { return ways_; }
    std::size_t numSets() const { return sets_; }
    std::size_t capacity() const { return entries_.size(); }

    /** Find the resident entry for @p key, refreshing its LRU stamp. */
    Entry *
    find(std::uint64_t key)
    {
        Entry *e = probe(key);
        if (e != nullptr)
            e->lastUse = ++clock_;
        return e;
    }

    /** Find without touching LRU state (for inspection/tests). */
    Entry *
    probe(std::uint64_t key)
    {
        if (indexed_) {
            const std::uint32_t w = index_.lookup(key);
            if (w == kNoWay)
                return nullptr;
            Entry &e = entries_[w];
            HPE_ASSERT(e.valid && e.tag == key, "way index out of sync");
            return &e;
        }
        const std::size_t base = setIndex(key) * ways_;
        const std::uint64_t *tags = tags_.data() + base;
        for (std::size_t w = 0; w < ways_; ++w) {
            if (tags[w] == key) {
                Entry &e = entries_[base + w];
                if (e.valid && e.tag == key) [[likely]]
                    return &e;
            }
        }
        return nullptr;
    }

    /**
     * Insert @p key, evicting the LRU way of its set if the set is full.
     *
     * @param[out] victim if non-null and an eviction occurred, receives the
     *                    displaced entry (tag + payload).
     * @return the (reset) entry now holding @p key.
     */
    Entry &
    insert(std::uint64_t key, Entry *victim = nullptr)
    {
        HPE_ASSERT(probe(key) == nullptr, "duplicate insert of tag {:#x}", key);
        const std::size_t base = setIndex(key) * ways_;
        Entry *slot = nullptr;
        for (std::size_t w = 0; w < ways_; ++w) {
            Entry &e = entries_[base + w];
            if (!e.valid) {
                slot = &e;
                break;
            }
            if (slot == nullptr || e.lastUse < slot->lastUse)
                slot = &e;
        }
        if (slot->valid && victim != nullptr)
            *victim = *slot;
        const bool evicted = slot->valid;
        if (evicted)
            ++conflictEvictions_;
        const std::uint64_t displaced = slot->tag;
        *slot = Entry{};
        slot->tag = key;
        slot->valid = true;
        slot->lastUse = ++clock_;
        const auto way = static_cast<std::size_t>(slot - entries_.data());
        tags_[way] = key;
        if (indexed_) {
            if (evicted)
                index_.erase(displaced);
            index_.insert(key, static_cast<std::uint32_t>(way));
        }
        return *slot;
    }

    /** Remove the entry for @p key if resident. @return true if removed. */
    bool
    erase(std::uint64_t key)
    {
        Entry *e = probe(key);
        if (e == nullptr)
            return false;
        *e = Entry{};
        tags_[static_cast<std::size_t>(e - entries_.data())] = kEmptyTag;
        if (indexed_)
            index_.erase(key);
        return true;
    }

    /** Invalidate every entry. */
    void
    clear()
    {
        for (Entry &e : entries_)
            e = Entry{};
        tags_.assign(tags_.size(), kEmptyTag);
        if (indexed_)
            index_ = WayIndex{};
    }

    /** Visit every valid entry (iteration order is geometry order). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Entry &e : entries_)
            if (e.valid)
                fn(e);
    }

    /** Count of valid entries (O(capacity); for stats and tests). */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const Entry &e : entries_)
            n += e.valid ? 1 : 0;
        return n;
    }

    /** Number of insertions that displaced a valid entry. */
    std::uint64_t conflictEvictions() const { return conflictEvictions_; }

    /**
     * Set index for @p key.  Power-of-two set counts (the common case:
     * TLBs, HIR) use a mask; others (the 1.5 MB L2 with 12 channels'
     * worth of sets) fall back to modulo.
     */
    std::size_t
    setIndex(std::uint64_t key) const
    {
        if (std::has_single_bit(sets_))
            return key & (sets_ - 1);
        return key % sets_;
    }

  private:
    /**
     * Mirror value for empty slots.  A genuine key equal to this only
     * costs the probe a confirming compare against the Entry, so it is
     * a performance sentinel, not a correctness reservation.
     */
    static constexpr std::uint64_t kEmptyTag = ~std::uint64_t{0};
    static constexpr std::uint32_t kNoWay = ~std::uint32_t{0};

    using WayIndex = DensePageMap<std::uint32_t, kNoWay>;

    std::size_t ways_;
    std::size_t sets_;
    std::uint64_t clock_ = 0;
    std::uint64_t conflictEvictions_ = 0;
    std::vector<Entry> entries_;
    std::vector<std::uint64_t> tags_; ///< SoA mirror of (valid, tag)
    bool indexed_;                    ///< fully associative: keep tag -> way
    WayIndex index_;
};

} // namespace hpe
