/**
 * @file
 * Multi-level page table walker with a shared page walk cache (PWC).
 *
 * This is the "first design variant" of §II (Power et al. [17]): the
 * walker descends a four-level radix table, paying one memory access per
 * level it touches; upper-level entries it has seen before hit in the PWC
 * and cost a single cycle instead.  Walk latency is therefore variable —
 * 1+1+1+40 cycles in the steady state, up to 4x40 cold.
 */

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/radix_page_table.hpp"
#include "mem/set_assoc.hpp"
#include "tlb/walker.hpp"

namespace hpe {

/** Timing and geometry of the multi-level walker. */
struct MultiLevelWalkerConfig
{
    /** Memory access cost per touched page-table level. */
    Cycle levelAccessCycles = 40;
    /** Cost of a PWC-supplied level. */
    Cycle pwcHitCycles = 1;
    /** Page walk cache geometry (caches entries of levels >= 2). */
    std::size_t pwcEntries = 64;
    std::size_t pwcWays = 8;
};

/** Walker over a RadixPageTable, accelerated by a PWC. */
class MultiLevelWalker : public WalkerBase
{
  public:
    /**
     * @param table the radix page table (kept in sync by the UVM manager).
     * @param cfg   timing/geometry.
     * @param stats registry receiving "<name>.*".
     * @param name  stat prefix, e.g. "gpu.walker".
     */
    MultiLevelWalker(const RadixPageTable &table,
                     const MultiLevelWalkerConfig &cfg, StatRegistry &stats,
                     const std::string &name)
        : table_(table), cfg_(cfg), pwc_(cfg.pwcEntries, cfg.pwcWays),
          walks_(stats.counter(name + ".walks")),
          hits_(stats.counter(name + ".hits")),
          faults_(stats.counter(name + ".faults")),
          pwcHits_(stats.counter(name + ".pwcHits")),
          pwcMisses_(stats.counter(name + ".pwcMisses")),
          walkLatency_(stats.distribution(name + ".walkLatency"))
    {}

    WalkResult
    walk(PageId page) override
    {
        ++walks_;
        Cycle latency = 0;
        const FrameId frame = table_.walk(page, [&](unsigned level) {
            if (level >= 2) {
                const std::uint64_t key = pwcKey(page, level);
                if (pwc_.find(key) != nullptr) {
                    ++pwcHits_;
                    latency += cfg_.pwcHitCycles;
                    return;
                }
                ++pwcMisses_;
                pwc_.insert(key);
            }
            latency += cfg_.levelAccessCycles;
        });
        walkLatency_.sample(static_cast<double>(latency));
        if (frame == kInvalidId) {
            ++faults_;
            return WalkResult{.hit = false, .frame = kInvalidId, .latency = latency};
        }
        ++hits_;
        notifyHit(page);
        return WalkResult{.hit = true, .frame = frame, .latency = latency};
    }

    /** PWC hit rate over all upper-level touches (for tests/benches). */
    double
    pwcHitRate() const
    {
        const auto total = pwcHits_.value() + pwcMisses_.value();
        return total == 0 ? 0.0
                          : static_cast<double>(pwcHits_.value())
                                / static_cast<double>(total);
    }

  private:
    std::uint64_t
    pwcKey(PageId page, unsigned level) const
    {
        // Level in the top bits, node prefix below: distinct per level.
        return (static_cast<std::uint64_t>(level) << 56)
            | table_.prefixAt(page, level);
    }

    const RadixPageTable &table_;
    MultiLevelWalkerConfig cfg_;
    SetAssocArray<std::monostate> pwc_;
    Counter &walks_;
    Counter &hits_;
    Counter &faults_;
    Counter &pwcHits_;
    Counter &pwcMisses_;
    Distribution &walkLatency_;
};

} // namespace hpe
