/**
 * @file
 * Page table walkers.
 *
 * Two designs, per §II/§III of the paper:
 *
 *  - FixedLatencyWalker: the paper's simplification — a single-level page
 *    table and a fixed walk latency (8 cycles by default, 20 in the
 *    sensitivity test).
 *  - MultiLevelWalker (multi_level_walker.hpp): the realistic design the
 *    background section describes — a four-level radix table whose walker
 *    touches one node per level, accelerated by a shared page walk cache.
 *
 * Both notify an observer with the page id of every walk that *hits*:
 * that observer is HPE's HIR cache, and the notification is off the walk
 * critical path (§IV-B).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/page_table.hpp"

namespace hpe {

/** Result of a page walk. */
struct WalkResult
{
    bool hit = false;       ///< Valid mapping found.
    FrameId frame = kInvalidId;
    Cycle latency = 0;      ///< Latency of this walk in cycles.
};

/** Common walker interface (fixed-latency or multi-level). */
class WalkerBase
{
  public:
    /** Observer invoked with the page id of every walk that hits. */
    using HitObserver = std::function<void(PageId)>;

    virtual ~WalkerBase() = default;

    /** Walk the table for @p page; the result carries the walk latency. */
    virtual WalkResult walk(PageId page) = 0;

    /** Register the page-walk-hit observer (HPE's HIR cache). */
    void setHitObserver(HitObserver obs) { hitObserver_ = std::move(obs); }

  protected:
    void
    notifyHit(PageId page)
    {
        if (hitObserver_)
            hitObserver_(page);
    }

  private:
    HitObserver hitObserver_;
};

/** The paper's fixed-latency walker over the single-level page table. */
class FixedLatencyWalker : public WalkerBase
{
  public:
    /**
     * @param table        the GPU page table to walk.
     * @param walk_latency fixed latency in cycles (paper: 8; sensitivity: 20).
     * @param stats        registry receiving "<name>.walks"/".hits"/".faults".
     * @param name         stat prefix, e.g. "gpu.walker".
     */
    FixedLatencyWalker(const PageTable &table, Cycle walk_latency,
                       StatRegistry &stats, const std::string &name)
        : table_(table), latency_(walk_latency),
          walks_(stats.counter(name + ".walks")),
          hits_(stats.counter(name + ".hits")),
          faults_(stats.counter(name + ".faults"))
    {}

    WalkResult
    walk(PageId page) override
    {
        ++walks_;
        FrameId frame = table_.lookup(page);
        if (frame == kInvalidId) {
            ++faults_;
            return WalkResult{.hit = false, .frame = kInvalidId, .latency = latency_};
        }
        ++hits_;
        notifyHit(page);
        return WalkResult{.hit = true, .frame = frame, .latency = latency_};
    }

    Cycle latency() const { return latency_; }

  private:
    const PageTable &table_;
    Cycle latency_;
    Counter &walks_;
    Counter &hits_;
    Counter &faults_;
};

/** Backwards-compatible alias (the original name of the fixed walker). */
using PageWalker = FixedLatencyWalker;

} // namespace hpe
