/**
 * @file
 * TLB models for the two-level GPU translation hierarchy of Table I:
 * a 128-entry fully-banked private L1 TLB per SM (1-cycle, hit under miss)
 * and a 512-entry 16-way shared L2 TLB (10-cycle, 2 ports).
 */

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/set_assoc.hpp"

namespace hpe {

/** Geometry, latency and port count of one TLB level. */
struct TlbConfig
{
    std::size_t entries = 128;
    std::size_t ways = 128;   // fully associative by default
    Cycle latency = 1;
    std::size_t ports = 1;
};

/** Table I defaults for the per-SM private L1 TLB. */
inline TlbConfig
l1TlbConfig()
{
    return TlbConfig{.entries = 128, .ways = 128, .latency = 1, .ports = 1};
}

/** Table I defaults for the shared L2 TLB. */
inline TlbConfig
l2TlbConfig()
{
    return TlbConfig{.entries = 512, .ways = 16, .latency = 10, .ports = 2};
}

/**
 * A single TLB level holding page translations with LRU replacement.
 *
 * Port contention is modelled analytically: each lookup occupies one port
 * for the access latency, and issueDelay() reports how long a request
 * arriving at a given cycle waits for a free port.
 */
class Tlb
{
  public:
    /**
     * @param cfg   geometry and timing.
     * @param stats registry receiving "<name>.hits"/".misses".
     * @param name  stat prefix, e.g. "gpu.sm0.l1tlb".
     */
    Tlb(const TlbConfig &cfg, StatRegistry &stats, const std::string &name)
        : cfg_(cfg), array_(cfg.entries, cfg.ways),
          portFree_(cfg.ports, 0),
          hits_(stats.counter(name + ".hits")),
          misses_(stats.counter(name + ".misses"))
    {}

    /** @return true and refresh LRU if @p page is present. */
    bool
    lookup(PageId page)
    {
        if (array_.find(page) != nullptr) {
            ++hits_;
            return true;
        }
        ++misses_;
        return false;
    }

    /** Install a translation (no-op if already present). */
    void
    fill(PageId page)
    {
        if (array_.probe(page) == nullptr)
            array_.insert(page);
    }

    /** Invalidate the translation of @p page (on eviction from GPU memory). */
    void invalidate(PageId page) { array_.erase(page); }

    /** Invalidate everything. */
    void flush() { array_.clear(); }

    /**
     * Cycles a request arriving at @p now waits for a free port, and
     * reserve that port for the duration of the lookup.
     */
    Cycle
    issueDelay(Cycle now)
    {
        // Pick the earliest-free port.
        std::size_t best = 0;
        for (std::size_t p = 1; p < portFree_.size(); ++p)
            if (portFree_[p] < portFree_[best])
                best = p;
        Cycle start = std::max(now, portFree_[best]);
        portFree_[best] = start + cfg_.latency;
        return start - now;
    }

    Cycle latency() const { return cfg_.latency; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    TlbConfig cfg_;
    SetAssocArray<std::monostate> array_;
    std::vector<Cycle> portFree_;
    Counter &hits_;
    Counter &misses_;
};

} // namespace hpe
