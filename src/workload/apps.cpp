#include "workload/apps.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workload/patterns.hpp"

namespace hpe {

namespace {

/** Table II plus a scaled-down footprint per app (paper: 3-130 MB). */
const std::vector<AppSpec> kSpecs = {
    // Type I — streaming
    {"HOT", "hotspot", "Rodinia", PatternType::I, 1024},
    {"LEU", "leukocyte", "Rodinia", PatternType::I, 1536},
    {"CUT", "cutcp", "Parboil", PatternType::I, 1280},
    {"2DC", "2DCONV", "Polybench", PatternType::I, 2048},
    {"GEM", "GEMM", "Polybench", PatternType::I, 2048},
    // Type II — thrashing
    {"SRD", "srad_v2", "Rodinia", PatternType::II, 2048},
    {"HSD", "hotspot3D", "Rodinia", PatternType::II, 1536},
    {"MRQ", "mri-q", "Parboil", PatternType::II, 1024},
    {"STN", "stencil", "Parboil", PatternType::II, 640},
    // Type III — part repetitive
    {"PAT", "pathfinder", "Rodinia", PatternType::III, 1536},
    {"DWT", "dwt2d", "Rodinia", PatternType::III, 1280},
    {"BKP", "backprop", "Rodinia", PatternType::III, 1024},
    {"KMN", "kmeans", "Rodinia", PatternType::III, 4096},
    {"SAD", "sad", "Parboil", PatternType::III, 1536},
    // Type IV — most repetitive
    {"NW", "nw", "Rodinia", PatternType::IV, 1024},
    {"BFS", "bfs", "Rodinia", PatternType::IV, 2048},
    {"MVT", "MVT", "Polybench", PatternType::IV, 2048},
    // Type V — repetitive thrashing
    {"HWL", "heartwall", "Rodinia", PatternType::V, 1024},
    {"SGM", "sgemm", "Parboil", PatternType::V, 1280},
    {"HIS", "histo", "Parboil", PatternType::V, 1280},
    {"SPV", "spmv", "Parboil", PatternType::V, 1536},
    // Type VI — region moving
    {"B+T", "b+tree", "Rodinia", PatternType::VI, 2048},
    {"HYB", "hybridsort", "Rodinia", PatternType::VI, 1536},
};

std::size_t
scaled(std::size_t base, double scale)
{
    auto pages = static_cast<std::size_t>(static_cast<double>(base) * scale);
    // Keep footprints page-set aligned and nontrivial.
    pages = std::max<std::size_t>(pages, 64);
    return (pages / 16) * 16;
}

/** §III's elided applications we model anyway (not in the paper benches). */
const std::vector<AppSpec> kExtraSpecs = {
    {"MYO", "myocyte", "Rodinia", PatternType::III, 128},     // "too small"
    {"LUD", "lud", "Rodinia", PatternType::VI, 1024},         // "too small"
    {"STC", "streamcluster", "Rodinia", PatternType::V, 2048},// "too long"
    {"SYR", "SYRK", "Polybench", PatternType::II, 1536},      // "too long"
};

/**
 * Phase-changing co-run schedules (the meta-policy's target regime).
 * Declared type II so RRIP gets its thrashing (distant-insert)
 * configuration — the honest static configuration for schedules whose
 * dominant slice is a cyclic sweep.
 */
const std::vector<AppSpec> kMixSpecs = {
    {"MXT", "hotspot3D+b+tree", "Co-run", PatternType::II, 5120},
    {"MXS", "hotspot3D+sad", "Co-run", PatternType::II, 5120},
    {"MXR", "srad+histo+b+tree", "Co-run", PatternType::II, 6144},
};

} // namespace

const std::vector<AppSpec> &
appSpecs()
{
    return kSpecs;
}

const std::vector<AppSpec> &
extraAppSpecs()
{
    return kExtraSpecs;
}

const std::vector<AppSpec> &
mixSpecs()
{
    return kMixSpecs;
}

const AppSpec &
appSpec(const std::string &abbr)
{
    for (const AppSpec &s : kSpecs)
        if (abbr == s.abbr)
            return s;
    for (const AppSpec &s : kExtraSpecs)
        if (abbr == s.abbr)
            return s;
    for (const AppSpec &s : kMixSpecs)
        if (abbr == s.abbr)
            return s;
    fatal("unknown application '{}'", abbr);
}

Trace
buildApp(const std::string &abbr, double scale, std::uint64_t seed)
{
    const AppSpec &spec = appSpec(abbr);
    const std::size_t fp = scaled(spec.basePages, scale);
    Rng rng(seed ^ std::hash<std::string>{}(abbr));
    Trace t(spec.abbr, spec.name, spec.suite, spec.type);

    using namespace patterns;

    if (abbr == "HOT") {
        // Iterative stencil over a grid that streams through memory; each
        // page visited twice back-to-back (read temp + power).
        stream(t, 0, fp, 2, 16);
    } else if (abbr == "LEU") {
        // Video frames processed once, in order.
        stream(t, 0, fp, 1, 24);
    } else if (abbr == "CUT") {
        // Lattice points streamed; one visit per page.
        stream(t, 0, fp, 1, 16);
    } else if (abbr == "2DC") {
        // Convolution input+output stream; two visits per page.
        stream(t, 0, fp, 2, 16);
    } else if (abbr == "GEM") {
        // C = A*B: A streams once, but the B matrix region is re-streamed
        // for every row block — a cyclic reuse loop whose distance
        // (A row block + B) exceeds the 75% capacity, which is what makes
        // LRU poor for GEM despite its type-I classification (Fig. 3).
        const std::size_t b_pages = (fp * 3) / 4;
        const std::size_t a_pages = fp - b_pages;
        const std::size_t row_blocks = 6;
        for (std::size_t rb = 0; rb < row_blocks; ++rb) {
            t.beginKernel(); // one kernel launch per row block
            stream(t, rb * (a_pages / row_blocks), a_pages / row_blocks, 1, 16);
            stream(t, a_pages, b_pages, 1, 16); // B re-streamed each block
        }
    } else if (abbr == "SRD") {
        // Diffusion iterations re-sweep the whole image: classic type II.
        thrash(t, 0, fp, 4, 1, 16);
    } else if (abbr == "HSD") {
        // 3D stencil, many time steps: the paper's strongest LRU-averse
        // case (2.81x HPE speedup).
        thrash(t, 0, fp, 6, 1, 16);
    } else if (abbr == "MRQ") {
        // Q-matrix recomputed per sample chunk; every fourth 16-page block
        // is hot (3 visits/page/pass, block-uniform so the counters stay
        // regular).  The hot blocks are what let RRIP-FP's hit promotion
        // retain a stable subset and beat LRU here (Fig. 3), while the
        // full sweep still defeats LRU.
        for (unsigned pass = 0; pass < 3; ++pass) {
            t.beginKernel();
            for (std::size_t b = 0; b < fp; b += 16)
                stream(t, b, 16, (b / 16) % 4 == 0 ? 3 : 1, 16);
        }
    } else if (abbr == "STN") {
        // Small-footprint type II (the app whose small old partition must
        // block the search-point jump, §IV-E); hot boundary planes every
        // fourth block, as for MRQ.
        for (unsigned pass = 0; pass < 5; ++pass) {
            t.beginKernel();
            for (std::size_t b = 0; b < fp; b += 16)
                stream(t, b, 16, (b / 16) % 4 == 0 ? 3 : 1, 16);
        }
    } else if (abbr == "PAT") {
        // Row-by-row dynamic programming; some row blocks re-read.
        partRepetitiveBlocks(t, 0, fp, 16, 0.3, 1, rng, 16);
    } else if (abbr == "DWT") {
        // Wavelet levels re-visit about half the blocks.
        partRepetitiveBlocks(t, 0, fp, 16, 0.45, 1, rng, 16);
    } else if (abbr == "BKP") {
        // Forward + backward pass; backward revisits a subset of blocks.
        stream(t, 0, fp, 1, 16);
        t.beginKernel(); // backward pass
        partRepetitiveBlocks(t, 0, fp, 16, 0.25, 1, rng, 16);
    } else if (abbr == "KMN") {
        // Largest footprint; per-page re-reference counts follow cluster
        // membership and vary page to page => irregular counters and the
        // large ratio1 the paper reports (Fig. 9 outlier).
        partRepetitivePages(t, 0, fp, 0.5, 3, 48, rng, 16);
    } else if (abbr == "SAD") {
        // Motion-estimation windows revisit pages unevenly and soon after
        // first touch (the instant-thrashing case HPE loses slightly on).
        partRepetitivePages(t, 0, fp, 0.6, 3, 12, rng, 16);
    } else if (abbr == "NW") {
        // Anti-diagonal wavefront touches even then odd pages on different
        // occasions (§IV-C's division example); three visits per page so
        // the counters stay off the regular grid.
        evenOddPhases(t, 0, fp, 3, 2, 16);
    } else if (abbr == "BFS") {
        // Frontier levels over the CSR arrays, with one full re-expansion
        // phase in the middle — the thrashing sub-pattern that defeats the
        // initial LRU choice (§IV-E) until adjustment switches to MRU-C.
        frontierLevels(t, 0, fp, 3, 0.35, rng, 8);
        thrash(t, 0, (fp * 3) / 4, 2, 1, 8);
        frontierLevels(t, 0, fp, 3, 0.3, rng, 8);
    } else if (abbr == "MVT") {
        // Stride-4 page touches (only 4 pages of every 16-page set), four
        // sweeps — wastes HIR entry space exactly as §V-B describes.
        stridedSweep(t, 0, fp, 4, 4, 2, 16);
    } else if (abbr == "HWL") {
        // Frames processed repeatedly; every page of a block visited the
        // same 3-4 times => large regular counters.
        for (unsigned iter = 0; iter < 3; ++iter)
            regionMoving(t, 0, fp, 4, 1, 3 + (iter & 1), 16);
    } else if (abbr == "SGM") {
        // Tiled matrix multiply: mostly regular single visits plus a
        // type-II-like segment over half the footprint (§V-A outlier with
        // small ratio1 classified regular).
        stream(t, 0, fp, 1, 16);
        thrash(t, 0, fp / 2, 2, 1, 16);
        t.beginKernel();
        stream(t, fp / 2, fp / 2, 1, 16);
    } else if (abbr == "HIS") {
        // Histogram bins: heavily skewed random visits, three passes over
        // the input stream.  The hot region does not align to a page-set
        // boundary, so the straddling set stays half-hot — the natural
        // page-set-division case (§IV-C).
        for (unsigned pass = 0; pass < 3; ++pass) {
            t.beginKernel();
            skewedRandom(t, 0, fp, fp * 2, 0.14, 0.6, rng, 8);
        }
    } else if (abbr == "SPV") {
        // CSR SpMV: per-row nonzero counts vary, so per-page visit counts
        // are irregular; two sweeps of the matrix.
        partRepetitivePages(t, 0, fp, 0.7, 4, 24, rng, 8);
        t.beginKernel(); // second sweep of the matrix
        partRepetitivePages(t, 0, fp, 0.7, 4, 24, rng, 8);
    } else if (abbr == "B+T") {
        // Range queries walk one subtree region at a time — type VI with
        // uniform triple visits (large regular counters; LRU-friendly).
        regionMoving(t, 0, fp, 8, 3, 1, 16);
    } else if (abbr == "HYB") {
        // Bucketed sort: each bucket region processed to completion with
        // four passes before the next bucket.
        regionMoving(t, 0, fp, 6, 4, 1, 16);
    } else if (abbr == "MYO") {
        // Tiny ODE workspace re-integrated every timestep: heavy reuse on
        // a footprint that fits most memories (why the paper elided it).
        for (unsigned step = 0; step < 6; ++step) {
            t.beginKernel();
            partRepetitivePages(t, 0, fp, 0.8, 2, 8, rng, 8);
        }
    } else if (abbr == "LUD") {
        // Blocked LU decomposition: the active trailing submatrix shrinks
        // diagonally — region-moving with shrinking regions.
        std::size_t start = 0;
        while (start + 64 <= fp) {
            t.beginKernel();
            stream(t, start, 64, 2, 16);               // diagonal block
            stream(t, start, fp - start, 1, 16);        // trailing update
            start += 64;
        }
    } else if (abbr == "STC") {
        // Streaming k-median: repeated full passes over the point set with
        // a hot center table — the "too long to simulate" type V case.
        const std::size_t centers = fp / 16;
        for (unsigned pass = 0; pass < 4; ++pass) {
            t.beginKernel();
            for (std::size_t chunk = 0; chunk < fp - centers; chunk += 256) {
                stream(t, centers + chunk,
                       std::min<std::size_t>(256, fp - centers - chunk), 1, 8);
                stream(t, 0, centers, 1, 8); // centers re-read per chunk
            }
        }
    } else if (abbr == "SYR") {
        // Rank-k update C += A*A^T: A re-streamed per row block of C.
        const std::size_t a_pages = fp / 2;
        for (std::size_t rb = 0; rb < 6; ++rb) {
            t.beginKernel();
            stream(t, a_pages + rb * (fp - a_pages) / 6, (fp - a_pages) / 6,
                   2, 16);
            stream(t, 0, a_pages, 1, 16);
        }
    } else if (abbr == "MXT") {
        // Co-run: a hotspot3D-like cyclic stencil slice time-shares the
        // GPU with b+tree-like query batches, each batch walking a subtree
        // built fresh that round.  The stencil footprint alone exceeds the
        // memory split, so recency policies thrash slice A; the subtree
        // pages are brand new every round, so scan-resistant distant
        // insertion keeps evicting exactly the pages phase B is about to
        // reuse.  No static candidate is good at both slices.
        // Two long rounds, not many short ones: each phase must span
        // several of the meta-policy's 256-reference decision intervals,
        // or the one-interval switch lag eats the whole adaptation gain.
        const std::size_t a_pages = (fp * 3) / 4;       // stencil slice
        const std::size_t b_pages = (fp - a_pages) / 4; // per-round subtree
        for (unsigned round = 0; round < 4; ++round) {
            t.beginKernel();
            thrash(t, 0, a_pages, 3, 1, 16);
            t.beginKernel(); // query batch on this round's fresh subtree
            regionMoving(t, a_pages + round * b_pages, b_pages, 2, 12, 1, 16);
        }
    } else if (abbr == "MXS") {
        // Co-run: the same cyclic stencil slice against sad-like motion
        // estimation on a fresh frame each round — the instant-reuse
        // irregular pattern HPE's counters handle worst (Fig. 10's small
        // loss), while recency policies serve it perfectly.
        const std::size_t a_pages = (fp * 3) / 4;
        const std::size_t b_pages = (fp - a_pages) / 4;
        for (unsigned round = 0; round < 4; ++round) {
            t.beginKernel();
            thrash(t, 0, a_pages, 3, 1, 16);
            t.beginKernel(); // motion search over this round's frame
            for (unsigned rep = 0; rep < 6; ++rep)
                partRepetitivePages(t, a_pages + round * b_pages, b_pages,
                                    0.6, 3, 12, rng, 16);
        }
    } else if (abbr == "MXR") {
        // Three-slice rotation: srad-like resweep, histo-like skewed
        // random over a shared table, and a b+tree-like walk of a fresh
        // subtree per round.  Exercises three pattern types per rotation.
        // The resweep slice must exceed the 50%-oversubscription memory
        // split on its own, or nothing thrashes and plain LRU wins every
        // phase of the rotation.
        const std::size_t a_pages = (fp * 5) / 8;       // resweep slice
        const std::size_t h_pages = fp / 8;             // histogram table
        const std::size_t b_pages = (fp - a_pages - h_pages) / 2;
        for (unsigned round = 0; round < 2; ++round) {
            t.beginKernel();
            thrash(t, 0, a_pages, 4, 1, 16);
            t.beginKernel();
            skewedRandom(t, a_pages, h_pages, h_pages * 8, 0.14, 0.6, rng,
                         8);
            t.beginKernel();
            regionMoving(t, a_pages + h_pages + round * b_pages, b_pages, 2,
                         12, 1, 16);
        }
    } else {
        panic("application '{}' has a spec but no generator", abbr);
    }

    // Store intensity per application (outputs written back on eviction).
    // Stencils and DP kernels write their output arrays; readers like
    // spmv/bfs mostly read.  Writes never change eviction decisions.
    static const std::unordered_map<std::string, double> kWriteFraction = {
        {"HOT", 0.5}, {"LEU", 0.1}, {"CUT", 0.3}, {"2DC", 0.5}, {"GEM", 0.3},
        {"SRD", 0.5}, {"HSD", 0.5}, {"MRQ", 0.2}, {"STN", 0.5}, {"PAT", 0.4},
        {"DWT", 0.5}, {"BKP", 0.4}, {"KMN", 0.1}, {"SAD", 0.3}, {"NW", 0.5},
        {"BFS", 0.2}, {"MVT", 0.2}, {"HWL", 0.3}, {"SGM", 0.3}, {"HIS", 0.6},
        {"SPV", 0.1}, {"B+T", 0.1}, {"HYB", 0.5},
        {"MYO", 0.4}, {"LUD", 0.5}, {"STC", 0.2}, {"SYR", 0.3},
        {"MXT", 0.4}, {"MXS", 0.4}, {"MXR", 0.4},
    };
    patterns::markWrites(t, kWriteFraction.at(abbr), rng);

    return t;
}

} // namespace hpe
