/**
 * @file
 * Low-level access-pattern builders for the six pattern types of Fig. 2.
 *
 * Two reuse granularities matter for HPE's classification (§IV-D):
 *
 *  - *block-uniform* builders reference every page of a 16-page block the
 *    same number of times, producing page-set counters divisible by the
 *    page-set size ("regular" counters);
 *  - *page-granular* builders vary the per-page count, producing
 *    "irregular" counters.
 *
 * All builders are deterministic given the Rng they are handed.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/trace.hpp"

namespace hpe::patterns {

/** Sequentially reference pages [base, base+pages), @p refs visits each. */
void stream(Trace &t, PageId base, std::size_t pages, unsigned refs = 1,
            std::uint16_t burst = 8);

/** @p passes sequential sweeps over [base, base+pages) — type II. */
void thrash(Trace &t, PageId base, std::size_t pages, unsigned passes,
            unsigned refs_per_pass = 1, std::uint16_t burst = 8);

/**
 * Streaming pass where each aligned @p block_pages block is revisited
 * (@p extra_passes more times) with probability @p p — type III with
 * regular counters.
 */
void partRepetitiveBlocks(Trace &t, PageId base, std::size_t pages,
                          std::size_t block_pages, double p,
                          unsigned extra_passes, Rng &rng,
                          std::uint16_t burst = 8);

/**
 * Streaming pass where each *page* independently receives a random number
 * of additional visits in [0, max_extra], shuffled into a small lookahead
 * window — type III/IV with irregular counters.
 */
void partRepetitivePages(Trace &t, PageId base, std::size_t pages,
                         double p, unsigned max_extra, std::size_t window,
                         Rng &rng, std::uint16_t burst = 8);

/**
 * Strided sweep: pages base, base+stride, base+2*stride, ... each visited
 * @p refs times; @p passes sweeps (the MVT stride-4 behaviour).
 */
void stridedSweep(Trace &t, PageId base, std::size_t pages, std::size_t stride,
                  unsigned passes, unsigned refs, std::uint16_t burst = 8);

/**
 * Phased parity access (the NW behaviour): @p refs visits to every even
 * page of the range, then @p refs visits to every odd page.
 */
void evenOddPhases(Trace &t, PageId base, std::size_t pages, unsigned refs,
                   unsigned phase_repeats, std::uint16_t burst = 8);

/**
 * Region-moving access — type VI: split the range into @p regions equal
 * regions; reference each region @p passes times before moving on.
 */
void regionMoving(Trace &t, PageId base, std::size_t pages, std::size_t regions,
                  unsigned passes, unsigned refs_per_pass,
                  std::uint16_t burst = 8);

/**
 * Frontier expansion (the BFS behaviour): per level, visit a random
 * contiguous cluster set covering roughly @p frontier_frac of the range
 * with 1..3 visits per page.
 */
void frontierLevels(Trace &t, PageId base, std::size_t pages, unsigned levels,
                    double frontier_frac, Rng &rng, std::uint16_t burst = 8);

/**
 * Skewed random visits (the HIS behaviour): @p total visits over the
 * range where a @p hot_frac fraction of pages receives @p hot_share of
 * the visits.
 */
void skewedRandom(Trace &t, PageId base, std::size_t pages, std::size_t total,
                  double hot_frac, double hot_share, Rng &rng,
                  std::uint16_t burst = 8);

/**
 * Mark a @p fraction of the trace's visits as writes (deterministically,
 * from @p rng).  Writes do not change eviction decisions; they make the
 * evicted page dirty, adding a PCIe writeback in the timing model.
 */
void markWrites(Trace &t, double fraction, Rng &rng);

} // namespace hpe::patterns
