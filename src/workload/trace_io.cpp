#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace hpe {

namespace {

PatternType
parsePattern(const std::string &s)
{
    for (PatternType t : {PatternType::I, PatternType::II, PatternType::III,
                          PatternType::IV, PatternType::V, PatternType::VI})
        if (s == patternName(t))
            return t;
    fatal("bad pattern type '{}' in trace", s);
}

} // namespace

void
saveTrace(const Trace &trace, std::ostream &os)
{
    os << "trace " << trace.abbr() << " " << trace.application() << " "
       << trace.suite() << " " << patternName(trace.pattern()) << "\n";
    std::size_t kernel = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        while (kernel < trace.kernelCount()
               && trace.kernelRange(kernel).first == i) {
            os << "k\n";
            ++kernel;
        }
        const PageRef &ref = trace.refs()[i];
        os << std::hex << ref.page << std::dec << " " << ref.burst
           << (ref.write ? " w" : "") << "\n";
    }
}

void
saveTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '{}' for writing", path);
    saveTrace(trace, os);
    if (!os.good())
        fatal("write error on '{}'", path);
}

Trace
loadTrace(std::istream &is)
{
    std::string line;
    std::string abbr, app, suite, pattern;

    // Header (skipping comments/blank lines).
    for (;;) {
        if (!std::getline(is, line))
            fatal("trace stream ended before the header");
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream header(line);
        std::string tag;
        header >> tag >> abbr >> app >> suite >> pattern;
        if (tag != "trace" || pattern.empty())
            fatal("bad trace header '{}'", line);
        break;
    }

    Trace trace(abbr, app, suite, parsePattern(pattern));
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        if (line == "k") {
            trace.beginKernel();
            continue;
        }
        std::istringstream rec(line);
        PageId page = 0;
        unsigned burst = 0;
        std::string flag;
        rec >> std::hex >> page >> std::dec >> burst >> flag;
        if (burst == 0 || burst > UINT16_MAX || (!flag.empty() && flag != "w"))
            fatal("bad trace record at line {}: '{}'", line_no, line);
        trace.add(page, static_cast<std::uint16_t>(burst), flag == "w");
    }
    return trace;
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '{}'", path);
    return loadTrace(is);
}

} // namespace hpe
