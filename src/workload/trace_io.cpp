#include "workload/trace_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/format.hpp"
#include "common/log.hpp"
#include "common/types.hpp"

namespace hpe {

namespace {

/** Largest page id whose base address fits the simulator's Addr space. */
constexpr PageId kMaxTracePageId = std::numeric_limits<Addr>::max() >> kPageShift;

/**
 * Parse all of @p token as an unsigned integer in @p base.
 * @return the value, or nullopt on garbage, sign, overflow, or trailing
 *         characters (strict: the whole token must be the number).
 */
std::optional<std::uint64_t>
parseUint(const std::string &token, int base)
{
    if (token.empty() || token[0] == '-' || token[0] == '+')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(token.c_str(), &end, base);
    if (errno == ERANGE || end != token.c_str() + token.size())
        return std::nullopt;
    return v;
}

/** Split @p line on blanks (the format never quotes or escapes). */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::istringstream is(line);
    std::vector<std::string> tokens;
    std::string t;
    while (is >> t)
        tokens.push_back(std::move(t));
    return tokens;
}

std::optional<PatternType>
findPattern(const std::string &s)
{
    for (PatternType t : {PatternType::I, PatternType::II, PatternType::III,
                          PatternType::IV, PatternType::V, PatternType::VI})
        if (s == patternName(t))
            return t;
    return std::nullopt;
}

TraceLoadResult
failLoad(TraceIoStatus status, std::string message)
{
    TraceLoadResult r;
    r.status = status;
    r.message = std::move(message);
    return r;
}

} // namespace

const char *
traceIoStatusName(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::Ok: return "Ok";
      case TraceIoStatus::OpenFailed: return "OpenFailed";
      case TraceIoStatus::MissingHeader: return "MissingHeader";
      case TraceIoStatus::BadHeader: return "BadHeader";
      case TraceIoStatus::BadPattern: return "BadPattern";
      case TraceIoStatus::BadRecord: return "BadRecord";
      case TraceIoStatus::PageOutOfRange: return "PageOutOfRange";
      case TraceIoStatus::Truncated: return "Truncated";
      case TraceIoStatus::CountMismatch: return "CountMismatch";
      case TraceIoStatus::TrailingData: return "TrailingData";
    }
    return "?";
}

void
saveTrace(const Trace &trace, std::ostream &os)
{
    os << "trace " << trace.abbr() << " " << trace.application() << " "
       << trace.suite() << " " << patternName(trace.pattern()) << "\n";
    std::size_t kernel = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        while (kernel < trace.kernelCount()
               && trace.kernelRange(kernel).first == i) {
            os << "k\n";
            ++kernel;
        }
        const PageRef &ref = trace.refs()[i];
        os << std::hex << ref.page << std::dec << " " << ref.burst
           << (ref.write ? " w" : "") << "\n";
    }
    // Footer: lets the loader tell a complete file from a truncated one.
    os << "end " << trace.size() << "\n";
}

void
saveTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '{}' for writing", path);
    saveTrace(trace, os);
    if (!os.good())
        fatal("write error on '{}'", path);
}

TraceLoadResult
tryLoadTrace(std::istream &is)
{
    std::string line;
    std::string abbr, app, suite, pattern;

    // Header (skipping comments/blank lines).
    std::size_t line_no = 0;
    for (;;) {
        if (!std::getline(is, line))
            return failLoad(TraceIoStatus::MissingHeader,
                            "trace stream ended before the header");
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        const auto tokens = tokenize(line);
        if (tokens.size() != 5 || tokens[0] != "trace")
            return failLoad(TraceIoStatus::BadHeader,
                            strformat("bad trace header '{}'", line));
        abbr = tokens[1];
        app = tokens[2];
        suite = tokens[3];
        pattern = tokens[4];
        break;
    }
    const auto pat = findPattern(pattern);
    if (!pat)
        return failLoad(TraceIoStatus::BadPattern,
                        strformat("bad pattern type '{}' in trace", pattern));

    Trace trace(abbr, app, suite, *pat);
    std::optional<std::uint64_t> footer;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        if (footer)
            return failLoad(TraceIoStatus::TrailingData,
                            strformat("data after trace footer at line {}: "
                                      "'{}'", line_no, line));
        if (line == "k") {
            trace.beginKernel();
            continue;
        }
        const auto tokens = tokenize(line);
        if (tokens.size() == 2 && tokens[0] == "end") {
            footer = parseUint(tokens[1], 10);
            if (!footer)
                return failLoad(TraceIoStatus::BadRecord,
                                strformat("bad trace footer at line {}: '{}'",
                                          line_no, line));
            continue;
        }
        const auto page = tokens.empty()
                              ? std::nullopt
                              : parseUint(tokens[0], 16);
        const auto burst = tokens.size() < 2
                               ? std::nullopt
                               : parseUint(tokens[1], 10);
        const bool write = tokens.size() == 3 && tokens[2] == "w";
        if (!page || !burst || *burst == 0 || *burst > UINT16_MAX
            || tokens.size() > 3 || (tokens.size() == 3 && !write))
            return failLoad(TraceIoStatus::BadRecord,
                            strformat("bad trace record at line {}: '{}'",
                                      line_no, line));
        if (*page > kMaxTracePageId)
            return failLoad(TraceIoStatus::PageOutOfRange,
                            strformat("page id {:#x} out of range at line {} "
                                      "(max {:#x})", *page, line_no,
                                      kMaxTracePageId));
        trace.add(*page, static_cast<std::uint16_t>(*burst), write);
    }
    if (!footer)
        return failLoad(TraceIoStatus::Truncated,
                        "truncated trace: missing 'end' footer");
    if (*footer != trace.size())
        return failLoad(TraceIoStatus::CountMismatch,
                        strformat("trace footer counts {} visits but {} were "
                                  "read", *footer, trace.size()));
    TraceLoadResult result;
    result.trace.emplace(std::move(trace));
    return result;
}

TraceLoadResult
tryLoadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return failLoad(TraceIoStatus::OpenFailed,
                        strformat("cannot open '{}'", path));
    return tryLoadTrace(is);
}

Trace
loadTrace(std::istream &is)
{
    TraceLoadResult r = tryLoadTrace(is);
    if (!r.ok())
        fatal("{}", r.message);
    return std::move(*r.trace);
}

Trace
loadTraceFile(const std::string &path)
{
    TraceLoadResult r = tryLoadTraceFile(path);
    if (!r.ok())
        fatal("{}", r.message);
    return std::move(*r.trace);
}

} // namespace hpe
