/**
 * @file
 * Trace serialization: save and load page-visit traces in a small text
 * format, so users can replay real application traces (e.g. captured from
 * an instrumented driver) through the simulators instead of the built-in
 * synthetic generators.
 *
 * Format (one record per line, '#' comments ignored):
 *
 *   trace <abbr> <application> <suite> <pattern I..VI>
 *   k                     # kernel-launch boundary
 *   <page-hex> <burst>    # one visit
 *   end <visit-count>     # footer; absence means the file was truncated
 *
 * Loading validates the input end to end — garbage headers, malformed
 * records, out-of-range page ids, truncation (missing or short footer)
 * and trailing junk are all reported as a typed error carrying the line
 * number; a failed load never yields a partial trace.  The tryLoad*
 * functions return that error; the loadTrace* wrappers keep the original
 * fatal() behaviour for the CLI.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "workload/trace.hpp"

namespace hpe {

/** Why a trace failed to load. */
enum class TraceIoStatus : std::uint8_t
{
    Ok,
    OpenFailed,    ///< file could not be opened
    MissingHeader, ///< stream ended before the header line
    BadHeader,     ///< first line is not a well-formed "trace ..." header
    BadPattern,    ///< header names an unknown access pattern
    BadRecord,     ///< a visit line failed to parse
    PageOutOfRange,///< a page id does not fit the simulator's address space
    Truncated,     ///< stream ended before the "end <count>" footer
    CountMismatch, ///< footer count disagrees with the records read
    TrailingData,  ///< non-comment data after the footer
};

/** Human-readable name of @p status (for messages and tests). */
const char *traceIoStatusName(TraceIoStatus status);

/** Outcome of a tryLoadTrace* call: a trace or a diagnosed failure. */
struct TraceLoadResult
{
    TraceIoStatus status = TraceIoStatus::Ok;
    /** Diagnostic for failures (includes the offending line). */
    std::string message;
    /** Present iff status == Ok. */
    std::optional<Trace> trace;

    bool ok() const { return status == TraceIoStatus::Ok; }
};

/** Write @p trace to @p os in the text format above (with footer). */
void saveTrace(const Trace &trace, std::ostream &os);

/** Write @p trace to @p path; fatal() on I/O failure. */
void saveTraceFile(const Trace &trace, const std::string &path);

/** Parse a trace from @p is; malformed input yields a typed error. */
TraceLoadResult tryLoadTrace(std::istream &is);

/** Read a trace from @p path; I/O and parse failures yield typed errors. */
TraceLoadResult tryLoadTraceFile(const std::string &path);

/** Parse a trace from @p is; fatal() on malformed input. */
Trace loadTrace(std::istream &is);

/** Read a trace from @p path; fatal() on I/O failure. */
Trace loadTraceFile(const std::string &path);

} // namespace hpe
