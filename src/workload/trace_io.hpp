/**
 * @file
 * Trace serialization: save and load page-visit traces in a small text
 * format, so users can replay real application traces (e.g. captured from
 * an instrumented driver) through the simulators instead of the built-in
 * synthetic generators.
 *
 * Format (one record per line, '#' comments ignored):
 *
 *   trace <abbr> <application> <suite> <pattern I..VI>
 *   k                     # kernel-launch boundary
 *   <page-hex> <burst>    # one visit
 */

#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace hpe {

/** Write @p trace to @p os in the text format above. */
void saveTrace(const Trace &trace, std::ostream &os);

/** Write @p trace to @p path; fatal() on I/O failure. */
void saveTraceFile(const Trace &trace, const std::string &path);

/** Parse a trace from @p is; fatal() on malformed input. */
Trace loadTrace(std::istream &is);

/** Read a trace from @p path; fatal() on I/O failure. */
Trace loadTraceFile(const std::string &path);

} // namespace hpe
