/**
 * @file
 * Workload trace representation.
 *
 * A trace is a sequence of page visits.  Each visit is one page reference
 * for eviction-policy purposes (one page-walk-visible touch) and expands
 * in the timing simulator into `burst` consecutive cache-line accesses
 * within the page (GPUs touch pages in bursts; the TLB hierarchy filters
 * the rest, which is why one visit ~ one walk).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hpe {

/** The six representative access patterns of Fig. 2. */
enum class PatternType : std::uint8_t { I, II, III, IV, V, VI };

/** Roman-numeral name of a pattern type. */
inline const char *
patternName(PatternType t)
{
    switch (t) {
      case PatternType::I:
        return "I";
      case PatternType::II:
        return "II";
      case PatternType::III:
        return "III";
      case PatternType::IV:
        return "IV";
      case PatternType::V:
        return "V";
      case PatternType::VI:
        return "VI";
    }
    return "?";
}

/** One page visit. */
struct PageRef
{
    PageId page = 0;
    /** Cache-line accesses this visit expands to in the timing model. */
    std::uint16_t burst = 8;
    /** The visit stores to the page (evicting it then needs a writeback). */
    bool write = false;
};

/** A named, generated workload. */
class Trace
{
  public:
    Trace(std::string abbr, std::string app, std::string suite, PatternType type)
        : abbr_(std::move(abbr)), app_(std::move(app)), suite_(std::move(suite)),
          type_(type)
    {}

    /** @{ identity */
    const std::string &abbr() const { return abbr_; }
    const std::string &application() const { return app_; }
    const std::string &suite() const { return suite_; }
    PatternType pattern() const { return type_; }
    /** @} */

    /** Append one visit. */
    void
    add(PageId page, std::uint16_t burst = 8, bool write = false)
    {
        refs_.push_back(PageRef{page, burst, write});
    }

    /** Fraction of visits that write (for reports). */
    double
    writeFraction() const
    {
        if (refs_.empty())
            return 0.0;
        std::size_t writes = 0;
        for (const PageRef &r : refs_)
            writes += r.write ? 1 : 0;
        return static_cast<double>(writes) / static_cast<double>(refs_.size());
    }

    /**
     * Mark a kernel-launch boundary: the timing simulator inserts a global
     * barrier here (iterative GPU applications re-launch kernels between
     * passes, so pass k+1 cannot overtake pass k).  Consecutive or empty
     * boundaries collapse.
     */
    void
    beginKernel()
    {
        if (kernelStarts_.empty() || kernelStarts_.back() != refs_.size())
            kernelStarts_.push_back(refs_.size());
    }

    const std::vector<PageRef> &refs() const { return refs_; }
    std::size_t size() const { return refs_.size(); }

    /** Mark visit @p i as a write (used by the write-marking helpers). */
    void
    setWrite(std::size_t i, bool write)
    {
        refs_.at(i).write = write;
    }

    /** Number of kernel segments (at least 1 for a nonempty trace). */
    std::size_t
    kernelCount() const
    {
        return kernelStarts_.empty() ? (refs_.empty() ? 0 : 1)
                                     : kernelStarts_.size()
                                           + (kernelStarts_.front() != 0 ? 1 : 0);
    }

    /** Half-open visit-index range [first, second) of kernel @p k. */
    std::pair<std::size_t, std::size_t>
    kernelRange(std::size_t k) const
    {
        std::vector<std::size_t> starts;
        starts.reserve(kernelStarts_.size() + 1);
        if (kernelStarts_.empty() || kernelStarts_.front() != 0)
            starts.push_back(0);
        starts.insert(starts.end(), kernelStarts_.begin(), kernelStarts_.end());
        const std::size_t begin = starts.at(k);
        const std::size_t end =
            k + 1 < starts.size() ? starts[k + 1] : refs_.size();
        return {begin, end};
    }

    /** Unique pages touched (the application footprint). */
    std::size_t
    footprintPages() const
    {
        std::unordered_set<PageId> seen;
        for (const PageRef &r : refs_)
            seen.insert(r.page);
        return seen.size();
    }

    /** The canonical page-reference order (input to Belady MIN). */
    std::shared_ptr<const std::vector<PageId>>
    canonicalPages() const
    {
        auto pages = std::make_shared<std::vector<PageId>>();
        pages->reserve(refs_.size());
        for (const PageRef &r : refs_)
            pages->push_back(r.page);
        return pages;
    }

  private:
    std::string abbr_;
    std::string app_;
    std::string suite_;
    PatternType type_;
    std::vector<PageRef> refs_;
    std::vector<std::size_t> kernelStarts_;
};

} // namespace hpe
