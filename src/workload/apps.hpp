/**
 * @file
 * The 23 selected applications of Table II, modelled as parameterized
 * synthetic page-reference generators.
 *
 * We do not have the authors' GPGPU-Sim traces, so each application is a
 * generator that reproduces the properties the paper attributes to it:
 * its access-pattern type (Table II), its counter regularity (Fig. 9),
 * and its called-out quirks (NW even/odd phases, MVT stride-4, GEM's
 * LRU-averse reuse, the BFS thrashing sub-phase, ...).  Footprints are
 * scaled down from the paper's 3-130 MB so the whole harness runs in
 * minutes; the `scale` factor multiplies every footprint.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace hpe {

/** Static description of one application model. */
struct AppSpec
{
    const char *abbr;   ///< paper abbreviation, e.g. "HSD"
    const char *name;   ///< full application name, e.g. "hotspot3D"
    const char *suite;  ///< benchmark suite
    PatternType type;   ///< Table II access-pattern type
    std::size_t basePages; ///< footprint in pages at scale 1.0
};

/** All 23 applications in Table II order. */
const std::vector<AppSpec> &appSpecs();

/**
 * Extra application models beyond Table II: a sample of the workloads the
 * paper elided for footprint or simulation-time reasons (§III), included
 * so the library covers them.  Not part of the paper-reproduction benches.
 */
const std::vector<AppSpec> &extraAppSpecs();

/**
 * Phase-changing co-run schedules: two or three application slices
 * time-sharing the GPU, the regime the adaptive meta-policy targets.
 * Each slice keeps its own address range (distinct unified-memory
 * allocations), and the schedule alternates slices kernel by kernel, so
 * the reference stream flips between pattern types every few thousand
 * references.  No single static policy is good at every slice.
 */
const std::vector<AppSpec> &mixSpecs();

/** Lookup by abbreviation; fatal() on unknown names. */
const AppSpec &appSpec(const std::string &abbr);

/**
 * Build the reference trace of application @p abbr.
 *
 * @param abbr  paper abbreviation from appSpecs().
 * @param scale footprint multiplier (1.0 = the default scaled footprint).
 * @param seed  RNG seed; equal seeds give bit-identical traces.
 */
Trace buildApp(const std::string &abbr, double scale = 1.0,
               std::uint64_t seed = 42);

} // namespace hpe
