#include "workload/patterns.hpp"

#include <algorithm>
#include <deque>

#include "common/log.hpp"

namespace hpe::patterns {

void
stream(Trace &t, PageId base, std::size_t pages, unsigned refs, std::uint16_t burst)
{
    for (std::size_t p = 0; p < pages; ++p)
        for (unsigned r = 0; r < refs; ++r)
            t.add(base + p, burst);
}

void
thrash(Trace &t, PageId base, std::size_t pages, unsigned passes,
       unsigned refs_per_pass, std::uint16_t burst)
{
    for (unsigned pass = 0; pass < passes; ++pass) {
        t.beginKernel();
        stream(t, base, pages, refs_per_pass, burst);
    }
}

void
partRepetitiveBlocks(Trace &t, PageId base, std::size_t pages,
                     std::size_t block_pages, double p, unsigned extra_passes,
                     Rng &rng, std::uint16_t burst)
{
    HPE_ASSERT(block_pages > 0, "zero block size");
    for (std::size_t b = 0; b < pages; b += block_pages) {
        const std::size_t n = std::min(block_pages, pages - b);
        stream(t, base + b, n, 1, burst);
        if (rng.chance(p))
            for (unsigned e = 0; e < extra_passes; ++e)
                stream(t, base + b, n, 1, burst);
    }
}

void
partRepetitivePages(Trace &t, PageId base, std::size_t pages, double p,
                    unsigned max_extra, std::size_t window, Rng &rng,
                    std::uint16_t burst)
{
    HPE_ASSERT(window > 0, "zero lookahead window");
    // Pending re-visits are delayed by a random slot inside the lookahead
    // window so re-references of different pages intersect (§III-A).
    std::deque<std::vector<PageId>> pending(window + 1);
    auto drain_front = [&] {
        for (PageId page : pending.front())
            t.add(page, burst);
        pending.pop_front();
        pending.emplace_back();
    };

    for (std::size_t i = 0; i < pages; ++i) {
        const PageId page = base + i;
        t.add(page, burst);
        if (rng.chance(p)) {
            const unsigned extra =
                1 + static_cast<unsigned>(rng.below(max_extra > 0 ? max_extra : 1));
            for (unsigned e = 0; e < extra; ++e)
                pending[rng.below(window) + 1].push_back(page);
        }
        drain_front();
    }
    // Flush whatever is still queued.
    while (!pending.empty()) {
        for (PageId page : pending.front())
            t.add(page, burst);
        pending.pop_front();
    }
}

void
stridedSweep(Trace &t, PageId base, std::size_t pages, std::size_t stride,
             unsigned passes, unsigned refs, std::uint16_t burst)
{
    HPE_ASSERT(stride > 0, "zero stride");
    for (unsigned pass = 0; pass < passes; ++pass) {
        t.beginKernel();
        for (std::size_t p = 0; p < pages; p += stride)
            for (unsigned r = 0; r < refs; ++r)
                t.add(base + p, burst);
    }
}

void
evenOddPhases(Trace &t, PageId base, std::size_t pages, unsigned refs,
              unsigned phase_repeats, std::uint16_t burst)
{
    for (unsigned rep = 0; rep < phase_repeats; ++rep) {
        for (std::size_t parity = 0; parity < 2; ++parity) {
            t.beginKernel(); // each parity phase is its own kernel launch
            for (std::size_t p = parity; p < pages; p += 2)
                for (unsigned r = 0; r < refs; ++r)
                    t.add(base + p, burst);
        }
    }
}

void
regionMoving(Trace &t, PageId base, std::size_t pages, std::size_t regions,
             unsigned passes, unsigned refs_per_pass, std::uint16_t burst)
{
    HPE_ASSERT(regions > 0, "zero regions");
    const std::size_t region_pages = (pages + regions - 1) / regions;
    for (std::size_t r = 0; r < regions; ++r) {
        const std::size_t start = r * region_pages;
        if (start >= pages)
            break;
        const std::size_t n = std::min(region_pages, pages - start);
        thrash(t, base + start, n, passes, refs_per_pass, burst);
    }
}

void
frontierLevels(Trace &t, PageId base, std::size_t pages, unsigned levels,
               double frontier_frac, Rng &rng, std::uint16_t burst)
{
    const std::size_t cluster = 32;
    const auto frontier_pages =
        static_cast<std::size_t>(frontier_frac * static_cast<double>(pages));
    for (unsigned lvl = 0; lvl < levels; ++lvl) {
        t.beginKernel(); // one kernel launch per BFS level
        std::size_t visited = 0;
        while (visited < frontier_pages) {
            const std::size_t start = rng.below(pages);
            const std::size_t n = std::min(cluster, pages - start);
            for (std::size_t p = 0; p < n; ++p) {
                const auto visits = 1 + static_cast<unsigned>(rng.below(3));
                for (unsigned v = 0; v < visits; ++v)
                    t.add(base + start + p, burst);
            }
            visited += n;
        }
    }
}

void
skewedRandom(Trace &t, PageId base, std::size_t pages, std::size_t total,
             double hot_frac, double hot_share, Rng &rng, std::uint16_t burst)
{
    const auto hot_pages =
        std::max<std::size_t>(1, static_cast<std::size_t>(hot_frac * pages));
    for (std::size_t i = 0; i < total; ++i) {
        PageId page;
        if (rng.chance(hot_share) || hot_pages >= pages)
            page = base + rng.below(hot_pages); // hot head of the range
        else
            page = base + hot_pages + rng.below(pages - hot_pages);
        t.add(page, burst);
    }
}

void
markWrites(Trace &t, double fraction, Rng &rng)
{
    for (std::size_t i = 0; i < t.size(); ++i)
        if (rng.chance(fraction))
            t.setWrite(i, true);
}

} // namespace hpe::patterns
