/**
 * @file
 * Intrusive doubly-linked list.
 *
 * The page-set chain and the page-level LRU/CLOCK chains are recency lists
 * whose entries must move to the MRU position in O(1) and be addressed from
 * a hash map without iterator invalidation.  Nodes embed their own links; the
 * list never allocates.
 */

#pragma once

#include <cstddef>
#include <iterator>

#include "common/log.hpp"

namespace hpe {

/** Base class providing the embedded links; derive list elements from it. */
class IntrusiveNode
{
  public:
    IntrusiveNode() = default;

    // Nodes hold position state; copying them would corrupt the list.
    IntrusiveNode(const IntrusiveNode &) = delete;
    IntrusiveNode &operator=(const IntrusiveNode &) = delete;

    /** True while the node is a member of some list. */
    bool linked() const { return prev_ != nullptr; }

  private:
    template <typename T>
    friend class IntrusiveList;

    IntrusiveNode *prev_ = nullptr;
    IntrusiveNode *next_ = nullptr;
};

/**
 * Doubly-linked list of T, where T derives from IntrusiveNode.
 *
 * Head is the LRU end, tail is the MRU end (by the conventions of the
 * eviction code in this project).  All operations are O(1) except size
 * checks over ranges, and the list is iterable front-to-back.
 */
template <typename T>
class IntrusiveList
{
  public:
    IntrusiveList()
    {
        sentinel_.prev_ = &sentinel_;
        sentinel_.next_ = &sentinel_;
    }

    IntrusiveList(const IntrusiveList &) = delete;
    IntrusiveList &operator=(const IntrusiveList &) = delete;

    bool empty() const { return sentinel_.next_ == &sentinel_; }
    std::size_t size() const { return size_; }

    /** First element (LRU end); list must be nonempty. */
    T &
    front()
    {
        HPE_ASSERT(!empty(), "front() on empty list");
        return *static_cast<T *>(sentinel_.next_);
    }

    /** Last element (MRU end); list must be nonempty. */
    T &
    back()
    {
        HPE_ASSERT(!empty(), "back() on empty list");
        return *static_cast<T *>(sentinel_.prev_);
    }

    /** Insert @p node at the front (LRU end). */
    void
    pushFront(T &node)
    {
        insertAfter(sentinel_, node);
    }

    /** Insert @p node at the back (MRU end). */
    void
    pushBack(T &node)
    {
        insertAfter(*sentinel_.prev_, node);
    }

    /** Insert @p node immediately before @p pos (pos must be linked here). */
    void
    insertBefore(T &pos, T &node)
    {
        insertAfter(*static_cast<IntrusiveNode &>(pos).prev_, node);
    }

    /** Unlink @p node from the list. */
    void
    remove(T &node)
    {
        IntrusiveNode &n = node;
        HPE_ASSERT(n.linked(), "remove() of unlinked node");
        n.prev_->next_ = n.next_;
        n.next_->prev_ = n.prev_;
        n.prev_ = nullptr;
        n.next_ = nullptr;
        --size_;
    }

    /** Move an already-linked @p node to the back (MRU end). */
    void
    moveToBack(T &node)
    {
        remove(node);
        pushBack(node);
    }

    /**
     * Move every node of @p other to the back of this list in O(1),
     * preserving their relative order; @p other is left empty.
     */
    void
    spliceBack(IntrusiveList &other)
    {
        if (other.empty())
            return;
        IntrusiveNode *first = other.sentinel_.next_;
        IntrusiveNode *last = other.sentinel_.prev_;
        first->prev_ = sentinel_.prev_;
        sentinel_.prev_->next_ = first;
        last->next_ = &sentinel_;
        sentinel_.prev_ = last;
        size_ += other.size_;
        other.sentinel_.next_ = &other.sentinel_;
        other.sentinel_.prev_ = &other.sentinel_;
        other.size_ = 0;
    }

    /** Successor of @p node, or nullptr at the tail. */
    T *
    next(T &node)
    {
        IntrusiveNode *n = static_cast<IntrusiveNode &>(node).next_;
        return n == &sentinel_ ? nullptr : static_cast<T *>(n);
    }

    /** Predecessor of @p node, or nullptr at the head. */
    T *
    prev(T &node)
    {
        IntrusiveNode *n = static_cast<IntrusiveNode &>(node).prev_;
        return n == &sentinel_ ? nullptr : static_cast<T *>(n);
    }

    /** Minimal forward iterator so the chain can be range-traversed. */
    class iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = T *;
        using reference = T &;

        iterator(IntrusiveNode *node, const IntrusiveNode *sentinel)
            : node_(node), sentinel_(sentinel)
        {}

        reference operator*() const { return *static_cast<T *>(node_); }
        pointer operator->() const { return static_cast<T *>(node_); }

        iterator &
        operator++()
        {
            node_ = node_->next_;
            return *this;
        }

        iterator
        operator++(int)
        {
            iterator tmp = *this;
            ++*this;
            return tmp;
        }

        bool operator==(const iterator &o) const { return node_ == o.node_; }

      private:
        IntrusiveNode *node_;
        const IntrusiveNode *sentinel_;
    };

    iterator begin() { return iterator(sentinel_.next_, &sentinel_); }
    iterator end() { return iterator(&sentinel_, &sentinel_); }

  private:
    void
    insertAfter(IntrusiveNode &pos, T &node)
    {
        IntrusiveNode &n = node;
        HPE_ASSERT(!n.linked(), "inserting already-linked node");
        n.prev_ = &pos;
        n.next_ = pos.next_;
        pos.next_->prev_ = &n;
        pos.next_ = &n;
        ++size_;
    }

    IntrusiveNode sentinel_;
    std::size_t size_ = 0;
};

} // namespace hpe
