/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register scalar counters and sampled distributions under
 * hierarchical dotted names ("gpu.sm0.l1tlb.hits").  The registry can dump
 * itself as text and individual stats can be looked up by tests.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"

namespace hpe {

/** A monotonically growing event counter. */
class Counter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max over a stream of samples. */
class Distribution
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    double minimum() const { return count_ ? min_ : 0.0; }
    double maximum() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = 1e300;
        max_ = -1e300;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/**
 * Owner of named statistics.  Components call counter()/distribution()
 * exactly once at construction and keep the returned references; a second
 * registration under the same name is a component wiring bug (two owners
 * silently aliasing one counter) and is rejected with a clear error.
 * Lookups by name — for reporting, tests, and interval probes — go through
 * findCounter()/findDistribution().
 */
class StatRegistry
{
  public:
    /** Register the counter @p name; fatal() if it already exists. */
    Counter &
    counter(const std::string &name)
    {
        const auto [it, inserted] = counters_.try_emplace(name);
        if (!inserted)
            fatal("stat counter '{}' already registered (two components "
                  "sharing one name would silently alias their counts)",
                  name);
        return it->second;
    }

    /** Register the distribution @p name; fatal() if it already exists. */
    Distribution &
    distribution(const std::string &name)
    {
        const auto [it, inserted] = dists_.try_emplace(name);
        if (!inserted)
            fatal("stat distribution '{}' already registered (two components "
                  "sharing one name would silently alias their samples)",
                  name);
        return it->second;
    }

    /** Counter lookup for tests; the stat must exist. */
    const Counter &
    findCounter(const std::string &name) const
    {
        auto it = counters_.find(name);
        HPE_ASSERT(it != counters_.end(), "unknown counter {}", name);
        return it->second;
    }

    /** Distribution lookup for tests; the stat must exist. */
    const Distribution &
    findDistribution(const std::string &name) const
    {
        auto it = dists_.find(name);
        HPE_ASSERT(it != dists_.end(), "unknown distribution {}", name);
        return it->second;
    }

    bool hasCounter(const std::string &name) const { return counters_.contains(name); }

    /** Write all stats, sorted by name, one per line. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, c] : sortedByName(counters_))
            os << *name << " " << c->value() << "\n";
        for (const auto &[name, d] : sortedByName(dists_)) {
            os << *name << " count=" << d->count() << " mean=" << d->mean()
               << " min=" << d->minimum() << " max=" << d->maximum() << "\n";
        }
    }

    /** Write all stats as CSV ("name,value" / distribution moments). */
    void
    dumpCsv(std::ostream &os) const
    {
        os << "name,count,value,mean,min,max\n";
        for (const auto &[name, c] : sortedByName(counters_))
            os << *name << ",1," << c->value() << ",,,\n";
        for (const auto &[name, d] : sortedByName(dists_)) {
            os << *name << "," << d->count() << ",," << d->mean() << ","
               << d->minimum() << "," << d->maximum() << "\n";
        }
    }

    /** Zero every registered stat (between experiment repetitions). */
    void
    resetAll()
    {
        for (auto &[name, c] : counters_)
            c.reset();
        for (auto &[name, d] : dists_)
            d.reset();
    }

  private:
    // The registries are hot on the simulation path only through the
    // references handed out by counter()/distribution(); unordered_map keeps
    // registration cheap while its node stability keeps those references
    // valid.  Reports sort at dump time so the output stays byte-identical
    // to the ordered-map storage this replaced.
    template <typename Map>
    static std::vector<std::pair<const std::string *, const typename Map::mapped_type *>>
    sortedByName(const Map &map)
    {
        std::vector<std::pair<const std::string *, const typename Map::mapped_type *>> items;
        items.reserve(map.size());
        for (const auto &[name, v] : map)
            items.emplace_back(&name, &v);
        std::sort(items.begin(), items.end(),
                  [](const auto &a, const auto &b) { return *a.first < *b.first; });
        return items;
    }

    std::unordered_map<std::string, Counter> counters_;
    std::unordered_map<std::string, Distribution> dists_;
};

} // namespace hpe
