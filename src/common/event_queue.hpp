/**
 * @file
 * Discrete-event scheduler for the timing simulator.
 *
 * Events are (cycle, sequence, callback) triples ordered by cycle then by
 * insertion sequence, so simultaneous events fire deterministically in
 * scheduling order — a requirement for reproducible experiments.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace hpe {

/** Deterministic min-heap event queue keyed on simulated cycles. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute cycle @p when (>= current time). */
    void
    schedule(Cycle when, Callback cb)
    {
        HPE_ASSERT(when >= now_, "scheduling into the past: {} < {}", when, now_);
        heap_.push(Event{when, seq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delta cycles from now. */
    void
    scheduleIn(Cycle delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Current simulated cycle (time of the last event processed). */
    Cycle now() const { return now_; }

    /** Cycle of the next pending event; queue must be nonempty. */
    Cycle
    nextEventCycle() const
    {
        HPE_ASSERT(!heap_.empty(), "nextEventCycle() on empty queue");
        return heap_.top().when;
    }

    /**
     * Pop and run the earliest event, advancing the clock.
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // The callback may schedule new events, so detach it first.
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.cb();
        return true;
    }

    /** Run until the queue is drained or @p max_events fire. */
    std::uint64_t
    run(std::uint64_t max_events = UINT64_MAX)
    {
        std::uint64_t n = 0;
        while (n < max_events && step())
            ++n;
        return n;
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    std::uint64_t seq_ = 0;
    Cycle now_ = 0;
};

} // namespace hpe
