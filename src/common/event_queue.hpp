/**
 * @file
 * Discrete-event scheduler for the timing simulator.
 *
 * Events are (cycle, sequence, callback) triples ordered by cycle then by
 * insertion sequence, so simultaneous events fire deterministically in
 * scheduling order — a requirement for reproducible experiments.
 *
 * ## Engine
 *
 * The previous engine was a `std::priority_queue` of events each owning a
 * heap-allocating `std::function`; every schedule cost an allocation and
 * every pop a log-n sift plus a `std::function` copy.  Timing mode fires
 * several events per line access, so that engine dominated the ~100×
 * functional-vs-timing throughput gap.  This one is allocation-free on
 * the steady-state path:
 *
 *  - **Bucketed timing wheel** (calendar queue): one bucket per cycle
 *    over a `kWheelSpan`-cycle window starting at `now()`.  Because the
 *    window length equals the bucket count and nothing schedules into
 *    the past, each bucket holds events of exactly one absolute cycle,
 *    appended in seq order — FIFO pop order is free.  A two-level
 *    occupancy bitmap finds the next nonempty bucket in a few word
 *    scans instead of walking empty buckets.
 *  - **Sorted overflow tier** for events beyond the window (saturated
 *    PCIe horizons, chaos retry backoffs): a min-heap on (cycle, seq).
 *    Events are promoted into the wheel once their cycle enters the
 *    window (merged into their bucket in seq order), and popped straight
 *    from the heap when the wheel has nothing earlier.
 *  - **Arena-allocated typed events**: fixed-size nodes from a bump
 *    arena, recycled through a free list.  Callbacks are constructed
 *    in-place in the node's inline storage (every closure in the
 *    simulator fits; oversized ones fall back to the heap and are
 *    counted), and run in place — no copies, ever.
 *
 * Pop order is exactly the old engine's strict (cycle, seq) total order,
 * so simulation results are byte-identical; `tests/test_event_queue.cpp`
 * pins this with a differential replay against a reference heap.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <tuple>
#include <type_traits>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace hpe {

/** Deterministic bucketed-wheel event queue keyed on simulated cycles. */
class EventQueue
{
  public:
    /** Wheel geometry: one bucket per cycle over this window. */
    static constexpr unsigned kWheelBits = 16;
    static constexpr std::size_t kWheelBuckets = std::size_t{1} << kWheelBits;
    /** Events at `now() + kWheelSpan` or later take the overflow tier. */
    static constexpr Cycle kWheelSpan = Cycle{kWheelBuckets};

    /** Inline callback storage per event node; larger closures heap-box. */
    static constexpr std::size_t kInlineCallbackBytes = 80;

    /** Engine observability (see GpuSystem's "gpu.eq.*" stat export). */
    struct Stats
    {
        std::uint64_t scheduled = 0;         ///< events ever scheduled
        std::uint64_t fired = 0;             ///< events popped and run
        std::uint64_t overflowScheduled = 0; ///< landed in the overflow tier
        std::uint64_t overflowPromoted = 0;  ///< later merged into the wheel
        std::uint64_t peakPending = 0;       ///< high-water mark of pending events
        std::uint64_t heapCallbacks = 0;     ///< closures too big for inline storage
        std::uint64_t arenaNodes = 0;        ///< nodes ever carved from the arena
        std::uint64_t arenaBytes = 0;        ///< bytes held by arena blocks
    };

    EventQueue()
    {
        buckets_.assign(kWheelBuckets, Bucket{});
        l0_.assign(kWheelBuckets / 64, 0);
        l1_.assign(kWheelBuckets / 64 / 64, 0);
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Destroy un-fired callbacks (a run cut short by maxCycles or a
        // test draining early); the arena blocks free with the vector.
        if (pending_ != 0) {
            for (std::size_t b = 0; b < kWheelBuckets; ++b)
                for (Node *n = buckets_[b].head; n != nullptr; n = n->next)
                    disposeNode(*n);
            for (Node *n : overflow_)
                disposeNode(*n);
        }
    }

    /** Schedule @p fn to run at absolute cycle @p when (>= current time). */
    template <typename F>
    void
    schedule(Cycle when, F &&fn)
    {
        HPE_ASSERT(when >= now_, "scheduling into the past: {} < {}", when, now_);
        Node *n = allocNode();
        n->when = when;
        n->seq = seq_++;
        n->next = nullptr;
        emplaceCallback(*n, std::forward<F>(fn));
        if (when - now_ < kWheelSpan) {
            bucketAppend(bucketOf(when), n);
        } else {
            overflow_.push_back(n);
            std::push_heap(overflow_.begin(), overflow_.end(), NodeAfter{});
            ++stats_.overflowScheduled;
        }
        ++stats_.scheduled;
        if (++pending_ > stats_.peakPending)
            stats_.peakPending = pending_;
    }

    /** Schedule @p fn to run @p delta cycles from now. */
    template <typename F>
    void
    scheduleIn(Cycle delta, F &&fn)
    {
        schedule(now_ + delta, std::forward<F>(fn));
    }

    /** True when no events remain. */
    bool empty() const { return pending_ == 0; }

    /** Events currently pending. */
    std::size_t pending() const { return pending_; }

    /** Current simulated cycle (time of the last event processed). */
    Cycle now() const { return now_; }

    /** Engine counters (monotone over the queue's lifetime). */
    const Stats &stats() const { return stats_; }

    /** Cycle of the next pending event; queue must be nonempty. */
    Cycle
    nextEventCycle() const
    {
        HPE_ASSERT(pending_ != 0, "nextEventCycle() on empty queue");
        const Node *wheel = wheelCount_ != 0 ? peekWheel() : nullptr;
        const Node *over = overflow_.empty() ? nullptr : overflow_.front();
        if (wheel == nullptr)
            return over->when;
        if (over == nullptr)
            return wheel->when;
        return std::min(wheel->when, over->when);
    }

    /**
     * Pop and run the earliest event, advancing the clock.
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (pending_ == 0)
            return false;
        promoteOverflow();
        Node *n;
        if (wheelCount_ != 0) {
            n = popWheel();
            // After promotion, anything left in overflow is at least a
            // full window away — the wheel holds the minimum.
        } else {
            std::pop_heap(overflow_.begin(), overflow_.end(), NodeAfter{});
            n = overflow_.back();
            overflow_.pop_back();
        }
        now_ = n->when;
        --pending_;
        ++stats_.fired;
        // The callback may schedule new events; the node is already
        // unlinked and the arena never reuses it before release.
        n->run(*n);
        disposeNode(*n);
        releaseNode(n);
        return true;
    }

    /** Run until the queue is drained or @p max_events fire. */
    std::uint64_t
    run(std::uint64_t max_events = UINT64_MAX)
    {
        std::uint64_t n = 0;
        while (n < max_events && step())
            ++n;
        return n;
    }

  private:
    struct Node
    {
        Cycle when;
        std::uint64_t seq;
        Node *next;
        void (*run)(Node &);     ///< invoke the callback (does not destroy)
        void (*dispose)(Node &); ///< destroy the callback; null if trivial
        alignas(std::max_align_t) std::byte storage[kInlineCallbackBytes];
    };

    /** Min-heap comparator: true when @p a fires after @p b. */
    struct NodeAfter
    {
        bool
        operator()(const Node *a, const Node *b) const
        {
            return std::tie(a->when, a->seq) > std::tie(b->when, b->seq);
        }
    };

    template <typename F>
    void
    emplaceCallback(Node &n, F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineCallbackBytes
                      && alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(n.storage)) Fn(std::forward<F>(fn));
            n.run = [](Node &e) {
                (*std::launder(reinterpret_cast<Fn *>(e.storage)))();
            };
            n.dispose = std::is_trivially_destructible_v<Fn>
                            ? nullptr
                            : +[](Node &e) {
                                  std::launder(reinterpret_cast<Fn *>(e.storage))
                                      ->~Fn();
                              };
        } else {
            ::new (static_cast<void *>(n.storage))
                Fn *(new Fn(std::forward<F>(fn)));
            n.run = [](Node &e) {
                (**std::launder(reinterpret_cast<Fn **>(e.storage)))();
            };
            n.dispose = [](Node &e) {
                delete *std::launder(reinterpret_cast<Fn **>(e.storage));
            };
            ++stats_.heapCallbacks;
        }
    }

    static void
    disposeNode(Node &n)
    {
        if (n.dispose != nullptr)
            n.dispose(n);
    }

    /** @{ arena: bump allocation in blocks, recycled via a free list */
    static constexpr std::size_t kBlockNodes = 512;

    Node *
    allocNode()
    {
        if (freeList_ != nullptr) {
            Node *n = freeList_;
            freeList_ = n->next;
            return n;
        }
        if (bump_ == bumpEnd_) {
            blocks_.push_back(std::make_unique<Block>());
            bump_ = blocks_.back()->nodes;
            bumpEnd_ = bump_ + kBlockNodes;
            stats_.arenaBytes += sizeof(Block);
        }
        ++stats_.arenaNodes;
        return bump_++;
    }

    void
    releaseNode(Node *n)
    {
        n->next = freeList_;
        freeList_ = n;
    }
    /** @} */

    /** @{ wheel: per-cycle buckets + two-level occupancy bitmap */
    static std::size_t
    bucketOf(Cycle when)
    {
        return static_cast<std::size_t>(when) & (kWheelBuckets - 1);
    }

    void
    setBit(std::size_t b)
    {
        l0_[b >> 6] |= std::uint64_t{1} << (b & 63);
        l1_[b >> 12] |= std::uint64_t{1} << ((b >> 6) & 63);
    }

    void
    clearBit(std::size_t b)
    {
        l0_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
        if (l0_[b >> 6] == 0)
            l1_[b >> 12] &= ~(std::uint64_t{1} << ((b >> 6) & 63));
    }

    static constexpr std::size_t kNoBucket = ~std::size_t{0};

    /** First occupied bucket in [@p b, kWheelBuckets), or kNoBucket. */
    std::size_t
    scanFrom(std::size_t b) const
    {
        std::size_t w = b >> 6;
        const std::uint64_t head = l0_[w] & (~std::uint64_t{0} << (b & 63));
        if (head != 0)
            return (w << 6) + static_cast<unsigned>(__builtin_ctzll(head));
        // Consult the summary bitmap for the next nonzero l0 word.
        std::size_t lw = w >> 6;
        std::uint64_t lword =
            (w & 63) == 63 ? 0 : l1_[lw] & (~std::uint64_t{0} << ((w & 63) + 1));
        for (;;) {
            if (lword != 0) {
                const std::size_t w2 =
                    (lw << 6) + static_cast<unsigned>(__builtin_ctzll(lword));
                return (w2 << 6)
                    + static_cast<unsigned>(__builtin_ctzll(l0_[w2]));
            }
            if (++lw >= l1_.size())
                return kNoBucket;
            lword = l1_[lw];
        }
    }

    /**
     * Next occupied bucket in firing order.  Scanning from the cursor and
     * wrapping visits absolute cycles in increasing order, because every
     * wheel event lies in [now, now + kWheelSpan).
     */
    std::size_t
    nextBucket() const
    {
        const std::size_t cursor = bucketOf(now_);
        std::size_t b = scanFrom(cursor);
        if (b == kNoBucket)
            b = scanFrom(0);
        HPE_ASSERT(b != kNoBucket, "wheel count out of sync with bitmap");
        return b;
    }

    const Node *peekWheel() const { return buckets_[nextBucket()].head; }

    Node *
    popWheel()
    {
        const std::size_t b = nextBucket();
        Bucket &bk = buckets_[b];
        Node *n = bk.head;
        bk.head = n->next;
        if (n->next == nullptr) {
            bk.tail = nullptr;
            clearBit(b);
        }
        --wheelCount_;
        return n;
    }

    void
    bucketAppend(std::size_t b, Node *n)
    {
        // All events in a bucket share one absolute cycle, and seq grows
        // monotonically, so appending keeps the list pop-ordered.
        Bucket &bk = buckets_[b];
        if (bk.head == nullptr) {
            bk.head = bk.tail = n;
            setBit(b);
        } else {
            bk.tail->next = n;
            bk.tail = n;
        }
        ++wheelCount_;
    }

    /**
     * Merge overflow events whose cycle has entered the wheel window into
     * their bucket, in seq order (a promoted event can carry a smaller
     * seq than one scheduled into the same cycle after the window moved).
     */
    void
    promoteOverflow()
    {
        while (!overflow_.empty() && overflow_.front()->when - now_ < kWheelSpan) {
            std::pop_heap(overflow_.begin(), overflow_.end(), NodeAfter{});
            Node *n = overflow_.back();
            overflow_.pop_back();
            const std::size_t b = bucketOf(n->when);
            n->next = nullptr;
            if (buckets_[b].head == nullptr || n->seq > buckets_[b].tail->seq) {
                bucketAppend(b, n);
            } else {
                // Seq-ordered insert; buckets are short (one cycle each).
                Node **link = &buckets_[b].head;
                while (*link != nullptr && (*link)->seq < n->seq)
                    link = &(*link)->next;
                n->next = *link;
                *link = n;
                ++wheelCount_;
            }
            ++stats_.overflowPromoted;
        }
    }
    /** @} */

    struct Block
    {
        Node nodes[kBlockNodes];
    };

    /** Head + tail side by side: one cache line per bucket touch. */
    struct Bucket
    {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    std::vector<Bucket> buckets_;
    std::vector<std::uint64_t> l0_; ///< bucket-occupied bits
    std::vector<std::uint64_t> l1_; ///< l0-word-nonzero bits
    std::vector<Node *> overflow_;  ///< min-heap on (when, seq)

    std::vector<std::unique_ptr<Block>> blocks_;
    Node *freeList_ = nullptr;
    Node *bump_ = nullptr;
    Node *bumpEnd_ = nullptr;

    std::size_t wheelCount_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t seq_ = 0;
    Cycle now_ = 0;
    Stats stats_;
};

} // namespace hpe
