/**
 * @file
 * Deterministic fault injection ("chaos mode") for the driver stack.
 *
 * Real UVM runtimes survive transfer stalls, dropped shootdown acks, and
 * fault-service timeouts; the happy-path simulator never exercised the
 * code that must tolerate them.  The injector draws each event kind from
 * its own seeded PRNG stream, so adding a new injection site never
 * perturbs the decision sequence of an existing one and a fixed seed
 * replays the exact same fault schedule run after run.
 *
 * With ChaosConfig::enabled == false no injector is constructed at all:
 * every consumer holds a nullable pointer and the default path is
 * byte-identical to a build without this subsystem.
 */

#pragma once

#include <string>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "trace/trace_sink.hpp"

namespace hpe {

/** Per-event probabilities and latencies of the chaos subsystem. */
struct ChaosConfig
{
    bool enabled = false;

    /** Seed of the injector's PRNG streams (one stream per event kind). */
    std::uint64_t seed = 1;

    /** A page-migration PCIe transfer fails and must be retried. */
    double pcieFailProb = 0.0;

    /** A PCIe transfer is stalled (link held longer than the data needs). */
    double pcieStallProb = 0.0;

    /** Extra link occupancy of one injected stall. */
    Cycle pcieStallCycles = microsToCycles(5.0);

    /** A fault service times out and is replayed after backoff. */
    double serviceTimeoutProb = 0.0;

    /** A TLB-shootdown ack is dropped; the driver re-issues it. */
    double shootdownDropProb = 0.0;

    /** A page walk suffers a transient error and is re-walked. */
    double walkErrorProb = 0.0;

    /** fatal() on out-of-range probabilities. */
    void
    validate() const
    {
        for (double p : {pcieFailProb, pcieStallProb, serviceTimeoutProb,
                         shootdownDropProb, walkErrorProb})
            if (p < 0.0 || p > 1.0)
                fatal("chaos probability {} outside [0, 1]", p);
        // Walk errors and shootdown drops are retried without an attempt
        // bound (they are transient by definition); probability 1 would
        // retry forever.
        if (walkErrorProb >= 1.0)
            fatal("chaos walk-error probability must be < 1");
        if (shootdownDropProb >= 1.0)
            fatal("chaos shootdown-drop probability must be < 1");
    }
};

/** Seeded per-event-stream fault injector. */
class FaultInjector
{
  public:
    /**
     * @param cfg   event probabilities; validated here.
     * @param stats registry receiving "<name>.*" injection counts.
     * @param name  stat prefix, e.g. "chaos".
     */
    FaultInjector(const ChaosConfig &cfg, StatRegistry &stats,
                  const std::string &name = "chaos")
        : cfg_(cfg),
          pcieFailRng_(cfg.seed ^ 0x9e3779b97f4a7c15ULL),
          pcieStallRng_(cfg.seed ^ 0xbf58476d1ce4e5b9ULL),
          timeoutRng_(cfg.seed ^ 0x94d049bb133111ebULL),
          shootdownRng_(cfg.seed ^ 0xd6e8feb86659fd93ULL),
          walkRng_(cfg.seed ^ 0xa0761d6478bd642fULL),
          pcieFailures_(stats.counter(name + ".pcieFailures")),
          pcieStalls_(stats.counter(name + ".pcieStalls")),
          serviceTimeouts_(stats.counter(name + ".serviceTimeouts")),
          shootdownDrops_(stats.counter(name + ".shootdownDrops")),
          walkErrors_(stats.counter(name + ".walkErrors"))
    {
        cfg_.validate();
    }

    const ChaosConfig &config() const { return cfg_; }

    /** Attach a structured-event sink (nullable); each injected fault then
     *  emits a ChaosInjection event tagged with its stream. */
    void setTraceSink(trace::TraceSink *sink) { sink_ = sink; }

    /** Does this page-migration transfer fail? */
    bool
    pcieTransferFails()
    {
        return draw(pcieFailRng_, cfg_.pcieFailProb, pcieFailures_,
                    trace::ChaosKind::PcieFail);
    }

    /** Extra link-occupancy cycles of this transfer (0 = no stall). */
    Cycle
    pcieStallCycles()
    {
        return draw(pcieStallRng_, cfg_.pcieStallProb, pcieStalls_,
                    trace::ChaosKind::PcieStall)
                   ? cfg_.pcieStallCycles
                   : 0;
    }

    /** Does this fault service time out? */
    bool
    serviceTimesOut()
    {
        return draw(timeoutRng_, cfg_.serviceTimeoutProb, serviceTimeouts_,
                    trace::ChaosKind::ServiceTimeout);
    }

    /** Is this TLB-shootdown ack dropped? */
    bool
    shootdownDropped()
    {
        return draw(shootdownRng_, cfg_.shootdownDropProb, shootdownDrops_,
                    trace::ChaosKind::ShootdownDrop);
    }

    /** Does this page walk suffer a transient error? */
    bool
    walkErrors()
    {
        return draw(walkRng_, cfg_.walkErrorProb, walkErrors_,
                    trace::ChaosKind::WalkError);
    }

  private:
    bool
    draw(Rng &rng, double p, Counter &counter, trace::ChaosKind kind)
    {
        if (p <= 0.0)
            return false;
        if (!rng.chance(p))
            return false;
        ++counter;
        if (sink_ != nullptr)
            sink_->emit(trace::EventKind::ChaosInjection,
                        static_cast<std::uint8_t>(kind), 0, 0);
        return true;
    }

    ChaosConfig cfg_;
    trace::TraceSink *sink_ = nullptr;
    Rng pcieFailRng_;
    Rng pcieStallRng_;
    Rng timeoutRng_;
    Rng shootdownRng_;
    Rng walkRng_;
    Counter &pcieFailures_;
    Counter &pcieStalls_;
    Counter &serviceTimeouts_;
    Counter &shootdownDrops_;
    Counter &walkErrors_;
};

} // namespace hpe
