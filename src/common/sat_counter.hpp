/**
 * @file
 * Saturating counter used by page-set chain entries (saturates at 64 in the
 * paper) and by the 2-bit per-page counters inside HIR entries.
 */

#pragma once

#include <cstdint>

#include "common/log.hpp"

namespace hpe {

/** An up/down counter that clamps at [0, max]. */
class SatCounter
{
  public:
    SatCounter() = default;

    /** @param max saturation ceiling; @param initial starting value. */
    explicit SatCounter(std::uint32_t max, std::uint32_t initial = 0)
        : value_(initial), max_(max)
    {
        HPE_ASSERT(initial <= max, "initial {} exceeds max {}", initial, max);
    }

    /** Increment by @p n, clamping at the ceiling. */
    void
    add(std::uint32_t n = 1)
    {
        const std::uint64_t sum = std::uint64_t{value_} + n;
        value_ = sum > max_ ? max_ : static_cast<std::uint32_t>(sum);
    }

    /** Decrement by @p n, clamping at zero. */
    void
    sub(std::uint32_t n = 1)
    {
        value_ = value_ < n ? 0 : value_ - n;
    }

    /** True once the counter has reached its ceiling. */
    bool saturated() const { return value_ == max_; }

    std::uint32_t value() const { return value_; }
    std::uint32_t max() const { return max_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint32_t value_ = 0;
    std::uint32_t max_ = 0;
};

} // namespace hpe
