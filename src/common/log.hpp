/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * panic()  — an internal invariant was violated (a simulator bug); aborts.
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "common/format.hpp"

namespace hpe {

namespace detail {

[[noreturn]] inline void
die(const char *kind, std::string_view msg, bool abort_process,
    int exit_code = 1)
{
    std::fprintf(stderr, "%s: %.*s\n", kind, static_cast<int>(msg.size()), msg.data());
    if (abort_process)
        std::abort();
    std::exit(exit_code);
}

} // namespace detail

/** Exit code of usageFatal(): distinguishes "you asked for something that
 *  does not exist" (a fixable command line) from fatal()'s generic
 *  configuration error, so scripts can tell the two apart. */
inline constexpr int kUsageExitCode = 2;

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    detail::die("fatal", strformat(fmt, std::forward<Args>(args)...), false);
}

/**
 * Report an unknown-name / bad-usage error and exit(kUsageExitCode).
 * Used by the hpe::api name registry so `hpe_sim run --policy nope`
 * fails with a distinct code and a clean message (never an assert).
 */
template <typename... Args>
[[noreturn]] void
usageFatal(std::string_view fmt, Args &&...args)
{
    detail::die("error", strformat(fmt, std::forward<Args>(args)...), false,
                kUsageExitCode);
}

/** Report a violated internal invariant (simulator bug) and abort(). */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    detail::die("panic", strformat(fmt, std::forward<Args>(args)...), true);
}

/** Print a warning that does not stop the simulation. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    auto msg = strformat(fmt, std::forward<Args>(args)...);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/**
 * Print an informational status message.  Goes to stderr, like every
 * other log channel: stdout belongs to machine-readable command output
 * (CSV, JSONL), which must stay byte-pure even when a status line fires
 * mid-run from a worker thread.
 */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    auto msg = strformat(fmt, std::forward<Args>(args)...);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless @p cond holds; used for internal invariants. */
#define HPE_ASSERT(cond, ...)                                                  \
    do {                                                                       \
        if (!(cond)) [[unlikely]]                                              \
            ::hpe::panic("assertion `" #cond "` failed at {}:{}: {}",          \
                         __FILE__, __LINE__, ::hpe::strformat(__VA_ARGS__));   \
    } while (0)

} // namespace hpe
