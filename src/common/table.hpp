/**
 * @file
 * Plain-text table printer used by the benchmark harness to emit the
 * rows/series of each paper table and figure.
 */

#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hpp"

namespace hpe {

/** Accumulates rows of string cells and prints them column-aligned. */
class TextTable
{
  public:
    /** @param headers column titles, fixing the column count. */
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    /** Append one row; must have exactly as many cells as there are headers. */
    void
    addRow(std::vector<std::string> cells)
    {
        HPE_ASSERT(cells.size() == headers_.size(),
                   "row has {} cells, table has {} columns",
                   cells.size(), headers_.size());
        rows_.push_back(std::move(cells));
    }

    /** Format a double with @p precision digits after the point. */
    static std::string
    num(double v, int precision = 3)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    /** Print the table with a header rule to @p os. */
    void
    print(std::ostream &os = std::cout) const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size(); ++c)
                width[c] = std::max(width[c], row[c].size());

        auto emit = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c) {
                os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
                os << (c + 1 == cells.size() ? "\n" : "  ");
            }
        };
        emit(headers_);
        std::string rule;
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            rule.append(width[c], '-');
            if (c + 1 != headers_.size())
                rule.append(2, '-');
        }
        os << rule << "\n";
        for (const auto &row : rows_)
            emit(row);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hpe
