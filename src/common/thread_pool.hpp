/**
 * @file
 * Fixed-size worker pool with a chunk-free dynamic parallel-for.
 *
 * The sweep engine runs many independent (trace, policy, configuration)
 * simulations; their durations vary by an order of magnitude (a timing
 * run of a type-II workload versus a functional run of a streaming one),
 * so static chunking would leave workers idle.  parallelFor() instead
 * hands out indices one at a time through a shared atomic cursor —
 * effectively work stealing at index granularity, which self-balances
 * without any per-job bookkeeping.
 *
 * Guarantees:
 *
 *  - every index in [0, n) is executed exactly once, on some thread;
 *  - the calling thread participates (a pool of `t` threads applies `t`
 *    ways of parallelism, not `t + 1`);
 *  - exceptions: every index still runs; afterwards the exception thrown
 *    by the lowest failing index is rethrown on the caller.  The serial
 *    path (1 thread, 1 index, or a nested call) follows the same rule,
 *    so behaviour is mode-independent;
 *  - a parallelFor() issued from inside a running batch (nested
 *    parallelism) executes inline on the calling thread — the pool never
 *    deadlocks on itself.
 *
 * Determinism is the caller's contract: parallelFor() imposes no order,
 * so callers must write results into per-index slots and reduce them in
 * index order afterwards (what SweepRunner does).
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hpp"

namespace hpe {

/** Persistent worker pool; see file comment for the execution contract. */
class ThreadPool
{
  public:
    /** Hardware concurrency with a sane floor (never 0). */
    static unsigned
    hardwareThreads()
    {
        const unsigned n = std::thread::hardware_concurrency();
        return n > 0 ? n : 1;
    }

    /** @param threads parallelism degree; 0 selects hardwareThreads(). */
    explicit ThreadPool(unsigned threads = 0)
        : threads_(threads == 0 ? hardwareThreads() : threads)
    {
        workers_.reserve(threads_ - 1);
        for (unsigned t = 1; t < threads_; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Parallelism degree (including the calling thread). */
    unsigned threads() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n), distributing indices across the
     * pool; blocks until all complete.  See the file comment for the
     * exception and nesting contract.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (n == 0)
            return;
        if (workers_.empty() || n == 1 || insideBatch()) {
            runSerial(n, fn);
            return;
        }

        Batch batch(n, fn);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            HPE_ASSERT(current_ == nullptr, "overlapping parallelFor batches");
            current_ = &batch;
            ++generation_;
            unfinished_ = static_cast<unsigned>(workers_.size());
        }
        wake_.notify_all();

        insideBatch() = true;
        runShare(batch);
        insideBatch() = false;

        {
            std::unique_lock<std::mutex> lock(mutex_);
            done_.wait(lock, [this] { return unfinished_ == 0; });
            current_ = nullptr;
        }
        if (batch.error)
            std::rethrow_exception(batch.error);
    }

    /**
     * Enqueue one task for asynchronous execution on the pool — the
     * daemon's scheduling primitive, complementing the batch-oriented
     * parallelFor().  Tasks and batches share the same workers: a batch
     * published while a worker runs a long task completes only after
     * that worker drains it, so long tasks delay concurrent batch
     * completion (the daemon never mixes the two).
     *
     * On a single-thread pool the task runs inline on the calling
     * thread before post() returns — same execution, no queue.
     *
     * Tasks must not throw; an escaping exception is caught and
     * reported via warn() (there is no caller left to rethrow to).
     * Tasks still queued when the pool is destroyed are dropped —
     * owners drain their work before tearing the pool down.
     */
    void
    post(std::function<void()> task)
    {
        if (workers_.empty()) {
            runTask(task);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push_back(std::move(task));
        }
        wake_.notify_one();
    }

  private:
    /** One parallelFor invocation's shared state. */
    struct Batch
    {
        Batch(std::size_t count, const std::function<void(std::size_t)> &f)
            : n(count), fn(f)
        {}

        const std::size_t n;
        const std::function<void(std::size_t)> &fn;
        std::atomic<std::size_t> next{0};

        std::mutex errorMutex;
        std::size_t errorIndex = 0;
        std::exception_ptr error;

        void
        record(std::size_t index, std::exception_ptr e)
        {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!error || index < errorIndex) {
                error = e;
                errorIndex = index;
            }
        }
    };

    /** Per-thread nesting flag; nested parallelFor calls run inline. */
    static bool &
    insideBatch()
    {
        thread_local bool inside = false;
        return inside;
    }

    /** Serial path, same run-all / lowest-failure semantics as parallel. */
    static void
    runSerial(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        std::exception_ptr error;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
    }

    /** Pull indices from the cursor until the batch is drained. */
    static void
    runShare(Batch &batch)
    {
        for (;;) {
            const std::size_t i =
                batch.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch.n)
                return;
            try {
                batch.fn(i);
            } catch (...) {
                batch.record(i, std::current_exception());
            }
        }
    }

    /** Run a posted task, containing any escaping exception. */
    static void
    runTask(const std::function<void()> &task)
    {
        try {
            task();
        } catch (const std::exception &e) {
            warn("posted task threw: {}", e.what());
        } catch (...) {
            warn("posted task threw a non-std exception");
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            Batch *batch = nullptr;
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    return stop_ || generation_ != seen || !tasks_.empty();
                });
                if (stop_)
                    return;
                if (generation_ != seen) {
                    // Batches take precedence: parallelFor() blocks its
                    // caller, posted tasks have nobody waiting inline.
                    seen = generation_;
                    batch = current_;
                } else {
                    task = std::move(tasks_.front());
                    tasks_.pop_front();
                }
            }
            if (batch != nullptr) {
                insideBatch() = true;
                runShare(*batch);
                insideBatch() = false;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (--unfinished_ == 0)
                        done_.notify_all();
                }
            } else {
                runTask(task);
            }
        }
    }

    const unsigned threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    unsigned unfinished_ = 0;
    Batch *current_ = nullptr;
    std::deque<std::function<void()>> tasks_;
    bool stop_ = false;
};

} // namespace hpe
