/**
 * @file
 * Minimal "{}"-style string formatting.
 *
 * The toolchain (GCC 12) lacks <format>, so this header provides the small
 * subset the project needs: positional "{}" substitution plus the specs
 * "{:#x}" (hex with prefix), "{:x}" (hex), and "{:.Nf}" (fixed precision).
 * Unknown specs fall back to operator<<.
 */

#pragma once

#include <cstdio>
#include <functional>
#include <iomanip>
#include <ios>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace hpe {

namespace detail {

template <typename T>
void
writeWithSpec(std::ostream &os, std::string_view spec, const T &v)
{
    if constexpr (std::is_integral_v<T> && !std::is_same_v<T, bool>) {
        if (spec == "#x") {
            os << "0x" << std::hex << +v << std::dec;
            return;
        }
        if (spec == "x") {
            os << std::hex << +v << std::dec;
            return;
        }
    }
    if constexpr (std::is_floating_point_v<T>) {
        if (spec.size() >= 3 && spec.front() == '.' && spec.back() == 'f') {
            int prec = 0;
            for (char c : spec.substr(1, spec.size() - 2))
                prec = prec * 10 + (c - '0');
            os << std::fixed << std::setprecision(prec) << v;
            os.unsetf(std::ios::fixed);
            return;
        }
    }
    os << v;
}

} // namespace detail

/**
 * Substitute each "{...}" in @p fmt with the next argument.
 * Surplus arguments are ignored; surplus placeholders print "{}".
 */
template <typename... Args>
std::string
strformat(std::string_view fmt, Args &&...args)
{
    std::ostringstream os;
    std::vector<std::function<void(std::ostream &, std::string_view)>> writers;
    (writers.emplace_back([&args](std::ostream &o, std::string_view spec) {
        detail::writeWithSpec(o, spec, args);
    }),
     ...);

    std::size_t next = 0;
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        const char c = fmt[i];
        if (c == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
            os << '{';
            ++i;
        } else if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
            os << '}';
            ++i;
        } else if (c == '{') {
            const std::size_t close = fmt.find('}', i);
            if (close == std::string_view::npos) {
                os << fmt.substr(i);
                break;
            }
            std::string_view inner = fmt.substr(i + 1, close - i - 1);
            std::string_view spec =
                inner.starts_with(':') ? inner.substr(1) : std::string_view{};
            if (next < writers.size())
                writers[next++](os, spec);
            else
                os << "{}";
            i = close;
        } else {
            os << c;
        }
    }
    return std::move(os).str();
}

} // namespace hpe
