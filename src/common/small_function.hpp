/**
 * @file
 * Move-only `void()` callable with small-buffer optimization.
 *
 * The timing simulator stores continuations in hot structures — the
 * driver's per-page waiter lists and the DRAM request queues — where
 * `std::function` would heap-allocate per callback and copy on every
 * container move.  SmallFunction keeps closures up to N bytes inline
 * (every closure in the simulator today is a handful of pointers) and
 * falls back to the heap only for oversized callables, so the common
 * path never allocates.  It is move-only: a continuation has exactly
 * one owner, and copying a closure that captures simulation state by
 * reference would only invite aliasing bugs.
 */

#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/log.hpp"

namespace hpe {

/** Move-only `void()` wrapper; closures up to @p N bytes stay inline. */
template <std::size_t N = 48>
class SmallFunction
{
  public:
    SmallFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction>>>
    SmallFunction(F &&fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "SmallFunction requires a void() callable");
        if constexpr (sizeof(Fn) <= N && alignof(Fn) <= alignof(std::max_align_t)
                      && std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf_)) Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &heapOps<Fn>;
        }
    }

    SmallFunction(SmallFunction &&other) noexcept
        : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()() const
    {
        HPE_ASSERT(ops_ != nullptr, "calling an empty SmallFunction");
        ops_->call(const_cast<std::byte *>(buf_));
    }

  private:
    struct Ops
    {
        void (*call)(std::byte *);
        /** Move-construct into @p dst from @p src, then destroy @p src. */
        void (*relocate)(std::byte *dst, std::byte *src);
        void (*destroy)(std::byte *);
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](std::byte *b) { (*std::launder(reinterpret_cast<Fn *>(b)))(); },
        [](std::byte *dst, std::byte *src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (static_cast<void *>(dst)) Fn(std::move(*s));
            s->~Fn();
        },
        [](std::byte *b) { std::launder(reinterpret_cast<Fn *>(b))->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](std::byte *b) { (**std::launder(reinterpret_cast<Fn **>(b)))(); },
        [](std::byte *dst, std::byte *src) {
            Fn **s = std::launder(reinterpret_cast<Fn **>(src));
            ::new (static_cast<void *>(dst)) Fn *(*s);
        },
        [](std::byte *b) { delete *std::launder(reinterpret_cast<Fn **>(b)); },
    };

    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) std::byte buf_[N];
};

} // namespace hpe
