/**
 * @file
 * Deterministic pseudo-random number generation for workloads and the
 * Random eviction policy.
 *
 * We use xoshiro256** seeded through SplitMix64.  All simulator randomness
 * flows through explicitly seeded Rng instances so that every experiment is
 * reproducible bit-for-bit.
 */

#pragma once

#include <cstdint>

namespace hpe {

/** Small, fast, explicitly seeded PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed the generator; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation (simple variant).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace hpe
