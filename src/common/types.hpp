/**
 * @file
 * Fundamental typed identifiers and units shared by every module.
 *
 * The simulator works at 4 KB OS-page granularity (the paper's default page
 * size).  A "page set" is a group of 2^n virtually contiguous pages (the
 * paper's default is 16), identified by the page address shifted right by n.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace hpe {

/** Simulation time in GPU core cycles (1.4 GHz in the paper's Table I). */
using Cycle = std::uint64_t;

/** Byte address in the unified virtual address space. */
using Addr = std::uint64_t;

/** Virtual page number (Addr >> kPageShift). */
using PageId = std::uint64_t;

/** Page-set number (PageId >> log2(pageSetSize)). */
using PageSetId = std::uint64_t;

/** Physical frame number in GPU memory. */
using FrameId = std::uint64_t;

/** Sentinel used for "no page" / "no frame". */
inline constexpr std::uint64_t kInvalidId = std::numeric_limits<std::uint64_t>::max();

/** 4 KB pages, same as prior work the paper follows. */
inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageBytes = std::uint64_t{1} << kPageShift;

/** Convert a byte address to its virtual page number. */
constexpr PageId
pageOf(Addr addr)
{
    return addr >> kPageShift;
}

/** Convert a virtual page number to the base byte address of the page. */
constexpr Addr
addrOf(PageId page)
{
    return static_cast<Addr>(page) << kPageShift;
}

/** GPU core clock from Table I; used to convert microseconds to cycles. */
inline constexpr double kCoreClockGHz = 1.4;

/** Convert a latency in microseconds to GPU core cycles. */
constexpr Cycle
microsToCycles(double us)
{
    return static_cast<Cycle>(us * kCoreClockGHz * 1000.0);
}

/** Convert GPU core cycles to microseconds. */
constexpr double
cyclesToMicros(Cycle cycles)
{
    return static_cast<double>(cycles) / (kCoreClockGHz * 1000.0);
}

} // namespace hpe
