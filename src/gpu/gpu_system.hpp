/**
 * @file
 * Timing GPU simulator (the stand-in for the paper's extended GPGPU-Sim).
 *
 * Models the Table I system: SMs running warps that issue cache-line
 * accesses from a workload trace, a two-level TLB hierarchy (private L1,
 * shared two-port L2), a fixed-latency page-table walker, per-SM L1 data
 * caches, a shared L2 data cache, FR-FCFS GDDR5 DRAM, a PCIe link, and a
 * host-side driver servicing page faults with the replayable far-fault
 * mechanism (a faulted warp stalls; all other warps keep executing).
 *
 * Every policy learns from page-walk events, as the driver-level policies
 * of the paper do: walk hits invoke EvictionPolicy::onHit (for HPE this
 * records into the HIR cache) and faults drive the eviction protocol.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.hpp"
#include "common/fault_injector.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/hpe_policy.hpp"
#include "driver/gpu_driver.hpp"
#include "driver/pcie.hpp"
#include "driver/resilience.hpp"
#include "driver/state_validator.hpp"
#include "driver/uvm_manager.hpp"
#include "mem/data_cache.hpp"
#include "mem/dram.hpp"
#include "mem/page_size.hpp"
#include "mem/radix_page_table.hpp"
#include "policy/eviction_policy.hpp"
#include "tlb/multi_level_walker.hpp"
#include "tlb/tlb.hpp"
#include "tlb/walker.hpp"
#include "trace/interval_recorder.hpp"
#include "trace/trace_sink.hpp"
#include "workload/trace.hpp"

namespace hpe {

/** Which of the §II translation designs the GMMU uses. */
enum class WalkerMode
{
    /** The paper's simplification: single level, fixed latency. */
    FixedLatency,
    /** Four-level radix table with a shared page walk cache. */
    MultiLevel,
};

/** Table I configuration of the simulated GPU. */
struct GpuConfig
{
    unsigned numSms = 15;
    /**
     * Warps with a memory access in flight per SM.  Fermi runs up to 48
     * resident warps, but only a handful have an outstanding global-memory
     * access at once; this is the effective memory-level parallelism knob.
     */
    unsigned warpsPerSm = 8;
    /** Compute cycles modelled between consecutive page visits. */
    Cycle computeGap = 8;
    /** Cycles between line accesses of one burst. */
    Cycle intraBurstGap = 1;

    TlbConfig l1Tlb = l1TlbConfig();
    TlbConfig l2Tlb = l2TlbConfig();
    WalkerMode walkerMode = WalkerMode::FixedLatency;
    Cycle walkLatency = 8; ///< FixedLatency mode (paper: 8; sensitivity: 20)
    MultiLevelWalkerConfig mlWalker{};
    RadixConfig radix{};

    DataCacheConfig l1d{.sizeBytes = 16 * 1024, .ways = 4, .lineBytes = 128,
                        .hitLatency = 1};
    DataCacheConfig l2d{.sizeBytes = 1536 * 1024, .ways = 8, .lineBytes = 128,
                        .hitLatency = 30};

    DramConfig dram{};
    PcieConfig pcie{};
    DriverConfig driver{};

    /** Chaos-mode fault injection; disabled = byte-identical stat tree. */
    ChaosConfig chaos{};
    /** Graceful degradation under thrashing (refault-rate watermarks). */
    DegradationConfig degradation{};
    /** Cross-check driver state after every fault service (StateValidator). */
    bool validate = false;
    /** Multi-page-size axis; default 4 KiB-only attaches nothing. */
    PageSizeConfig pageSizes{};

    /** Safety bound on simulated cycles (0 = unbounded). */
    Cycle maxCycles = 0;
};

/** Results of one timing run. */
struct TimingResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0; ///< completed line accesses
    double ipc = 0.0;
    std::uint64_t faults = 0;
    std::uint64_t evictions = 0;
    Cycle driverBusyCycles = 0;
    /** Host-core load = driver busy time / total time (§V-C). */
    double hostLoad = 0.0;
};

/** The assembled timing simulator for one (trace, policy) pair. */
class GpuSystem
{
  public:
    /**
     * @param cfg    GPU configuration.
     * @param trace  workload; its visits are dealt round-robin to warps.
     * @param policy eviction policy (not owned).
     * @param frames GPU memory capacity in pages.
     * @param stats  registry receiving the "gpu.*" and "driver.*" trees.
     * @param hpe    the policy cast to HpePolicy when applicable, so the
     *               driver can charge HIR transfer latency; else null.
     */
    GpuSystem(const GpuConfig &cfg, const Trace &trace, EvictionPolicy &policy,
              std::size_t frames, StatRegistry &stats, HpePolicy *hpe = nullptr);

    /** Run to completion (all warps retired). */
    TimingResult run();

    /**
     * Attach a structured-event sink (nullable), fanned out to every
     * emitting component: driver, UVM manager, PCIe link, TLB-shootdown
     * path, the policy, and the chaos injector when one exists.
     */
    void setTraceSink(trace::TraceSink *sink);

    /** Attach an interval recorder, ticked once per retired page visit. */
    void setIntervalRecorder(trace::IntervalRecorder *rec) { intervals_ = rec; }

    /** @{ component access for tests */
    UvmMemoryManager &uvm() { return uvm_; }
    EventQueue &eventQueue() { return eq_; }
    FaultInjector *injector() { return injector_.get(); }
    /** @} */

  private:
    struct Sm
    {
        std::unique_ptr<Tlb> l1Tlb;
        std::unique_ptr<DataCache> l1d;
    };

    struct Warp
    {
        unsigned smId = 0;
        /** Indices into the trace's visit array, in program order. */
        std::vector<std::uint32_t> refs;
        std::size_t refIdx = 0;
        std::uint16_t lineIdx = 0;
        /** The current visit reached the policy as a page fault. */
        bool visitFaulted = false;
        bool done = false;
    };

    /** Issue the warp's next line access (or retire the warp). */
    void issueNext(Warp &warp);

    /** Translate @p addr for @p warp, then access memory. */
    void translate(Warp &warp, Addr addr);

    /** Post-translation data access through the cache hierarchy. */
    void memAccess(Warp &warp, Addr addr);

    /** One line access finished; schedule the next. */
    void finishAccess(Warp &warp);

    /** Shoot down translations and cached lines of an evicted page. */
    void onEvictPage(PageId page);

    const GpuConfig cfg_;
    const Trace &trace_;
    EvictionPolicy &policy_;
    EventQueue eq_;

    trace::TraceSink *sink_ = nullptr;
    trace::IntervalRecorder *intervals_ = nullptr;

    UvmMemoryManager uvm_;
    PcieLink pcie_;
    GpuDriver driver_;

    /** @{ chaos mode (constructed only when the config enables them) */
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<StateValidator> validator_;
    Counter *walkRetries_ = nullptr;
    Counter *shootdownReissues_ = nullptr;
    /** @} */

    std::vector<Sm> sms_;
    std::unique_ptr<Tlb> l2Tlb_;
    std::unique_ptr<WalkerBase> walker_;
    /** Radix mirror of the page table (MultiLevel walker mode only). */
    std::unique_ptr<RadixPageTable> radixTable_;
    std::unique_ptr<DataCache> l2d_;
    std::unique_ptr<Dram> dram_;

    std::vector<Warp> warps_;
    std::size_t liveWarps_ = 0;
    std::uint64_t instructions_ = 0;
    /** Baselines get every reference (the paper's ideal model). */
    bool idealHitChannel_ = false;

    Counter &accesses_;

    /** @{ event-engine observability, filled from EventQueue::stats()
     *  when run() completes ("gpu.eq.*" in reports) */
    Counter &eqScheduled_;
    Counter &eqFired_;
    Counter &eqOverflowScheduled_;
    Counter &eqOverflowPromoted_;
    Counter &eqPeakPending_;
    Counter &eqHeapCallbacks_;
    Counter &eqArenaNodes_;
    Counter &eqArenaBytes_;
    /** @} */
};

} // namespace hpe
