#include "gpu/gpu_system.hpp"

#include "common/log.hpp"

namespace hpe {

GpuSystem::GpuSystem(const GpuConfig &cfg, const Trace &trace,
                     EvictionPolicy &policy, std::size_t frames,
                     StatRegistry &stats, HpePolicy *hpe)
    : cfg_(cfg), trace_(trace), policy_(policy),
      uvm_(frames, policy, stats, "driver.uvm"),
      pcie_(cfg.pcie, stats, "pcie"),
      driver_(cfg.driver, uvm_, pcie_, eq_, stats, "driver", hpe),
      accesses_(stats.counter("gpu.lineAccesses")),
      eqScheduled_(stats.counter("gpu.eq.scheduled")),
      eqFired_(stats.counter("gpu.eq.fired")),
      eqOverflowScheduled_(stats.counter("gpu.eq.overflowScheduled")),
      eqOverflowPromoted_(stats.counter("gpu.eq.overflowPromoted")),
      eqPeakPending_(stats.counter("gpu.eq.peakPending")),
      eqHeapCallbacks_(stats.counter("gpu.eq.heapCallbacks")),
      eqArenaNodes_(stats.counter("gpu.eq.arenaNodes")),
      eqArenaBytes_(stats.counter("gpu.eq.arenaBytes"))
{
    l2Tlb_ = std::make_unique<Tlb>(cfg_.l2Tlb, stats, "gpu.l2tlb");
    if (cfg_.walkerMode == WalkerMode::FixedLatency) {
        walker_ = std::make_unique<FixedLatencyWalker>(
            uvm_.pageTable(), cfg_.walkLatency, stats, "gpu.walker");
    } else {
        radixTable_ = std::make_unique<RadixPageTable>(cfg_.radix);
        uvm_.setRadixMirror(radixTable_.get());
        walker_ = std::make_unique<MultiLevelWalker>(*radixTable_, cfg_.mlWalker,
                                                     stats, "gpu.walker");
    }
    l2d_ = std::make_unique<DataCache>(cfg_.l2d, stats, "gpu.l2d");
    dram_ = std::make_unique<Dram>(cfg_.dram, eq_, stats, "gpu.dram");

    // HPE taps page-walk hits through the HIR cache beside the walker
    // (§IV-B).  The baseline policies instead get the paper's "ideal
    // model": every reference updates their chains in exact order with no
    // transfer cost — delivered per translated visit in memAccess().
    idealHitChannel_ = (hpe == nullptr);
    if (!idealHitChannel_)
        walker_->setHitObserver([this, &policy](PageId page) {
            // Walk hits bypass UvmMemoryManager::recordHit on this channel,
            // so prefetch-usefulness accounting needs its own tap here.
            uvm_.noteSpeculativeUse(page);
            policy.onHit(uvm_.logicalPageOf(page));
        });

    uvm_.setEvictHook([this](PageId page) { onEvictPage(page); });

    // Multi-page-size axis: the coalescer attaches behind the fault path
    // (after the radix mirror, so remap promotions keep it in sync) and
    // remap shootdowns flow through the same evict hook as evictions.
    if (cfg_.pageSizes.active())
        uvm_.enablePageSizes(cfg_.pageSizes);

    // Chaos mode: one injector shared by every injection site.  Nothing
    // is constructed (and no extra stat is registered) when disabled, so
    // the default stat tree stays byte-identical.
    if (cfg_.chaos.enabled) {
        injector_ = std::make_unique<FaultInjector>(cfg_.chaos, stats, "chaos");
        pcie_.setInjector(injector_.get());
        driver_.setInjector(injector_.get());
        walkRetries_ = &stats.counter("gpu.walkRetries");
        shootdownReissues_ = &stats.counter("gpu.shootdownReissues");
    }
    if (cfg_.degradation.enabled)
        uvm_.enableDegradation(cfg_.degradation);
    if (cfg_.validate) {
        validator_ = std::make_unique<StateValidator>(uvm_, stats, "validator");
        uvm_.setValidateHook([this] { validator_->check(); });
    }

    sms_.resize(cfg_.numSms);
    for (unsigned s = 0; s < cfg_.numSms; ++s) {
        sms_[s].l1Tlb = std::make_unique<Tlb>(cfg_.l1Tlb, stats,
                                              "gpu.sm" + std::to_string(s) + ".l1tlb");
        sms_[s].l1d = std::make_unique<DataCache>(cfg_.l1d, stats,
                                                  "gpu.sm" + std::to_string(s) + ".l1d");
    }

    const unsigned total_warps = cfg_.numSms * cfg_.warpsPerSm;
    warps_.resize(total_warps);
    for (unsigned w = 0; w < total_warps; ++w)
        warps_[w].smId = w % cfg_.numSms;
}

void
GpuSystem::setTraceSink(trace::TraceSink *sink)
{
    sink_ = sink;
    uvm_.setTraceSink(sink);
    pcie_.setTraceSink(sink);
    driver_.setTraceSink(sink);
    policy_.setTraceSink(sink);
    if (injector_ != nullptr)
        injector_->setTraceSink(sink);
}

void
GpuSystem::onEvictPage(PageId page)
{
    // Chaos: a dropped shootdown ack is detected by the driver, which
    // re-issues the invalidation until it is acknowledged — the GPU is
    // never left with a stale translation (the re-issue latency is folded
    // into the fixed fault-service time).
    if (injector_ != nullptr)
        while (injector_->shootdownDropped())
            ++*shootdownReissues_;

    // TLB shootdown and cache invalidation for the evicted page.  The
    // value field carries how many levels were invalidated (L2 TLB + one
    // L1 TLB per SM) for quick sanity checks in trace consumers.
    if (sink_ != nullptr)
        sink_->emit(trace::EventKind::TlbShootdown, 0, page,
                    1 + static_cast<std::uint64_t>(sms_.size()));
    l2Tlb_->invalidate(page);
    for (Sm &sm : sms_) {
        sm.l1Tlb->invalidate(page);
        sm.l1d->invalidatePage(page);
    }
    l2d_->invalidatePage(page);
}

void
GpuSystem::issueNext(Warp &warp)
{
    if (warp.refIdx >= warp.refs.size()) {
        if (!warp.done) {
            warp.done = true;
            HPE_ASSERT(liveWarps_ > 0, "warp retire underflow");
            --liveWarps_;
        }
        return;
    }
    const PageRef &ref = trace_.refs()[warp.refs[warp.refIdx]];
    const std::uint64_t lines_per_page = kPageBytes / cfg_.l1d.lineBytes;
    const Addr addr = addrOf(ref.page)
        + (warp.lineIdx % lines_per_page) * cfg_.l1d.lineBytes;
    translate(warp, addr);
}

void
GpuSystem::translate(Warp &warp, Addr addr)
{
    const PageId page = pageOf(addr);
    Sm &sm = sms_[warp.smId];

    const Cycle l1_delay = sm.l1Tlb->issueDelay(eq_.now()) + sm.l1Tlb->latency();
    eq_.scheduleIn(l1_delay, [this, &warp, &sm, addr, page] {
        // TLB entries are keyed by the *translation key*: the covering
        // large page's head when the page is coalesced (so one entry
        // reaches the whole span), else the page itself.  The key is
        // resolved at lookup time — coalescing may have changed it while
        // this access was queued.
        if (sm.l1Tlb->lookup(uvm_.translationKey(page))) [[likely]] {
            memAccess(warp, addr);
            return;
        }
        const Cycle l2_delay = l2Tlb_->issueDelay(eq_.now()) + l2Tlb_->latency();
        eq_.scheduleIn(l2_delay, [this, &warp, &sm, addr, page] {
            const PageId key = uvm_.translationKey(page);
            if (l2Tlb_->lookup(key)) {
                sm.l1Tlb->fill(key);
                memAccess(warp, addr);
                return;
            }
            // The walk is resolved now (its latency may depend on the PWC
            // state) and its outcome applies after that latency elapses.
            const WalkResult walk = walker_->walk(page);
            // Chaos: each transient walk error forces a re-walk, costing
            // one more walk latency before the outcome applies.
            Cycle walk_penalty = 0;
            if (injector_ != nullptr) {
                // The injector stamps events with the sink's clock, which
                // only the driver advances otherwise.
                if (sink_ != nullptr)
                    sink_->advanceTo(eq_.now());
                while (injector_->walkErrors()) {
                    walk_penalty += walk.latency;
                    ++*walkRetries_;
                }
            }
            eq_.scheduleIn(walk_penalty + walk.latency,
                           [this, &warp, &sm, addr, page,
                                          hit = walk.hit] {
                if (hit) [[likely]] {
                    const PageId k = uvm_.translationKey(page);
                    l2Tlb_->fill(k);
                    sm.l1Tlb->fill(k);
                    memAccess(warp, addr);
                    return;
                }
                if (uvm_.resident(page)) {
                    // Another warp's fault service landed the page while
                    // this walk was in flight: proceed as a hit.
                    const PageId k = uvm_.translationKey(page);
                    l2Tlb_->fill(k);
                    sm.l1Tlb->fill(k);
                    memAccess(warp, addr);
                    return;
                }
                // Far fault: this warp stalls until the driver migrates
                // the page in; the SM's other warps keep running (the
                // replayable far-fault mechanism).  The fault response
                // carries the new translation, which is installed in the
                // TLBs directly — the replayed access does not walk again,
                // so a serviced fault is not double-counted as a walk hit.
                // A merged request is not "the" fault: its visit reaches
                // the policy as an ordinary reference after the wakeup.
                warp.visitFaulted = driver_.requestPage(
                    page,
                    [this, &warp, &sm, addr, page] {
                        const PageId k = uvm_.translationKey(page);
                        sm.l1Tlb->fill(k);
                        l2Tlb_->fill(k);
                        translate(warp, addr);
                    },
                    static_cast<std::uint32_t>(&warp - warps_.data()));
            });
        });
    });
}

void
GpuSystem::memAccess(Warp &warp, Addr addr)
{
    // Ideal-model reference feed: one onHit per page visit, unless the
    // visit already reached the policy as a fault.
    if (idealHitChannel_ && warp.lineIdx == 0 && !warp.visitFaulted)
        uvm_.recordHit(pageOf(addr));

    // A store makes the page dirty: evicting it later costs a writeback.
    if (warp.lineIdx == 0 && trace_.refs()[warp.refs[warp.refIdx]].write)
        uvm_.markDirty(pageOf(addr));

    Sm &sm = sms_[warp.smId];
    if (sm.l1d->access(addr)) [[likely]] {
        eq_.scheduleIn(sm.l1d->hitLatency(), [this, &warp] { finishAccess(warp); });
        return;
    }
    eq_.scheduleIn(cfg_.l2d.hitLatency, [this, &warp, addr] {
        if (l2d_->access(addr)) {
            finishAccess(warp);
            return;
        }
        dram_->read(addr, [this, &warp] { finishAccess(warp); });
    });
}

void
GpuSystem::finishAccess(Warp &warp)
{
    ++instructions_;
    ++accesses_;

    const PageRef &ref = trace_.refs()[warp.refs[warp.refIdx]];
    Cycle gap = cfg_.intraBurstGap;
    if (++warp.lineIdx >= ref.burst) {
        warp.lineIdx = 0;
        ++warp.refIdx;
        warp.visitFaulted = false;
        gap = cfg_.computeGap;
        if (intervals_ != nullptr)
            intervals_->onReference();
    }
    eq_.scheduleIn(gap, [this, &warp] { issueNext(warp); });
}

TimingResult
GpuSystem::run()
{
    // Kernel segments run back to back with a global barrier in between
    // (iterative applications re-launch kernels per pass; a pass cannot
    // overtake its predecessor).  Within a kernel, visits are dealt
    // round-robin to warps, approximating the lockstep progress of a
    // data-parallel kernel over the global reference pattern.
    for (std::size_t k = 0; k < trace_.kernelCount(); ++k) {
        const auto [begin, end] = trace_.kernelRange(k);
        liveWarps_ = 0;
        for (Warp &warp : warps_) {
            warp.refs.clear();
            warp.refIdx = 0;
            warp.lineIdx = 0;
            warp.visitFaulted = false;
            warp.done = false;
        }
        // Rotate the visit->warp mapping by a coprime stride per kernel:
        // successive launches place the same data on different SMs (real
        // schedulers give no cross-launch affinity), so per-SM TLB
        // residue from the previous pass does not mask the shared-L2-TLB
        // pressure that page-walk hits (and hence HPE's HIR) depend on.
        const std::size_t rot = (k * 7) % warps_.size();
        for (std::size_t i = begin; i < end; ++i)
            warps_[(i - begin + rot) % warps_.size()].refs.push_back(
                static_cast<std::uint32_t>(i));

        for (Warp &warp : warps_) {
            if (warp.refs.empty()) {
                warp.done = true;
                continue;
            }
            ++liveWarps_;
            // Stagger warp starts to avoid a thundering herd on the first
            // cycle (and to make port contention observable).
            eq_.schedule(eq_.now() + 1
                             + static_cast<Cycle>(&warp - warps_.data()) % 32,
                         [this, &warp] { issueNext(warp); });
        }

        while (!eq_.empty()) {
            if (cfg_.maxCycles != 0 && eq_.now() > cfg_.maxCycles)
                fatal("timing simulation exceeded maxCycles={}", cfg_.maxCycles);
            eq_.step();
        }
        HPE_ASSERT(liveWarps_ == 0, "deadlock: {} warps never retired", liveWarps_);
    }
    if (intervals_ != nullptr)
        intervals_->finish();

    const EventQueue::Stats &eqs = eq_.stats();
    eqScheduled_ += eqs.scheduled;
    eqFired_ += eqs.fired;
    eqOverflowScheduled_ += eqs.overflowScheduled;
    eqOverflowPromoted_ += eqs.overflowPromoted;
    eqPeakPending_ += eqs.peakPending;
    eqHeapCallbacks_ += eqs.heapCallbacks;
    eqArenaNodes_ += eqs.arenaNodes;
    eqArenaBytes_ += eqs.arenaBytes;

    TimingResult r;
    r.cycles = eq_.now();
    r.instructions = instructions_;
    r.ipc = r.cycles == 0 ? 0.0
                          : static_cast<double>(r.instructions)
                                / static_cast<double>(r.cycles);
    r.faults = uvm_.faults();
    r.evictions = uvm_.evictions();
    r.driverBusyCycles = driver_.busyCycles();
    r.hostLoad = r.cycles == 0 ? 0.0
                               : static_cast<double>(r.driverBusyCycles)
                                     / static_cast<double>(r.cycles);
    return r;
}

} // namespace hpe
