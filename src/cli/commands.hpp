/**
 * @file
 * Subcommand implementations of the hpe_sim command-line tool, separated
 * from main() so they are unit-testable.
 */

#pragma once

#include <iosfwd>

#include "cli/args.hpp"

namespace hpe::cli {

/** `hpe_sim run`: one (app, policy) simulation; table or CSV output. */
int runCommand(const Args &args, std::ostream &os);

/** `hpe_sim compare`: all policies on one app. */
int compareCommand(const Args &args, std::ostream &os);

/** `hpe_sim sweep`: all policies on all apps, fanned across --jobs. */
int sweepCommand(const Args &args, std::ostream &os);

/** `hpe_sim report`: per-interval metrics timeline of one run. */
int reportCommand(const Args &args, std::ostream &os);

/** `hpe_sim trace`: write an application's trace to a file. */
int traceCommand(const Args &args, std::ostream &os);

/** `hpe_sim serve`: experiment-serving daemon on a Unix socket. */
int serveCommand(const Args &args, std::ostream &os);

/** `hpe_sim submit`: send one request to a running daemon. */
int submitCommand(const Args &args, std::ostream &os);

/** `hpe_sim tournament`: policy-tournament leaderboard. */
int tournamentCommand(const Args &args, std::ostream &os);

/** `hpe_sim list`: applications and policies. */
int listCommand(const Args &args, std::ostream &os);

/** Usage text. */
void printUsage(std::ostream &os);

/** Dispatch on args.command(); returns the process exit code. */
int dispatch(const Args &args, std::ostream &os);

} // namespace hpe::cli
