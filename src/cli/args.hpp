/**
 * @file
 * Minimal command-line argument parser for the hpe_sim tool: one
 * positional subcommand followed by --key value / --key=value options
 * and bare --flags.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/log.hpp"

namespace hpe::cli {

/** Parsed command line: subcommand + options. */
class Args
{
  public:
    /** Parse argv; fatal() on malformed options. */
    static Args
    parse(int argc, const char *const *argv)
    {
        Args args;
        int i = 1;
        if (i < argc && argv[i][0] != '-')
            args.command_ = argv[i++];
        for (; i < argc; ++i) {
            std::string tok = argv[i];
            if (tok.rfind("--", 0) != 0)
                fatal("unexpected argument '{}' (options start with --)", tok);
            tok = tok.substr(2);
            const auto eq = tok.find('=');
            if (eq != std::string::npos) {
                args.options_[tok.substr(0, eq)] = tok.substr(eq + 1);
            } else if (i + 1 < argc &&
                       (argv[i + 1][0] != '-' || argv[i + 1][1] == '\0')) {
                // A lone "-" is a valid value: it names stdout for
                // output-file options.
                args.options_[tok] = argv[++i];
            } else {
                args.options_[tok] = ""; // bare flag
            }
        }
        return args;
    }

    const std::string &command() const { return command_; }

    bool has(const std::string &key) const { return options_.contains(key); }

    /** String option with default. */
    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback : it->second;
    }

    /** Numeric options with defaults; fatal() on garbage. */
    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = options_.find(key);
        if (it == options_.end())
            return fallback;
        char *end = nullptr;
        const double v = std::strtod(it->second.c_str(), &end);
        if (end == it->second.c_str() || *end != '\0')
            fatal("option --{} expects a number, got '{}'", key, it->second);
        return v;
    }

    std::uint64_t
    getUint(const std::string &key, std::uint64_t fallback) const
    {
        auto it = options_.find(key);
        if (it == options_.end())
            return fallback;
        char *end = nullptr;
        const auto v = std::strtoull(it->second.c_str(), &end, 10);
        if (end == it->second.c_str() || *end != '\0')
            fatal("option --{} expects an integer, got '{}'", key, it->second);
        return v;
    }

    /** Reject unknown options (catches typos). */
    void
    allowOnly(const std::vector<std::string> &known) const
    {
        for (const auto &[key, value] : options_) {
            bool ok = false;
            for (const std::string &k : known)
                ok = ok || k == key;
            if (!ok)
                fatal("unknown option --{}", key);
        }
    }

  private:
    std::string command_;
    std::map<std::string, std::string> options_;
};

} // namespace hpe::cli
