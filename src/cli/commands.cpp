#include "cli/commands.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/protocol.hpp"
#include "api/registry.hpp"
#include "common/table.hpp"
#include "serve/client.hpp"
#include "serve/endpoint.hpp"
#include "serve/server.hpp"
#include "sim/sweep.hpp"
#include "sim/tournament.hpp"
#include "trace/exporters.hpp"
#include "workload/apps.hpp"
#include "workload/trace_io.hpp"

namespace hpe::cli {

namespace {

/** Is @p s entirely decimal digits (the legacy --prefetch N spelling)? */
bool
allDigits(const std::string &s)
{
    return !s.empty()
           && s.find_first_not_of("0123456789") == std::string::npos;
}

/**
 * Build the ExperimentRequest a command line denotes — the one funnel
 * shared by `run`, `report`, `compare`, `sweep`, and `submit`, so every
 * entry point resolves options (and therefore fingerprints) identically.
 *
 * Name lookups go through the hpe::api registry: case-insensitive, with
 * unknown names exiting through usageFatal() (distinct exit code, uniform
 * "unknown <what> '<name>' (valid: ...)" message).  The caller decides
 * the interval/trace attachment fields, which are command-specific.
 */
api::ExperimentRequest
requestFromArgs(const Args &args)
{
    api::ExperimentRequest req;
    req.app = args.get("app", "HSD");
    req.scale = args.getDouble("scale", 1.0);
    req.seed = args.getUint("seed", 1);
    req.policy = args.get("policy", "HPE");
    req.oversub = args.getDouble("oversub", 0.75);
    req.functional = args.has("functional");
    req.walkLatency =
        static_cast<unsigned>(args.getUint("walk-latency", 8));
    req.multiLevelWalker = args.has("multi-level-walker");

    if (args.has("prefetch")) {
        req.prefetch = args.get("prefetch", "none");
        // Deprecated numeric spelling: still honoured (normalize() folds
        // it onto the canonical form), but steer users to the named one.
        if (allDigits(req.prefetch))
            warn("--prefetch {} is deprecated; use --prefetch sequential "
                 "--prefetch-degree {}",
                 req.prefetch, req.prefetch);
    }
    req.prefetchDegree =
        static_cast<unsigned>(args.getUint("prefetch-degree", 4));
    if (args.has("fault-batch")) {
        const auto batch = args.getUint("fault-batch", 1);
        if (batch == 0)
            fatal("--fault-batch must be at least 1");
        req.faultBatch = static_cast<unsigned>(batch);
    }
    // Page-size axis; normalize() canonicalizes the spelling and rejects
    // unknown size tokens through usageFatal().
    if (args.has("page-sizes"))
        req.pageSizes = args.get("page-sizes", "4k");
    req.coalesce = args.has("coalesce");

    // Chaos mode: any --chaos-* option arms the injector; --chaos-seed
    // alone replays the default event mix under a chosen seed.
    req.chaos.enabled =
        args.has("chaos-seed") || args.has("chaos-pcie-fail")
        || args.has("chaos-pcie-stall") || args.has("chaos-service-timeout")
        || args.has("chaos-shootdown-drop") || args.has("chaos-walk-error");
    if (req.chaos.enabled) {
        req.chaos.seed = args.getUint("chaos-seed", req.seed);
        req.chaos.pcieFail = args.getDouble("chaos-pcie-fail", 0.0);
        req.chaos.pcieStall = args.getDouble("chaos-pcie-stall", 0.0);
        req.chaos.serviceTimeout =
            args.getDouble("chaos-service-timeout", 0.0);
        req.chaos.shootdownDrop =
            args.getDouble("chaos-shootdown-drop", 0.0);
        req.chaos.walkError = args.getDouble("chaos-walk-error", 0.0);
    }
    req.degrade = args.has("degrade");
    req.validate = args.has("validate");

    req.traceDigest = args.has("trace-digest");
    req.traceEvents = args.get("trace-events", "all");
    req.traceRing =
        static_cast<std::size_t>(args.getUint("trace-ring", 1u << 16));
    if (req.traceRing == 0)
        fatal("--trace-ring must be positive");
    req.stats = args.has("stats");

    req.normalize();
    return req;
}

/** The chaos/resilience options shared by run and compare. */
const std::vector<std::string> kChaosOptions = {
    "chaos-seed",          "chaos-pcie-fail",     "chaos-pcie-stall",
    "chaos-service-timeout", "chaos-shootdown-drop", "chaos-walk-error",
    "degrade",             "validate",
};

/** @return @p base extended with the chaos/resilience options. */
std::vector<std::string>
withChaosOptions(std::vector<std::string> base)
{
    base.insert(base.end(), kChaosOptions.begin(), kChaosOptions.end());
    return base;
}

/** The trace/interval options shared by run and submit. */
const std::vector<std::string> kTraceOptions = {
    "trace", "trace-chrome", "trace-events", "trace-ring", "trace-digest",
    "interval-stats", "interval",
};

std::vector<std::string>
withTraceOptions(std::vector<std::string> base)
{
    base.insert(base.end(), kTraceOptions.begin(), kTraceOptions.end());
    return base;
}

/**
 * Write through @p emit to @p path, where "-" means @p os (the command's
 * stdout stream).  fatal() when the file cannot be created.
 */
void
writeOutput(const std::string &path, std::ostream &os,
            const std::function<void(std::ostream &)> &emit)
{
    if (path == "-") {
        emit(os);
        return;
    }
    std::ofstream file(path);
    if (!file)
        fatal("cannot write '{}'", path);
    emit(file);
}

} // namespace

int
runCommand(const Args &args, std::ostream &os)
{
    args.allowOnly(withTraceOptions(withChaosOptions(
        {"app", "policy", "oversub", "scale", "seed", "functional", "csv",
         "stats", "walk-latency", "prefetch", "prefetch-degree",
         "fault-batch", "multi-level-walker", "page-sizes", "coalesce"})));
    api::ExperimentRequest req = requestFromArgs(args);

    const bool exportEvents = args.has("trace") || args.has("trace-chrome");
    if (!exportEvents && !req.traceDigest
        && (args.has("trace-events") || args.has("trace-ring")))
        fatal("--trace-events/--trace-ring need --trace, --trace-chrome, "
              "or --trace-digest");
    if (args.has("interval-stats"))
        req.interval = args.getUint("interval", 1000);
    else if (args.has("interval"))
        fatal("--interval needs --interval-stats (or use the report command)");

    api::ExperimentArtifacts artifacts;
    const api::ExperimentResult result =
        api::runExperimentInspect(req, artifacts, nullptr, exportEvents);

    if (args.has("trace"))
        writeOutput(args.get("trace"), os, [&](std::ostream &o) {
            trace::writeJsonl(*artifacts.sink, o);
        });
    if (args.has("trace-chrome"))
        writeOutput(args.get("trace-chrome"), os, [&](std::ostream &o) {
            trace::writeChromeTrace(*artifacts.sink, o);
        });
    if (req.traceDigest)
        os << "trace digest " << result.traceDigest << " ("
           << result.traceEvents << " events)\n";
    if (artifacts.intervals != nullptr)
        writeOutput(args.get("interval-stats"), os,
                    [&](std::ostream &o) { o << result.intervalsCsv; });

    if (args.has("csv")) {
        os << "app,policy,mode,oversub,faults,evictions,ipc\n"
           << req.app << "," << req.policy << ","
           << (req.functional ? "functional" : "timing") << "," << req.oversub
           << "," << result.faults << "," << result.evictions << ","
           << result.ipc << "\n";
    } else {
        os << req.app << " under " << req.policy << " ("
           << (req.functional ? "functional" : "timing") << ", "
           << req.oversub * 100 << "% oversubscription)\n";
        if (req.functional) {
            os << "  faults " << result.faults << ", evictions "
               << result.evictions << ", fault rate "
               << TextTable::num(result.faultRate, 3) << "\n";
        } else {
            os << "  faults " << result.faults << ", evictions "
               << result.evictions << ", IPC "
               << TextTable::num(result.ipc, 4) << ", host load "
               << TextTable::num(result.hostLoad * 100, 1) << "%\n";
        }
    }
    if (req.stats)
        os << result.statsCsv;
    return 0;
}

int
compareCommand(const Args &args, std::ostream &os)
{
    args.allowOnly(withChaosOptions(
        {"app", "oversub", "scale", "seed", "extended", "csv", "jobs",
         "prefetch", "prefetch-degree", "fault-batch", "page-sizes",
         "coalesce"}));
    const api::ExperimentRequest base = requestFromArgs(args);
    const auto &kinds =
        args.has("extended") ? extendedPolicyKinds() : allPolicyKinds();

    const Trace trace = buildApp(base.app, base.scale, base.seed);

    // One job per policy; collection by policy index keeps the table
    // byte-identical for every --jobs value.
    struct Row
    {
        api::ExperimentResult functional;
        api::ExperimentResult timing;
    };
    SweepRunner runner(static_cast<unsigned>(args.getUint("jobs", 0)));
    const auto rows = runner.map(kinds.size(), [&](std::size_t i) {
        api::ExperimentRequest cell = base;
        cell.policy = policyKindName(kinds[i]);
        cell.functional = true;
        Row row;
        row.functional = api::runExperiment(cell, &trace);
        cell.functional = false;
        row.timing = api::runExperiment(cell, &trace);
        return row;
    });

    if (args.has("csv"))
        os << "policy,faults,evictions,ipc\n";
    TextTable t({"policy", "faults", "evictions", "IPC"});
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const Row &row = rows[i];
        if (args.has("csv")) {
            os << policyKindName(kinds[i]) << "," << row.functional.faults
               << "," << row.functional.evictions << "," << row.timing.ipc
               << "\n";
        } else {
            t.addRow({policyKindName(kinds[i]),
                      std::to_string(row.functional.faults),
                      std::to_string(row.functional.evictions),
                      TextTable::num(row.timing.ipc, 4)});
        }
    }
    if (!args.has("csv"))
        t.print(os);
    return 0;
}

int
reportCommand(const Args &args, std::ostream &os)
{
    args.allowOnly(withChaosOptions(
        {"app", "policy", "oversub", "scale", "seed", "functional",
         "interval", "csv", "walk-latency", "prefetch", "prefetch-degree",
         "fault-batch", "multi-level-walker", "page-sizes", "coalesce"}));
    api::ExperimentRequest req = requestFromArgs(args);
    req.interval = args.getUint("interval", 1000);

    api::ExperimentArtifacts artifacts;
    const api::ExperimentResult result =
        api::runExperimentInspect(req, artifacts);
    const trace::IntervalRecorder &rec = *artifacts.intervals;

    if (args.has("csv")) {
        os << result.intervalsCsv;
        return 0;
    }
    os << req.app << " under " << req.policy << " ("
       << (req.functional ? "functional" : "timing") << ", "
       << req.oversub * 100 << "% oversubscription, interval "
       << rec.intervalLength() << " refs)\n";
    std::vector<std::string> header = {"interval", "refs"};
    for (const std::string &col : rec.columns())
        header.push_back(col);
    TextTable t(header);
    for (const trace::IntervalRecorder::Sample &s : rec.samples()) {
        std::vector<std::string> row = {
            std::to_string(s.index),
            std::to_string(s.startRef) + ".." + std::to_string(s.endRef)};
        for (std::uint64_t v : s.values)
            row.push_back(std::to_string(v));
        t.addRow(row);
    }
    t.print(os);
    // Timing runs: event-engine footprint, so profiling sweeps have
    // first-class numbers without scraping the full stats CSV.
    if (!req.functional && artifacts.run.stats != nullptr
        && artifacts.run.stats->hasCounter("gpu.eq.scheduled")) {
        const StatRegistry &st = *artifacts.run.stats;
        os << "event engine: "
           << st.findCounter("gpu.eq.scheduled").value() << " scheduled, "
           << st.findCounter("gpu.eq.fired").value() << " fired, "
           << st.findCounter("gpu.eq.overflowPromoted").value()
           << " overflow promotions, peak pending "
           << st.findCounter("gpu.eq.peakPending").value() << ", arena "
           << st.findCounter("gpu.eq.arenaBytes").value() << " bytes ("
           << st.findCounter("gpu.eq.arenaNodes").value() << " nodes)\n";
    }
    return 0;
}

int
sweepCommand(const Args &args, std::ostream &os)
{
    args.allowOnly({"oversub", "scale", "seed", "extended", "csv",
                    "functional", "jobs", "trace-digests", "prefetch",
                    "prefetch-degree", "fault-batch", "page-sizes",
                    "coalesce"});
    api::ExperimentRequest base = requestFromArgs(args);
    const bool digests = args.has("trace-digests");
    base.traceDigest = digests;
    const auto &kinds =
        args.has("extended") ? extendedPolicyKinds() : allPolicyKinds();

    std::vector<std::string> apps;
    for (const AppSpec &spec : appSpecs())
        apps.push_back(spec.abbr);

    SweepRunner runner(static_cast<unsigned>(args.getUint("jobs", 0)));
    // Traces are built once, in parallel, then shared read-only by the
    // (app x policy) cells — the same sharing `prebuilt` gives the daemon.
    const auto traces = runner.mapItems(apps, [&](const std::string &abbr) {
        return buildApp(abbr, base.scale, base.seed);
    });

    const auto outcomes =
        runner.map(apps.size() * kinds.size(), [&](std::size_t i) {
            api::ExperimentRequest cell = base;
            cell.app = apps[i / kinds.size()];
            cell.policy = policyKindName(kinds[i % kinds.size()]);
            return api::runExperiment(cell, &traces[i / kinds.size()]);
        });

    // Serial reduction in cell order: output is independent of --jobs.
    if (args.has("csv")) {
        os << "app,policy,oversub,faults,evictions,ipc";
        if (digests)
            os << ",trace_digest";
        os << "\n";
    }
    std::vector<std::string> header = {"app", "policy", "faults", "evictions",
                                       "IPC"};
    if (digests)
        header.push_back("trace digest");
    TextTable t(header);
    std::vector<std::uint64_t> jobDigests;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const std::string &app = apps[i / kinds.size()];
        const PolicyKind kind = kinds[i % kinds.size()];
        const api::ExperimentResult &res = outcomes[i];
        if (digests)
            jobDigests.push_back(
                std::strtoull(res.traceDigest.c_str(), nullptr, 16));
        if (args.has("csv")) {
            os << app << "," << policyKindName(kind) << "," << base.oversub
               << "," << res.faults << "," << res.evictions << "," << res.ipc;
            if (digests)
                os << "," << res.traceDigest;
            os << "\n";
        } else {
            std::vector<std::string> row = {
                app, policyKindName(kind), std::to_string(res.faults),
                std::to_string(res.evictions),
                base.functional ? "-" : TextTable::num(res.ipc, 4)};
            if (digests)
                row.push_back(res.traceDigest);
            t.addRow(row);
        }
    }
    if (!args.has("csv"))
        t.print(os);
    if (digests)
        // Goes to stderr (inform), keeping --csv stdout machine-readable.
        inform("combined trace digest {}",
               trace::digestHex(trace::combineDigests(jobDigests)));
    return 0;
}

int
traceCommand(const Args &args, std::ostream &os)
{
    args.allowOnly({"app", "scale", "seed", "out"});
    const AppSpec &spec = api::appOrDie(args.get("app", "HSD"));
    const Trace trace = buildApp(spec.abbr, args.getDouble("scale", 1.0),
                                 args.getUint("seed", 1));
    const std::string out = args.get("out");
    if (out.empty())
        fatal("trace requires --out FILE");
    saveTraceFile(trace, out);
    os << "wrote " << trace.size() << " visits (" << trace.footprintPages()
       << " pages, " << trace.kernelCount() << " kernels) to " << out << "\n";
    return 0;
}

int
tournamentCommand(const Args &args, std::ostream &os)
{
    args.allowOnly({"quick", "full", "scale", "seed", "jobs", "json", "md"});
    if (args.has("quick") && args.has("full"))
        fatal("--quick and --full are mutually exclusive");
    TournamentConfig cfg = args.has("full") ? TournamentConfig::full()
                                            : TournamentConfig::quick();
    cfg.scale = args.getDouble("scale", cfg.scale);
    cfg.seed = args.getUint("seed", cfg.seed);
    cfg.jobs = static_cast<unsigned>(args.getUint("jobs", 0));

    const Leaderboard board = runTournament(cfg);

    bool wrote = false;
    if (args.has("json")) {
        writeOutput(args.get("json"), os, [&](std::ostream &o) {
            o << board.toJson().dump() << "\n";
        });
        wrote = true;
    }
    if (args.has("md")) {
        writeOutput(args.get("md"), os,
                    [&](std::ostream &o) { o << board.toMarkdown(); });
        wrote = true;
    }
    if (!wrote)
        os << board.toMarkdown();
    return 0;
}

int
listCommand(const Args &args, std::ostream &os)
{
    args.allowOnly({});
    os << "applications (Table II):";
    for (const AppSpec &spec : appSpecs())
        os << " " << spec.abbr;
    os << "\nextra applications:";
    for (const AppSpec &spec : extraAppSpecs())
        os << " " << spec.abbr;
    os << "\nco-run schedules:";
    for (const AppSpec &spec : mixSpecs())
        os << " " << spec.abbr;
    os << "\npolicies:";
    for (const std::string &name : api::policyNames())
        os << " " << name;
    os << "\nprefetchers:";
    for (const std::string &name : api::prefetchNames())
        os << " " << name;
    os << "\n";
    return 0;
}

int
serveCommand(const Args &args, std::ostream &os)
{
    args.allowOnly({"socket", "listen", "shards", "endpoint-file", "jobs",
                    "max-queue", "cache-capacity", "deadline-ms", "store-dir",
                    "no-store", "store-segment-bytes", "store-sync",
                    "shed-hit-only", "shed-reject"});
    serve::ServeConfig cfg;
    cfg.socketPath = args.get("socket");
    // --listen accepts a comma-separated endpoint list (the option map
    // keeps one value per key), each in the endpoint grammar.
    if (const std::string listen = args.get("listen"); !listen.empty()) {
        std::size_t start = 0;
        while (start <= listen.size()) {
            const std::size_t comma = listen.find(',', start);
            const std::string item = listen.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start);
            if (!item.empty())
                cfg.listen.push_back(item);
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }
    if (cfg.socketPath.empty() && cfg.listen.empty())
        fatal("serve requires --socket ENDPOINT or --listen ENDPOINTS");
    cfg.shards = static_cast<unsigned>(args.getUint("shards", 1));
    if (cfg.shards == 0)
        fatal("--shards must be at least 1");
    cfg.jobs = static_cast<unsigned>(args.getUint("jobs", 0));
    cfg.maxQueue = args.getUint("max-queue", 64);
    cfg.cacheCapacity = args.getUint("cache-capacity", 1024);
    cfg.defaultDeadlineMs = args.getUint("deadline-ms", 0);
    if (cfg.maxQueue == 0)
        fatal("--max-queue must be at least 1");
    if (cfg.cacheCapacity == 0)
        fatal("--cache-capacity must be at least 1");

    // Durable store: --store-dir, else the HPE_STORE_DIR environment
    // (deployment default); --no-store forces memory-only over both.
    cfg.storeDir = args.get("store-dir");
    if (cfg.storeDir.empty())
        if (const char *env = std::getenv("HPE_STORE_DIR"); env != nullptr)
            cfg.storeDir = env;
    if (args.has("no-store"))
        cfg.storeDir.clear();
    cfg.storeSegmentBytes = args.getUint("store-segment-bytes", 4u << 20);
    if (!cfg.storeDir.empty() && cfg.storeSegmentBytes == 0)
        fatal("--store-segment-bytes must be positive");
    cfg.storeSync = args.has("store-sync");
    cfg.shedHitOnlyDepth = args.getUint("shed-hit-only", 0);
    cfg.shedRejectDepth = args.getUint("shed-reject", 0);

    serve::raiseFdLimit();
    serve::Server server(cfg);
    serve::Server::installSignalHandlers(&server);
    std::string error;
    if (!server.start(error))
        fatal("{}", error);
    std::string where;
    for (const std::string &endpoint : server.boundEndpoints()) {
        if (!where.empty())
            where += ", ";
        where += endpoint;
    }
    // Ephemeral TCP ports (tcp:host:0) resolve at bind time; scripts
    // and tests learn the real endpoints from this file.  tmp+rename,
    // so a poller never reads a half-written list.
    if (const std::string file = args.get("endpoint-file"); !file.empty()) {
        const std::string tmp = file + ".tmp";
        {
            std::ofstream out(tmp);
            if (!out)
                fatal("cannot write '{}'", tmp);
            for (const std::string &endpoint : server.boundEndpoints())
                out << endpoint << "\n";
        }
        if (std::rename(tmp.c_str(), file.c_str()) != 0)
            fatal("cannot rename '{}' to '{}'", tmp, file);
    }
    inform("hpe_serve listening on {} ({} shards, {} jobs, queue {}, "
           "cache {}, store {})",
           where, server.shards(), server.jobs(), cfg.maxQueue,
           cfg.cacheCapacity, cfg.storeDir.empty() ? "off" : cfg.storeDir);
    server.wait();
    inform("hpe_serve draining");
    server.stop();
    os << "hpe_serve stopped\n";
    return 0;
}

int
submitCommand(const Args &args, std::ostream &os)
{
    args.allowOnly(withChaosOptions(
        {"socket", "type", "deadline-ms", "id", "retries", "app", "policy",
         "oversub", "scale", "seed", "functional", "stats", "walk-latency",
         "prefetch", "prefetch-degree", "fault-batch", "multi-level-walker",
         "page-sizes", "coalesce", "trace-digest", "trace-events",
         "trace-ring", "interval"}));
    const std::string socket = args.get("socket");
    if (socket.empty())
        fatal("submit requires --socket ENDPOINT "
              "(unix:/path, tcp:host:port, or a bare socket path)");

    // submit speaks v2; the daemon answers v1 clients (no "v" field)
    // in the legacy shape forever — see docs/api.md.
    const std::string type = args.get("type", "run");
    api::json::Object envelope{{"type", type},
                               {"v", api::protocol::kVersionCurrent}};
    if (args.has("id"))
        envelope.emplace("id", args.get("id"));
    if (args.has("deadline-ms"))
        envelope.emplace("deadline_ms", args.getUint("deadline-ms", 0));
    if (type == "run") {
        api::ExperimentRequest req = requestFromArgs(args);
        req.interval = args.getUint("interval", 0);
        envelope.emplace("request", req.toJson());
    }
    const std::string line = api::json::Value(std::move(envelope)).dump();

    // A shedding daemon answers ok:false with a retry_after_ms hint;
    // honour it with bounded, jittered backoff instead of surfacing the
    // first rejection (--retries 0 restores fail-fast).
    const std::uint64_t maxRetries = args.getUint("retries", 5);
    std::mt19937_64 jitterRng(static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count()));
    std::string response;
    std::optional<api::json::Value> parsed;
    for (std::uint64_t attempt = 0;; ++attempt) {
        std::string error;
        if (!serve::submitLine(socket, line, response, error))
            fatal("{}", error);
        api::json::ParseError perr;
        parsed = api::json::parse(response, &perr);
        if (!parsed.has_value() || !parsed->isObject())
            fatal("malformed response from daemon: {}", response);
        const api::json::Value *ok = parsed->find("ok");
        // The hint lives in the v2 error object (or top-level in a v1
        // response); retryAfterMs() reads both shapes.
        const auto retryAfter = api::protocol::retryAfterMs(*parsed);
        if ((ok != nullptr && ok->isBool() && ok->asBool())
            || !retryAfter.has_value() || attempt >= maxRetries)
            break;
        // Hint + up to 50% jitter, capped so a pathological hint cannot
        // wedge the CLI; decorrelated retries spread the thundering herd.
        const std::uint64_t hint = std::min<std::uint64_t>(
            std::max<std::uint64_t>(*retryAfter, 1), 2000);
        const std::uint64_t sleepMs = hint + jitterRng() % (hint / 2 + 1);
        inform("daemon busy (attempt {}/{}); retrying in {} ms",
               attempt + 1, maxRetries, sleepMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(sleepMs));
    }
    os << response << "\n";

    const api::json::Value *ok = parsed->find("ok");
    return ok != nullptr && ok->isBool() && ok->asBool() ? 0 : 1;
}

void
printUsage(std::ostream &os)
{
    os << "hpe_sim — GPU unified-memory eviction simulator\n"
          "\n"
          "usage: hpe_sim <command> [options]\n"
          "\n"
          "commands:\n"
          "  run      one (app, policy) simulation\n"
          "           --app HSD --policy HPE --oversub 0.75 [--functional]\n"
          "           [--scale 1.0] [--seed 1] [--csv] [--stats]\n"
          "           [--walk-latency 8] [--multi-level-walker]\n"
          "           [--prefetch none|sequential|stride|density]\n"
          "           [--prefetch-degree N] [--fault-batch N]\n"
          "           [--page-sizes 4k,64k,2m] [--coalesce]\n"
          "           [--validate] [--degrade] [--chaos-seed N]\n"
          "           [--chaos-pcie-fail P] [--chaos-pcie-stall P]\n"
          "           [--chaos-service-timeout P] [--chaos-shootdown-drop P]\n"
          "           [--chaos-walk-error P]\n"
          "           [--trace FILE|-] [--trace-chrome FILE|-]\n"
          "           [--trace-events far_fault,eviction,...] [--trace-ring N]\n"
          "           [--trace-digest] [--interval-stats FILE|-] [--interval N]\n"
          "  compare  every policy on one app\n"
          "           --app HSD [--oversub 0.75] [--extended] [--csv]\n"
          "           [--jobs N] [--prefetch KIND] [--prefetch-degree N]\n"
          "           [--fault-batch N] [chaos options as for run]\n"
          "  sweep    every policy on every Table II app, in parallel\n"
          "           [--oversub 0.75] [--functional] [--extended] [--csv]\n"
          "           [--scale 1.0] [--seed 1] [--jobs N] [--trace-digests]\n"
          "           [--prefetch KIND] [--prefetch-degree N] [--fault-batch N]\n"
          "  report   per-interval metrics timeline of one (app, policy) run\n"
          "           --app HSD --policy HPE [--interval 1000] [--functional]\n"
          "           [--csv] [chaos options as for run]\n"
          "  trace    write an application's page-visit trace to a file\n"
          "           --app HSD --out hsd.trace\n"
          "  serve    sharded experiment-serving daemon (docs/api.md)\n"
          "           --socket ENDPOINT [--listen EP1,EP2,...] [--shards N]\n"
          "           endpoints: unix:/path | tcp:host:port | bare unix path\n"
          "           (tcp:host:0 = ephemeral; see --endpoint-file FILE)\n"
          "           [--jobs N] [--max-queue 64] [--cache-capacity 1024]\n"
          "           [--deadline-ms N] [--store-dir DIR|--no-store]\n"
          "           [--store-sync] [--store-segment-bytes N]\n"
          "           [--shed-hit-only N] [--shed-reject N]\n"
          "  submit   send one request to a running daemon, print the response\n"
          "           --socket ENDPOINT [run options] [--trace-digest]\n"
          "           [--interval N] [--type run|stats|ping|shutdown]\n"
          "           [--deadline-ms N] [--id TAG] [--retries 5]\n"
          "  tournament  policy-tournament leaderboard over (app, policy,\n"
          "           prefetcher, oversubscription) cells; docs/adaptive-\n"
          "           policies.md explains the standings\n"
          "           [--quick|--full] [--scale 0.1] [--seed 1] [--jobs N]\n"
          "           [--json FILE|-] [--md FILE|-]\n"
          "  list     available applications, policies, and prefetchers\n"
          "\n"
          "names (apps, policies, prefetchers) are case-insensitive; `list`\n"
          "prints the canonical spellings.  --prefetch N (numeric) is\n"
          "deprecated: use --prefetch sequential --prefetch-degree N.\n"
          "\n"
          "--page-sizes enables the multi-page-size GMMU axis (docs/\n"
          "page-sizes.md): 4k always, plus optional 64k/2m large-page\n"
          "classes; --coalesce lets the GMMU promote fully-resident runs\n"
          "(without it the axis is observe-only).  Accepted on run,\n"
          "compare, report, sweep, and submit.\n"
          "\n"
          "--trace writes JSONL events (one per line + digest summary);\n"
          "--trace-chrome writes the Chrome about://tracing format; a FILE\n"
          "of '-' writes to stdout.  --trace-digests (sweep) appends a\n"
          "per-job digest column that is byte-identical for every --jobs.\n"
          "\n"
          "--jobs N fans independent simulations across N threads (default:\n"
          "HPE_JOBS env, else all hardware threads); results are collected\n"
          "in job order, so output is byte-identical for every N.\n";
}

int
dispatch(const Args &args, std::ostream &os)
{
    if (args.command() == "run")
        return runCommand(args, os);
    if (args.command() == "compare")
        return compareCommand(args, os);
    if (args.command() == "sweep")
        return sweepCommand(args, os);
    if (args.command() == "report")
        return reportCommand(args, os);
    if (args.command() == "trace")
        return traceCommand(args, os);
    if (args.command() == "serve")
        return serveCommand(args, os);
    if (args.command() == "submit")
        return submitCommand(args, os);
    if (args.command() == "tournament")
        return tournamentCommand(args, os);
    if (args.command() == "list")
        return listCommand(args, os);
    printUsage(os);
    return args.command().empty() ? 0 : 1;
}

} // namespace hpe::cli
