#include "cli/commands.hpp"

#include <fstream>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "trace/exporters.hpp"
#include "workload/apps.hpp"
#include "workload/trace_io.hpp"

namespace hpe::cli {

namespace {

/** Resolve a policy name (case-sensitive, as printed by `list`). */
PolicyKind
policyByName(const std::string &name)
{
    for (PolicyKind kind : extendedPolicyKinds())
        if (name == policyKindName(kind))
            return kind;
    fatal("unknown policy '{}' (try `hpe_sim list`)", name);
}

/**
 * Apply the prefetch/batching options to @p cfg.  --prefetch takes a kind
 * name (none/sequential/stride/density); a bare number is the legacy
 * spelling and means a sequential prefetch of that degree, with exactly
 * the original driver semantics.
 */
void
applyPrefetchOptions(const Args &args, RunConfig &cfg)
{
    if (args.has("prefetch")) {
        const std::string val = args.get("prefetch", "none");
        if (auto kind = prefetch::prefetchKindByName(val))
            cfg.gpu.driver.prefetch.kind = *kind;
        else if (!val.empty()
                 && val.find_first_not_of("0123456789") == std::string::npos)
            cfg.gpu.driver.prefetchDegree =
                static_cast<unsigned>(args.getUint("prefetch", 0));
        else
            fatal("unknown prefetcher '{}' (none, sequential, stride, "
                  "density, or a sequential degree)",
                  val);
    }
    if (args.has("prefetch-degree"))
        cfg.gpu.driver.prefetch.degree =
            static_cast<unsigned>(args.getUint("prefetch-degree", 4));
    if (args.has("fault-batch")) {
        const auto batch = args.getUint("fault-batch", 1);
        if (batch == 0)
            fatal("--fault-batch must be at least 1");
        cfg.gpu.driver.batchSize = static_cast<unsigned>(batch);
    }
}

/** Common workload/config options for run/compare/trace. */
struct CommonOptions
{
    Trace trace;
    RunConfig cfg;
};

CommonOptions
commonOptions(const Args &args)
{
    const std::string app = args.get("app", "HSD");
    const double scale = args.getDouble("scale", 1.0);
    const std::uint64_t seed = args.getUint("seed", 1);
    CommonOptions opt{buildApp(app, scale, seed), RunConfig{}};
    opt.cfg.oversub = args.getDouble("oversub", 0.75);
    opt.cfg.seed = seed;
    if (args.has("walk-latency"))
        opt.cfg.gpu.walkLatency = args.getUint("walk-latency", 8);
    applyPrefetchOptions(args, opt.cfg);
    if (args.has("multi-level-walker"))
        opt.cfg.gpu.walkerMode = WalkerMode::MultiLevel;

    // Chaos mode: any --chaos-* option arms the injector; --chaos-seed
    // alone replays the default event mix under a chosen seed.
    ChaosConfig &chaos = opt.cfg.gpu.chaos;
    chaos.enabled = args.has("chaos-seed") || args.has("chaos-pcie-fail")
                    || args.has("chaos-pcie-stall")
                    || args.has("chaos-service-timeout")
                    || args.has("chaos-shootdown-drop")
                    || args.has("chaos-walk-error");
    if (chaos.enabled) {
        chaos.seed = args.getUint("chaos-seed", seed);
        chaos.pcieFailProb = args.getDouble("chaos-pcie-fail", 0.0);
        chaos.pcieStallProb = args.getDouble("chaos-pcie-stall", 0.0);
        chaos.serviceTimeoutProb = args.getDouble("chaos-service-timeout", 0.0);
        chaos.shootdownDropProb = args.getDouble("chaos-shootdown-drop", 0.0);
        chaos.walkErrorProb = args.getDouble("chaos-walk-error", 0.0);
        chaos.validate();
    }
    if (args.has("degrade"))
        opt.cfg.gpu.degradation.enabled = true;
    if (args.has("validate"))
        opt.cfg.gpu.validate = true;
    return opt;
}

/** The chaos/resilience options shared by run and compare. */
const std::vector<std::string> kChaosOptions = {
    "chaos-seed",          "chaos-pcie-fail",     "chaos-pcie-stall",
    "chaos-service-timeout", "chaos-shootdown-drop", "chaos-walk-error",
    "degrade",             "validate",
};

/** @return @p base extended with the chaos/resilience options. */
std::vector<std::string>
withChaosOptions(std::vector<std::string> base)
{
    base.insert(base.end(), kChaosOptions.begin(), kChaosOptions.end());
    return base;
}

/**
 * Write through @p emit to @p path, where "-" means @p os (the command's
 * stdout stream).  fatal() when the file cannot be created.
 */
void
writeOutput(const std::string &path, std::ostream &os,
            const std::function<void(std::ostream &)> &emit)
{
    if (path == "-") {
        emit(os);
        return;
    }
    std::ofstream file(path);
    if (!file)
        fatal("cannot write '{}'", path);
    emit(file);
}

/** Observability attachments requested on the command line. */
struct CliTrace
{
    std::unique_ptr<trace::TraceSink> sink;
    std::unique_ptr<trace::IntervalRecorder> intervals;
    TraceAttachments attach;
};

/**
 * Build the sink/recorder a command's trace options ask for.  The sink is
 * constructed when any consumer of events is requested (--trace,
 * --trace-chrome, --trace-digest); the recorder when --interval-stats is.
 */
CliTrace
cliTraceOptions(const Args &args)
{
    CliTrace t;
    if (args.has("trace") || args.has("trace-chrome")
        || args.has("trace-digest")) {
        trace::TraceSink::Config cfg;
        cfg.mask = trace::parseEventMask(args.get("trace-events", "all"));
        cfg.ringCapacity =
            static_cast<std::size_t>(args.getUint("trace-ring", 1u << 16));
        if (cfg.ringCapacity == 0)
            fatal("--trace-ring must be positive");
        t.sink = std::make_unique<trace::TraceSink>(cfg);
        t.attach.sink = t.sink.get();
    } else if (args.has("trace-events") || args.has("trace-ring")) {
        fatal("--trace-events/--trace-ring need --trace, --trace-chrome, "
              "or --trace-digest");
    }
    if (args.has("interval-stats")) {
        t.intervals = std::make_unique<trace::IntervalRecorder>(
            args.getUint("interval", 1000));
        t.attach.intervals = t.intervals.get();
    } else if (args.has("interval")) {
        fatal("--interval needs --interval-stats (or use the report command)");
    }
    return t;
}

/** The trace/interval options shared by run and report. */
const std::vector<std::string> kTraceOptions = {
    "trace", "trace-chrome", "trace-events", "trace-ring", "trace-digest",
    "interval-stats", "interval",
};

std::vector<std::string>
withTraceOptions(std::vector<std::string> base)
{
    base.insert(base.end(), kTraceOptions.begin(), kTraceOptions.end());
    return base;
}

} // namespace

int
runCommand(const Args &args, std::ostream &os)
{
    args.allowOnly(withTraceOptions(withChaosOptions(
        {"app", "policy", "oversub", "scale", "seed", "functional", "csv",
         "stats", "walk-latency", "prefetch", "prefetch-degree",
         "fault-batch", "multi-level-walker"})));
    const auto opt = commonOptions(args);
    const PolicyKind kind = policyByName(args.get("policy", "HPE"));
    const bool functional = args.has("functional");

    CliTrace tracing = cliTraceOptions(args);
    InspectableRun run = functional
        ? runFunctionalInspect(opt.trace, kind, opt.cfg, tracing.attach)
        : runTimingInspect(opt.trace, kind, opt.cfg, tracing.attach);

    if (args.has("trace"))
        writeOutput(args.get("trace"), os, [&](std::ostream &o) {
            trace::writeJsonl(*tracing.sink, o);
        });
    if (args.has("trace-chrome"))
        writeOutput(args.get("trace-chrome"), os, [&](std::ostream &o) {
            trace::writeChromeTrace(*tracing.sink, o);
        });
    if (args.has("trace-digest"))
        os << "trace digest " << tracing.sink->digestHexString() << " ("
           << tracing.sink->emitted() << " events)\n";
    if (tracing.intervals != nullptr)
        writeOutput(args.get("interval-stats"), os, [&](std::ostream &o) {
            tracing.intervals->writeCsv(o);
        });

    if (args.has("csv")) {
        os << "app,policy,mode,oversub,faults,evictions,ipc\n"
           << opt.trace.abbr() << "," << policyKindName(kind) << ","
           << (functional ? "functional" : "timing") << "," << opt.cfg.oversub
           << ","
           << (functional ? run.paging.faults : run.timing.faults) << ","
           << (functional ? run.paging.evictions : run.timing.evictions)
           << "," << (functional ? 0.0 : run.timing.ipc) << "\n";
    } else {
        os << opt.trace.abbr() << " under " << policyKindName(kind) << " ("
           << (functional ? "functional" : "timing") << ", "
           << opt.cfg.oversub * 100 << "% oversubscription)\n";
        if (functional) {
            os << "  faults " << run.paging.faults << ", evictions "
               << run.paging.evictions << ", fault rate "
               << TextTable::num(run.paging.faultRate(), 3) << "\n";
        } else {
            os << "  faults " << run.timing.faults << ", evictions "
               << run.timing.evictions << ", IPC "
               << TextTable::num(run.timing.ipc, 4) << ", host load "
               << TextTable::num(run.timing.hostLoad * 100, 1) << "%\n";
        }
    }
    if (args.has("stats"))
        run.stats->dumpCsv(os);
    return 0;
}

int
compareCommand(const Args &args, std::ostream &os)
{
    args.allowOnly(withChaosOptions(
        {"app", "oversub", "scale", "seed", "extended", "csv", "jobs",
         "prefetch", "prefetch-degree", "fault-batch"}));
    const auto opt = commonOptions(args);
    const auto &kinds =
        args.has("extended") ? extendedPolicyKinds() : allPolicyKinds();

    // One job per policy; collection by policy index keeps the table
    // byte-identical for every --jobs value.
    struct Row
    {
        PagingResult functional;
        TimingResult timing;
    };
    SweepRunner runner(static_cast<unsigned>(args.getUint("jobs", 0)));
    const auto rows = runner.map(kinds.size(), [&](std::size_t i) {
        return Row{runFunctional(opt.trace, kinds[i], opt.cfg),
                   runTiming(opt.trace, kinds[i], opt.cfg)};
    });

    if (args.has("csv"))
        os << "policy,faults,evictions,ipc\n";
    TextTable t({"policy", "faults", "evictions", "IPC"});
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const Row &row = rows[i];
        if (args.has("csv")) {
            os << policyKindName(kinds[i]) << "," << row.functional.faults
               << "," << row.functional.evictions << "," << row.timing.ipc
               << "\n";
        } else {
            t.addRow({policyKindName(kinds[i]),
                      std::to_string(row.functional.faults),
                      std::to_string(row.functional.evictions),
                      TextTable::num(row.timing.ipc, 4)});
        }
    }
    if (!args.has("csv"))
        t.print(os);
    return 0;
}

int
reportCommand(const Args &args, std::ostream &os)
{
    args.allowOnly(withChaosOptions(
        {"app", "policy", "oversub", "scale", "seed", "functional",
         "interval", "csv", "walk-latency", "prefetch", "prefetch-degree",
         "fault-batch", "multi-level-walker"}));
    const auto opt = commonOptions(args);
    const PolicyKind kind = policyByName(args.get("policy", "HPE"));
    const bool functional = args.has("functional");

    trace::IntervalRecorder rec(args.getUint("interval", 1000));
    TraceAttachments attach;
    attach.intervals = &rec;
    if (functional)
        runFunctionalInspect(opt.trace, kind, opt.cfg, attach);
    else
        runTimingInspect(opt.trace, kind, opt.cfg, attach);

    if (args.has("csv")) {
        rec.writeCsv(os);
        return 0;
    }
    os << opt.trace.abbr() << " under " << policyKindName(kind) << " ("
       << (functional ? "functional" : "timing") << ", "
       << opt.cfg.oversub * 100 << "% oversubscription, interval "
       << rec.intervalLength() << " refs)\n";
    std::vector<std::string> header = {"interval", "refs"};
    for (const std::string &col : rec.columns())
        header.push_back(col);
    TextTable t(header);
    for (const trace::IntervalRecorder::Sample &s : rec.samples()) {
        std::vector<std::string> row = {
            std::to_string(s.index),
            std::to_string(s.startRef) + ".." + std::to_string(s.endRef)};
        for (std::uint64_t v : s.values)
            row.push_back(std::to_string(v));
        t.addRow(row);
    }
    t.print(os);
    return 0;
}

int
sweepCommand(const Args &args, std::ostream &os)
{
    args.allowOnly({"oversub", "scale", "seed", "extended", "csv",
                    "functional", "jobs", "trace-digests", "prefetch",
                    "prefetch-degree", "fault-batch"});
    const double scale = args.getDouble("scale", 1.0);
    const std::uint64_t seed = args.getUint("seed", 1);
    const bool functional = args.has("functional");
    RunConfig cfg;
    cfg.oversub = args.getDouble("oversub", 0.75);
    cfg.seed = seed;
    applyPrefetchOptions(args, cfg);
    const auto &kinds =
        args.has("extended") ? extendedPolicyKinds() : allPolicyKinds();

    std::vector<std::string> apps;
    for (const AppSpec &spec : appSpecs())
        apps.push_back(spec.abbr);

    SweepRunner runner(static_cast<unsigned>(args.getUint("jobs", 0)));
    // Traces are built once, in parallel, then shared read-only by the
    // (app x policy) jobs.
    const auto traces = runner.mapItems(
        apps, [&](const std::string &abbr) { return buildApp(abbr, scale, seed); });

    const bool digests = args.has("trace-digests");
    SweepTraceConfig trace_cfg;
    trace_cfg.enabled = digests;

    std::vector<SweepJob> jobs;
    jobs.reserve(apps.size() * kinds.size());
    for (const Trace &trace : traces)
        for (PolicyKind kind : kinds)
            jobs.push_back(SweepJob{&trace, kind, cfg, functional, trace_cfg});
    const auto outcomes = runner.run(jobs);

    // Serial reduction in job order: output is independent of --jobs.
    if (args.has("csv")) {
        os << "app,policy,oversub,faults,evictions,ipc";
        if (digests)
            os << ",trace_digest";
        os << "\n";
    }
    std::vector<std::string> header = {"app", "policy", "faults", "evictions",
                                       "IPC"};
    if (digests)
        header.push_back("trace digest");
    TextTable t(header);
    std::vector<std::uint64_t> jobDigests;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::string &app = apps[i / kinds.size()];
        const PolicyKind kind = kinds[i % kinds.size()];
        const std::uint64_t faults = functional ? outcomes[i].paging.faults
                                                : outcomes[i].timing.faults;
        const std::uint64_t evictions = functional
            ? outcomes[i].paging.evictions
            : outcomes[i].timing.evictions;
        const double ipc = functional ? 0.0 : outcomes[i].timing.ipc;
        if (digests)
            jobDigests.push_back(outcomes[i].traceDigest);
        if (args.has("csv")) {
            os << app << "," << policyKindName(kind) << "," << cfg.oversub
               << "," << faults << "," << evictions << "," << ipc;
            if (digests)
                os << "," << trace::digestHex(outcomes[i].traceDigest);
            os << "\n";
        } else {
            std::vector<std::string> row = {
                app, policyKindName(kind), std::to_string(faults),
                std::to_string(evictions),
                functional ? "-" : TextTable::num(ipc, 4)};
            if (digests)
                row.push_back(trace::digestHex(outcomes[i].traceDigest));
            t.addRow(row);
        }
    }
    if (!args.has("csv"))
        t.print(os);
    if (digests)
        // Goes to stderr (inform), keeping --csv stdout machine-readable.
        inform("combined trace digest {}",
               trace::digestHex(trace::combineDigests(jobDigests)));
    return 0;
}

int
traceCommand(const Args &args, std::ostream &os)
{
    args.allowOnly({"app", "scale", "seed", "out"});
    const auto opt = commonOptions(args);
    const std::string out = args.get("out");
    if (out.empty())
        fatal("trace requires --out FILE");
    saveTraceFile(opt.trace, out);
    os << "wrote " << opt.trace.size() << " visits ("
       << opt.trace.footprintPages() << " pages, " << opt.trace.kernelCount()
       << " kernels) to " << out << "\n";
    return 0;
}

int
listCommand(const Args &args, std::ostream &os)
{
    args.allowOnly({});
    os << "applications (Table II):";
    for (const AppSpec &spec : appSpecs())
        os << " " << spec.abbr;
    os << "\nextra applications:";
    for (const AppSpec &spec : extraAppSpecs())
        os << " " << spec.abbr;
    os << "\npolicies:";
    for (PolicyKind kind : extendedPolicyKinds())
        os << " " << policyKindName(kind);
    os << "\n";
    return 0;
}

void
printUsage(std::ostream &os)
{
    os << "hpe_sim — GPU unified-memory eviction simulator\n"
          "\n"
          "usage: hpe_sim <command> [options]\n"
          "\n"
          "commands:\n"
          "  run      one (app, policy) simulation\n"
          "           --app HSD --policy HPE --oversub 0.75 [--functional]\n"
          "           [--scale 1.0] [--seed 1] [--csv] [--stats]\n"
          "           [--walk-latency 8] [--multi-level-walker]\n"
          "           [--prefetch none|sequential|stride|density|N]\n"
          "           [--prefetch-degree N] [--fault-batch N]\n"
          "           [--validate] [--degrade] [--chaos-seed N]\n"
          "           [--chaos-pcie-fail P] [--chaos-pcie-stall P]\n"
          "           [--chaos-service-timeout P] [--chaos-shootdown-drop P]\n"
          "           [--chaos-walk-error P]\n"
          "           [--trace FILE|-] [--trace-chrome FILE|-]\n"
          "           [--trace-events far_fault,eviction,...] [--trace-ring N]\n"
          "           [--trace-digest] [--interval-stats FILE|-] [--interval N]\n"
          "  compare  every policy on one app\n"
          "           --app HSD [--oversub 0.75] [--extended] [--csv]\n"
          "           [--jobs N] [--prefetch KIND] [--prefetch-degree N]\n"
          "           [--fault-batch N] [chaos options as for run]\n"
          "  sweep    every policy on every Table II app, in parallel\n"
          "           [--oversub 0.75] [--functional] [--extended] [--csv]\n"
          "           [--scale 1.0] [--seed 1] [--jobs N] [--trace-digests]\n"
          "           [--prefetch KIND] [--prefetch-degree N] [--fault-batch N]\n"
          "  report   per-interval metrics timeline of one (app, policy) run\n"
          "           --app HSD --policy HPE [--interval 1000] [--functional]\n"
          "           [--csv] [chaos options as for run]\n"
          "  trace    write an application's page-visit trace to a file\n"
          "           --app HSD --out hsd.trace\n"
          "  list     available applications and policies\n"
          "\n"
          "--trace writes JSONL events (one per line + digest summary);\n"
          "--trace-chrome writes the Chrome about://tracing format; a FILE\n"
          "of '-' writes to stdout.  --trace-digests (sweep) appends a\n"
          "per-job digest column that is byte-identical for every --jobs.\n"
          "\n"
          "--jobs N fans independent simulations across N threads (default:\n"
          "HPE_JOBS env, else all hardware threads); results are collected\n"
          "in job order, so output is byte-identical for every N.\n";
}

int
dispatch(const Args &args, std::ostream &os)
{
    if (args.command() == "run")
        return runCommand(args, os);
    if (args.command() == "compare")
        return compareCommand(args, os);
    if (args.command() == "sweep")
        return sweepCommand(args, os);
    if (args.command() == "report")
        return reportCommand(args, os);
    if (args.command() == "trace")
        return traceCommand(args, os);
    if (args.command() == "list")
        return listCommand(args, os);
    printUsage(os);
    return args.command().empty() ? 0 : 1;
}

} // namespace hpe::cli
