/**
 * @file
 * Umbrella header: everything a downstream user of the library needs.
 *
 *   #include <hpe.hpp>
 *
 *   hpe::Trace trace = hpe::buildApp("HSD");
 *   hpe::RunConfig cfg{.oversub = 0.75};
 *   auto r = hpe::runTiming(trace, hpe::PolicyKind::Hpe, cfg);
 *
 * Individual component headers remain includable on their own; this
 * header simply aggregates the public surface.
 */

#pragma once

// Fundamentals
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

// Eviction policies
#include "core/hpe_config.hpp"
#include "core/hpe_policy.hpp"
#include "policy/clock.hpp"
#include "policy/clock_pro.hpp"
#include "policy/dip.hpp"
#include "policy/eviction_policy.hpp"
#include "policy/fifo.hpp"
#include "policy/lfu.hpp"
#include "policy/lru.hpp"
#include "policy/min.hpp"
#include "policy/random.hpp"
#include "policy/rrip.hpp"

// Workloads
#include "workload/apps.hpp"
#include "workload/patterns.hpp"
#include "workload/trace.hpp"
#include "workload/trace_io.hpp"

// Simulators and experiment runners
#include "gpu/gpu_system.hpp"
#include "sim/experiment.hpp"
#include "sim/multi_app.hpp"
#include "sim/paging_simulator.hpp"
#include "sim/policy_factory.hpp"
