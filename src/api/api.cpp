#include "api/api.hpp"

#include <cstdlib>
#include <sstream>

#include "api/registry.hpp"
#include "common/log.hpp"
#include "mem/page_size.hpp"
#include "trace/events.hpp"
#include "workload/apps.hpp"

namespace hpe::api {

namespace {

/** 64-bit FNV-1a over a byte string (the fingerprint hash). */
std::uint64_t
fnv1aBytes(const std::string &bytes)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** Is @p s entirely decimal digits (the legacy --prefetch N spelling)? */
bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    return s.find_first_not_of("0123456789") == std::string::npos;
}

/**
 * Validate a trace-event filter list without exiting: the daemon turns
 * the message into an error response.  Mirrors trace::parseEventMask.
 */
bool
validEventMask(const std::string &list, std::string &error)
{
    if (list.empty() || list == "all")
        return true;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!name.empty() && !trace::eventKindByName(name).has_value()) {
            error = strformat("unknown trace event '{}'", name);
            return false;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

/** Typed member readers for fromJson(); set @p error and return false on
 *  a type mismatch, leave @p out untouched when the key is absent. */
bool
readBool(const json::Value &obj, const char *key, bool &out, std::string &error)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr)
        return true;
    if (!v->isBool()) {
        error = strformat("field '{}' must be a boolean", key);
        return false;
    }
    out = v->asBool();
    return true;
}

bool
readString(const json::Value &obj, const char *key, std::string &out,
           std::string &error)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr)
        return true;
    if (!v->isString()) {
        error = strformat("field '{}' must be a string", key);
        return false;
    }
    out = v->asString();
    return true;
}

bool
readDouble(const json::Value &obj, const char *key, double &out,
           std::string &error)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr)
        return true;
    if (!v->isNumber()) {
        error = strformat("field '{}' must be a number", key);
        return false;
    }
    out = v->asDouble();
    return true;
}

template <typename U>
bool
readUint(const json::Value &obj, const char *key, U &out, std::string &error)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr)
        return true;
    if (!v->isNumber() || v->asDouble() < 0) {
        error = strformat("field '{}' must be a non-negative integer", key);
        return false;
    }
    out = static_cast<U>(v->asUint());
    return true;
}

/** Reject members outside @p known (same spirit as Args::allowOnly). */
bool
allowKeys(const json::Value &obj, std::initializer_list<const char *> known,
          std::string &error)
{
    for (const auto &[key, value] : obj.asObject()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok) {
            error = strformat("unknown field '{}'", key);
            return false;
        }
    }
    return true;
}

} // namespace

void
ExperimentRequest::normalize()
{
    app = appOrDie(app).abbr;
    policy = policyKindName(policyOrDie(policy));
    if (allDigits(prefetch)) {
        // Legacy numeric spelling: a sequential prefetch of that degree
        // (0 = disabled).  Callers warn about the deprecation; here it
        // only needs to fingerprint identically to the canonical form.
        const unsigned degree =
            static_cast<unsigned>(std::strtoul(prefetch.c_str(), nullptr, 10));
        prefetch = degree > 0 ? "sequential" : "none";
        if (degree > 0)
            prefetchDegree = degree;
    } else {
        prefetch = prefetch::prefetchKindName(prefetchKindOrDie(prefetch));
    }
    std::string psError;
    const auto ps = parsePageSizes(pageSizes, psError);
    if (!ps.has_value())
        usageFatal("{}", psError);
    pageSizes = ps->spell();
    if (!ps->active())
        coalesce = false; // meaningless without a large class
    if (!chaos.enabled)
        chaos = ChaosRequest{};
}

json::Value
ExperimentRequest::toJson() const
{
    json::Object chaosObj{
        {"enabled", chaos.enabled},
        {"pcie_fail", chaos.pcieFail},
        {"pcie_stall", chaos.pcieStall},
        {"seed", chaos.seed},
        {"service_timeout", chaos.serviceTimeout},
        {"shootdown_drop", chaos.shootdownDrop},
        {"walk_error", chaos.walkError},
    };
    json::Object obj{
        {"app", app},
        {"chaos", std::move(chaosObj)},
        {"degrade", degrade},
        {"fault_batch", faultBatch},
        {"functional", functional},
        {"interval", interval},
        {"multi_level_walker", multiLevelWalker},
        {"oversub", oversub},
        {"policy", policy},
        {"prefetch", prefetch},
        {"prefetch_degree", prefetchDegree},
        {"scale", scale},
        {"seed", seed},
        {"stats", stats},
        {"trace_digest", traceDigest},
        {"trace_events", traceEvents},
        {"trace_ring", static_cast<std::uint64_t>(traceRing)},
        {"validate", validate},
        {"walk_latency", walkLatency},
    };
    // The page-size axis joins the canonical form only when non-default:
    // a request that predates (or ignores) the axis must keep the exact
    // fingerprint it had before the axis existed, or every cached result
    // and the leaderboard baseline would be orphaned.
    if (pageSizes != "4k" || coalesce) {
        obj.emplace("coalesce", coalesce);
        obj.emplace("page_sizes", pageSizes);
    }
    return json::Value(std::move(obj));
}

std::optional<ExperimentRequest>
ExperimentRequest::fromJson(const json::Value &v, std::string &error)
{
    if (!v.isObject()) {
        error = "request must be a JSON object";
        return std::nullopt;
    }
    if (!allowKeys(v,
                   {"app", "chaos", "coalesce", "degrade", "fault_batch",
                    "functional", "interval", "multi_level_walker", "oversub",
                    "page_sizes", "policy", "prefetch", "prefetch_degree",
                    "scale", "seed", "stats", "trace_digest", "trace_events",
                    "trace_ring", "validate", "walk_latency"},
                   error))
        return std::nullopt;

    ExperimentRequest req;
    if (!readString(v, "app", req.app, error)
        || !readDouble(v, "scale", req.scale, error)
        || !readUint(v, "seed", req.seed, error)
        || !readString(v, "policy", req.policy, error)
        || !readDouble(v, "oversub", req.oversub, error)
        || !readBool(v, "functional", req.functional, error)
        || !readUint(v, "walk_latency", req.walkLatency, error)
        || !readBool(v, "multi_level_walker", req.multiLevelWalker, error)
        || !readString(v, "prefetch", req.prefetch, error)
        || !readUint(v, "prefetch_degree", req.prefetchDegree, error)
        || !readUint(v, "fault_batch", req.faultBatch, error)
        || !readString(v, "page_sizes", req.pageSizes, error)
        || !readBool(v, "coalesce", req.coalesce, error)
        || !readBool(v, "degrade", req.degrade, error)
        || !readBool(v, "validate", req.validate, error)
        || !readBool(v, "trace_digest", req.traceDigest, error)
        || !readString(v, "trace_events", req.traceEvents, error)
        || !readUint(v, "trace_ring", req.traceRing, error)
        || !readUint(v, "interval", req.interval, error)
        || !readBool(v, "stats", req.stats, error))
        return std::nullopt;

    if (const json::Value *c = v.find("chaos"); c != nullptr) {
        if (!c->isObject()) {
            error = "field 'chaos' must be an object";
            return std::nullopt;
        }
        if (!allowKeys(*c,
                       {"enabled", "pcie_fail", "pcie_stall", "seed",
                        "service_timeout", "shootdown_drop", "walk_error"},
                       error))
            return std::nullopt;
        req.chaos.enabled = true; // presence arms it, like any --chaos-*
        req.chaos.seed = req.seed;
        if (!readBool(*c, "enabled", req.chaos.enabled, error)
            || !readUint(*c, "seed", req.chaos.seed, error)
            || !readDouble(*c, "pcie_fail", req.chaos.pcieFail, error)
            || !readDouble(*c, "pcie_stall", req.chaos.pcieStall, error)
            || !readDouble(*c, "service_timeout", req.chaos.serviceTimeout,
                           error)
            || !readDouble(*c, "shootdown_drop", req.chaos.shootdownDrop,
                           error)
            || !readDouble(*c, "walk_error", req.chaos.walkError, error))
            return std::nullopt;
    }

    // Validate names without exiting; normalize() below would usageFatal.
    if (!findApp(req.app)) {
        error = unknownNameMessage("application", req.app, appNames());
        return std::nullopt;
    }
    if (!findPolicy(req.policy)) {
        error = unknownNameMessage("policy", req.policy, policyNames());
        return std::nullopt;
    }
    if (!allDigits(req.prefetch) && !findPrefetchKind(req.prefetch)) {
        error = unknownNameMessage("prefetcher", req.prefetch,
                                   prefetchNames());
        return std::nullopt;
    }
    if (!validEventMask(req.traceEvents, error))
        return std::nullopt;
    if (!parsePageSizes(req.pageSizes, error).has_value())
        return std::nullopt;
    if (req.oversub <= 0.0 || req.oversub > 1.0) {
        error = "field 'oversub' must be in (0, 1]";
        return std::nullopt;
    }
    if (req.scale <= 0.0) {
        error = "field 'scale' must be positive";
        return std::nullopt;
    }
    if (req.faultBatch == 0) {
        error = "field 'fault_batch' must be at least 1";
        return std::nullopt;
    }
    if (req.traceRing == 0) {
        error = "field 'trace_ring' must be positive";
        return std::nullopt;
    }
    for (double p : {req.chaos.pcieFail, req.chaos.pcieStall,
                     req.chaos.serviceTimeout, req.chaos.shootdownDrop,
                     req.chaos.walkError}) {
        if (p < 0.0 || p > 1.0) {
            error = "chaos probabilities must be in [0, 1]";
            return std::nullopt;
        }
    }
    if (req.chaos.walkError >= 1.0 || req.chaos.shootdownDrop >= 1.0) {
        error = "chaos walk-error/shootdown-drop probability must be < 1";
        return std::nullopt;
    }

    req.normalize();
    return req;
}

std::string
ExperimentRequest::fingerprint() const
{
    ExperimentRequest canonical = *this;
    canonical.normalize();
    return trace::digestHex(fnv1aBytes(canonical.toJson().dump()));
}

json::Value
ExperimentResult::toJson() const
{
    return json::Value(json::Object{
        {"cycles", cycles},
        {"dirty_evictions", dirtyEvictions},
        {"evictions", evictions},
        {"fault_rate", faultRate},
        {"faults", faults},
        {"functional", functional},
        {"hits", hits},
        {"host_load", hostLoad},
        {"instructions", instructions},
        {"intervals_csv", intervalsCsv},
        {"ipc", ipc},
        {"prefetch_late", prefetchLate},
        {"prefetch_useful", prefetchUseful},
        {"prefetch_wasted", prefetchWasted},
        {"prefetches", prefetches},
        {"references", references},
        {"stats_csv", statsCsv},
        {"trace_digest", traceDigest},
        {"trace_events", traceEvents},
    });
}

std::optional<ExperimentResult>
ExperimentResult::fromJson(const json::Value &v, std::string &error)
{
    if (!v.isObject()) {
        error = "result must be a JSON object";
        return std::nullopt;
    }
    ExperimentResult r;
    if (!readBool(v, "functional", r.functional, error)
        || !readUint(v, "references", r.references, error)
        || !readUint(v, "hits", r.hits, error)
        || !readUint(v, "faults", r.faults, error)
        || !readUint(v, "evictions", r.evictions, error)
        || !readUint(v, "dirty_evictions", r.dirtyEvictions, error)
        || !readUint(v, "prefetches", r.prefetches, error)
        || !readUint(v, "prefetch_useful", r.prefetchUseful, error)
        || !readUint(v, "prefetch_wasted", r.prefetchWasted, error)
        || !readUint(v, "prefetch_late", r.prefetchLate, error)
        || !readDouble(v, "fault_rate", r.faultRate, error)
        || !readUint(v, "cycles", r.cycles, error)
        || !readUint(v, "instructions", r.instructions, error)
        || !readDouble(v, "ipc", r.ipc, error)
        || !readDouble(v, "host_load", r.hostLoad, error)
        || !readString(v, "trace_digest", r.traceDigest, error)
        || !readUint(v, "trace_events", r.traceEvents, error)
        || !readString(v, "intervals_csv", r.intervalsCsv, error)
        || !readString(v, "stats_csv", r.statsCsv, error))
        return std::nullopt;
    return r;
}

RunConfig
buildRunConfig(const ExperimentRequest &req)
{
    RunConfig cfg;
    cfg.oversub = req.oversub;
    cfg.seed = req.seed;
    cfg.gpu.walkLatency = req.walkLatency;
    if (req.multiLevelWalker)
        cfg.gpu.walkerMode = WalkerMode::MultiLevel;
    cfg.gpu.driver.prefetch.kind = prefetchKindOrDie(req.prefetch);
    cfg.gpu.driver.prefetch.degree = req.prefetchDegree;
    cfg.gpu.driver.batchSize = req.faultBatch;
    if (req.chaos.enabled) {
        ChaosConfig &chaos = cfg.gpu.chaos;
        chaos.enabled = true;
        chaos.seed = req.chaos.seed;
        chaos.pcieFailProb = req.chaos.pcieFail;
        chaos.pcieStallProb = req.chaos.pcieStall;
        chaos.serviceTimeoutProb = req.chaos.serviceTimeout;
        chaos.shootdownDropProb = req.chaos.shootdownDrop;
        chaos.walkErrorProb = req.chaos.walkError;
        chaos.validate();
    }
    cfg.gpu.degradation.enabled = req.degrade;
    cfg.gpu.validate = req.validate;
    {
        std::string error;
        const auto ps = parsePageSizes(req.pageSizes, error);
        HPE_ASSERT(ps.has_value(), "unvalidated page sizes: {}", error);
        cfg.gpu.pageSizes = *ps;
        cfg.gpu.pageSizes.coalesce = req.coalesce;
    }
    return cfg;
}

ExperimentResult
runExperimentInspect(const ExperimentRequest &request,
                     ExperimentArtifacts &artifacts, const Trace *prebuilt,
                     bool forceSink)
{
    ExperimentRequest req = request;
    req.normalize();
    const RunConfig cfg = buildRunConfig(req);
    const PolicyKind kind = policyOrDie(req.policy);

    std::optional<Trace> local;
    const Trace *trace = prebuilt;
    if (trace == nullptr) {
        local.emplace(buildApp(req.app, req.scale, req.seed));
        trace = &*local;
    }

    TraceAttachments attach;
    if (req.traceDigest || forceSink) {
        artifacts.sink = std::make_unique<trace::TraceSink>(
            trace::TraceSink::Config{
                .ringCapacity = req.traceRing,
                .mask = trace::parseEventMask(req.traceEvents)});
        attach.sink = artifacts.sink.get();
    }
    if (req.interval > 0) {
        artifacts.intervals =
            std::make_unique<trace::IntervalRecorder>(req.interval);
        attach.intervals = artifacts.intervals.get();
    }

    artifacts.run = req.functional
        ? runFunctionalInspect(*trace, kind, cfg, attach)
        : runTimingInspect(*trace, kind, cfg, attach);

    ExperimentResult out;
    out.functional = req.functional;
    if (req.functional) {
        const PagingResult &p = artifacts.run.paging;
        out.references = p.references;
        out.hits = p.hits;
        out.faults = p.faults;
        out.evictions = p.evictions;
        out.dirtyEvictions = p.dirtyEvictions;
        out.prefetches = p.prefetches;
        out.prefetchUseful = p.prefetchUseful;
        out.prefetchWasted = p.prefetchWasted;
        out.prefetchLate = p.prefetchLate;
        out.faultRate = p.faultRate();
    } else {
        const TimingResult &t = artifacts.run.timing;
        out.faults = t.faults;
        out.evictions = t.evictions;
        out.cycles = t.cycles;
        out.instructions = t.instructions;
        out.ipc = t.ipc;
        out.hostLoad = t.hostLoad;
    }
    if (artifacts.sink != nullptr) {
        out.traceDigest = artifacts.sink->digestHexString();
        out.traceEvents = artifacts.sink->emitted();
    }
    if (artifacts.intervals != nullptr) {
        std::ostringstream os;
        artifacts.intervals->writeCsv(os);
        out.intervalsCsv = std::move(os).str();
    }
    if (req.stats) {
        std::ostringstream os;
        artifacts.run.stats->dumpCsv(os);
        out.statsCsv = std::move(os).str();
    }
    return out;
}

ExperimentResult
runExperiment(const ExperimentRequest &req, const Trace *prebuilt)
{
    ExperimentArtifacts artifacts;
    return runExperimentInspect(req, artifacts, prebuilt);
}

} // namespace hpe::api
