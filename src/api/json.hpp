/**
 * @file
 * Minimal JSON value type, parser, and writer for the hpe::api request /
 * response schema and the hpe_serve wire protocol.
 *
 * Deliberately small rather than general:
 *
 *  - objects keep their members in sorted key order (std::map), so
 *    dump() of a given value is *canonical* — the fingerprint of an
 *    ExperimentRequest hashes exactly these bytes;
 *  - numbers are stored as int64/uint64/double sidecars so 64-bit seeds
 *    and digests round-trip exactly (a double mantissa would corrupt
 *    seeds above 2^53);
 *  - parse() accepts strict JSON (RFC 8259 subset: no comments, no
 *    trailing commas) and reports the byte offset of the first error.
 *
 * Nothing here allocates on the simulation hot path; JSON exists only at
 * the request/response boundary.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace hpe::api::json {

class Value;

/** Object member map; std::map keeps dump() output canonically sorted. */
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

/** One JSON value (null / bool / number / string / array / object). */
class Value
{
  public:
    enum class Kind { Null, Bool, Uint, Int, Double, String, Array, Object };

    Value() : kind_(Kind::Null) {}
    Value(std::nullptr_t) : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Value(double v) : kind_(Kind::Double), double_(v) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
    Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool
    isNumber() const
    {
        return kind_ == Kind::Uint || kind_ == Kind::Int
               || kind_ == Kind::Double;
    }

    /** @{ Typed accessors; the caller checked the kind (or uses the
     *  lookup helpers below, which check for it). */
    bool asBool() const { return bool_; }
    const std::string &asString() const { return string_; }
    const Array &asArray() const { return array_; }
    const Object &asObject() const { return object_; }
    Object &asObject() { return object_; }

    std::int64_t
    asInt() const
    {
        if (kind_ == Kind::Int)
            return int_;
        if (kind_ == Kind::Uint)
            return static_cast<std::int64_t>(uint_);
        return static_cast<std::int64_t>(double_);
    }

    std::uint64_t
    asUint() const
    {
        if (kind_ == Kind::Uint)
            return uint_;
        if (kind_ == Kind::Int && int_ >= 0)
            return static_cast<std::uint64_t>(int_);
        return static_cast<std::uint64_t>(double_);
    }

    double
    asDouble() const
    {
        if (kind_ == Kind::Double)
            return double_;
        if (kind_ == Kind::Uint)
            return static_cast<double>(uint_);
        return static_cast<double>(int_);
    }
    /** @} */

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (kind_ != Kind::Object)
            return nullptr;
        auto it = object_.find(key);
        return it == object_.end() ? nullptr : &it->second;
    }

    /** Serialize compactly (no whitespace, sorted object keys). */
    std::string dump() const;

  private:
    Kind kind_;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/** Parse failure: what went wrong and where. */
struct ParseError
{
    std::string message;
    std::size_t offset = 0;
};

/** Parse strict JSON; on failure returns nullopt and fills @p err. */
std::optional<Value> parse(const std::string &text, ParseError *err = nullptr);

} // namespace hpe::api::json
