#include "api/registry.hpp"

#include <cctype>

#include "common/log.hpp"

namespace hpe::api {

namespace {

/** "a, b, c" join of a canonical-name list, for error messages. */
std::string
joined(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

[[noreturn]] void
unknown(const char *what, std::string_view name,
        const std::vector<std::string> &valid)
{
    detail::die("error", unknownNameMessage(what, name, valid), false,
                kUsageExitCode);
}

} // namespace

std::string
unknownNameMessage(const char *what, std::string_view name,
                   const std::vector<std::string> &valid)
{
    return strformat("unknown {} '{}' (valid: {})", what, name,
                     joined(valid));
}

std::string
toLowerAscii(std::string_view name)
{
    std::string out(name);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::optional<PolicyKind>
findPolicy(std::string_view name)
{
    const std::string key = toLowerAscii(name);
    for (PolicyKind kind : extendedPolicyKinds())
        if (key == toLowerAscii(policyKindName(kind)))
            return kind;
    return std::nullopt;
}

PolicyKind
policyOrDie(std::string_view name)
{
    if (auto kind = findPolicy(name))
        return *kind;
    unknown("policy", name, policyNames());
}

std::vector<std::string>
policyNames()
{
    std::vector<std::string> out;
    for (PolicyKind kind : extendedPolicyKinds())
        out.emplace_back(policyKindName(kind));
    return out;
}

std::optional<prefetch::PrefetchKind>
findPrefetchKind(std::string_view name)
{
    return prefetch::prefetchKindByName(toLowerAscii(name));
}

prefetch::PrefetchKind
prefetchKindOrDie(std::string_view name)
{
    if (auto kind = findPrefetchKind(name))
        return *kind;
    unknown("prefetcher", name, prefetchNames());
}

std::vector<std::string>
prefetchNames()
{
    std::vector<std::string> out;
    for (prefetch::PrefetchKind kind : prefetch::allPrefetchKinds())
        out.emplace_back(prefetch::prefetchKindName(kind));
    return out;
}

const AppSpec *
findApp(std::string_view abbr)
{
    const std::string key = toLowerAscii(abbr);
    for (const AppSpec &spec : appSpecs())
        if (key == toLowerAscii(spec.abbr))
            return &spec;
    for (const AppSpec &spec : extraAppSpecs())
        if (key == toLowerAscii(spec.abbr))
            return &spec;
    for (const AppSpec &spec : mixSpecs())
        if (key == toLowerAscii(spec.abbr))
            return &spec;
    return nullptr;
}

const AppSpec &
appOrDie(std::string_view abbr)
{
    if (const AppSpec *spec = findApp(abbr))
        return *spec;
    unknown("application", abbr, appNames());
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> out;
    for (const AppSpec &spec : appSpecs())
        out.emplace_back(spec.abbr);
    for (const AppSpec &spec : extraAppSpecs())
        out.emplace_back(spec.abbr);
    for (const AppSpec &spec : mixSpecs())
        out.emplace_back(spec.abbr);
    return out;
}

} // namespace hpe::api
