/**
 * @file
 * One name registry for everything the CLI, the hpe::api façade, and the
 * hpe_serve daemon look up by string: eviction policies, prefetcher
 * kinds, and application workloads.
 *
 * Before this existed, each subcommand in src/cli/commands.cpp grew its
 * own ad-hoc loop over policyKindName()/appSpecs() with its own error
 * wording; the daemon would have been a fourth copy.  The registry gives
 * every entry point the same three guarantees:
 *
 *  - lookups are **case-insensitive** ("hpe", "HPE" and "Hpe" all resolve
 *    to the canonical "HPE"), so a request never dies on spelling case;
 *  - unknown names fail through usageFatal() with the uniform message
 *    "unknown <what> '<name>' (valid: a, b, c)" and the distinct
 *    kUsageExitCode — never an assert or an uncaught exception;
 *  - canonical spellings are enumerable (for `hpe_sim list` and the
 *    request-normalization step that keeps fingerprints spelling-stable).
 */

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "prefetch/prefetcher.hpp"
#include "sim/policy_factory.hpp"
#include "workload/apps.hpp"

namespace hpe::api {

/** @p name lower-cased (ASCII); the registry's comparison key. */
std::string toLowerAscii(std::string_view name);

/**
 * The uniform unknown-name message: "unknown <what> '<name>' (valid: a,
 * b, c)".  The *OrDie lookups pass it to usageFatal(); the daemon embeds
 * it in an error response instead of exiting.
 */
std::string unknownNameMessage(const char *what, std::string_view name,
                               const std::vector<std::string> &valid);

/** @{ Eviction policies (the extended set, canonical CLI spelling). */
std::optional<PolicyKind> findPolicy(std::string_view name);
PolicyKind policyOrDie(std::string_view name);
std::vector<std::string> policyNames();
/** @} */

/** @{ Prefetcher kinds ("none", "sequential", "stride", "density"). */
std::optional<prefetch::PrefetchKind> findPrefetchKind(std::string_view name);
prefetch::PrefetchKind prefetchKindOrDie(std::string_view name);
std::vector<std::string> prefetchNames();
/** @} */

/** @{ Application workloads (Table II + extras, canonical abbreviation). */
const AppSpec *findApp(std::string_view abbr);
const AppSpec &appOrDie(std::string_view abbr);
std::vector<std::string> appNames();
/** @} */

} // namespace hpe::api
