/**
 * @file
 * The versioned hpe_serve wire envelope, shared by the daemon, the
 * `submit` client, and the load bench (see docs/api.md § "Wire
 * protocol v2").
 *
 * A request names its protocol version with an optional top-level
 * `"v"` field.  Absent (or 1) selects the v1 shape every pre-v2
 * client was built against — ad-hoc `"error"` strings with a
 * top-level `retry_after_ms` — and that shape is pinned by compat
 * tests, byte for byte.  `"v": 2` selects the v2 shape: responses
 * echo `"v": 2` and failures carry one structured error object,
 *
 *     {"ok": false, "v": 2,
 *      "error": {"code": "...", "message": "...",
 *                "retry_after_ms": 250}}         // hint only when retryable
 *
 * The version lives in the *envelope*, next to `type`/`id`/
 * `deadline_ms`, never inside `request` — so it is excluded from
 * ExperimentRequest::fingerprint() by construction and a v1 and a v2
 * client asking for the same experiment share one cache slot.
 */

#pragma once

#include <cstdint>
#include <optional>

#include "api/json.hpp"

namespace hpe::api::protocol {

/** The v1 shape: unversioned responses, string errors. */
inline constexpr int kVersionLegacy = 1;
/** The newest version the daemon speaks (and `submit` requests). */
inline constexpr int kVersionCurrent = 2;

/** @{ v2 error codes (the closed vocabulary docs/api.md documents). */
inline constexpr char kErrParse[] = "parse_error";
inline constexpr char kErrBadRequest[] = "bad_request";
inline constexpr char kErrUnknownType[] = "unknown_type";
inline constexpr char kErrUnsupportedVersion[] = "unsupported_version";
inline constexpr char kErrOversized[] = "oversized_request";
inline constexpr char kErrShedHitOnly[] = "shed_hit_only";
inline constexpr char kErrShedReject[] = "shed_reject";
inline constexpr char kErrSaturated[] = "saturated";
inline constexpr char kErrDeadline[] = "deadline_exceeded";
inline constexpr char kErrExperimentFailed[] = "experiment_failed";
/** @} */

/**
 * The backoff hint of a shed/saturated response, wherever the shape
 * put it: v2 nests it in the error object, v1 spells it top-level.
 * nullopt when the response carries none (not retryable).
 */
inline std::optional<std::uint64_t>
retryAfterMs(const json::Value &response)
{
    if (const json::Value *error = response.find("error");
        error != nullptr && error->isObject())
        if (const json::Value *hint = error->find("retry_after_ms");
            hint != nullptr && hint->isNumber())
            return hint->asUint();
    if (const json::Value *hint = response.find("retry_after_ms");
        hint != nullptr && hint->isNumber())
        return hint->asUint();
    return std::nullopt;
}

/**
 * The human-readable failure text of an `ok:false` response in either
 * shape ("" when absent or malformed).
 */
inline std::string
errorMessage(const json::Value &response)
{
    const json::Value *error = response.find("error");
    if (error == nullptr)
        return "";
    if (error->isString())
        return error->asString(); // v1
    if (error->isObject())
        if (const json::Value *message = error->find("message");
            message != nullptr && message->isString())
            return message->asString(); // v2
    return "";
}

} // namespace hpe::api::protocol
