#include "api/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace hpe::api::json {

namespace {

void
dumpString(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
dumpValue(const Value &v, std::string &out)
{
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        break;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Value::Kind::Uint: {
        char buf[24];
        auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v.asUint());
        (void)ec;
        out.append(buf, p);
        break;
      }
      case Value::Kind::Int: {
        char buf[24];
        auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v.asInt());
        (void)ec;
        out.append(buf, p);
        break;
      }
      case Value::Kind::Double: {
        const double d = v.asDouble();
        if (d == static_cast<double>(static_cast<std::int64_t>(d))
            && std::fabs(d) < 1e15) {
            // Integral doubles print without an exponent or trailing
            // zeros so canonical bytes are stable ("1" not "1.000000").
            char buf[24];
            auto [p, ec] = std::to_chars(buf, buf + sizeof buf,
                                         static_cast<std::int64_t>(d));
            (void)ec;
            out.append(buf, p);
        } else {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", d);
            out += buf;
        }
        break;
      }
      case Value::Kind::String:
        dumpString(v.asString(), out);
        break;
      case Value::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Value &e : v.asArray()) {
            if (!first)
                out += ',';
            first = false;
            dumpValue(e, out);
        }
        out += ']';
        break;
      }
      case Value::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, e] : v.asObject()) {
            if (!first)
                out += ',';
            first = false;
            dumpString(k, out);
            out += ':';
            dumpValue(e, out);
        }
        out += '}';
        break;
      }
    }
}

/** Recursive-descent parser over a byte range. */
class Parser
{
  public:
    Parser(const std::string &text, ParseError *err)
        : text_(text), err_(err)
    {}

    std::optional<Value>
    run()
    {
        skipWs();
        auto v = parseValue(0);
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing bytes after JSON value");
            return std::nullopt;
        }
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    void
    fail(const std::string &msg)
    {
        if (err_ != nullptr && err_->message.empty())
            *err_ = ParseError{msg, pos_};
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"')) {
            fail("expected '\"'");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return std::nullopt;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad hex digit in \\u escape");
                            return std::nullopt;
                        }
                    }
                    // Encode as UTF-8 (basic multilingual plane only; the
                    // schema never carries surrogate pairs).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return std::nullopt;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<Value>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        const std::size_t intStart = pos_;
        while (pos_ < text_.size()
               && std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed).
        if (pos_ - intStart > 1 && text_[intStart] == '0') {
            fail("malformed number");
            return std::nullopt;
        }
        bool isFloat = false;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            isFloat = true;
            ++pos_;
            while (pos_ < text_.size()
                   && std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            isFloat = true;
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size()
                   && std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string_view tok{text_.data() + start, pos_ - start};
        if (tok.empty() || tok == "-") {
            fail("malformed number");
            return std::nullopt;
        }
        if (!isFloat) {
            if (tok[0] == '-') {
                std::int64_t v = 0;
                auto [p, ec] =
                    std::from_chars(tok.data(), tok.data() + tok.size(), v);
                if (ec == std::errc() && p == tok.data() + tok.size())
                    return Value(v);
            } else {
                std::uint64_t v = 0;
                auto [p, ec] =
                    std::from_chars(tok.data(), tok.data() + tok.size(), v);
                if (ec == std::errc() && p == tok.data() + tok.size())
                    return Value(v);
            }
            // Integer overflow: fall through to double.
        }
        double d = 0.0;
        auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (ec != std::errc() || p != tok.data() + tok.size()) {
            fail("malformed number");
            return std::nullopt;
        }
        return Value(d);
    }

    std::optional<Value>
    parseValue(int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return std::nullopt;
        }
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            Object obj;
            skipWs();
            if (consume('}'))
                return Value(std::move(obj));
            for (;;) {
                skipWs();
                auto key = parseString();
                if (!key)
                    return std::nullopt;
                skipWs();
                if (!consume(':')) {
                    fail("expected ':' after object key");
                    return std::nullopt;
                }
                auto val = parseValue(depth + 1);
                if (!val)
                    return std::nullopt;
                obj.insert_or_assign(std::move(*key), std::move(*val));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return Value(std::move(obj));
                fail("expected ',' or '}' in object");
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            Array arr;
            skipWs();
            if (consume(']'))
                return Value(std::move(arr));
            for (;;) {
                auto val = parseValue(depth + 1);
                if (!val)
                    return std::nullopt;
                arr.push_back(std::move(*val));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return Value(std::move(arr));
                fail("expected ',' or ']' in array");
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return Value(std::move(*s));
        }
        if (c == 't') {
            if (literal("true"))
                return Value(true);
            fail("bad literal");
            return std::nullopt;
        }
        if (c == 'f') {
            if (literal("false"))
                return Value(false);
            fail("bad literal");
            return std::nullopt;
        }
        if (c == 'n') {
            if (literal("null"))
                return Value(nullptr);
            fail("bad literal");
            return std::nullopt;
        }
        return parseNumber();
    }

    const std::string &text_;
    ParseError *err_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
Value::dump() const
{
    std::string out;
    dumpValue(*this, out);
    return out;
}

std::optional<Value>
parse(const std::string &text, ParseError *err)
{
    if (err != nullptr)
        *err = ParseError{};
    return Parser(text, err).run();
}

} // namespace hpe::api::json
