/**
 * @file
 * The stable hpe::api façade: one value-typed request, one value-typed
 * result, one entry point.
 *
 * Every consumer of the simulator — the `run`/`compare`/`sweep`/`report`
 * CLI subcommands, the benches, and the hpe_serve daemon — describes an
 * experiment as an ExperimentRequest and executes it through
 * runExperiment().  A request is a pure value with JSON (de)serialization
 * and a **canonical fingerprint**: normalize() folds every accepted
 * spelling (name case, the legacy numeric --prefetch) onto one canonical
 * form, toJson() emits it with every field explicit and keys sorted, and
 * fingerprint() hashes exactly those bytes.  Two requests that mean the
 * same experiment therefore hash identically — which is what makes the
 * daemon's content-addressed result cache sound.
 *
 * The contract the equivalence test suite pins: a given request produces
 * byte-identical results (same trace digests, same stat values) whether
 * it is executed via the CLI, a parallel sweep, or the daemon, because
 * all three paths funnel through buildRunConfig()/runExperimentInspect().
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "api/json.hpp"
#include "sim/experiment.hpp"
#include "trace/interval_recorder.hpp"
#include "trace/trace_sink.hpp"

namespace hpe::api {

/** Chaos-injection slice of a request (mirrors ChaosConfig's knobs). */
struct ChaosRequest
{
    bool enabled = false;
    /** Injector seed; 0 = derive from the experiment seed (CLI rule). */
    std::uint64_t seed = 0;
    double pcieFail = 0.0;
    double pcieStall = 0.0;
    double serviceTimeout = 0.0;
    double shootdownDrop = 0.0;
    double walkError = 0.0;
};

/**
 * Everything one experiment depends on, as a serializable value.
 * Defaults equal the CLI defaults, so a request built from a bare
 * `hpe_sim run` and one parsed from `{}` JSON mean the same run.
 */
struct ExperimentRequest
{
    std::string app = "HSD";
    double scale = 1.0;
    std::uint64_t seed = 1;
    std::string policy = "HPE";
    double oversub = 0.75;
    /** Functional (exact counts) or timing (IPC, host load) simulator. */
    bool functional = false;
    unsigned walkLatency = 8;
    bool multiLevelWalker = false;
    /** Prefetcher kind name; normalize() lowers the legacy numeric
     *  spelling onto "sequential" + prefetchDegree. */
    std::string prefetch = "none";
    unsigned prefetchDegree = 4;
    unsigned faultBatch = 1;
    /**
     * Page-size axis, canonical "4k[,64k[,2m]]" spelling; "4k" = the
     * baseline.  Emitted into the canonical JSON only when non-default so
     * every pre-existing fingerprint is unchanged.
     */
    std::string pageSizes = "4k";
    /** Let the coalescer actually promote (else observe-only). */
    bool coalesce = false;
    ChaosRequest chaos{};
    bool degrade = false;
    bool validate = false;
    /** Compute the event-stream digest (attaches a TraceSink). */
    bool traceDigest = false;
    /** Event-kind filter of the attached sink (affects the digest). */
    std::string traceEvents = "all";
    std::size_t traceRing = 1u << 16;
    /** Interval length for the metrics timeline; 0 = no timeline. */
    std::uint64_t interval = 0;
    /** Include the full stats-registry CSV dump in the result. */
    bool stats = false;

    /**
     * Fold every accepted spelling onto the canonical one: registry-
     * canonical app/policy/prefetch names (case-insensitive input) and
     * the numeric legacy prefetch.  usageFatal() on unknown names —
     * callers that must not exit validate via fromJson() instead.
     */
    void normalize();

    /** Canonical JSON object (call normalize() first for canonical
     *  name spellings); every field explicit, keys sorted. */
    json::Value toJson() const;

    /**
     * Parse and validate a request object; unknown keys, type errors and
     * unknown names are reported through @p error (with the registry's
     * uniform wording) instead of exiting.  The returned request is
     * normalized.
     */
    static std::optional<ExperimentRequest> fromJson(const json::Value &v,
                                                     std::string &error);

    /**
     * Content fingerprint: FNV-1a over the canonical JSON bytes of the
     * normalized request, as 16 hex digits.  Equal fingerprints mean
     * "the same experiment" — the daemon's cache key.
     */
    std::string fingerprint() const;
};

/** Everything an experiment produces, as a serializable value. */
struct ExperimentResult
{
    bool functional = false;
    /** @{ functional-mode counters (PagingResult) */
    std::uint64_t references = 0;
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t prefetchUseful = 0;
    std::uint64_t prefetchWasted = 0;
    std::uint64_t prefetchLate = 0;
    double faultRate = 0.0;
    /** @} */
    /** @{ timing-mode metrics (TimingResult) */
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    double hostLoad = 0.0;
    /** @} */
    /** @{ requested attachments ("" / 0 when not requested) */
    std::string traceDigest;
    std::uint64_t traceEvents = 0;
    std::string intervalsCsv;
    std::string statsCsv;
    /** @} */

    json::Value toJson() const;
    static std::optional<ExperimentResult> fromJson(const json::Value &v,
                                                    std::string &error);
};

/** The RunConfig a normalized request denotes (the one config funnel). */
RunConfig buildRunConfig(const ExperimentRequest &req);

/**
 * Owned observability objects of one run, for callers that need more
 * than the serializable result (the CLI exports JSONL/Chrome traces from
 * the sink; `report` renders the recorder's samples as a table).
 */
struct ExperimentArtifacts
{
    std::unique_ptr<trace::TraceSink> sink;
    std::unique_ptr<trace::IntervalRecorder> intervals;
    InspectableRun run;
};

/**
 * Execute @p req and return its result.  @p prebuilt optionally supplies
 * the workload trace (the sweep builds each app's trace once and shares
 * it read-only across cells); it must match req.app/scale/seed.
 */
ExperimentResult runExperiment(const ExperimentRequest &req,
                               const Trace *prebuilt = nullptr);

/**
 * runExperiment() keeping the sink/recorder/policy alive in @p artifacts.
 * @p forceSink attaches a TraceSink even when req.traceDigest is false
 * (the CLI's --trace/--trace-chrome need the events, not the digest).
 */
ExperimentResult runExperimentInspect(const ExperimentRequest &req,
                                      ExperimentArtifacts &artifacts,
                                      const Trace *prebuilt = nullptr,
                                      bool forceSink = false);

} // namespace hpe::api
