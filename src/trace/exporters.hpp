/**
 * @file
 * Trace exporters: JSONL (one event object per line, with a trailing
 * summary record) and the Chrome about://tracing JSON array format, so a
 * captured run can be eyeballed in a browser timeline.
 *
 * Both exporters walk the sink's ring — the most recent events — while
 * the summary carries the digest over *all* accepted events, so a file is
 * self-describing about any overflow truncation.
 */

#pragma once

#include <ostream>

#include "trace/trace_sink.hpp"

namespace hpe::trace {

/**
 * Write one JSON object per line:
 *   {"t":12,"kind":"eviction","sub":"","page":7,"value":1}
 * followed by a summary line:
 *   {"summary":{"events":N,"dropped":D,"digest":"<16 hex>"}}
 */
inline void
writeJsonl(const TraceSink &sink, std::ostream &os)
{
    for (const TraceEvent &ev : sink.events()) {
        os << "{\"t\":" << ev.time << ",\"kind\":\""
           << eventKindName(ev.kind) << "\"";
        if (const char *sub = subKindName(ev.kind, ev.sub); *sub != '\0')
            os << ",\"sub\":\"" << sub << "\"";
        os << ",\"page\":" << ev.page << ",\"value\":" << ev.value << "}\n";
    }
    os << "{\"summary\":{\"events\":" << sink.emitted() << ",\"dropped\":"
       << sink.dropped() << ",\"digest\":\"" << sink.digestHexString()
       << "\"}}\n";
}

/**
 * Write the Chrome trace-event JSON format (load via about://tracing or
 * ui.perfetto.dev).  Events become instant events on one thread per event
 * kind; the sink clock maps to microseconds 1:1.
 */
inline void
writeChromeTrace(const TraceSink &sink, std::ostream &os)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const TraceEvent &ev : sink.events()) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << eventKindName(ev.kind);
        if (const char *sub = subKindName(ev.kind, ev.sub); *sub != '\0')
            os << ":" << sub;
        os << "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":"
           << static_cast<unsigned>(ev.kind) << ",\"ts\":" << ev.time
           << ",\"args\":{\"page\":" << ev.page << ",\"value\":" << ev.value
           << "}}";
    }
    if (!first)
        os << "\n";
    os << "],\"metadata\":{\"events\":" << sink.emitted() << ",\"dropped\":"
       << sink.dropped() << ",\"digest\":\"" << sink.digestHexString()
       << "\"}}\n";
}

} // namespace hpe::trace
