/**
 * @file
 * Ring-buffered structured-event sink with a running FNV-1a digest.
 *
 * Components emit through a nullable `TraceSink *`; with no sink attached
 * the hot path costs exactly one pointer test and allocates nothing.  When
 * attached, each accepted event
 *
 *  - folds into a 64-bit FNV-1a digest (over an explicit little-endian
 *    byte encoding, so the value is platform-stable), and
 *  - lands in a fixed-capacity ring that keeps the most recent events for
 *    export (overflow overwrites the oldest and is counted, never fatal).
 *
 * The digest covers *every* accepted event, including ones the ring has
 * since dropped — two runs with different ring capacities still agree on
 * the digest, which is what the CI golden-trace job compares.
 *
 * Sinks are strictly per-simulation objects: a parallel sweep gives each
 * job its own sink and reduces the digests in job-index order, so any
 * derived output is byte-identical for every --jobs value.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/log.hpp"
#include "trace/events.hpp"

namespace hpe::trace {

/** 64-bit FNV-1a over explicit little-endian words (platform-stable). */
class Fnv1a
{
  public:
    /** Fold one 64-bit value, least-significant byte first. */
    void
    fold(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xffu;
            hash_ *= kPrime;
        }
    }

    std::uint64_t value() const { return hash_; }

  private:
    static constexpr std::uint64_t kOffset = 14695981039346656037ULL;
    static constexpr std::uint64_t kPrime = 1099511628211ULL;
    std::uint64_t hash_ = kOffset;
};

/** Format @p digest as the canonical 16-hex-digit string. */
inline std::string
digestHex(std::uint64_t digest)
{
    static const char *hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[digest & 0xf];
        digest >>= 4;
    }
    return out;
}

/**
 * Reduce per-job digests to one value, order-sensitively — callers must
 * pass them in job-index order so the result is parallelism-independent.
 */
inline std::uint64_t
combineDigests(std::span<const std::uint64_t> digests)
{
    Fnv1a fnv;
    for (std::uint64_t d : digests)
        fnv.fold(d);
    return fnv.value();
}

/** Ring-buffered event sink; see file comment for the contract. */
class TraceSink
{
  public:
    struct Config
    {
        /** Events retained for export; older ones are digest-only. */
        std::size_t ringCapacity = 1u << 16;
        /** Kinds to accept; others are ignored entirely. */
        EventMask mask = kAllEvents;
    };

    TraceSink() : TraceSink(Config{}) {}

    explicit TraceSink(const Config &cfg) : cfg_(cfg)
    {
        HPE_ASSERT(cfg_.ringCapacity > 0, "trace ring capacity must be > 0");
        ring_.reserve(cfg_.ringCapacity);
    }

    /** Does the filter accept @p kind?  Callers may pre-test to skip
     *  argument computation; emit() re-checks regardless. */
    bool wants(EventKind kind) const { return (cfg_.mask & maskOf(kind)) != 0; }

    /**
     * Advance the sink clock to @p t (monotonic; earlier values are
     * ignored).  The component that owns the run's notion of time calls
     * this — the paging simulator per reference, the timing driver per
     * service — so emitters without a clock can use emit().
     */
    void
    advanceTo(std::uint64_t t)
    {
        if (t > now_)
            now_ = t;
    }

    /** Current sink clock. */
    std::uint64_t now() const { return now_; }

    /** Emit at the sink clock's current time. */
    void
    emit(EventKind kind, std::uint8_t sub, std::uint64_t page, std::uint64_t value)
    {
        emitAt(now_, kind, sub, page, value);
    }

    /** Emit with an explicit timestamp (component owns a clock). */
    void
    emitAt(std::uint64_t time, EventKind kind, std::uint8_t sub,
           std::uint64_t page, std::uint64_t value)
    {
        if (!wants(kind))
            return;
        digest_.fold((static_cast<std::uint64_t>(kind) << 8)
                     | static_cast<std::uint64_t>(sub));
        digest_.fold(time);
        digest_.fold(page);
        digest_.fold(value);
        ++emitted_;

        const TraceEvent ev{time, page, value, kind, sub};
        if (ring_.size() < cfg_.ringCapacity) {
            ring_.push_back(ev);
        } else {
            ring_[head_] = ev;
            head_ = (head_ + 1) % cfg_.ringCapacity;
            ++dropped_;
        }
    }

    /** Digest over every accepted event so far. */
    std::uint64_t digest() const { return digest_.value(); }

    /** digest() formatted as 16 hex digits. */
    std::string digestHexString() const { return digestHex(digest()); }

    /** Events accepted (filter passed), including ring-dropped ones. */
    std::uint64_t emitted() const { return emitted_; }

    /** Events overwritten by ring overflow. */
    std::uint64_t dropped() const { return dropped_; }

    const Config &config() const { return cfg_; }

    /** Ring contents in emission order (oldest retained event first). */
    std::vector<TraceEvent>
    events() const
    {
        std::vector<TraceEvent> out;
        out.reserve(ring_.size());
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(head_ + i) % ring_.size()]);
        return out;
    }

  private:
    Config cfg_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; ///< oldest element once the ring is full
    std::uint64_t now_ = 0;
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;
    Fnv1a digest_;
};

} // namespace hpe::trace
