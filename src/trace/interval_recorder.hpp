/**
 * @file
 * Interval metrics timeline: periodic snapshots of registered counters
 * and gauges, every N references.
 *
 * The paper's analysis is time-resolved — which intervals fault, evict,
 * and refault, and how occupancy and HPE's structures evolve — so the
 * recorder turns the end-of-run aggregate counters into a time series:
 *
 *  - counters (monotonic Counter references) are reported as per-interval
 *    deltas;
 *  - gauges (callbacks) are sampled at the interval boundary (point in
 *    time, e.g. resident pages or chain length).
 *
 * Boundary semantics, pinned by tests: a run of 0 references produces no
 * samples; an exact multiple of N produces exactly refs/N samples; a
 * partial tail produces one final short sample when finish() runs.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace hpe::trace {

/** Periodic counter/gauge snapshotter; see file comment. */
class IntervalRecorder
{
  public:
    /** One row of the timeline; values align with columns(). */
    struct Sample
    {
        std::uint64_t index = 0;    ///< interval number, 0-based
        std::uint64_t startRef = 0; ///< first reference of the interval
        std::uint64_t endRef = 0;   ///< one past the last reference
        std::vector<std::uint64_t> values;
    };

    using Gauge = std::function<std::uint64_t()>;

    /** @param every interval length in references; must be positive. */
    explicit IntervalRecorder(std::uint64_t every) : every_(every)
    {
        if (every_ == 0)
            fatal("interval length must be positive");
    }

    /** Add a monotonic counter column (reported as per-interval delta). */
    void
    addCounter(std::string column, const Counter &counter)
    {
        HPE_ASSERT(samples_.empty() && refs_ == 0,
                   "interval columns must be added before the first reference");
        counterNames_.push_back(std::move(column));
        counters_.push_back(&counter);
        lastValues_.push_back(0);
    }

    /** Add a gauge column (sampled at each boundary). */
    void
    addGauge(std::string column, Gauge gauge)
    {
        HPE_ASSERT(samples_.empty() && refs_ == 0,
                   "interval columns must be added before the first reference");
        gaugeNames_.push_back(std::move(column));
        gauges_.push_back(std::move(gauge));
    }

    /** Account one reference; snapshots when the interval fills. */
    void
    onReference()
    {
        ++refs_;
        if (refs_ - intervalStart_ == every_)
            snapshot();
    }

    /** Flush a partial tail interval (idempotent; call at end of run). */
    void
    finish()
    {
        if (refs_ > intervalStart_)
            snapshot();
    }

    /** Column names in value order: counters first, then gauges. */
    std::vector<std::string>
    columns() const
    {
        std::vector<std::string> cols = counterNames_;
        cols.insert(cols.end(), gaugeNames_.begin(), gaugeNames_.end());
        return cols;
    }

    const std::vector<Sample> &samples() const { return samples_; }
    std::uint64_t references() const { return refs_; }
    std::uint64_t intervalLength() const { return every_; }

    /** Write the timeline as CSV: interval,start_ref,end_ref,columns... */
    void
    writeCsv(std::ostream &os) const
    {
        os << "interval,start_ref,end_ref";
        for (const std::string &col : columns())
            os << "," << col;
        os << "\n";
        for (const Sample &s : samples_) {
            os << s.index << "," << s.startRef << "," << s.endRef;
            for (std::uint64_t v : s.values)
                os << "," << v;
            os << "\n";
        }
    }

  private:
    void
    snapshot()
    {
        Sample s;
        s.index = samples_.size();
        s.startRef = intervalStart_;
        s.endRef = refs_;
        s.values.reserve(counters_.size() + gauges_.size());
        for (std::size_t i = 0; i < counters_.size(); ++i) {
            const std::uint64_t v = counters_[i]->value();
            s.values.push_back(v - lastValues_[i]);
            lastValues_[i] = v;
        }
        for (const Gauge &g : gauges_)
            s.values.push_back(g());
        samples_.push_back(std::move(s));
        intervalStart_ = refs_;
    }

    std::uint64_t every_;
    std::uint64_t refs_ = 0;
    std::uint64_t intervalStart_ = 0;

    std::vector<std::string> counterNames_;
    std::vector<const Counter *> counters_;
    std::vector<std::uint64_t> lastValues_;
    std::vector<std::string> gaugeNames_;
    std::vector<Gauge> gauges_;

    std::vector<Sample> samples_;
};

} // namespace hpe::trace
