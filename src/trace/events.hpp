/**
 * @file
 * The structured-event vocabulary of the hpe::trace subsystem.
 *
 * Every observable state transition of the memory system maps onto one of
 * a small, closed set of typed events (which pages fault, get evicted,
 * migrate, move between hot/cold states, and so on).  An event is four
 * integers — kind, sub-kind, subject, value — plus a timestamp, so emission
 * is a handful of stores and the digest over the stream is platform-stable.
 *
 * Timestamps are *reference indices* in the functional simulator and
 * *cycles* in the timing simulator; both are deterministic for a fixed
 * (app, policy, seed), which is what makes trace digests usable as CI
 * golden values.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/log.hpp"

namespace hpe::trace {

/** Typed event kinds, one bit each in an EventMask. */
enum class EventKind : std::uint8_t {
    FarFault = 0,   ///< page fault reached the driver (value bit0: refault)
    Eviction,       ///< a victim left GPU memory (value bit0: dirty)
    Migration,      ///< a page became resident (sub 0: fault, 1: prefetch)
    Promotion,      ///< HIR→LIR / chain re-activation (sub: PromotionScope)
    Demotion,       ///< LIR→HIR (sub: PromotionScope)
    ChainOp,        ///< page-set chain structure change (sub: ChainOpKind)
    TlbShootdown,   ///< translations of an evicted page invalidated
    PcieTransfer,   ///< link occupied (value: bytes)
    ChaosInjection, ///< injected fault (sub: ChaosKind)
    Degradation,    ///< thrashing-degradation transition (sub 0: enter, 1: exit)
    PolicySwitch,   ///< meta-policy changed its active candidate (sub: MetaSelector)
    Coalesce,       ///< huge-page promotion attempt (sub: CoalesceKind, value: span)
    Splinter,       ///< huge page splintered back to 4 KiB (value: span)
    kCount
};

/** Sub-kind values of PolicySwitch events (which selector decided). */
enum class MetaSelector : std::uint8_t {
    Duel = 0,   ///< set-dueling shadow-fault counters
    Bandit = 1, ///< epsilon-greedy/UCB bandit on interval fault rate
};

/** Scope discriminator for Promotion/Demotion events. */
enum class PromotionScope : std::uint8_t {
    ClockProPage = 0, ///< CLOCK-Pro cold(HIR) <-> hot(LIR) page transition
    HpePageSet = 1,   ///< HPE chain entry re-promoted to the new partition
};

/** Sub-kind values of ChainOp events. */
enum class ChainOpKind : std::uint8_t {
    Insert = 0,  ///< a page set entered the chain
    Remove = 1,  ///< a page set left the chain (all members evicted)
    Divide = 2,  ///< page-set division applied (§IV-C)
    Rotate = 3,  ///< interval rotation (P1 <- P2, P2 <- tail)
};

/** Sub-kind values of Coalesce events (how the promotion resolved). */
enum class CoalesceKind : std::uint8_t {
    InPlace = 0, ///< the run's frames were already aligned and contiguous
    Remap = 1,   ///< subpages remapped into a freshly claimed aligned run
    Blocked = 2, ///< fragmentation left no aligned free run (no promotion)
};

/** Sub-kind values of ChaosInjection events (one per injector stream). */
enum class ChaosKind : std::uint8_t {
    PcieFail = 0,
    PcieStall = 1,
    ServiceTimeout = 2,
    ShootdownDrop = 3,
    WalkError = 4,
};

/** One traced event.  POD; 40 bytes. */
struct TraceEvent
{
    std::uint64_t time = 0;  ///< refs (functional) or cycles (timing)
    std::uint64_t page = 0;  ///< subject: page, page set, or 0
    std::uint64_t value = 0; ///< payload: bytes, flags, or 0
    EventKind kind = EventKind::FarFault;
    std::uint8_t sub = 0;    ///< kind-specific discriminator
};

/** Bit set of EventKind values (bit n = kind n). */
using EventMask = std::uint32_t;

constexpr EventMask
maskOf(EventKind kind)
{
    return EventMask{1} << static_cast<unsigned>(kind);
}

inline constexpr EventMask kAllEvents =
    (EventMask{1} << static_cast<unsigned>(EventKind::kCount)) - 1;

/** Stable wire/CLI name of @p kind ("far_fault", "eviction", ...). */
inline const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::FarFault:       return "far_fault";
      case EventKind::Eviction:       return "eviction";
      case EventKind::Migration:      return "migration";
      case EventKind::Promotion:      return "promotion";
      case EventKind::Demotion:       return "demotion";
      case EventKind::ChainOp:        return "chain_op";
      case EventKind::TlbShootdown:   return "tlb_shootdown";
      case EventKind::PcieTransfer:   return "pcie_transfer";
      case EventKind::ChaosInjection: return "chaos";
      case EventKind::Degradation:    return "degradation";
      case EventKind::PolicySwitch:   return "policy_switch";
      case EventKind::Coalesce:       return "coalesce";
      case EventKind::Splinter:       return "splinter";
      case EventKind::kCount:         break;
    }
    return "?";
}

/** Inverse of eventKindName(); nullopt for unknown names. */
inline std::optional<EventKind>
eventKindByName(std::string_view name)
{
    for (unsigned k = 0; k < static_cast<unsigned>(EventKind::kCount); ++k)
        if (name == eventKindName(static_cast<EventKind>(k)))
            return static_cast<EventKind>(k);
    return std::nullopt;
}

/** Human-readable sub-kind label for reports; "" when unremarkable. */
inline const char *
subKindName(EventKind kind, std::uint8_t sub)
{
    switch (kind) {
      case EventKind::Migration:
        return sub == 1 ? "prefetch" : "fault";
      case EventKind::Promotion:
      case EventKind::Demotion:
        return sub == static_cast<std::uint8_t>(PromotionScope::HpePageSet)
                   ? "page_set"
                   : "page";
      case EventKind::ChainOp:
        switch (static_cast<ChainOpKind>(sub)) {
          case ChainOpKind::Insert: return "insert";
          case ChainOpKind::Remove: return "remove";
          case ChainOpKind::Divide: return "divide";
          case ChainOpKind::Rotate: return "rotate";
        }
        return "?";
      case EventKind::ChaosInjection:
        switch (static_cast<ChaosKind>(sub)) {
          case ChaosKind::PcieFail:       return "pcie_fail";
          case ChaosKind::PcieStall:      return "pcie_stall";
          case ChaosKind::ServiceTimeout: return "service_timeout";
          case ChaosKind::ShootdownDrop:  return "shootdown_drop";
          case ChaosKind::WalkError:      return "walk_error";
        }
        return "?";
      case EventKind::Degradation:
        return sub == 0 ? "enter" : "exit";
      case EventKind::PolicySwitch:
        return sub == static_cast<std::uint8_t>(MetaSelector::Bandit)
                   ? "bandit"
                   : "duel";
      case EventKind::Coalesce:
        switch (static_cast<CoalesceKind>(sub)) {
          case CoalesceKind::InPlace: return "in_place";
          case CoalesceKind::Remap:   return "remap";
          case CoalesceKind::Blocked: return "blocked";
        }
        return "?";
      default:
        return "";
    }
}

/**
 * Parse a comma-separated list of event-kind names into a mask
 * ("far_fault,eviction"); "all" selects every kind.  fatal() on an
 * unknown name, listing the valid ones.
 */
inline EventMask
parseEventMask(std::string_view list)
{
    if (list.empty() || list == "all")
        return kAllEvents;
    EventMask mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string_view name = list.substr(
            pos, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - pos);
        if (!name.empty()) {
            const auto kind = eventKindByName(name);
            if (!kind.has_value()) {
                std::string known;
                for (unsigned k = 0;
                     k < static_cast<unsigned>(EventKind::kCount); ++k) {
                    if (!known.empty())
                        known += ",";
                    known += eventKindName(static_cast<EventKind>(k));
                }
                fatal("unknown trace event '{}' (expected one of {})",
                      std::string(name), known);
            }
            mask |= maskOf(*kind);
        }
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    if (mask == 0)
        fatal("empty trace event list");
    return mask;
}

} // namespace hpe::trace
