/**
 * @file
 * Sequential block prefetcher: after a demand fault on page p, propose the
 * next `degree` pages of p's aligned `blockPages` block.
 *
 * This is the NVIDIA driver's basic-block heuristic and replicates the
 * legacy inline loop of GpuDriver exactly: the window is `degree` pages
 * starting at p+1, clipped at the block boundary; resident or queued
 * pages inside the window are skipped by the caller without extending it.
 */

#pragma once

#include "prefetch/prefetcher.hpp"

namespace hpe::prefetch {

/** Next-N-pages-in-block prefetcher (stateless). */
class SequentialPrefetcher final : public Prefetcher
{
  public:
    explicit SequentialPrefetcher(const PrefetchConfig &cfg) : cfg_(cfg) {}

    const char *name() const override { return "sequential"; }

    void
    candidates(PageId page, std::uint32_t /*stream*/,
               const ResidentFn & /*resident*/,
               std::vector<PageId> &out) override
    {
        const PageId block_end =
            (page / cfg_.blockPages + 1) * cfg_.blockPages;
        PageId q = page + 1;
        for (unsigned n = 0; n < cfg_.degree && q < block_end; ++n, ++q)
            out.push_back(q);
    }

  private:
    const PrefetchConfig cfg_;
};

} // namespace hpe::prefetch
