/**
 * @file
 * Fault-buffer batching window shared by the timing driver and the
 * functional paging simulator.
 *
 * Real UVM runtimes do not take one interrupt per far-fault: the GPU
 * appends faults to a hardware fault buffer and the host drains it in
 * batches, charging one (amortized) service initiation per batch rather
 * than per fault.  FaultBatcher is the bookkeeping half of that model: a
 * bounded arrival-order window of pending demand faults with O(1)
 * membership tests.  What "service the batch" means is the caller's
 * business — the timing GpuDriver turns a drained batch into one
 * pipelined service sequence, the functional simulator replays the batch
 * through handleFault in arrival order (stamping each fault with its own
 * arrival reference, which keeps batched and unbatched event streams
 * byte-identical when prefetching is off).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "mem/page_index.hpp"

namespace hpe::prefetch {

/** One pending demand fault in the batching window. */
struct PendingFault
{
    PageId page = kInvalidId;
    /** The faulting reference was a store (functional mode only). */
    bool write = false;
    /** Arrival clock: reference index (functional) or unused (timing). */
    std::uint64_t arrival = 0;
};

/** Bounded arrival-order window of pending demand faults. */
class FaultBatcher
{
  public:
    /** Default window mirrors the 256-entry hardware fault buffer. */
    static constexpr unsigned kDefaultWindow = 256;

    explicit FaultBatcher(unsigned window = kDefaultWindow) : window_(window)
    {
        HPE_ASSERT(window_ > 0, "fault batch window must be positive");
        pending_.reserve(window_);
    }

    /**
     * Append a fault to the window.  @p page must not already be pending
     * (the caller merges duplicate faults or flushes first).
     * @return true when the window is now full (time to flush).
     */
    bool
    push(PageId page, bool write = false, std::uint64_t arrival = 0)
    {
        HPE_ASSERT(!contains(page), "page {:#x} already pending", page);
        HPE_ASSERT(pending_.size() < window_, "push into a full batch");
        pending_.push_back(PendingFault{page, write, arrival});
        members_.insert(page);
        return pending_.size() >= window_;
    }

    /** Is a fault on @p page already pending in this window? */
    bool contains(PageId page) const { return members_.contains(page); }

    /**
     * Drain the window: move out every pending fault in arrival order.
     * The batcher is empty afterwards.
     */
    std::vector<PendingFault>
    flush()
    {
        for (const PendingFault &pf : pending_)
            members_.erase(pf.page);
        std::vector<PendingFault> out;
        out.swap(pending_);
        pending_.reserve(window_);
        return out;
    }

    std::size_t size() const { return pending_.size(); }
    bool empty() const { return pending_.empty(); }
    bool full() const { return pending_.size() >= window_; }
    unsigned window() const { return window_; }

  private:
    unsigned window_;
    std::vector<PendingFault> pending_;
    DensePageSet members_;
};

} // namespace hpe::prefetch
