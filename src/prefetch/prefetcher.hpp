/**
 * @file
 * Pluggable speculative-prefetch interface for the UVM driver.
 *
 * Real UVM runtimes do not service far-faults page by page: they drain the
 * GPU's fault buffer in batches and speculatively migrate neighbouring
 * pages alongside each demand page.  This subsystem models the speculation
 * half: a Prefetcher proposes candidate pages after every serviced demand
 * fault, and the caller (the timing GpuDriver or the functional paging
 * simulator) migrates them through UvmMemoryManager::prefetchIn under the
 * standing contract — prefetching only fills *free* frames, never evicts,
 * and prefetched pages enter the policy's cold/HIR tier (onPrefetchIn)
 * rather than its protected tier, so speculation cannot pollute the
 * working set.
 *
 * Four implementations, selected PolicyFactory-style by PrefetchKind:
 *
 *  - none:       no prefetcher object at all; bit-for-bit identical to
 *                the paper's demand-paging configuration;
 *  - sequential: the next N pages of the same aligned 16-page block (the
 *                NVIDIA driver's basic-block heuristic, and exactly the
 *                semantics of the legacy DriverConfig::prefetchDegree);
 *  - stride:     per-stream (per-warp) stride detection with a small
 *                confidence counter;
 *  - density:    NVIDIA-style tree prefetcher over 64 KiB basins — once
 *                a basin is mostly faulted in, fetch the rest of it.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace hpe::prefetch {

/** Which prefetcher the driver runs after each serviced demand fault. */
enum class PrefetchKind : std::uint8_t { None = 0, Sequential, Stride, Density };

/** Stable CLI/report name of @p kind ("none", "sequential", ...). */
const char *prefetchKindName(PrefetchKind kind);

/** Inverse of prefetchKindName(); nullopt for unknown names. */
std::optional<PrefetchKind> prefetchKindByName(std::string_view name);

/** Every kind, in registration order (None first). */
const std::vector<PrefetchKind> &allPrefetchKinds();

/** Prefetcher selection + tuning knobs (carried inside DriverConfig). */
struct PrefetchConfig
{
    PrefetchKind kind = PrefetchKind::None;
    /** Candidate budget per serviced fault (window the driver examines). */
    unsigned degree = 4;
    /** Aligned block the sequential prefetcher stays within (pages). */
    unsigned blockPages = 16;
    /** Basin size of the density prefetcher (16 x 4 KiB = 64 KiB). */
    unsigned basinPages = 16;
    /** Faulted fraction of a basin that triggers the density fetch. */
    double densityThreshold = 0.5;
    /** Consecutive equal deltas before the stride prefetcher fires. */
    unsigned strideConfidence = 2;

    void validate() const;
};

/**
 * Abstract prefetch-candidate generator.
 *
 * Call protocol:
 *  - candidates(): a demand fault on @p page from @p stream was just
 *    serviced; append up to the configured window of candidate pages in
 *    preference order.  Candidates may be resident or already faulting —
 *    the caller filters (resident/queued candidates are skipped without
 *    consuming budget, matching the legacy sequential loop) and stops at
 *    the first NoFreeFrame.
 *
 * Implementations keep per-stream state only; they are strictly
 * per-simulation objects (one per GpuDriver / runPaging call), so the
 * parallel sweep engine never shares one across jobs.
 */
class Prefetcher
{
  public:
    /** Residency probe the generator may consult (density does). */
    using ResidentFn = std::function<bool(PageId)>;

    virtual ~Prefetcher() = default;

    /** The kind name, for stats/report labels. */
    virtual const char *name() const = 0;

    /** Append candidate pages for a serviced fault; see class comment. */
    virtual void candidates(PageId page, std::uint32_t stream,
                            const ResidentFn &resident,
                            std::vector<PageId> &out) = 0;
};

/**
 * Build the configured prefetcher; nullptr for PrefetchKind::None (the
 * caller then skips the speculation path entirely, keeping the disabled
 * configuration bit-identical to the pre-prefetch driver).
 */
std::unique_ptr<Prefetcher> makePrefetcher(const PrefetchConfig &cfg);

} // namespace hpe::prefetch
