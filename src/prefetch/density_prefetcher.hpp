/**
 * @file
 * Density (tree) prefetcher over 64 KiB basins, after the NVIDIA UVM
 * driver's tree-based prefetching: faults are counted per aligned basin
 * of `basinPages` pages, and once the faulted fraction of a basin reaches
 * the density threshold the remainder of the basin is fetched — the
 * intuition being that a half-touched 64 KiB region will almost certainly
 * be touched entirely.
 *
 * Candidates are the basin's not-yet-faulted pages in ascending address
 * order, capped at the configured degree per serviced fault; pages that
 * are already resident (e.g. fetched by an earlier trigger) are filtered
 * by the caller at no budget cost.
 */

#pragma once

#include <bit>
#include <unordered_map>

#include "common/log.hpp"
#include "prefetch/prefetcher.hpp"

namespace hpe::prefetch {

/** Basin-occupancy threshold prefetcher (NVIDIA-style, one tree level). */
class DensityPrefetcher final : public Prefetcher
{
  public:
    explicit DensityPrefetcher(const PrefetchConfig &cfg) : cfg_(cfg)
    {
        HPE_ASSERT(cfg_.basinPages >= 2 && cfg_.basinPages <= 64,
                   "density basin must hold 2..64 pages, got {}",
                   cfg_.basinPages);
    }

    const char *name() const override { return "density"; }

    void
    candidates(PageId page, std::uint32_t /*stream*/,
               const ResidentFn &resident, std::vector<PageId> &out) override
    {
        const PageId basin = page / cfg_.basinPages;
        const std::uint32_t offset =
            static_cast<std::uint32_t>(page % cfg_.basinPages);
        std::uint64_t &faulted = basins_[basin];
        faulted |= std::uint64_t{1} << offset;

        const auto occupancy = static_cast<unsigned>(std::popcount(faulted));
        if (static_cast<double>(occupancy)
                < cfg_.densityThreshold * static_cast<double>(cfg_.basinPages))
            return;

        const PageId base = basin * cfg_.basinPages;
        unsigned proposed = 0;
        for (std::uint32_t off = 0;
             off < cfg_.basinPages && proposed < cfg_.degree; ++off) {
            if ((faulted >> off) & 1)
                continue;
            const PageId q = base + off;
            if (resident(q))
                continue;
            out.push_back(q);
            ++proposed;
        }
    }

  private:
    const PrefetchConfig cfg_;
    /** Demand-faulted pages per basin (bit per page offset). */
    std::unordered_map<PageId, std::uint64_t> basins_;
};

} // namespace hpe::prefetch
