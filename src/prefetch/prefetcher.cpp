#include "prefetch/prefetcher.hpp"

#include <bit>

#include "common/log.hpp"
#include "prefetch/density_prefetcher.hpp"
#include "prefetch/sequential_prefetcher.hpp"
#include "prefetch/stride_prefetcher.hpp"

namespace hpe::prefetch {

const char *
prefetchKindName(PrefetchKind kind)
{
    switch (kind) {
      case PrefetchKind::None:       return "none";
      case PrefetchKind::Sequential: return "sequential";
      case PrefetchKind::Stride:     return "stride";
      case PrefetchKind::Density:    return "density";
    }
    return "?";
}

std::optional<PrefetchKind>
prefetchKindByName(std::string_view name)
{
    for (PrefetchKind kind : allPrefetchKinds())
        if (name == prefetchKindName(kind))
            return kind;
    return std::nullopt;
}

const std::vector<PrefetchKind> &
allPrefetchKinds()
{
    static const std::vector<PrefetchKind> kinds = {
        PrefetchKind::None, PrefetchKind::Sequential, PrefetchKind::Stride,
        PrefetchKind::Density};
    return kinds;
}

void
PrefetchConfig::validate() const
{
    HPE_ASSERT(blockPages > 0 && std::has_single_bit(std::uint64_t{blockPages}),
               "prefetch block must be a power of two, got {}", blockPages);
    HPE_ASSERT(basinPages >= 2 && basinPages <= 64,
               "density basin must hold 2..64 pages, got {}", basinPages);
    HPE_ASSERT(densityThreshold > 0.0 && densityThreshold <= 1.0,
               "density threshold must be in (0,1], got {}", densityThreshold);
    HPE_ASSERT(strideConfidence > 0, "stride confidence must be positive");
}

std::unique_ptr<Prefetcher>
makePrefetcher(const PrefetchConfig &cfg)
{
    if (cfg.kind == PrefetchKind::None)
        return nullptr;
    cfg.validate();
    switch (cfg.kind) {
      case PrefetchKind::Sequential:
        return std::make_unique<SequentialPrefetcher>(cfg);
      case PrefetchKind::Stride:
        return std::make_unique<StridePrefetcher>(cfg);
      case PrefetchKind::Density:
        return std::make_unique<DensityPrefetcher>(cfg);
      case PrefetchKind::None:
        break;
    }
    panic("unhandled prefetch kind {}", static_cast<int>(cfg.kind));
}

} // namespace hpe::prefetch
