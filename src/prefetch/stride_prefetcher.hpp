/**
 * @file
 * Per-stream stride prefetcher.
 *
 * Each fault stream (a warp in the timing simulator, the single reference
 * stream in the functional simulator) carries a last-fault page, a
 * candidate stride, and a saturating confidence counter.  Two consecutive
 * equal deltas (configurable) arm the stream; an armed stream proposes
 * page + k*stride for k = 1..degree.  A mispredicted delta re-trains
 * immediately, so irregular streams degrade to no speculation rather
 * than to wrong speculation.
 */

#pragma once

#include <unordered_map>

#include "prefetch/prefetcher.hpp"

namespace hpe::prefetch {

/** Classic reference-prediction-table stride prefetcher. */
class StridePrefetcher final : public Prefetcher
{
  public:
    explicit StridePrefetcher(const PrefetchConfig &cfg) : cfg_(cfg) {}

    const char *name() const override { return "stride"; }

    void
    candidates(PageId page, std::uint32_t stream,
               const ResidentFn & /*resident*/,
               std::vector<PageId> &out) override
    {
        Stream &s = streams_[stream];
        if (s.valid) {
            const std::int64_t delta = static_cast<std::int64_t>(page)
                                       - static_cast<std::int64_t>(s.lastPage);
            if (delta == s.stride && delta != 0) {
                if (s.confidence < cfg_.strideConfidence)
                    ++s.confidence;
            } else {
                s.stride = delta;
                s.confidence = delta != 0 ? 1 : 0;
            }
        }
        s.lastPage = page;
        s.valid = true;

        if (s.confidence < cfg_.strideConfidence)
            return;
        std::int64_t q = static_cast<std::int64_t>(page);
        for (unsigned k = 0; k < cfg_.degree; ++k) {
            q += s.stride;
            if (q < 0)
                break; // negative stride ran off the address space
            out.push_back(static_cast<PageId>(q));
        }
    }

  private:
    struct Stream
    {
        PageId lastPage = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        bool valid = false;
    };

    const PrefetchConfig cfg_;
    std::unordered_map<std::uint32_t, Stream> streams_;
};

} // namespace hpe::prefetch
