#include "serve/result_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/log.hpp"

namespace hpe::serve {

namespace {

/** FNV-1a 64 over raw bytes (the frame checksum). */
std::uint64_t
fnv1aBytes(const char *data, std::size_t size)
{
    constexpr std::uint64_t kOffset = 1469598103934665603ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    std::uint64_t hash = kOffset;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= kPrime;
    }
    return hash;
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

/** Write all of @p data to @p fd; false on any error. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** fsync the directory so renames/creates within it are durable. */
void
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

/** Parse "journal-<seq>.log"; nullopt for anything else. */
std::optional<std::uint64_t>
parseSegmentName(const std::string &name)
{
    constexpr const char *kPrefix = "journal-";
    constexpr const char *kSuffix = ".log";
    if (name.rfind(kPrefix, 0) != 0)
        return std::nullopt;
    const std::size_t prefixLen = std::strlen(kPrefix);
    const std::size_t suffixLen = std::strlen(kSuffix);
    if (name.size() <= prefixLen + suffixLen)
        return std::nullopt;
    if (name.compare(name.size() - suffixLen, suffixLen, kSuffix) != 0)
        return std::nullopt;
    const std::string digits =
        name.substr(prefixLen, name.size() - prefixLen - suffixLen);
    if (digits.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    return std::strtoull(digits.c_str(), nullptr, 10);
}

} // namespace

ResultStore::ResultStore(const ResultStoreConfig &cfg) : cfg_(cfg) {}

ResultStore::~ResultStore() { close(); }

std::string
ResultStore::encodeFrame(const std::string &fingerprint,
                         const std::string &payload, std::uint8_t flags)
{
    // The frame header stores both lengths as u32: longer sections
    // would encode truncated lengths and replay as a torn frame,
    // discarding every frame after them.
    constexpr std::size_t kMaxSection =
        std::numeric_limits<std::uint32_t>::max();
    HPE_ASSERT(fingerprint.size() <= kMaxSection
                   && payload.size() <= kMaxSection,
               "frame section exceeds the u32 length field");
    std::string frame;
    frame.reserve(frameSize(fingerprint.size(), payload.size()));
    frame.append(kMagic, sizeof kMagic);
    frame.push_back(static_cast<char>(kVersion));
    frame.push_back(static_cast<char>(flags));
    frame.push_back('\0');
    frame.push_back('\0');
    putU32(frame, static_cast<std::uint32_t>(fingerprint.size()));
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    frame += fingerprint;
    frame += payload;
    putU64(frame, fnv1aBytes(frame.data(), frame.size()));
    return frame;
}

std::string
ResultStore::segmentPath(std::uint64_t seq) const
{
    return strformat("{}/journal-{}.log", cfg_.dir, seq);
}

bool
ResultStore::open(std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return openLocked(error);
}

bool
ResultStore::openLocked(std::string &error)
{
    HPE_ASSERT(!opened_, "result store opened twice");
    if (cfg_.dir.empty()) {
        error = "store directory is empty";
        return false;
    }
    if (::mkdir(cfg_.dir.c_str(), 0777) != 0 && errno != EEXIST) {
        error = strformat("mkdir('{}'): {}", cfg_.dir, std::strerror(errno));
        return false;
    }

    // Exclusive directory lock *before* the first read: replay
    // truncates torn tails and may compact, and doing either under a
    // live owner would destroy its journal.  Fail fast with the store
    // untouched instead.  (cfg_.lockDir false = the caller already
    // holds a lock covering this directory; see ShardedResultStore.)
    if (cfg_.lockDir) {
        const std::string lockPath = cfg_.dir + "/LOCK";
        lockFd_ = ::open(lockPath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                         0666);
        if (lockFd_ < 0) {
            error = strformat("open('{}'): {}", lockPath,
                              std::strerror(errno));
            return false;
        }
        if (::flock(lockFd_, LOCK_EX | LOCK_NB) != 0) {
            error = strformat("store directory '{}' is locked (is another "
                              "hpe_serve already serving this store?)",
                              cfg_.dir);
            ::close(lockFd_);
            lockFd_ = -1;
            return false;
        }
    }

    // Scan for existing segments, ascending sequence order.
    DIR *dir = ::opendir(cfg_.dir.c_str());
    if (dir == nullptr) {
        error = strformat("opendir('{}'): {}", cfg_.dir,
                          std::strerror(errno));
        return false;
    }
    segments_.clear();
    while (const dirent *entry = ::readdir(dir)) {
        if (const auto seq = parseSegmentName(entry->d_name);
            seq.has_value())
            segments_.push_back(*seq);
    }
    ::closedir(dir);
    std::sort(segments_.begin(), segments_.end());

    // Replay oldest-to-newest: later frames supersede earlier ones, so
    // replay order *is* the conflict-resolution order.
    for (const std::uint64_t seq : segments_)
        if (!replaySegment(segmentPath(seq), error))
            return false;

    // Surviving records in last-write order (oldest first): the cache
    // warm-start inserts in this order, so under capacity pressure the
    // most recently written results are the ones retained.
    recovered_.clear();
    recovered_.reserve(live_.size());
    for (const auto &[fp, entry] : live_)
        recovered_.push_back({fp, entry.payload, entry.failed});
    std::sort(recovered_.begin(), recovered_.end(),
              [this](const Record &a, const Record &b) {
                  return live_.at(a.fingerprint).lastWrite
                         < live_.at(b.fingerprint).lastWrite;
              });
    recoveredCount_ = recovered_.size();

    const std::uint64_t nextSeq =
        segments_.empty() ? 1 : segments_.back() + 1;
    if (!openActive(segments_.empty() ? nextSeq : segments_.back(), error))
        return false;
    opened_ = true;

    // A restart after heavy churn can leave mostly-dead segments;
    // compact before serving rather than carrying them forward.
    if (frames_ > 0
        && static_cast<double>(deadFrames_) / static_cast<double>(frames_)
               > cfg_.compactDeadRatio)
        compactLocked();
    return true;
}

bool
ResultStore::openActive(std::uint64_t seq, std::string &error)
{
    const std::string path = segmentPath(seq);
    activeFd_ = ::open(path.c_str(),
                       O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0666);
    if (activeFd_ < 0) {
        error = strformat("open('{}'): {}", path, std::strerror(errno));
        return false;
    }
    struct stat st{};
    if (::fstat(activeFd_, &st) != 0) {
        error = strformat("fstat('{}'): {}", path, std::strerror(errno));
        ::close(activeFd_);
        activeFd_ = -1;
        return false;
    }
    activeSeq_ = seq;
    activeBytes_ = static_cast<std::size_t>(st.st_size);
    if (segments_.empty() || segments_.back() != seq)
        segments_.push_back(seq);
    return true;
}

bool
ResultStore::replaySegment(const std::string &path, std::string &error)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        error = strformat("open('{}'): {}", path, std::strerror(errno));
        return false;
    }
    std::string data;
    char chunk[1u << 16];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = strformat("read('{}'): {}", path, std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        data.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    std::size_t off = 0;
    while (off < data.size()) {
        const std::size_t remaining = data.size() - off;
        bool intact = remaining >= kHeaderBytes
                      && std::memcmp(data.data() + off, kMagic,
                                     sizeof kMagic) == 0
                      && static_cast<std::uint8_t>(data[off + 4]) == kVersion;
        std::size_t total = 0;
        if (intact) {
            const std::uint32_t fpLen = getU32(data.data() + off + 8);
            const std::uint32_t payLen = getU32(data.data() + off + 12);
            total = frameSize(fpLen, payLen);
            intact = remaining >= total
                     && getU64(data.data() + off + total - kChecksumBytes)
                            == fnv1aBytes(data.data() + off,
                                          total - kChecksumBytes);
        }
        if (!intact) {
            // Torn tail (or bit rot): keep the intact prefix, drop the
            // rest.  The journal is best-effort durability — a shorter
            // journal is a cold cache entry, not a failure to start.
            warn("result store: truncating '{}' at byte {} ({} trailing "
                 "bytes fail to verify)",
                 path, off, remaining);
            if (::truncate(path.c_str(), static_cast<off_t>(off)) != 0)
                warn("result store: truncate('{}'): {}", path,
                     std::strerror(errno));
            ++tornTruncations_;
            break;
        }
        const std::uint8_t flags = static_cast<std::uint8_t>(data[off + 5]);
        const std::uint32_t fpLen = getU32(data.data() + off + 8);
        const std::uint32_t payLen = getU32(data.data() + off + 12);
        std::string fingerprint(data, off + kHeaderBytes, fpLen);
        std::string payload(data, off + kHeaderBytes + fpLen, payLen);
        applyFrame(fingerprint, std::move(payload), flags);
        off += total;
    }
    return true;
}

void
ResultStore::applyFrame(const std::string &fingerprint, std::string payload,
                        std::uint8_t flags)
{
    ++frames_;
    auto it = live_.find(fingerprint);
    if ((flags & kFlagTombstone) != 0) {
        // The tombstone itself is dead weight, plus the write it kills.
        ++deadFrames_;
        if (it != live_.end()) {
            ++deadFrames_;
            live_.erase(it);
        }
        return;
    }
    if (it != live_.end()) {
        ++deadFrames_; // the superseded older write
        it->second.payload = std::move(payload);
        it->second.failed = (flags & kFlagFailed) != 0;
        it->second.lastWrite = ++writeSeq_;
        return;
    }
    live_.emplace(fingerprint,
                  LiveEntry{std::move(payload), (flags & kFlagFailed) != 0,
                            ++writeSeq_});
}

void
ResultStore::append(const std::string &fingerprint,
                    const std::string &payload, bool failed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!opened_ || !healthy_)
        return;
    constexpr std::size_t kMaxSection =
        std::numeric_limits<std::uint32_t>::max();
    if (fingerprint.size() > kMaxSection || payload.size() > kMaxSection) {
        // A section longer than the u32 length field would journal a
        // frame that replays as torn and truncates everything after it.
        // Serve it memory-only instead.
        warn("result store: not journaling '{}' ({} payload bytes exceed "
             "the frame limit); the result is served but not durable",
             fingerprint.substr(0, 64), payload.size());
        return;
    }
    ++appends_;
    appendFrame(fingerprint, payload,
                failed ? kFlagFailed : std::uint8_t{0});
    applyFrame(fingerprint, payload, failed ? kFlagFailed : std::uint8_t{0});
    maybeRotateAndCompact();
}

void
ResultStore::appendTombstone(const std::string &fingerprint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!opened_ || !healthy_)
        return;
    // No point journaling a delete for a fingerprint the journal does
    // not hold — it would be pure dead weight.
    if (!live_.contains(fingerprint))
        return;
    ++tombstones_;
    appendFrame(fingerprint, "", kFlagTombstone);
    applyFrame(fingerprint, "", kFlagTombstone);
    maybeRotateAndCompact();
}

void
ResultStore::appendFrame(const std::string &fingerprint,
                         const std::string &payload, std::uint8_t flags)
{
    const std::string frame = encodeFrame(fingerprint, payload, flags);
    if (!writeAll(activeFd_, frame.data(), frame.size())) {
        warn("result store: append to '{}' failed ({}); continuing "
             "memory-only",
             segmentPath(activeSeq_), std::strerror(errno));
        healthy_ = false;
        return;
    }
    if (cfg_.syncEveryAppend)
        ::fdatasync(activeFd_);
    activeBytes_ += frame.size();
}

void
ResultStore::maybeRotateAndCompact()
{
    if (activeBytes_ < cfg_.segmentBytes)
        return;
    if (frames_ > 0
        && static_cast<double>(deadFrames_) / static_cast<double>(frames_)
               > cfg_.compactDeadRatio) {
        compactLocked();
        return;
    }
    ::close(activeFd_);
    std::string error;
    if (!openActive(activeSeq_ + 1, error)) {
        warn("result store: rotation failed ({}); continuing memory-only",
             error);
        healthy_ = false;
    }
}

void
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (opened_ && healthy_)
        compactLocked();
}

void
ResultStore::compactLocked()
{
    // Write the live set (in last-write order, so a recovery of the
    // compacted segment preserves warm-start order) into a fresh
    // segment via tmp + fsync + rename: a crash mid-compaction leaves
    // either the old segments or the complete new one, never a half.
    const std::uint64_t newSeq = activeSeq_ + 1;
    const std::string finalPath = segmentPath(newSeq);
    const std::string tmpPath = finalPath + ".tmp";
    const int fd = ::open(tmpPath.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0666);
    if (fd < 0) {
        warn("result store: compaction open('{}'): {}", tmpPath,
             std::strerror(errno));
        return;
    }

    std::vector<const std::pair<const std::string, LiveEntry> *> ordered;
    ordered.reserve(live_.size());
    for (const auto &kv : live_)
        ordered.push_back(&kv);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto *a, const auto *b) {
                  return a->second.lastWrite < b->second.lastWrite;
              });

    std::size_t bytes = 0;
    for (const auto *kv : ordered) {
        const std::string frame = encodeFrame(
            kv->first, kv->second.payload,
            kv->second.failed ? kFlagFailed : std::uint8_t{0});
        if (!writeAll(fd, frame.data(), frame.size())) {
            warn("result store: compaction write failed ({}); keeping "
                 "existing segments",
                 std::strerror(errno));
            ::close(fd);
            ::unlink(tmpPath.c_str());
            return;
        }
        bytes += frame.size();
    }
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmpPath.c_str(), finalPath.c_str()) != 0) {
        warn("result store: compaction rename('{}'): {}", finalPath,
             std::strerror(errno));
        ::unlink(tmpPath.c_str());
        return;
    }
    syncDir(cfg_.dir);

    // The compacted segment is now the journal; drop the superseded
    // ones (crash between rename and these unlinks is benign: replay
    // order makes the compacted segment's frames win).
    ::close(activeFd_);
    for (const std::uint64_t seq : segments_)
        if (seq != newSeq)
            ::unlink(segmentPath(seq).c_str());
    segments_.clear();

    std::string error;
    if (!openActive(newSeq, error)) {
        warn("result store: compaction reopen failed ({}); continuing "
             "memory-only",
             error);
        healthy_ = false;
        return;
    }
    activeBytes_ = bytes;
    frames_ = live_.size();
    deadFrames_ = 0;
    ++compactions_;
}

void
ResultStore::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closeLocked();
}

void
ResultStore::closeLocked()
{
    if (activeFd_ >= 0) {
        ::fdatasync(activeFd_);
        ::close(activeFd_);
        activeFd_ = -1;
    }
    if (lockFd_ >= 0) {
        ::close(lockFd_); // releases the flock
        lockFd_ = -1;
    }
    opened_ = false;
}

void
ResultStore::releaseRecovered()
{
    std::lock_guard<std::mutex> lock(mutex_);
    recovered_.clear();
    recovered_.shrink_to_fit();
}

std::uint64_t
ResultStore::appendCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appends_;
}

std::uint64_t
ResultStore::tombstoneCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tombstones_;
}

std::uint64_t
ResultStore::recoveredCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recoveredCount_;
}

std::uint64_t
ResultStore::tornTruncations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tornTruncations_;
}

std::uint64_t
ResultStore::compactions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compactions_;
}

std::uint64_t
ResultStore::segmentCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return segments_.size();
}

std::uint64_t
ResultStore::liveCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return live_.size();
}

std::uint64_t
ResultStore::frameCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return frames_;
}

bool
ResultStore::healthy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return healthy_;
}

} // namespace hpe::serve
