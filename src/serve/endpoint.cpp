#include "serve/endpoint.hpp"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hpp"

namespace hpe::serve {

std::string
Endpoint::spell() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return strformat("tcp:{}:{}", host, port);
}

bool
parseEndpoint(const std::string &text, Endpoint &endpoint, std::string &error)
{
    if (text.empty()) {
        error = "endpoint is empty";
        return false;
    }
    if (text.rfind("unix:", 0) == 0) {
        endpoint.kind = Endpoint::Kind::Unix;
        endpoint.path = text.substr(5);
        if (endpoint.path.empty()) {
            error = "endpoint 'unix:' needs a socket path";
            return false;
        }
        return true;
    }
    if (text.rfind("tcp:", 0) == 0) {
        const std::string rest = text.substr(4);
        // host:port, splitting at the *last* colon so IPv6 literals
        // ("tcp:::1:9000") keep their colons on the host side.
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0
            || colon + 1 == rest.size()) {
            error = strformat("endpoint '{}' must be tcp:host:port", text);
            return false;
        }
        endpoint.kind = Endpoint::Kind::Tcp;
        endpoint.host = rest.substr(0, colon);
        const std::string portText = rest.substr(colon + 1);
        std::uint64_t port = 0;
        for (const char c : portText) {
            if (c < '0' || c > '9') {
                error = strformat("endpoint '{}': port '{}' is not a number",
                                  text, portText);
                return false;
            }
            port = port * 10 + static_cast<std::uint64_t>(c - '0');
            if (port > 65535) {
                error = strformat("endpoint '{}': port {} exceeds 65535",
                                  text, portText);
                return false;
            }
        }
        endpoint.port = static_cast<std::uint16_t>(port);
        return true;
    }
    // Back-compat: every pre-grammar spelling was a Unix socket path.
    endpoint.kind = Endpoint::Kind::Unix;
    endpoint.path = text;
    return true;
}

namespace {

int
connectUnix(const Endpoint &endpoint, std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(addr.sun_path)) {
        error = strformat("socket path '{}' exceeds {} bytes", endpoint.path,
                          sizeof(addr.sun_path) - 1);
        return -1;
    }
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = strformat("socket(): {}", std::strerror(errno));
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = strformat("connect('{}'): {} (is hpe_serve running?)",
                          endpoint.path, std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(const Endpoint &endpoint, std::string &error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *result = nullptr;
    const std::string portText = std::to_string(endpoint.port);
    if (const int rc = ::getaddrinfo(endpoint.host.c_str(), portText.c_str(),
                                     &hints, &result);
        rc != 0) {
        error = strformat("resolve('{}'): {}", endpoint.spell(),
                          ::gai_strerror(rc));
        return -1;
    }
    int fd = -1;
    std::string lastError = "no addresses";
    for (const addrinfo *ai = result; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0) {
            lastError = strformat("socket(): {}", std::strerror(errno));
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        lastError = strformat("connect('{}'): {} (is hpe_serve running?)",
                              endpoint.spell(), std::strerror(errno));
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(result);
    if (fd < 0)
        error = lastError;
    return fd;
}

} // namespace

int
connectEndpoint(const Endpoint &endpoint, std::string &error)
{
    return endpoint.kind == Endpoint::Kind::Unix
               ? connectUnix(endpoint, error)
               : connectTcp(endpoint, error);
}

void
raiseFdLimit()
{
    rlimit limit{};
    if (::getrlimit(RLIMIT_NOFILE, &limit) != 0)
        return;
    if (limit.rlim_cur >= limit.rlim_max)
        return;
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
}

} // namespace hpe::serve
