/**
 * @file
 * Content-addressed result cache with in-flight coalescing — the memory
 * of the hpe_serve daemon.
 *
 * Keys are ExperimentRequest fingerprints (canonical-JSON FNV-1a), so
 * the cache is *content*-addressed: any two requests that mean the same
 * experiment — regardless of spelling, field order, or which client sent
 * them — share one slot.  Because simulations are deterministic, a
 * completed slot can answer forever and a repeat query is O(1).
 *
 * The acquire() protocol also coalesces concurrent duplicates: the first
 * acquirer of a fingerprint is told to Compute, every later acquirer of
 * the same fingerprint while that computation runs is told to Wait on
 * the same entry, and acquirers after completion Hit.  One computation,
 * many answers.
 *
 * Admission control lives here too: a Compute acquisition is Rejected
 * when the pending-entry count (computations queued or running) has
 * reached the configured bound — the daemon's backpressure signal.
 * Hits and Waits never consume a pending slot, so a saturated daemon
 * still answers everything it has already computed.
 *
 * Completed entries are retained up to a capacity; the oldest completed
 * entry is evicted first (pending entries are never evicted — waiters
 * hold references to them).  Evictions are reported to an optional
 * observer (the daemon journals a tombstone in its ResultStore), and
 * seed() warm-starts the cache from recovered journal records on boot.
 * All methods are thread-safe.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hpe::serve {

/** Thread-safe fingerprint -> response-payload cache; see file comment. */
class ResultCache
{
  public:
    /** One cached (or in-flight) computation. */
    struct Entry
    {
        bool done = false;
        /** Response payload (a serialized JSON result or error object). */
        std::string payload;
        /** Did the computation fail?  (Failed entries are cached too —
         *  deterministic experiments fail deterministically.) */
        bool failed = false;
        /** Completion callbacks parked by whenDone(), fired once by
         *  complete().  Guarded by the cache mutex. */
        std::vector<std::function<void()>> callbacks;
    };

    using EntryPtr = std::shared_ptr<Entry>;

    /** What acquire() told the caller to do. */
    enum class Role {
        Compute,  ///< caller owns the computation; complete() when done
        Wait,     ///< identical request in flight; wait() for it
        Hit,      ///< entry->payload is ready now
        Rejected, ///< pending bound reached; tell the client to retry
    };

    struct Acquisition
    {
        Role role;
        EntryPtr entry; ///< null only when Rejected
    };

    /**
     * @param capacity      completed entries retained (oldest evicted).
     * @param maxPending    bound on computations queued or running.
     */
    ResultCache(std::size_t capacity, std::size_t maxPending)
        : capacity_(capacity), maxPending_(maxPending)
    {}

    /**
     * Look up @p fingerprint and claim a role; see file comment.
     * @p admitNew false — the server's hit-and-coalesce shed mode —
     * rejects a fingerprint the cache does not already hold, without
     * consuming a pending slot.
     */
    Acquisition
    acquire(const std::string &fingerprint, bool admitNew = true)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (auto it = entries_.find(fingerprint); it != entries_.end()) {
            if (it->second->done) {
                ++hits_;
                return {Role::Hit, it->second};
            }
            ++coalesced_;
            return {Role::Wait, it->second};
        }
        if (!admitNew || pending_ >= maxPending_) {
            ++rejected_;
            return {Role::Rejected, nullptr};
        }
        ++misses_;
        ++pending_;
        auto entry = std::make_shared<Entry>();
        entries_.emplace(fingerprint, entry);
        insertionOrder_.push_back(fingerprint);
        return {Role::Compute, entry};
    }

    /** Publish the result of a Compute acquisition and wake waiters. */
    void
    complete(const EntryPtr &entry, std::string payload, bool failed = false)
    {
        std::vector<std::string> evicted;
        std::vector<std::function<void()>> callbacks;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            entry->payload = std::move(payload);
            entry->failed = failed;
            entry->done = true;
            callbacks.swap(entry->callbacks);
            --pending_;
            evictOverflow(evicted);
        }
        ready_.notify_all();
        // Outside the lock: a callback may call back into the cache.
        for (const auto &callback : callbacks)
            callback();
        notifyEvicted(evicted);
    }

    /**
     * Invoke @p callback once @p entry completes — immediately (on the
     * calling thread) when it already has, else from the completing
     * thread, after `done`/`payload`/`failed` are published and the
     * cache lock is released.  The daemon's event-driven front end
     * parks its Wait/Compute responders here instead of blocking a
     * thread in wait().
     */
    void
    whenDone(const EntryPtr &entry, std::function<void()> callback)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!entry->done) {
                entry->callbacks.push_back(std::move(callback));
                return;
            }
        }
        callback();
    }

    /**
     * Insert an already-completed result — the daemon's warm start
     * replaying the durable store on boot.  Counts as neither a hit
     * nor a miss; an existing entry for @p fingerprint wins (live
     * state beats the journal).  Capacity is enforced, so seeding in
     * journal order retains the most recently written results.
     */
    void
    seed(const std::string &fingerprint, std::string payload,
         bool failed = false)
    {
        std::vector<std::string> evicted;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (entries_.contains(fingerprint))
                return;
            auto entry = std::make_shared<Entry>();
            entry->payload = std::move(payload);
            entry->failed = failed;
            entry->done = true;
            entries_.emplace(fingerprint, entry);
            insertionOrder_.push_back(fingerprint);
            ++seeded_;
            evictOverflow(evicted);
        }
        notifyEvicted(evicted);
    }

    /**
     * Observe evictions (the daemon journals a tombstone for each).
     * Called *after* the cache lock is released, so the observer may
     * call back into the cache; set before the daemon starts serving.
     */
    void
    setEvictionObserver(std::function<void(const std::string &)> observer)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        evictionObserver_ = std::move(observer);
    }

    /**
     * Block until @p entry completes or @p deadline passes (nullopt =
     * wait forever).  @return true when the entry is done.
     */
    bool
    wait(const EntryPtr &entry,
         std::optional<std::chrono::steady_clock::time_point> deadline)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!deadline.has_value()) {
            ready_.wait(lock, [&] { return entry->done; });
            return true;
        }
        return ready_.wait_until(lock, *deadline, [&] { return entry->done; });
    }

    /** @{ Observability counters (monotonic since construction). */
    std::uint64_t hits() const { return locked(hits_); }
    std::uint64_t misses() const { return locked(misses_); }
    std::uint64_t coalesced() const { return locked(coalesced_); }
    std::uint64_t rejected() const { return locked(rejected_); }
    std::uint64_t seeded() const { return locked(seeded_); }
    std::uint64_t evictions() const { return locked(evictions_); }
    /** Computations queued or running right now (the backpressure gauge). */
    std::uint64_t pending() const { return locked(pending_); }
    /** Entries resident (completed + pending). */
    std::uint64_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }
    /** @} */

  private:
    /** Drop oldest *completed* entries down to capacity, collecting
     *  their fingerprints into @p evicted for the observer.  Pending
     *  fingerprints are skipped (their waiters hold the EntryPtr) and
     *  re-queued behind the completed ones. */
    void
    evictOverflow(std::vector<std::string> &evicted)
    {
        while (entries_.size() > capacity_ && !insertionOrder_.empty()) {
            const std::string fp = std::move(insertionOrder_.front());
            insertionOrder_.pop_front();
            auto it = entries_.find(fp);
            if (it == entries_.end())
                continue;
            if (!it->second->done) {
                insertionOrder_.push_back(fp);
                // All remaining entries pending: nothing evictable.
                if (entries_.size() <= pending_)
                    return;
                continue;
            }
            entries_.erase(it);
            ++evictions_;
            evicted.push_back(fp);
        }
    }

    /** Deliver eviction notifications outside the lock. */
    void
    notifyEvicted(const std::vector<std::string> &evicted)
    {
        if (evicted.empty())
            return;
        std::function<void(const std::string &)> observer;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            observer = evictionObserver_;
        }
        if (observer)
            for (const std::string &fp : evicted)
                observer(fp);
    }

    std::uint64_t
    locked(const std::uint64_t &v) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return v;
    }

    const std::size_t capacity_;
    const std::size_t maxPending_;

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::unordered_map<std::string, EntryPtr> entries_;
    std::deque<std::string> insertionOrder_;
    std::function<void(const std::string &)> evictionObserver_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t seeded_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t pending_ = 0;
};

} // namespace hpe::serve
