#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hpp"
#include "serve/endpoint.hpp"

namespace hpe::serve {

bool
submitLine(const std::string &endpointText, const std::string &requestLine,
           std::string &response, std::string &error)
{
    Endpoint endpoint;
    if (!parseEndpoint(endpointText, endpoint, error))
        return false;
    const int fd = connectEndpoint(endpoint, error);
    if (fd < 0)
        return false;

    std::string line = requestLine;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            error = strformat("send(): {}", std::strerror(errno));
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }

    response.clear();
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            error = strformat("recv(): {}", std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0) {
            error = "connection closed before a response arrived";
            ::close(fd);
            return false;
        }
        response.append(chunk, static_cast<std::size_t>(n));
        if (const std::size_t newline = response.find('\n');
            newline != std::string::npos) {
            response.resize(newline);
            ::close(fd);
            return true;
        }
    }
}

} // namespace hpe::serve
