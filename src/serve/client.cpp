#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hpp"

namespace hpe::serve {

bool
submitLine(const std::string &socketPath, const std::string &requestLine,
           std::string &response, std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        error = strformat("socket path '{}' exceeds {} bytes", socketPath,
                          sizeof(addr.sun_path) - 1);
        return false;
    }
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = strformat("socket(): {}", std::strerror(errno));
        return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = strformat("connect('{}'): {} (is hpe_serve running?)",
                          socketPath, std::strerror(errno));
        ::close(fd);
        return false;
    }

    std::string line = requestLine;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            error = strformat("send(): {}", std::strerror(errno));
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }

    response.clear();
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            error = strformat("recv(): {}", std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0) {
            error = "connection closed before a response arrived";
            ::close(fd);
            return false;
        }
        response.append(chunk, static_cast<std::size_t>(n));
        if (const std::size_t newline = response.find('\n');
            newline != std::string::npos) {
            response.resize(newline);
            ::close(fd);
            return true;
        }
    }
}

} // namespace hpe::serve
