/**
 * @file
 * One endpoint grammar for every way of naming an hpe_serve listener:
 *
 *     unix:/path/to/socket      Unix-domain stream socket
 *     tcp:host:port             TCP (IPv4/IPv6 via getaddrinfo)
 *     /bare/path                back-compat: a bare path means unix
 *
 * The grammar is shared by the daemon (`--socket`, `--listen`), the
 * client (`submitLine`), `hpe_sim submit`, the load bench, and the
 * shell tooling, so "where the daemon lives" is one string everywhere.
 * `tcp:host:0` asks the kernel for an ephemeral port; the daemon
 * reports the resolved spelling through Server::boundEndpoints() (and
 * `serve --endpoint-file`), which is how tests and scripts find it.
 */

#pragma once

#include <cstdint>
#include <string>

namespace hpe::serve {

/** A parsed endpoint: where a daemon listens / a client connects. */
struct Endpoint
{
    enum class Kind { Unix, Tcp };

    Kind kind = Kind::Unix;
    /** Unix: the socket filesystem path. */
    std::string path;
    /** TCP: host name or address literal. */
    std::string host;
    /** TCP: port; 0 = ephemeral (listen only). */
    std::uint16_t port = 0;

    /** Canonical spelling ("unix:/path" or "tcp:host:port"). */
    std::string spell() const;
};

/**
 * Parse @p text against the endpoint grammar.  @return false with
 * @p error filled on a malformed spelling (empty path, bad port, ...).
 */
bool parseEndpoint(const std::string &text, Endpoint &endpoint,
                   std::string &error);

/**
 * Connect a blocking stream socket to @p endpoint.  @return the fd, or
 * -1 with @p error filled.
 */
int connectEndpoint(const Endpoint &endpoint, std::string &error);

/**
 * Raise RLIMIT_NOFILE's soft limit to the hard limit, best-effort.
 * Thousands of concurrent connections need thousands of fds; the
 * default soft limit (often 1024) starves the daemon and the load
 * injector long before memory does.
 */
void raiseFdLimit();

} // namespace hpe::serve
