#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/api.hpp"
#include "api/protocol.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "sim/sweep.hpp"

namespace hpe::serve {

using api::json::Object;
using api::json::Value;
namespace protocol = api::protocol;

namespace {

/** The server signals route to (one daemon per process). */
Server *g_signalServer = nullptr;

extern "C" void
serveSignalHandler(int)
{
    // Async-signal-safe: requestStop() only write()s to the self-pipe.
    if (g_signalServer != nullptr)
        g_signalServer->requestStop();
}

/** epoll user-data tags for the non-connection fds (connection events
 *  carry the connection id, which never sets the high bit). */
constexpr std::uint64_t kControlBit = 1ull << 63;
constexpr std::uint64_t kStopTag = kControlBit | 1;
constexpr std::uint64_t kNotifyTag = kControlBit | 2;
constexpr std::uint64_t kListenTagBase = kControlBit | 0x100;

/**
 * One failure line in the shape @p version selects: v1 is the pinned
 * legacy `{"error":"msg","ok":false[,"retry_after_ms":N]}` (no id
 * echo, exactly as every pre-v2 client parses it); v2 carries the
 * structured error object and echoes @p id.
 */
std::string
errorResponse(int version, const char *code, const std::string &message,
              std::optional<std::uint64_t> retryAfterMs = std::nullopt,
              const std::optional<Value> &id = std::nullopt)
{
    if (version < protocol::kVersionCurrent) {
        Object obj{{"error", message}, {"ok", false}};
        if (retryAfterMs.has_value())
            obj.emplace("retry_after_ms", *retryAfterMs);
        return Value(std::move(obj)).dump();
    }
    Object errorObj{{"code", code}, {"message", message}};
    if (retryAfterMs.has_value())
        errorObj.emplace("retry_after_ms", *retryAfterMs);
    Object obj{{"error", std::move(errorObj)},
               {"ok", false},
               {"v", protocol::kVersionCurrent}};
    if (id.has_value())
        obj.emplace("id", *id);
    return Value(std::move(obj)).dump();
}

/** Copy the request's optional "id" member into a response object. */
void
echoId(const Value &envelope, Object &response)
{
    if (const Value *id = envelope.find("id"); id != nullptr)
        response.emplace("id", *id);
}

std::optional<Value>
envelopeId(const Value &envelope)
{
    if (const Value *id = envelope.find("id"); id != nullptr)
        return *id;
    return std::nullopt;
}

/**
 * Is a daemon answering on @p addr?  Connect and round-trip a `ping`
 * with a one-second receive timeout.  "No" only when the connection is
 * refused or immediately dropped — a bound-but-dead socket.  A busy
 * daemon that is slow to answer counts as alive (never steal a socket
 * that something is listening on).
 */
bool
probeAlive(const sockaddr_un &addr)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return true; // cannot prove it dead; err on the safe side
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false; // nothing accepting: the socket file is stale
    }
    const timeval timeout{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    const char ping[] = "{\"type\":\"ping\"}\n";
    if (::send(fd, ping, sizeof ping - 1, MSG_NOSIGNAL) < 0) {
        ::close(fd);
        return false;
    }
    char byte;
    const ssize_t n = ::recv(fd, &byte, 1, 0);
    ::close(fd);
    if (n > 0)
        return true; // something answered
    // Timed out: a listener exists but is wedged or drowning — still
    // alive for our purposes.  Only a clean EOF means dead.
    return !(n == 0);
}

} // namespace

const char *
shedModeName(ShedMode mode)
{
    switch (mode) {
      case ShedMode::Full: return "full";
      case ShedMode::HitOnly: return "hit_only";
      case ShedMode::Reject: return "reject";
    }
    return "?";
}

Server::Server(const ServeConfig &cfg)
    : cfg_(cfg),
      shedHitOnlyDepth_(cfg.shedHitOnlyDepth > 0 ? cfg.shedHitOnlyDepth
                                                 : std::max<std::size_t>(
                                                       cfg.maxQueue, 1)),
      shedRejectDepth_(std::max(cfg.shedRejectDepth > 0
                                    ? cfg.shedRejectDepth
                                    : 4 * std::max<std::size_t>(cfg.maxQueue,
                                                                1),
                                shedHitOnlyDepth_ + 1))
{
    // The capacity, admission bound, and worker budget split evenly
    // across the shards (every shard gets at least one of each), so
    // `--shards 1` preserves the unsharded daemon's behaviour exactly.
    const unsigned shardCount = std::max(cfg.shards, 1u);
    const unsigned totalJobs = resolveJobs(cfg.jobs);
    const unsigned perShardWorkers = std::max(1u, totalJobs / shardCount);
    jobsTotal_ = perShardWorkers * shardCount;
    const std::size_t perShardCapacity = std::max<std::size_t>(
        1, std::max<std::size_t>(cfg.cacheCapacity, 1) / shardCount);
    const std::size_t perShardPending = std::max<std::size_t>(
        1, std::max<std::size_t>(cfg.maxQueue, 1) / shardCount);
    shards_.reserve(shardCount);
    for (unsigned i = 0; i < shardCount; ++i)
        shards_.push_back(std::make_unique<Shard>(
            perShardCapacity, perShardPending, perShardWorkers));
}

Server::~Server()
{
    stop();
    if (g_signalServer == this)
        installSignalHandlers(nullptr);
}

ResultCache &
Server::shardCache(unsigned index)
{
    return shards_.at(index)->cache;
}

bool
Server::bindEndpoint(const Endpoint &endpoint, int &fd, std::string &error)
{
    if (endpoint.kind == Endpoint::Kind::Unix) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (endpoint.path.size() >= sizeof(addr.sun_path)) {
            error = strformat("socket path '{}' exceeds {} bytes",
                              endpoint.path, sizeof(addr.sun_path) - 1);
            return false;
        }
        std::memcpy(addr.sun_path, endpoint.path.c_str(),
                    endpoint.path.size() + 1);
        // Nonblocking listener: after the accept loop drains the
        // backlog, the next accept4 must return EAGAIN, not block the
        // IO thread (the SOCK_NONBLOCK flag to accept4 covers only the
        // accepted socket).
        fd = ::socket(AF_UNIX,
                      SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
        if (fd < 0) {
            error = strformat("socket(): {}", std::strerror(errno));
            return false;
        }
        int bound = ::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                           sizeof(addr));
        if (bound != 0 && errno == EADDRINUSE && !probeAlive(addr)) {
            // A dead daemon (crash, SIGKILL) left its socket file
            // behind; nothing answered the probe, so reclaim the path.
            inform("hpe_serve reclaiming stale socket {}", endpoint.path);
            ::unlink(endpoint.path.c_str());
            bound = ::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                           sizeof(addr));
        }
        if (bound != 0) {
            error = strformat("bind('{}'): {} (is another hpe_serve "
                              "running? remove the stale socket if not)",
                              endpoint.path, std::strerror(errno));
            ::close(fd);
            fd = -1;
            return false;
        }
        return true;
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *result = nullptr;
    const std::string portText = std::to_string(endpoint.port);
    if (const int rc = ::getaddrinfo(endpoint.host.c_str(), portText.c_str(),
                                     &hints, &result);
        rc != 0) {
        error = strformat("resolve('{}'): {}", endpoint.spell(),
                          ::gai_strerror(rc));
        return false;
    }
    std::string lastError = "no addresses";
    fd = -1;
    for (const addrinfo *ai = result; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family,
                      ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
                      ai->ai_protocol);
        if (fd < 0) {
            lastError = strformat("socket(): {}", std::strerror(errno));
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        lastError = strformat("bind('{}'): {} (is another hpe_serve "
                              "listening there?)",
                              endpoint.spell(), std::strerror(errno));
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(result);
    if (fd < 0) {
        error = lastError;
        return false;
    }
    return true;
}

void
Server::closeListeners()
{
    // Unlink Unix socket paths *before* closing the fds: once an fd is
    // closed a starting daemon's probe sees a dead socket and may
    // reclaim the path, and a late unlink would then delete the socket
    // file the new daemon just bound.
    for (std::size_t i = 0; i < endpoints_.size() && i < listenFds_.size();
         ++i)
        if (listenFds_[i] >= 0
            && endpoints_[i].kind == Endpoint::Kind::Unix)
            ::unlink(endpoints_[i].path.c_str());
    for (int &fd : listenFds_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
}

bool
Server::start(std::string &error)
{
    HPE_ASSERT(!started_, "server started twice");

    // Resolve the endpoint list: the primary --socket spelling (the
    // back-compat slot) plus every --listen.
    endpoints_.clear();
    std::vector<std::string> spellings;
    if (!cfg_.socketPath.empty())
        spellings.push_back(cfg_.socketPath);
    for (const std::string &text : cfg_.listen)
        spellings.push_back(text);
    if (spellings.empty()) {
        error = "socket path is empty";
        return false;
    }
    for (const std::string &text : spellings) {
        Endpoint endpoint;
        if (!parseEndpoint(text, endpoint, error))
            return false;
        endpoints_.push_back(std::move(endpoint));
    }

    // Bind — the daemon's mutual-exclusion point — *before* the store
    // is touched: a second daemon racing a live one must fail fast
    // while the live daemon's journal is untouched (replay truncates
    // torn tails, may compact, and may migrate shards; doing any of
    // that under a live owner would destroy its journal).  Clients
    // cannot connect until listen(), so the warm start below still
    // finishes before the first request is accepted.
    listenFds_.assign(endpoints_.size(), -1);
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
        if (!bindEndpoint(endpoints_[i], listenFds_[i], error)) {
            closeListeners();
            return false;
        }
    }

    // Warm-start from the durable store: the first client a recovered
    // daemon accepts already sees every cell the previous incarnation
    // computed.  The store's root flock backstops the bind against
    // daemons sharing a store dir across socket paths.
    if (!cfg_.storeDir.empty()) {
        ResultStoreConfig storeCfg;
        storeCfg.dir = cfg_.storeDir;
        storeCfg.segmentBytes = cfg_.storeSegmentBytes;
        storeCfg.syncEveryAppend = cfg_.storeSync;
        store_ = std::make_unique<ShardedResultStore>(
            storeCfg, static_cast<unsigned>(shards_.size()));
        if (!store_->open(error)) {
            store_.reset();
            closeListeners();
            return false;
        }
        // Observer first: entries the warm start itself displaces (more
        // journal than cache capacity) get their tombstones journaled.
        for (const auto &shard : shards_)
            shard->cache.setEvictionObserver([this](const std::string &fp) {
                store_->appendTombstone(fp);
            });
        for (const ResultStore::Record &rec : store_->recovered())
            shards_[ShardedResultStore::shardOf(
                        rec.fingerprint,
                        static_cast<unsigned>(shards_.size()))]
                ->cache.seed(rec.fingerprint, rec.payload, rec.failed);
        if (store_->recoveredCount() > 0)
            inform("hpe_serve warm-started {} cached results from {} "
                   "({} torn-tail truncations, {} migrated across shards)",
                   store_->recoveredCount(), cfg_.storeDir,
                   store_->tornTruncations(), store_->migratedRecords());
        // The caches hold the live copies now; drop the snapshot.
        store_->releaseRecovered();
    }

    boundEndpoints_.clear();
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
        if (::listen(listenFds_[i], 1024) != 0) {
            error = strformat("listen('{}'): {}", endpoints_[i].spell(),
                              std::strerror(errno));
            closeListeners();
            if (store_ != nullptr)
                store_->close();
            return false;
        }
        // tcp:host:0 asked the kernel for a port; report the real one.
        if (endpoints_[i].kind == Endpoint::Kind::Tcp
            && endpoints_[i].port == 0) {
            sockaddr_storage bound{};
            socklen_t len = sizeof bound;
            if (::getsockname(listenFds_[i],
                              reinterpret_cast<sockaddr *>(&bound), &len)
                == 0) {
                if (bound.ss_family == AF_INET)
                    endpoints_[i].port = ntohs(
                        reinterpret_cast<sockaddr_in *>(&bound)->sin_port);
                else if (bound.ss_family == AF_INET6)
                    endpoints_[i].port = ntohs(
                        reinterpret_cast<sockaddr_in6 *>(&bound)->sin6_port);
            }
        }
        boundEndpoints_.push_back(endpoints_[i].spell());
    }

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    notifyFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    // Nonblocking on both ends: the IO thread drains until EAGAIN, and
    // a full pipe must never block a signal handler (one pending byte
    // already guarantees the wakeup).
    const bool piped = ::pipe2(stopPipe_, O_CLOEXEC | O_NONBLOCK) == 0;
    if (epollFd_ < 0 || notifyFd_ < 0 || !piped) {
        error = strformat("event setup: {}", std::strerror(errno));
        closeListeners();
        if (store_ != nullptr)
            store_->close();
        return false;
    }

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kStopTag;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, stopPipe_[0], &ev);
    ev.data.u64 = kNotifyTag;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, notifyFd_, &ev);
    for (std::size_t i = 0; i < listenFds_.size(); ++i) {
        ev.data.u64 = kListenTagBase + i;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFds_[i], &ev);
    }

    started_ = true;
    ioThread_ = std::thread([this] { ioLoop(); });
    return true;
}

void
Server::requestStop()
{
    // Called from signal handlers: only async-signal-safe calls allowed.
    if (stopPipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n = ::write(stopPipe_[1], &byte, 1);
    }
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    stopCv_.wait(lock, [this] { return stopRequested_; });
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    requestStop();
    ioThread_.join();

    // Flush and close the journal: a computation that outlives the
    // drain (its waiter hit its deadline and is gone) completes
    // memory-only — append-after-close is a no-op.  Releasing the
    // store locks here, not at destruction, lets a successor daemon
    // take the store as soon as the socket paths free.
    if (store_ != nullptr)
        store_->close();

    closeListeners();
    ::close(epollFd_);
    epollFd_ = -1;
    ::close(notifyFd_);
    notifyFd_ = -1;
    ::close(stopPipe_[0]);
    ::close(stopPipe_[1]);
    stopPipe_[0] = stopPipe_[1] = -1;
}

void
Server::installSignalHandlers(Server *server)
{
    g_signalServer = server;
    struct sigaction sa{};
    sa.sa_handler = server != nullptr ? serveSignalHandler : SIG_DFL;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    if (server != nullptr)
        ::signal(SIGPIPE, SIG_IGN);
}

void
Server::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    // Stop accepting (the fds stay open — and Unix paths stay linked —
    // until stop(), so a starting daemon cannot mistake a draining one
    // for dead) and stop reading from every connection; what is
    // in-flight answers and flushes, then the loop closes everything.
    for (const int fd : listenFds_)
        if (fd >= 0)
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    for (auto &[id, conn] : conns_) {
        ::shutdown(conn->fd, SHUT_RD);
        updateEpollInterest(*conn);
    }
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
}

int
Server::epollTimeoutMs(Clock::time_point now) const
{
    if (deadlines_.empty())
        return -1;
    const auto next = deadlines_.top().first;
    if (next <= now)
        return 0;
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
            .count();
    return static_cast<int>(std::min<long long>(ms + 1, 60'000));
}

void
Server::ioLoop()
{
    std::vector<epoll_event> events(256);
    for (;;) {
        const int timeout = epollTimeoutMs(Clock::now());
        const int ready = ::epoll_wait(epollFd_, events.data(),
                                       static_cast<int>(events.size()),
                                       timeout);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("hpe_serve epoll_wait(): {}", std::strerror(errno));
            break;
        }
        for (int i = 0; i < ready; ++i) {
            const std::uint64_t tag = events[i].data.u64;
            const std::uint32_t ev = events[i].events;
            if (tag == kStopTag) {
                char drain[64];
                while (::read(stopPipe_[0], drain, sizeof drain) > 0) {}
                beginDrain();
                continue;
            }
            if (tag == kNotifyTag) {
                std::uint64_t count = 0;
                [[maybe_unused]] const ssize_t n =
                    ::read(notifyFd_, &count, sizeof count);
                deliverCompletions();
                continue;
            }
            if ((tag & kControlBit) != 0) {
                if (!draining_)
                    acceptFrom(listenFds_[tag - kListenTagBase]);
                continue;
            }
            const auto it = conns_.find(tag);
            if (it == conns_.end())
                continue; // closed earlier this batch
            Connection &conn = *it->second;
            bool alive = true;
            if ((ev & EPOLLIN) != 0)
                alive = handleReadable(conn);
            if (alive && (ev & EPOLLOUT) != 0)
                alive = handleWritable(conn);
            if (alive && (ev & (EPOLLERR | EPOLLHUP)) != 0
                && (ev & EPOLLIN) == 0 && conn.wbuf.empty()
                && !conn.awaiting)
                alive = false;
            if (!alive)
                closeConn(tag);
        }
        deliverCompletions();
        expireDeadlines(Clock::now());
        sweepClosable();
        if (draining_ && conns_.empty())
            break;
    }
    // Normal exit leaves conns_ empty; a fatal epoll error may not.
    while (!conns_.empty())
        closeConn(conns_.begin()->first);
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
}

void
Server::acceptFrom(int listenFd)
{
    for (;;) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK
                && errno != ECONNABORTED)
                warn("hpe_serve accept(): {}", std::strerror(errno));
            return;
        }
        ++connectionsTotal_;
        auto conn = std::make_unique<Connection>();
        conn->id = nextConnId_++;
        conn->fd = fd;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            warn("hpe_serve epoll add: {}", std::strerror(errno));
            ::close(fd);
            continue;
        }
        conns_.emplace(conn->id, std::move(conn));
    }
}

bool
Server::handleReadable(Connection &conn)
{
    char chunk[16384];
    while (!conn.closing) {
        const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
        if (n > 0) {
            conn.rbuf.append(chunk, static_cast<std::size_t>(n));
            // An oversized line turns into an error + close inside
            // processLines; check between reads so an endless stream
            // of newline-free bytes cannot grow the buffer unbounded.
            if (conn.rbuf.size() > cfg_.maxLineBytes
                && conn.rbuf.find('\n') == std::string::npos)
                break;
            continue;
        }
        if (n == 0) {
            // Half-close: the peer is done sending.  Whatever complete
            // lines are buffered (and the response still in flight)
            // are answered and flushed before the close.
            conn.closing = true;
            updateEpollInterest(conn);
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        return false; // reset or worse: nothing left to salvage
    }
    return processLines(conn);
}

bool
Server::processLines(Connection &conn)
{
    while (!conn.awaiting) {
        const std::size_t newline = conn.rbuf.find('\n');
        if (newline == std::string::npos) {
            if (conn.rbuf.size() > cfg_.maxLineBytes && !conn.closing) {
                ++errors_;
                enqueueResponse(
                    conn,
                    errorResponse(
                        protocol::kVersionLegacy, protocol::kErrOversized,
                        strformat("request line exceeds {} bytes",
                                  cfg_.maxLineBytes)));
                conn.rbuf.clear();
                conn.closing = true;
                ::shutdown(conn.fd, SHUT_RD);
                updateEpollInterest(conn);
            }
            return true;
        }
        const std::string line = conn.rbuf.substr(0, newline);
        conn.rbuf.erase(0, newline + 1);
        if (line.empty())
            continue;
        handleLine(conn, line);
    }
    return true;
}

bool
Server::flushWrite(Connection &conn)
{
    while (conn.woff < conn.wbuf.size()) {
        const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                                 conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
        if (n > 0) {
            conn.woff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        // Broken peer: drop the buffered response, close at the sweep.
        conn.wbuf.clear();
        conn.woff = 0;
        conn.closing = true;
        break;
    }
    if (conn.woff == conn.wbuf.size()) {
        conn.wbuf.clear();
        conn.woff = 0;
    } else if (conn.woff > 65536) {
        conn.wbuf.erase(0, conn.woff);
        conn.woff = 0;
    }
    updateEpollInterest(conn);
    return true;
}

void
Server::enqueueResponse(Connection &conn, const std::string &line)
{
    conn.wbuf += line;
    conn.wbuf += '\n';
    flushWrite(conn);
}

bool
Server::handleWritable(Connection &conn)
{
    return flushWrite(conn);
}

void
Server::updateEpollInterest(Connection &conn)
{
    std::uint32_t mask = 0;
    if (!conn.closing && !draining_)
        mask |= EPOLLIN;
    if (conn.woff < conn.wbuf.size())
        mask |= EPOLLOUT;
    conn.wantWrite = (mask & EPOLLOUT) != 0;
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = conn.id;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
Server::closeConn(std::uint64_t id)
{
    const auto it = conns_.find(id);
    if (it == conns_.end())
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    conns_.erase(it);
}

void
Server::sweepClosable()
{
    for (auto it = conns_.begin(); it != conns_.end();) {
        Connection &conn = *it->second;
        const bool drainable = conn.closing || draining_;
        if (drainable && !conn.awaiting && conn.wbuf.empty()) {
            const std::uint64_t id = it->first;
            ++it;
            closeConn(id);
        } else {
            ++it;
        }
    }
}

void
Server::pushCompletion(std::uint64_t connId, std::string line)
{
    {
        std::lock_guard<std::mutex> lock(doneMutex_);
        done_.emplace_back(connId, std::move(line));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(notifyFd_, &one, sizeof one);
}

void
Server::deliverCompletions()
{
    std::vector<std::pair<std::uint64_t, std::string>> batch;
    {
        std::lock_guard<std::mutex> lock(doneMutex_);
        batch.swap(done_);
    }
    for (auto &[connId, line] : batch) {
        const auto it = conns_.find(connId);
        if (it == conns_.end())
            continue; // the client vanished mid-request; drop quietly
        Connection &conn = *it->second;
        conn.awaiting = false;
        enqueueResponse(conn, line);
        processLines(conn);
    }
}

void
Server::expireDeadlines(Clock::time_point now)
{
    while (!deadlines_.empty() && deadlines_.top().first <= now) {
        const TicketPtr ticket = deadlines_.top().second;
        deadlines_.pop();
        if (ticket->answered.exchange(true))
            continue; // the computation won the race
        if (!ticket->coalesced)
            --outstanding_;
        ++errors_;
        const std::string response = errorResponse(
            ticket->version, protocol::kErrDeadline,
            strformat("deadline exceeded after {}ms (the computation "
                      "continues; retry to pick it up from the cache)",
                      ticket->deadlineMs),
            ticket->deadlineMs, ticket->id);
        const auto it = conns_.find(ticket->connId);
        if (it == conns_.end())
            continue;
        Connection &conn = *it->second;
        conn.awaiting = false;
        enqueueResponse(conn, response);
        processLines(conn);
    }
}

void
Server::handleLine(Connection &conn, const std::string &line)
{
    api::json::ParseError perr;
    const auto envelope = api::json::parse(line, &perr);
    if (!envelope.has_value()) {
        ++errors_;
        // Unparseable = version unknowable; answer in the legacy shape.
        enqueueResponse(
            conn, errorResponse(
                      protocol::kVersionLegacy, protocol::kErrParse,
                      strformat("request parse error at byte {}: {}",
                                perr.offset, perr.message)));
        return;
    }
    if (!envelope->isObject()) {
        ++errors_;
        enqueueResponse(conn,
                        errorResponse(protocol::kVersionLegacy,
                                      protocol::kErrBadRequest,
                                      "request must be a JSON object"));
        return;
    }

    int version = protocol::kVersionLegacy;
    if (const Value *v = envelope->find("v"); v != nullptr) {
        if (!v->isNumber()) {
            ++errors_;
            enqueueResponse(conn, errorResponse(protocol::kVersionCurrent,
                                                protocol::kErrUnsupportedVersion,
                                                "field 'v' must be a number",
                                                std::nullopt,
                                                envelopeId(*envelope)));
            return;
        }
        const std::uint64_t requested = v->asUint();
        if (requested < protocol::kVersionLegacy
            || requested > protocol::kVersionCurrent) {
            ++errors_;
            enqueueResponse(
                conn,
                errorResponse(protocol::kVersionCurrent,
                              protocol::kErrUnsupportedVersion,
                              strformat("unsupported protocol version {} "
                                        "(supported: {} to {})",
                                        requested, protocol::kVersionLegacy,
                                        protocol::kVersionCurrent),
                              std::nullopt, envelopeId(*envelope)));
            return;
        }
        version = static_cast<int>(requested);
    }

    std::string type = "run";
    if (const Value *t = envelope->find("type"); t != nullptr) {
        if (!t->isString()) {
            ++errors_;
            enqueueResponse(conn, errorResponse(
                                      version, protocol::kErrBadRequest,
                                      "field 'type' must be a string",
                                      std::nullopt, envelopeId(*envelope)));
            return;
        }
        type = t->asString();
    }

    if (type == "run") {
        handleRun(conn, *envelope, version);
        return;
    }
    if (type == "stats") {
        Object response{{"ok", true}, {"type", "stats"}};
        if (version >= protocol::kVersionCurrent)
            response.emplace("v", version);
        echoId(*envelope, response);
        api::json::ParseError ignored;
        response.emplace("stats", *api::json::parse(statsJson(), &ignored));
        ++served_;
        enqueueResponse(conn, Value(std::move(response)).dump());
        return;
    }
    if (type == "ping") {
        Object response{{"ok", true}, {"type", "pong"}};
        if (version >= protocol::kVersionCurrent)
            response.emplace("v", version);
        echoId(*envelope, response);
        ++served_;
        enqueueResponse(conn, Value(std::move(response)).dump());
        return;
    }
    if (type == "shutdown") {
        Object response{{"ok", true}, {"type", "shutting_down"}};
        if (version >= protocol::kVersionCurrent)
            response.emplace("v", version);
        echoId(*envelope, response);
        ++served_;
        // Response first: it sits in the write buffer and the drain
        // flushes it before the connection closes.
        enqueueResponse(conn, Value(std::move(response)).dump());
        requestStop();
        return;
    }
    ++errors_;
    enqueueResponse(
        conn, errorResponse(
                  version, protocol::kErrUnknownType,
                  strformat("unknown request type '{}' (valid: run, stats, "
                            "ping, shutdown)",
                            type),
                  std::nullopt, envelopeId(*envelope)));
}

void
Server::handleRun(Connection &conn, const Value &envelope, int version)
{
    // Empty "request" = the default experiment, like a bare `hpe_sim run`.
    Value requestJson{Object{}};
    if (const Value *r = envelope.find("request"); r != nullptr)
        requestJson = *r;
    std::string error;
    const auto req = api::ExperimentRequest::fromJson(requestJson, error);
    if (!req.has_value()) {
        ++errors_;
        enqueueResponse(conn, errorResponse(version,
                                            protocol::kErrBadRequest,
                                            "invalid request: " + error,
                                            std::nullopt,
                                            envelopeId(envelope)));
        return;
    }

    std::uint64_t deadlineMs = cfg_.defaultDeadlineMs;
    if (const Value *d = envelope.find("deadline_ms"); d != nullptr) {
        if (!d->isNumber()) {
            ++errors_;
            enqueueResponse(conn, errorResponse(
                                      version, protocol::kErrBadRequest,
                                      "field 'deadline_ms' must be a number",
                                      std::nullopt, envelopeId(envelope)));
            return;
        }
        deadlineMs = d->asUint();
    }

    // One outstanding-request token per run request, released when the
    // request is answered: together with the shards' pending counts
    // this is the *aggregate* load depth the shed tiers key on.
    // Coalesced waiters drop theirs as soon as they park — they hold
    // no worker, so a herd sharing one slow computation is not load —
    // and one saturated shard only ever sheds its own cold traffic.
    ++outstanding_;
    const std::size_t depth = loadDepth();
    const ShedMode mode = updateShedMode(depth);
    if (mode == ShedMode::Reject) {
        ++shedRejections_;
        ++errors_;
        --outstanding_;
        enqueueResponse(
            conn,
            errorResponse(version, protocol::kErrShedReject,
                          strformat("shedding load (mode reject, depth {}): "
                                    "retry later",
                                    depth),
                          100 * depth, envelopeId(envelope)));
        return;
    }

    const std::string fingerprint = req->fingerprint();
    const unsigned shardIndex = ShardedResultStore::shardOf(
        fingerprint, static_cast<unsigned>(shards_.size()));
    Shard &shard = *shards_[shardIndex];
    const ResultCache::Acquisition acq =
        shard.cache.acquire(fingerprint, mode == ShedMode::Full);

    if (acq.role == ResultCache::Role::Rejected) {
        ++errors_;
        --outstanding_;
        // Hint: one average service time per queued computation ahead.
        const std::uint64_t retry = 100 * (1 + shard.cache.pending());
        if (mode == ShedMode::HitOnly) {
            ++shard.shedColdRejections;
            enqueueResponse(
                conn,
                errorResponse(version, protocol::kErrShedHitOnly,
                              strformat("shedding load (mode hit_only, "
                                        "depth {}): only cached and "
                                        "in-flight fingerprints are admitted",
                                        depth),
                              retry, envelopeId(envelope)));
            return;
        }
        enqueueResponse(
            conn,
            errorResponse(version, protocol::kErrSaturated,
                          strformat("saturated: {} computations queued or "
                                    "running on shard {}",
                                    shard.cache.pending(), shardIndex),
                          retry, envelopeId(envelope)));
        return;
    }

    auto ticket = std::make_shared<Ticket>();
    ticket->connId = conn.id;
    ticket->version = version;
    ticket->id = envelopeId(envelope);
    ticket->fingerprint = fingerprint;
    ticket->entry = acq.entry;
    ticket->deadlineMs = deadlineMs;

    if (acq.role == ResultCache::Role::Hit) {
        // Synchronous: the payload is ready, answer in-line.
        ticket->cached = true;
        ticket->answered.store(true);
        --outstanding_;
        enqueueResponse(conn, buildRunResponse(*ticket));
        return;
    }

    ticket->coalesced = acq.role == ResultCache::Role::Wait;
    if (ticket->coalesced)
        --outstanding_;
    conn.awaiting = true;
    if (deadlineMs > 0)
        deadlines_.emplace(Clock::now()
                               + std::chrono::milliseconds(deadlineMs),
                           ticket);

    if (acq.role == ResultCache::Role::Compute) {
        const api::ExperimentRequest run = *req;
        const ResultCache::EntryPtr entry = acq.entry;
        ResultCache *cache = &shard.cache;
        shard.pool.post([this, run, entry, fingerprint, cache] {
            ++running_;
            std::string payload;
            bool failed = false;
            try {
                payload = api::runExperiment(run).toJson().dump();
            } catch (const std::exception &e) {
                payload = strformat("experiment failed: {}", e.what());
                failed = true;
            } catch (...) {
                payload = "experiment failed";
                failed = true;
            }
            --running_;
            // Journal before publishing: a result is never visible to a
            // waiter without being durable first (write-ahead order).
            if (store_ != nullptr)
                store_->append(fingerprint, payload, failed);
            cache->complete(entry, std::move(payload), failed);
        });
    }

    // The responder: fired by complete() on the computing worker (or
    // immediately, if the entry finished between acquire and here).
    // Whoever loses the race against the deadline timer stands down.
    shard.cache.whenDone(acq.entry, [this, ticket] {
        if (ticket->answered.exchange(true))
            return;
        if (!ticket->coalesced)
            --outstanding_;
        pushCompletion(ticket->connId, buildRunResponse(*ticket));
    });
}

std::string
Server::buildRunResponse(const Ticket &ticket)
{
    if (ticket.entry->failed) {
        ++errors_;
        return errorResponse(ticket.version,
                             protocol::kErrExperimentFailed,
                             ticket.entry->payload, std::nullopt, ticket.id);
    }
    Object response{{"cached", ticket.cached},
                    {"coalesced", ticket.coalesced},
                    {"fingerprint", ticket.fingerprint},
                    {"ok", true},
                    {"type", "result"}};
    if (ticket.version >= protocol::kVersionCurrent)
        response.emplace("v", ticket.version);
    if (ticket.id.has_value())
        response.emplace("id", *ticket.id);
    api::json::ParseError ignored;
    const auto result = api::json::parse(ticket.entry->payload, &ignored);
    HPE_ASSERT(result.has_value(), "cached payload is not JSON");
    response.emplace("result", *result);
    ++served_;
    return Value(std::move(response)).dump();
}

std::size_t
Server::loadDepth() const
{
    std::size_t depth = static_cast<std::size_t>(outstanding_.load());
    for (const auto &shard : shards_)
        depth += static_cast<std::size_t>(shard->cache.pending());
    return depth;
}

ShedMode
Server::updateShedMode(std::size_t depth)
{
    // Thresholds are exclusive: full service while depth <= hit-only
    // threshold.  The depth includes the current request's own
    // outstanding token, so an inclusive compare would let a
    // --max-queue=1 daemon shed every cold request even when idle.
    ShedMode mode = ShedMode::Full;
    if (depth > shedRejectDepth_)
        mode = ShedMode::Reject;
    else if (depth > shedHitOnlyDepth_)
        mode = ShedMode::HitOnly;
    const int previous = shedMode_.exchange(static_cast<int>(mode));
    if (previous != static_cast<int>(mode))
        ++shedTransitions_;
    return mode;
}

std::string
Server::statsJson()
{
    std::uint64_t hits = 0, misses = 0, coalescedCount = 0, rejected = 0,
                  entries = 0, seeded = 0, evictions = 0, pending = 0,
                  shedCold = 0;
    for (const auto &shard : shards_) {
        hits += shard->cache.hits();
        misses += shard->cache.misses();
        coalescedCount += shard->cache.coalesced();
        rejected += shard->cache.rejected();
        entries += shard->cache.size();
        seeded += shard->cache.seeded();
        evictions += shard->cache.evictions();
        pending += shard->cache.pending();
        shedCold += shard->shedColdRejections.load();
    }

    // A fresh StatRegistry per snapshot: the daemon's counters surface
    // through the same machinery every simulation stat uses, so the CSV
    // dump format (and any tooling built on it) carries over unchanged.
    // Aggregate rows keep their pre-sharding names; each shard adds its
    // own `serve.shard<i>.*` rows beside them.
    StatRegistry stats;
    stats.counter("serve.served") += served_.load();
    stats.counter("serve.errors") += errors_.load();
    stats.counter("serve.connections") += connectionsTotal_.load();
    stats.counter("serve.cache.hits") += hits;
    stats.counter("serve.cache.misses") += misses;
    stats.counter("serve.cache.coalesced") += coalescedCount;
    stats.counter("serve.cache.rejected") += rejected;
    stats.counter("serve.cache.entries") += entries;
    stats.counter("serve.cache.seeded") += seeded;
    stats.counter("serve.cache.evictions") += evictions;
    stats.counter("serve.queue.depth") += pending;
    stats.counter("serve.jobs.in_flight") += running_.load();
    stats.counter("serve.shards") += shards_.size();
    stats.counter("serve.shed.transitions") += shedTransitions_.load();
    stats.counter("serve.shed.cold_rejections") += shedCold;
    stats.counter("serve.shed.rejections") += shedRejections_.load();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard &shard = *shards_[i];
        const std::string prefix = strformat("serve.shard{}.", i);
        stats.counter(prefix + "cache.hits") += shard.cache.hits();
        stats.counter(prefix + "cache.misses") += shard.cache.misses();
        stats.counter(prefix + "cache.coalesced") += shard.cache.coalesced();
        stats.counter(prefix + "cache.rejected") += shard.cache.rejected();
        stats.counter(prefix + "cache.entries") += shard.cache.size();
        stats.counter(prefix + "cache.seeded") += shard.cache.seeded();
        stats.counter(prefix + "cache.evictions") += shard.cache.evictions();
        stats.counter(prefix + "queue.depth") += shard.cache.pending();
        stats.counter(prefix + "shed.cold_rejections") +=
            shard.shedColdRejections.load();
        if (store_ != nullptr) {
            const ResultStore &sub = store_->shard(static_cast<unsigned>(i));
            stats.counter(prefix + "store.appends") += sub.appendCount();
            stats.counter(prefix + "store.live") += sub.liveCount();
            stats.counter(prefix + "store.segments") += sub.segmentCount();
        }
    }
    if (store_ != nullptr) {
        stats.counter("serve.store.appends") += store_->appendCount();
        stats.counter("serve.store.tombstones") += store_->tombstoneCount();
        stats.counter("serve.store.recovered") += store_->recoveredCount();
        stats.counter("serve.store.torn_truncations") +=
            store_->tornTruncations();
        stats.counter("serve.store.compactions") += store_->compactions();
        stats.counter("serve.store.segments") += store_->segmentCount();
        stats.counter("serve.store.live") += store_->liveCount();
        stats.counter("serve.store.migrated") += store_->migratedRecords();
    }
    std::ostringstream csv;
    stats.dumpCsv(csv);

    api::json::Array shardArray;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard &shard = *shards_[i];
        Object entry{
            {"cache_entries", shard.cache.size()},
            {"cache_evictions", shard.cache.evictions()},
            {"cache_hits", shard.cache.hits()},
            {"cache_misses", shard.cache.misses()},
            {"cache_seeded", shard.cache.seeded()},
            {"coalesced", shard.cache.coalesced()},
            {"queue_depth", shard.cache.pending()},
            {"rejected", shard.cache.rejected()},
            {"shard", static_cast<std::uint64_t>(i)},
            {"shed_cold_rejections", shard.shedColdRejections.load()},
        };
        if (store_ != nullptr) {
            ResultStore &sub = store_->shard(static_cast<unsigned>(i));
            entry.emplace("store",
                          Object{
                              {"appends", sub.appendCount()},
                              {"live", sub.liveCount()},
                              {"segments", sub.segmentCount()},
                              {"tombstones", sub.tombstoneCount()},
                              {"torn_truncations", sub.tornTruncations()},
                          });
        }
        shardArray.emplace_back(std::move(entry));
    }

    api::json::Array endpointArray;
    for (const std::string &spelling : boundEndpoints_)
        endpointArray.emplace_back(spelling);

    Object body{
        {"cache_entries", entries},
        {"cache_evictions", evictions},
        {"cache_hits", hits},
        {"cache_misses", misses},
        {"cache_seeded", seeded},
        {"coalesced", coalescedCount},
        {"connections", connectionsTotal_.load()},
        {"endpoints", std::move(endpointArray)},
        {"errors", errors_.load()},
        {"in_flight", running_.load()},
        {"jobs", jobsTotal_},
        {"outstanding", outstanding_.load()},
        {"queue_depth", pending},
        {"rejected", rejected},
        {"served", served_.load()},
        {"shard_count", static_cast<std::uint64_t>(shards_.size())},
        {"shards", std::move(shardArray)},
        {"shed_cold_rejections", shedCold},
        {"shed_hit_only_depth", static_cast<std::uint64_t>(shedHitOnlyDepth_)},
        {"shed_mode", shedModeName(shedMode())},
        {"shed_reject_depth", static_cast<std::uint64_t>(shedRejectDepth_)},
        {"shed_rejections", shedRejections_.load()},
        {"shed_transitions", shedTransitions_.load()},
        {"stats_csv", std::move(csv).str()},
    };
    if (store_ != nullptr)
        body.emplace("store",
                     Object{
                         {"appends", store_->appendCount()},
                         {"compactions", store_->compactions()},
                         {"dir", cfg_.storeDir},
                         {"healthy", store_->healthy()},
                         {"live", store_->liveCount()},
                         {"migrated", store_->migratedRecords()},
                         {"recovered", store_->recoveredCount()},
                         {"segments", store_->segmentCount()},
                         {"shards", store_->shards()},
                         {"tombstones", store_->tombstoneCount()},
                         {"torn_truncations", store_->tornTruncations()},
                     });
    return Value(std::move(body)).dump();
}

} // namespace hpe::serve
