#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/api.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "sim/sweep.hpp"

namespace hpe::serve {

using api::json::Object;
using api::json::Value;

namespace {

/** The server signals route to (one daemon per process). */
Server *g_signalServer = nullptr;

extern "C" void
serveSignalHandler(int)
{
    // Async-signal-safe: requestStop() only write()s to the self-pipe.
    if (g_signalServer != nullptr)
        g_signalServer->requestStop();
}

/** Write all of @p data (+ '\n') to @p fd; false on a broken peer. */
bool
writeLine(int fd, const std::string &data)
{
    std::string line = data;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
errorResponse(const std::string &message,
              std::optional<std::uint64_t> retryAfterMs = std::nullopt)
{
    Object obj{{"error", message}, {"ok", false}};
    if (retryAfterMs.has_value())
        obj.emplace("retry_after_ms", *retryAfterMs);
    return Value(std::move(obj)).dump();
}

/** Copy the request's optional "id" member into a response object. */
void
echoId(const Value &envelope, Object &response)
{
    if (const Value *id = envelope.find("id"); id != nullptr)
        response.emplace("id", *id);
}

/**
 * Is a daemon answering on @p addr?  Connect and round-trip a `ping`
 * with a one-second receive timeout.  "No" only when the connection is
 * refused or immediately dropped — a bound-but-dead socket.  A busy
 * daemon that is slow to answer counts as alive (never steal a socket
 * that something is listening on).
 */
bool
probeAlive(const sockaddr_un &addr)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return true; // cannot prove it dead; err on the safe side
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false; // nothing accepting: the socket file is stale
    }
    const timeval timeout{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    const char ping[] = "{\"type\":\"ping\"}\n";
    if (::send(fd, ping, sizeof ping - 1, MSG_NOSIGNAL) < 0) {
        ::close(fd);
        return false;
    }
    char byte;
    const ssize_t n = ::recv(fd, &byte, 1, 0);
    ::close(fd);
    if (n > 0)
        return true; // something answered
    // Timed out: a listener exists but is wedged or drowning — still
    // alive for our purposes.  Only a clean EOF means dead.
    return !(n == 0);
}

} // namespace

const char *
shedModeName(ShedMode mode)
{
    switch (mode) {
      case ShedMode::Full: return "full";
      case ShedMode::HitOnly: return "hit_only";
      case ShedMode::Reject: return "reject";
    }
    return "?";
}

Server::Server(const ServeConfig &cfg)
    : cfg_(cfg),
      shedHitOnlyDepth_(cfg.shedHitOnlyDepth > 0 ? cfg.shedHitOnlyDepth
                                                 : std::max<std::size_t>(
                                                       cfg.maxQueue, 1)),
      shedRejectDepth_(std::max(cfg.shedRejectDepth > 0
                                    ? cfg.shedRejectDepth
                                    : 4 * std::max<std::size_t>(cfg.maxQueue,
                                                                1),
                                shedHitOnlyDepth_ + 1)),
      cache_(cfg.cacheCapacity > 0 ? cfg.cacheCapacity : 1,
             cfg.maxQueue > 0 ? cfg.maxQueue : 1),
      pool_(resolveJobs(cfg.jobs))
{}

Server::~Server()
{
    stop();
    if (g_signalServer == this)
        installSignalHandlers(nullptr);
}

bool
Server::start(std::string &error)
{
    HPE_ASSERT(!started_, "server started twice");
    if (cfg_.socketPath.empty()) {
        error = "socket path is empty";
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
        error = strformat("socket path '{}' exceeds {} bytes",
                          cfg_.socketPath, sizeof(addr.sun_path) - 1);
        return false;
    }
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(),
                cfg_.socketPath.size() + 1);

    // Bind — the daemon's mutual-exclusion point — *before* the store
    // is touched: a second daemon racing a live one must fail fast
    // while the live daemon's journal is untouched (replay truncates
    // torn tails and may compact; doing either under a live owner
    // would destroy its journal).  Clients cannot connect until
    // listen(), so the warm start below still finishes before the
    // first request is accepted.
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0) {
        error = strformat("socket(): {}", std::strerror(errno));
        return false;
    }
    int bound = ::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    if (bound != 0 && errno == EADDRINUSE && !probeAlive(addr)) {
        // A dead daemon (crash, SIGKILL) left its socket file behind;
        // nothing answered the probe, so reclaim the path.
        inform("hpe_serve reclaiming stale socket {}", cfg_.socketPath);
        ::unlink(cfg_.socketPath.c_str());
        bound = ::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    }
    if (bound != 0) {
        error = strformat("bind('{}'): {} (is another hpe_serve running? "
                          "remove the stale socket if not)",
                          cfg_.socketPath, std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    // Warm-start from the durable store: the first client a recovered
    // daemon accepts already sees every cell the previous incarnation
    // computed.  The store's own directory flock backstops the bind
    // against daemons sharing a store dir across socket paths.
    if (!cfg_.storeDir.empty()) {
        ResultStoreConfig storeCfg;
        storeCfg.dir = cfg_.storeDir;
        storeCfg.segmentBytes = cfg_.storeSegmentBytes;
        storeCfg.syncEveryAppend = cfg_.storeSync;
        store_ = std::make_unique<ResultStore>(storeCfg);
        if (!store_->open(error)) {
            store_.reset();
            ::unlink(cfg_.socketPath.c_str());
            ::close(listenFd_);
            listenFd_ = -1;
            return false;
        }
        // Observer first: entries the warm start itself displaces (more
        // journal than cache capacity) get their tombstones journaled.
        cache_.setEvictionObserver(
            [this](const std::string &fp) { store_->appendTombstone(fp); });
        for (const ResultStore::Record &rec : store_->recovered())
            cache_.seed(rec.fingerprint, rec.payload, rec.failed);
        if (store_->recoveredCount() > 0)
            inform("hpe_serve warm-started {} cached results from {} "
                   "({} torn-tail truncations)",
                   store_->recoveredCount(), cfg_.storeDir,
                   store_->tornTruncations());
        // The cache holds the live copies now; drop the snapshot.
        store_->releaseRecovered();
    }

    if (::listen(listenFd_, 64) != 0) {
        error = strformat("listen(): {}", std::strerror(errno));
        ::unlink(cfg_.socketPath.c_str());
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::pipe(stopPipe_) != 0) {
        error = strformat("pipe(): {}", std::strerror(errno));
        ::unlink(cfg_.socketPath.c_str());
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::requestStop()
{
    // Called from signal handlers: only async-signal-safe calls allowed.
    if (stopPipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n = ::write(stopPipe_[1], &byte, 1);
    }
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    stopCv_.wait(lock, [this] { return stopRequested_; });
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    requestStop();
    acceptThread_.join();

    // Graceful drain: SHUT_RD unblocks each connection's pending read
    // after its current request finishes and its response is flushed;
    // the write half stays open until the handler is done with it.
    std::vector<std::unique_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        conns.swap(connections_);
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RD);
    for (const auto &conn : conns) {
        conn->thread.join();
        ::close(conn->fd);
    }

    // Flush and close the journal: a computation that outlives the
    // drain (its waiter hit its deadline and is gone) completes
    // memory-only.  Releasing the store lock here — not at
    // destruction — lets a successor daemon take the store as soon as
    // the socket path frees.
    if (store_ != nullptr)
        store_->close();

    // Unlink *before* closing the listen fd: once the fd is closed a
    // starting daemon's probe sees a dead socket and may reclaim the
    // path, and a late unlink would then delete the socket file the
    // new daemon just bound.
    ::unlink(cfg_.socketPath.c_str());
    ::close(listenFd_);
    listenFd_ = -1;
    ::close(stopPipe_[0]);
    ::close(stopPipe_[1]);
    stopPipe_[0] = stopPipe_[1] = -1;
}

void
Server::installSignalHandlers(Server *server)
{
    g_signalServer = server;
    struct sigaction sa{};
    sa.sa_handler = server != nullptr ? serveSignalHandler : SIG_DFL;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    if (server != nullptr)
        ::signal(SIGPIPE, SIG_IGN);
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0}, {stopPipe_[0], POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("hpe_serve poll(): {}", std::strerror(errno));
            break;
        }
        if ((fds[1].revents & POLLIN) != 0)
            break; // stop requested
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("hpe_serve accept(): {}", std::strerror(errno));
            continue;
        }
        ++connectionsTotal_;
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection *raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(stateMutex_);
            connections_.push_back(std::move(conn));
        }
        raw->thread = std::thread([this, fd] { connectionLoop(fd); });
    }
    std::lock_guard<std::mutex> lock(stateMutex_);
    stopRequested_ = true;
    stopCv_.notify_all();
}

void
Server::connectionLoop(int fd)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            const std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (line.empty())
                continue;
            const std::string response = handleLine(line);
            if (!writeLine(fd, response))
                return;
            continue;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return; // peer closed (or drain's SHUT_RD)
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

std::string
Server::handleLine(const std::string &line)
{
    api::json::ParseError perr;
    const auto envelope = api::json::parse(line, &perr);
    if (!envelope.has_value()) {
        ++errors_;
        return errorResponse(strformat("request parse error at byte {}: {}",
                                       perr.offset, perr.message));
    }
    if (!envelope->isObject()) {
        ++errors_;
        return errorResponse("request must be a JSON object");
    }
    std::string type = "run";
    if (const Value *t = envelope->find("type"); t != nullptr) {
        if (!t->isString()) {
            ++errors_;
            return errorResponse("field 'type' must be a string");
        }
        type = t->asString();
    }

    if (type == "run")
        return handleRun(*envelope);
    if (type == "stats") {
        Object response{{"ok", true}, {"type", "stats"}};
        echoId(*envelope, response);
        api::json::ParseError ignored;
        response.emplace("stats", *api::json::parse(statsJson(), &ignored));
        ++served_;
        return Value(std::move(response)).dump();
    }
    if (type == "ping") {
        Object response{{"ok", true}, {"type", "pong"}};
        echoId(*envelope, response);
        ++served_;
        return Value(std::move(response)).dump();
    }
    if (type == "shutdown") {
        Object response{{"ok", true}, {"type", "shutting_down"}};
        echoId(*envelope, response);
        ++served_;
        requestStop();
        return Value(std::move(response)).dump();
    }
    ++errors_;
    return errorResponse(strformat(
        "unknown request type '{}' (valid: run, stats, ping, shutdown)",
        type));
}

std::string
Server::handleRun(const Value &envelope)
{
    // Empty "request" = the default experiment, like a bare `hpe_sim run`.
    Value requestJson{Object{}};
    if (const Value *r = envelope.find("request"); r != nullptr)
        requestJson = *r;
    std::string error;
    const auto req = api::ExperimentRequest::fromJson(requestJson, error);
    if (!req.has_value()) {
        ++errors_;
        return errorResponse("invalid request: " + error);
    }

    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::uint64_t deadlineMs = cfg_.defaultDeadlineMs;
    if (const Value *d = envelope.find("deadline_ms"); d != nullptr) {
        if (!d->isNumber()) {
            ++errors_;
            return errorResponse("field 'deadline_ms' must be a number");
        }
        deadlineMs = d->asUint();
    }
    if (deadlineMs > 0)
        deadline = std::chrono::steady_clock::now()
                   + std::chrono::milliseconds(deadlineMs);

    // One outstanding-request token per run request: together with the
    // cache's pending count this is the load depth the shed tiers key
    // on.  Coalesced waiters release theirs early (below) — they hold
    // no worker, so a herd sharing one slow computation is not load.
    ++outstanding_;
    struct OutstandingGuard
    {
        std::atomic<std::uint64_t> *count;
        ~OutstandingGuard() { release(); }
        void release()
        {
            if (count != nullptr) {
                --*count;
                count = nullptr;
            }
        }
    } outstandingGuard{&outstanding_};

    const std::size_t depth =
        static_cast<std::size_t>(outstanding_.load())
        + static_cast<std::size_t>(cache_.pending());
    const ShedMode mode = updateShedMode(depth);
    if (mode == ShedMode::Reject) {
        ++shedRejections_;
        ++errors_;
        return errorResponse(
            strformat("shedding load (mode reject, depth {}): retry later",
                      depth),
            100 * depth);
    }

    const std::string fingerprint = req->fingerprint();
    const ResultCache::Acquisition acq =
        cache_.acquire(fingerprint, mode == ShedMode::Full);

    bool cached = false;
    bool coalesced = false;
    switch (acq.role) {
      case ResultCache::Role::Rejected: {
        ++errors_;
        // Hint: one average service time per queued computation ahead.
        const std::uint64_t retry = 100 * (1 + cache_.pending());
        if (mode == ShedMode::HitOnly) {
            ++shedColdRejections_;
            return errorResponse(
                strformat("shedding load (mode hit_only, depth {}): only "
                          "cached and in-flight fingerprints are admitted",
                          depth),
                retry);
        }
        return errorResponse(
            strformat("saturated: {} computations queued or running",
                      cache_.pending()),
            retry);
      }
      case ResultCache::Role::Hit:
        cached = true;
        break;
      case ResultCache::Role::Wait:
        coalesced = true;
        break;
      case ResultCache::Role::Compute: {
        const api::ExperimentRequest run = *req;
        const ResultCache::EntryPtr entry = acq.entry;
        pool_.post([this, run, entry, fingerprint] {
            ++running_;
            std::string payload;
            bool failed = false;
            try {
                payload = api::runExperiment(run).toJson().dump();
            } catch (const std::exception &e) {
                payload = strformat("experiment failed: {}", e.what());
                failed = true;
            } catch (...) {
                payload = "experiment failed";
                failed = true;
            }
            --running_;
            // Journal before publishing: a result is never visible to a
            // waiter without being durable first (write-ahead order).
            if (store_ != nullptr)
                store_->append(fingerprint, payload, failed);
            cache_.complete(entry, std::move(payload), failed);
        });
        break;
      }
    }

    // A coalesced waiter just parks on the entry's condition variable
    // until the one computation it shares finishes: drop its token so
    // 300 clients coalescing on one slow cold fingerprint cannot flip
    // the daemon into reject mode while the workers sit idle.
    if (coalesced)
        outstandingGuard.release();

    if (!cache_.wait(acq.entry, deadline)) {
        ++errors_;
        return errorResponse(
            strformat("deadline exceeded after {}ms (the computation "
                      "continues; retry to pick it up from the cache)",
                      deadlineMs),
            deadlineMs);
    }
    if (acq.entry->failed) {
        ++errors_;
        return errorResponse(acq.entry->payload);
    }

    Object response{{"cached", cached},
                    {"coalesced", coalesced},
                    {"fingerprint", fingerprint},
                    {"ok", true},
                    {"type", "result"}};
    echoId(envelope, response);
    api::json::ParseError ignored;
    const auto result = api::json::parse(acq.entry->payload, &ignored);
    HPE_ASSERT(result.has_value(), "cached payload is not JSON");
    response.emplace("result", *result);
    ++served_;
    return Value(std::move(response)).dump();
}

ShedMode
Server::updateShedMode(std::size_t depth)
{
    // Thresholds are exclusive: full service while depth <= hit-only
    // threshold.  The depth includes the current request's own
    // outstanding token, so an inclusive compare would let a
    // --max-queue=1 daemon shed every cold request even when idle.
    ShedMode mode = ShedMode::Full;
    if (depth > shedRejectDepth_)
        mode = ShedMode::Reject;
    else if (depth > shedHitOnlyDepth_)
        mode = ShedMode::HitOnly;
    const int previous = shedMode_.exchange(static_cast<int>(mode));
    if (previous != static_cast<int>(mode))
        ++shedTransitions_;
    return mode;
}

std::string
Server::statsJson()
{
    // A fresh StatRegistry per snapshot: the daemon's counters surface
    // through the same machinery every simulation stat uses, so the CSV
    // dump format (and any tooling built on it) carries over unchanged.
    StatRegistry stats;
    stats.counter("serve.served") += served_.load();
    stats.counter("serve.errors") += errors_.load();
    stats.counter("serve.connections") += connectionsTotal_.load();
    stats.counter("serve.cache.hits") += cache_.hits();
    stats.counter("serve.cache.misses") += cache_.misses();
    stats.counter("serve.cache.coalesced") += cache_.coalesced();
    stats.counter("serve.cache.rejected") += cache_.rejected();
    stats.counter("serve.cache.entries") += cache_.size();
    stats.counter("serve.cache.seeded") += cache_.seeded();
    stats.counter("serve.cache.evictions") += cache_.evictions();
    stats.counter("serve.queue.depth") += cache_.pending();
    stats.counter("serve.jobs.in_flight") += running_.load();
    stats.counter("serve.shed.transitions") += shedTransitions_.load();
    stats.counter("serve.shed.cold_rejections") += shedColdRejections_.load();
    stats.counter("serve.shed.rejections") += shedRejections_.load();
    if (store_ != nullptr) {
        stats.counter("serve.store.appends") += store_->appendCount();
        stats.counter("serve.store.tombstones") += store_->tombstoneCount();
        stats.counter("serve.store.recovered") += store_->recoveredCount();
        stats.counter("serve.store.torn_truncations") +=
            store_->tornTruncations();
        stats.counter("serve.store.compactions") += store_->compactions();
        stats.counter("serve.store.segments") += store_->segmentCount();
        stats.counter("serve.store.live") += store_->liveCount();
    }
    std::ostringstream csv;
    stats.dumpCsv(csv);

    Object body{
        {"cache_entries", cache_.size()},
        {"cache_evictions", cache_.evictions()},
        {"cache_hits", cache_.hits()},
        {"cache_misses", cache_.misses()},
        {"cache_seeded", cache_.seeded()},
        {"coalesced", cache_.coalesced()},
        {"connections", connectionsTotal_.load()},
        {"errors", errors_.load()},
        {"in_flight", running_.load()},
        {"jobs", pool_.threads()},
        {"outstanding", outstanding_.load()},
        {"queue_depth", cache_.pending()},
        {"rejected", cache_.rejected()},
        {"served", served_.load()},
        {"shed_cold_rejections", shedColdRejections_.load()},
        {"shed_hit_only_depth", static_cast<std::uint64_t>(shedHitOnlyDepth_)},
        {"shed_mode", shedModeName(shedMode())},
        {"shed_reject_depth", static_cast<std::uint64_t>(shedRejectDepth_)},
        {"shed_rejections", shedRejections_.load()},
        {"shed_transitions", shedTransitions_.load()},
        {"stats_csv", std::move(csv).str()},
    };
    if (store_ != nullptr)
        body.emplace("store",
                     Object{
                         {"appends", store_->appendCount()},
                         {"compactions", store_->compactions()},
                         {"dir", cfg_.storeDir},
                         {"healthy", store_->healthy()},
                         {"live", store_->liveCount()},
                         {"recovered", store_->recoveredCount()},
                         {"segments", store_->segmentCount()},
                         {"tombstones", store_->tombstoneCount()},
                         {"torn_truncations", store_->tornTruncations()},
                     });
    return Value(std::move(body)).dump();
}

} // namespace hpe::serve
