#include "serve/server.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/api.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "sim/sweep.hpp"

namespace hpe::serve {

using api::json::Object;
using api::json::Value;

namespace {

/** The server signals route to (one daemon per process). */
Server *g_signalServer = nullptr;

extern "C" void
serveSignalHandler(int)
{
    // Async-signal-safe: requestStop() only write()s to the self-pipe.
    if (g_signalServer != nullptr)
        g_signalServer->requestStop();
}

/** Write all of @p data (+ '\n') to @p fd; false on a broken peer. */
bool
writeLine(int fd, const std::string &data)
{
    std::string line = data;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
errorResponse(const std::string &message,
              std::optional<std::uint64_t> retryAfterMs = std::nullopt)
{
    Object obj{{"error", message}, {"ok", false}};
    if (retryAfterMs.has_value())
        obj.emplace("retry_after_ms", *retryAfterMs);
    return Value(std::move(obj)).dump();
}

/** Copy the request's optional "id" member into a response object. */
void
echoId(const Value &envelope, Object &response)
{
    if (const Value *id = envelope.find("id"); id != nullptr)
        response.emplace("id", *id);
}

} // namespace

Server::Server(const ServeConfig &cfg)
    : cfg_(cfg),
      cache_(cfg.cacheCapacity > 0 ? cfg.cacheCapacity : 1,
             cfg.maxQueue > 0 ? cfg.maxQueue : 1),
      pool_(resolveJobs(cfg.jobs))
{}

Server::~Server()
{
    stop();
    if (g_signalServer == this)
        installSignalHandlers(nullptr);
}

bool
Server::start(std::string &error)
{
    HPE_ASSERT(!started_, "server started twice");
    if (cfg_.socketPath.empty()) {
        error = "socket path is empty";
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
        error = strformat("socket path '{}' exceeds {} bytes",
                          cfg_.socketPath, sizeof(addr.sun_path) - 1);
        return false;
    }
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(),
                cfg_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0) {
        error = strformat("socket(): {}", std::strerror(errno));
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = strformat("bind('{}'): {} (is another hpe_serve running? "
                          "remove the stale socket if not)",
                          cfg_.socketPath, std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        error = strformat("listen(): {}", std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(cfg_.socketPath.c_str());
        return false;
    }
    if (::pipe(stopPipe_) != 0) {
        error = strformat("pipe(): {}", std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(cfg_.socketPath.c_str());
        return false;
    }
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::requestStop()
{
    // Called from signal handlers: only async-signal-safe calls allowed.
    if (stopPipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n = ::write(stopPipe_[1], &byte, 1);
    }
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    stopCv_.wait(lock, [this] { return stopRequested_; });
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    requestStop();
    acceptThread_.join();

    // Graceful drain: SHUT_RD unblocks each connection's pending read
    // after its current request finishes and its response is flushed;
    // the write half stays open until the handler is done with it.
    std::vector<std::unique_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        conns.swap(connections_);
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RD);
    for (const auto &conn : conns) {
        conn->thread.join();
        ::close(conn->fd);
    }

    ::close(listenFd_);
    listenFd_ = -1;
    ::close(stopPipe_[0]);
    ::close(stopPipe_[1]);
    stopPipe_[0] = stopPipe_[1] = -1;
    ::unlink(cfg_.socketPath.c_str());
}

void
Server::installSignalHandlers(Server *server)
{
    g_signalServer = server;
    struct sigaction sa{};
    sa.sa_handler = server != nullptr ? serveSignalHandler : SIG_DFL;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    if (server != nullptr)
        ::signal(SIGPIPE, SIG_IGN);
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0}, {stopPipe_[0], POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("hpe_serve poll(): {}", std::strerror(errno));
            break;
        }
        if ((fds[1].revents & POLLIN) != 0)
            break; // stop requested
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("hpe_serve accept(): {}", std::strerror(errno));
            continue;
        }
        ++connectionsTotal_;
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection *raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(stateMutex_);
            connections_.push_back(std::move(conn));
        }
        raw->thread = std::thread([this, fd] { connectionLoop(fd); });
    }
    std::lock_guard<std::mutex> lock(stateMutex_);
    stopRequested_ = true;
    stopCv_.notify_all();
}

void
Server::connectionLoop(int fd)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            const std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (line.empty())
                continue;
            const std::string response = handleLine(line);
            if (!writeLine(fd, response))
                return;
            continue;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return; // peer closed (or drain's SHUT_RD)
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

std::string
Server::handleLine(const std::string &line)
{
    api::json::ParseError perr;
    const auto envelope = api::json::parse(line, &perr);
    if (!envelope.has_value()) {
        ++errors_;
        return errorResponse(strformat("request parse error at byte {}: {}",
                                       perr.offset, perr.message));
    }
    if (!envelope->isObject()) {
        ++errors_;
        return errorResponse("request must be a JSON object");
    }
    std::string type = "run";
    if (const Value *t = envelope->find("type"); t != nullptr) {
        if (!t->isString()) {
            ++errors_;
            return errorResponse("field 'type' must be a string");
        }
        type = t->asString();
    }

    if (type == "run")
        return handleRun(*envelope);
    if (type == "stats") {
        Object response{{"ok", true}, {"type", "stats"}};
        echoId(*envelope, response);
        api::json::ParseError ignored;
        response.emplace("stats", *api::json::parse(statsJson(), &ignored));
        ++served_;
        return Value(std::move(response)).dump();
    }
    if (type == "ping") {
        Object response{{"ok", true}, {"type", "pong"}};
        echoId(*envelope, response);
        ++served_;
        return Value(std::move(response)).dump();
    }
    if (type == "shutdown") {
        Object response{{"ok", true}, {"type", "shutting_down"}};
        echoId(*envelope, response);
        ++served_;
        requestStop();
        return Value(std::move(response)).dump();
    }
    ++errors_;
    return errorResponse(strformat(
        "unknown request type '{}' (valid: run, stats, ping, shutdown)",
        type));
}

std::string
Server::handleRun(const Value &envelope)
{
    // Empty "request" = the default experiment, like a bare `hpe_sim run`.
    Value requestJson{Object{}};
    if (const Value *r = envelope.find("request"); r != nullptr)
        requestJson = *r;
    std::string error;
    const auto req = api::ExperimentRequest::fromJson(requestJson, error);
    if (!req.has_value()) {
        ++errors_;
        return errorResponse("invalid request: " + error);
    }

    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::uint64_t deadlineMs = cfg_.defaultDeadlineMs;
    if (const Value *d = envelope.find("deadline_ms"); d != nullptr) {
        if (!d->isNumber()) {
            ++errors_;
            return errorResponse("field 'deadline_ms' must be a number");
        }
        deadlineMs = d->asUint();
    }
    if (deadlineMs > 0)
        deadline = std::chrono::steady_clock::now()
                   + std::chrono::milliseconds(deadlineMs);

    const std::string fingerprint = req->fingerprint();
    const ResultCache::Acquisition acq = cache_.acquire(fingerprint);

    bool cached = false;
    bool coalesced = false;
    switch (acq.role) {
      case ResultCache::Role::Rejected: {
        ++errors_;
        // Hint: one average service time per queued computation ahead.
        const std::uint64_t retry = 100 * (1 + cache_.pending());
        return errorResponse(
            strformat("saturated: {} computations queued or running",
                      cache_.pending()),
            retry);
      }
      case ResultCache::Role::Hit:
        cached = true;
        break;
      case ResultCache::Role::Wait:
        coalesced = true;
        break;
      case ResultCache::Role::Compute: {
        const api::ExperimentRequest run = *req;
        const ResultCache::EntryPtr entry = acq.entry;
        pool_.post([this, run, entry] {
            ++running_;
            std::string payload;
            bool failed = false;
            try {
                payload = api::runExperiment(run).toJson().dump();
            } catch (const std::exception &e) {
                payload = strformat("experiment failed: {}", e.what());
                failed = true;
            } catch (...) {
                payload = "experiment failed";
                failed = true;
            }
            --running_;
            cache_.complete(entry, std::move(payload), failed);
        });
        break;
      }
    }

    if (!cache_.wait(acq.entry, deadline)) {
        ++errors_;
        return errorResponse(
            strformat("deadline exceeded after {}ms (the computation "
                      "continues; retry to pick it up from the cache)",
                      deadlineMs),
            deadlineMs);
    }
    if (acq.entry->failed) {
        ++errors_;
        return errorResponse(acq.entry->payload);
    }

    Object response{{"cached", cached},
                    {"coalesced", coalesced},
                    {"fingerprint", fingerprint},
                    {"ok", true},
                    {"type", "result"}};
    echoId(envelope, response);
    api::json::ParseError ignored;
    const auto result = api::json::parse(acq.entry->payload, &ignored);
    HPE_ASSERT(result.has_value(), "cached payload is not JSON");
    response.emplace("result", *result);
    ++served_;
    return Value(std::move(response)).dump();
}

std::string
Server::statsJson()
{
    // A fresh StatRegistry per snapshot: the daemon's counters surface
    // through the same machinery every simulation stat uses, so the CSV
    // dump format (and any tooling built on it) carries over unchanged.
    StatRegistry stats;
    stats.counter("serve.served") += served_.load();
    stats.counter("serve.errors") += errors_.load();
    stats.counter("serve.connections") += connectionsTotal_.load();
    stats.counter("serve.cache.hits") += cache_.hits();
    stats.counter("serve.cache.misses") += cache_.misses();
    stats.counter("serve.cache.coalesced") += cache_.coalesced();
    stats.counter("serve.cache.rejected") += cache_.rejected();
    stats.counter("serve.cache.entries") += cache_.size();
    stats.counter("serve.queue.depth") += cache_.pending();
    stats.counter("serve.jobs.in_flight") += running_.load();
    std::ostringstream csv;
    stats.dumpCsv(csv);

    return Value(Object{
                     {"cache_entries", cache_.size()},
                     {"cache_hits", cache_.hits()},
                     {"cache_misses", cache_.misses()},
                     {"coalesced", cache_.coalesced()},
                     {"connections", connectionsTotal_.load()},
                     {"errors", errors_.load()},
                     {"in_flight", running_.load()},
                     {"jobs", pool_.threads()},
                     {"queue_depth", cache_.pending()},
                     {"rejected", cache_.rejected()},
                     {"served", served_.load()},
                     {"stats_csv", std::move(csv).str()},
                 })
        .dump();
}

} // namespace hpe::serve
