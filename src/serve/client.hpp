/**
 * @file
 * Minimal blocking client for the hpe_serve wire protocol — one
 * request line out, one response line back.  Used by `hpe_sim submit`
 * and by the serve tests; scripted clients (CI, shell) can speak the
 * same protocol with nothing fancier than `nc -U` (or plain `nc` for
 * TCP endpoints).
 */

#pragma once

#include <string>

namespace hpe::serve {

/**
 * Connect to the daemon at @p endpointText — any endpoint-grammar
 * spelling (`unix:/path`, `tcp:host:port`, or a bare Unix socket path;
 * see serve/endpoint.hpp) — send @p requestLine (a serialized JSON
 * object; the trailing '\n' is appended here), and read one
 * newline-delimited response.
 *
 * @return true with @p response filled on success; false with @p error
 *         describing the failure (no daemon, connection dropped, ...).
 */
bool submitLine(const std::string &endpointText,
                const std::string &requestLine, std::string &response,
                std::string &error);

} // namespace hpe::serve
