/**
 * @file
 * Durable, crash-recoverable backing store for the hpe_serve result
 * cache: an append-only write-ahead journal of completed experiment
 * results.
 *
 * The store owns a directory of journal segments
 * (`journal-<seq>.log`).  Every completed computation appends one
 * framed record — (fingerprint, canonical result JSON payload, failed
 * flag) — protected by a trailing FNV-1a checksum; every cache
 * eviction appends a tombstone frame for the evicted fingerprint.
 * Frames are written with a single write(2), so a SIGKILL can tear at
 * most the frame in flight, never a committed one.
 *
 * Recovery (open()) replays the segments in sequence order, applying
 * supersede (latest write of a fingerprint wins) and tombstone
 * (latest write is a delete) semantics, and hands back the surviving
 * records in last-write order so the daemon can warm-start its
 * in-memory cache before the socket binds.  A frame that fails to
 * verify — torn tail after a crash, or bit rot — *truncates* the
 * segment at the last intact frame boundary instead of refusing to
 * start: durability degrades to "everything up to the tear", never to
 * "nothing".
 *
 * Segments rotate at a size threshold, and compaction rewrites the
 * live set into one fresh segment (tmp + fsync + rename, so a crash
 * mid-compaction leaves either the old segments or the complete new
 * one) and deletes the superseded ones.  All methods are thread-safe;
 * an append failure (disk full, directory removed) degrades the store
 * to memory-only with a warning rather than killing the daemon.
 *
 * open() takes an exclusive flock(2) on `<dir>/LOCK` before reading a
 * byte, so a second process pointed at the same directory fails fast
 * instead of misreading the owner's in-flight append as a torn tail
 * and truncating (or compacting away) a live journal.
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hpe::serve {

/** Store configuration (defaults match `hpe_sim serve`'s). */
struct ResultStoreConfig
{
    /** Journal directory; created (one level) when missing. */
    std::string dir;
    /** Rotate the active segment once it exceeds this many bytes. */
    std::size_t segmentBytes = 4u << 20;
    /** fdatasync(2) after every append.  A plain write(2) already
     *  survives SIGKILL (the bytes are the kernel's); syncing buys
     *  power-loss durability at a per-record latency cost. */
    bool syncEveryAppend = false;
    /** Compact when dead frames (superseded + tombstoned) exceed this
     *  fraction of all frames, checked at rotation and open(). */
    double compactDeadRatio = 0.5;
    /** Take the exclusive flock on `<dir>/LOCK` at open().  Disabled
     *  only by ShardedResultStore when it migrates a legacy
     *  single-store journal out of a root directory whose lock it
     *  already holds — never by a store with an independent owner. */
    bool lockDir = true;
};

/** Append-only journal of experiment results; see file comment. */
class ResultStore
{
  public:
    /** One live (fingerprint, result) pair surviving recovery. */
    struct Record
    {
        std::string fingerprint;
        std::string payload;
        bool failed = false;
    };

    explicit ResultStore(const ResultStoreConfig &cfg);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Create/scan the directory, replay every segment (truncating torn
     * tails), open the active segment for appending, and compact first
     * if the dead ratio warrants it.  @return false with @p error
     * filled when the directory cannot be created or a segment cannot
     * be opened; checksum failures are never an error.
     */
    bool open(std::string &error);

    /** Flush and close the active segment (idempotent). */
    void close();

    /** The live records recovery produced, in last-write order
     *  (oldest first) — the cache warm-start order.  Empty after
     *  releaseRecovered(). */
    const std::vector<Record> &recovered() const { return recovered_; }

    /** Drop the recovery snapshot once the cache has been seeded — the
     *  payloads otherwise stay resident for the daemon's lifetime on
     *  top of live_'s and the cache's copies.  recoveredCount() keeps
     *  reporting how many records recovery produced. */
    void releaseRecovered();

    /** Append one completed result; called on computation completion. */
    void append(const std::string &fingerprint, const std::string &payload,
                bool failed);

    /** Append a delete marker; called when the cache evicts an entry. */
    void appendTombstone(const std::string &fingerprint);

    /** Rewrite the live set into one fresh segment and delete the old
     *  ones.  Normally triggered automatically at rotation. */
    void compact();

    /** @{ Observability counters (monotonic since construction unless
     *  noted). */
    std::uint64_t appendCount() const;
    std::uint64_t tombstoneCount() const;
    std::uint64_t recoveredCount() const;
    std::uint64_t tornTruncations() const;
    std::uint64_t compactions() const;
    /** Segment files currently on disk. */
    std::uint64_t segmentCount() const;
    /** Fingerprints currently live (not superseded or tombstoned). */
    std::uint64_t liveCount() const;
    /** Frames in all segments, dead ones included. */
    std::uint64_t frameCount() const;
    /** False once an append failed and the store went memory-only. */
    bool healthy() const;
    /** @} */

    /** @{ Frame-format constants, shared with the tests. */
    static constexpr char kMagic[4] = {'H', 'P', 'E', 'J'};
    static constexpr std::uint8_t kVersion = 1;
    static constexpr std::uint8_t kFlagFailed = 1u << 0;
    static constexpr std::uint8_t kFlagTombstone = 1u << 1;
    /** Bytes of the fixed header preceding the variable sections. */
    static constexpr std::size_t kHeaderBytes = 16;
    /** Bytes of the trailing checksum. */
    static constexpr std::size_t kChecksumBytes = 8;

    /** Total on-disk bytes of a frame with these section lengths. */
    static constexpr std::size_t
    frameSize(std::size_t fingerprintLen, std::size_t payloadLen)
    {
        return kHeaderBytes + fingerprintLen + payloadLen + kChecksumBytes;
    }

    /** Serialize one frame (appended verbatim by append()). */
    static std::string encodeFrame(const std::string &fingerprint,
                                   const std::string &payload,
                                   std::uint8_t flags);
    /** @} */

  private:
    struct LiveEntry
    {
        std::string payload;
        bool failed = false;
        /** Write sequence of the latest write (orders recovered()). */
        std::uint64_t lastWrite = 0;
    };

    bool openLocked(std::string &error);
    void closeLocked();
    /** Replay one segment; truncate at the first bad frame. */
    bool replaySegment(const std::string &path, std::string &error);
    /** Open (creating) the segment with sequence @p seq for append. */
    bool openActive(std::uint64_t seq, std::string &error);
    void appendFrame(const std::string &fingerprint,
                     const std::string &payload, std::uint8_t flags);
    void applyFrame(const std::string &fingerprint, std::string payload,
                    std::uint8_t flags);
    void maybeRotateAndCompact();
    void compactLocked();
    std::string segmentPath(std::uint64_t seq) const;

    const ResultStoreConfig cfg_;

    mutable std::mutex mutex_;
    bool opened_ = false;
    bool healthy_ = true;
    /** Holds the exclusive flock on `<dir>/LOCK` while open. */
    int lockFd_ = -1;
    int activeFd_ = -1;
    std::uint64_t activeSeq_ = 0;
    std::size_t activeBytes_ = 0;
    /** Sequence numbers of every segment on disk, ascending. */
    std::vector<std::uint64_t> segments_;

    std::unordered_map<std::string, LiveEntry> live_;
    std::uint64_t writeSeq_ = 0;
    std::uint64_t frames_ = 0;
    std::uint64_t deadFrames_ = 0;

    std::vector<Record> recovered_;
    /** recovered_.size() at open(); survives releaseRecovered(). */
    std::uint64_t recoveredCount_ = 0;

    std::uint64_t appends_ = 0;
    std::uint64_t tombstones_ = 0;
    std::uint64_t tornTruncations_ = 0;
    std::uint64_t compactions_ = 0;
};

} // namespace hpe::serve
