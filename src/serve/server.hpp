/**
 * @file
 * hpe_serve — the persistent experiment-serving daemon.
 *
 * A Server listens on a Unix-domain socket and speaks a newline-delimited
 * JSON request/response protocol (one JSON object per line in each
 * direction; see docs/api.md):
 *
 *   {"type":"run","request":{...ExperimentRequest...},"id":"tag",
 *    "deadline_ms":5000}
 *   {"type":"stats"} | {"type":"ping"} | {"type":"shutdown"}
 *
 * Request handling funnels through the stable hpe::api façade, so a cell
 * served over the socket is byte-identical (same digests, same stat
 * values) to the same cell run via the CLI or a sweep.  Completed
 * results live in a content-addressed ResultCache keyed by the request
 * fingerprint: a repeat query is O(1), and identical in-flight requests
 * coalesce onto one computation.
 *
 * Operational behaviour:
 *
 *  - computations are scheduled onto the shared ThreadPool (post());
 *    parallelism defaults to resolveJobs() like every other consumer;
 *  - admission control: at most `maxQueue` computations may be queued or
 *    running; beyond that, *new* work is rejected with a retry_after_ms
 *    hint (cache hits and coalesced waits are always admitted);
 *  - per-request deadlines: a waiter whose deadline passes gets a
 *    deadline_exceeded error; the computation itself continues and lands
 *    in the cache for the retry;
 *  - graceful drain: SIGTERM/SIGINT (via installSignalHandlers) or a
 *    `shutdown` request stop the accept loop, let every in-flight
 *    request finish and its response flush, then tear the socket down;
 *  - observability: a `stats` request surfaces the cache/queue counters
 *    both as JSON and as a StatRegistry CSV dump (the PR-3 machinery).
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/json.hpp"
#include "common/thread_pool.hpp"
#include "serve/result_cache.hpp"

namespace hpe::serve {

/** Daemon configuration (defaults match `hpe_sim serve`'s). */
struct ServeConfig
{
    /** Filesystem path of the Unix-domain socket to bind. */
    std::string socketPath;
    /** Worker parallelism; 0 resolves via resolveJobs(). */
    unsigned jobs = 0;
    /** Bound on computations queued or running (admission control). */
    std::size_t maxQueue = 64;
    /** Completed results retained by the cache. */
    std::size_t cacheCapacity = 1024;
    /** Deadline applied to requests that carry none; 0 = unbounded. */
    std::uint64_t defaultDeadlineMs = 0;
};

/** The daemon; construct, start(), wait(), stop().  See file comment. */
class Server
{
  public:
    explicit Server(const ServeConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and start accepting connections on a background
     * thread.  @return false (with @p error filled) when the socket
     * cannot be created — e.g. a stale daemon still owns the path.
     */
    bool start(std::string &error);

    /** Block until a stop is requested (signal, shutdown request, or
     *  requestStop()).  Does not tear down — call stop() after. */
    void wait();

    /**
     * Ask the daemon to stop; safe from any thread, idempotent.  The
     * actual drain happens in stop() on the owning thread.
     */
    void requestStop();

    /** Graceful drain: stop accepting, finish in-flight requests, join
     *  every connection, remove the socket file.  Idempotent.  Must not
     *  be called from a connection thread (it joins them). */
    void stop();

    /**
     * Route SIGTERM/SIGINT to requestStop() of @p server (one server per
     * process), and ignore SIGPIPE so a vanished client cannot kill the
     * daemon.  Call before start(); pass nullptr to detach.
     */
    static void installSignalHandlers(Server *server);

    /** Serialized stats object (the `stats` response's "stats" member). */
    std::string statsJson();

    const ServeConfig &config() const { return cfg_; }
    ResultCache &cache() { return cache_; }
    /** Resolved worker parallelism. */
    unsigned jobs() const { return pool_.threads(); }

  private:
    void acceptLoop();
    void connectionLoop(int fd);
    /** Handle one request line; @return the response line (no '\n'). */
    std::string handleLine(const std::string &line);
    std::string handleRun(const api::json::Value &envelope);

    ServeConfig cfg_;
    // cache_ before pool_: ~ThreadPool joins in-flight tasks, which call
    // cache_.complete() — the cache must be destroyed after the pool.
    ResultCache cache_;
    ThreadPool pool_;

    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::thread acceptThread_;

    std::mutex stateMutex_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
    bool stopped_ = false;
    bool started_ = false;

    /** Connection threads + fds, guarded by stateMutex_. */
    struct Connection
    {
        int fd;
        std::thread thread;
    };
    std::vector<std::unique_ptr<Connection>> connections_;

    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> connectionsTotal_{0};
    std::atomic<std::uint64_t> running_{0};
};

} // namespace hpe::serve
