/**
 * @file
 * hpe_serve — the persistent, sharded experiment-serving daemon.
 *
 * A Server listens on any mix of Unix-domain and TCP endpoints
 * (`unix:/path` | `tcp:host:port`; see serve/endpoint.hpp) and speaks
 * a newline-delimited JSON request/response protocol, versioned since
 * v2 (one JSON object per line in each direction; see docs/api.md):
 *
 *   {"v":2,"type":"run","request":{...ExperimentRequest...},"id":"tag",
 *    "deadline_ms":5000}
 *   {"type":"stats"} | {"type":"ping"} | {"type":"shutdown"}
 *
 * Request handling funnels through the stable hpe::api façade, so a
 * cell served over any socket is byte-identical (same digests, same
 * stat values) to the same cell run via the CLI or a sweep.
 *
 * Architecture — one event-driven IO thread, N independent shards:
 *
 *  - the IO thread owns every socket: an epoll loop accepts, reads,
 *    frames request lines, writes buffered responses, and expires
 *    per-request deadlines.  It never computes: `run` work is posted
 *    to the owning shard and the response comes back through a
 *    completion queue (workers never touch a socket, the IO thread
 *    never blocks on a computation);
 *  - a shard = one ResultCache + one worker pool + one journal
 *    directory, selected by fingerprint hash
 *    (ShardedResultStore::shardOf).  Cache hits, cold computes, and
 *    journal appends on different shards share no lock;
 *  - durability: with a store directory configured, completed results
 *    journal to `<dir>/shard-<i>/` *before* waiters see them, and
 *    start() warm-starts every shard cache from the recovered union
 *    after the sockets bind but before they listen.  Restarting with
 *    a different --shards count migrates the journals (see
 *    serve/sharded_store.hpp);
 *  - tiered load shedding: admission degrades through full →
 *    hit-and-coalesce-only → reject, keyed on *aggregate* depth
 *    (outstanding run requests + computations pending across all
 *    shards), so one hot shard cannot flip the whole daemon into
 *    reject mode; what it can do is saturate its own pending bound,
 *    which sheds only the requests routed to it.  Per-shard gauges
 *    and shed counters surface in `stats` next to the aggregates;
 *  - per-request deadlines: a waiter whose deadline passes gets a
 *    deadline_exceeded error from the IO thread's timer wheel; the
 *    computation continues and lands in the cache for the retry;
 *  - robustness: request lines are capped (oversized lines get an
 *    error and a close), half-written requests and mid-request
 *    disconnects clean up silently, byte-at-a-time senders just
 *    accumulate in the read buffer;
 *  - stale-socket recovery (Unix endpoints): a dead daemon's leftover
 *    socket file is probed, unlinked, and rebound; a live daemon's is
 *    never stolen;
 *  - graceful drain: SIGTERM/SIGINT or a `shutdown` request close the
 *    listeners, answer every in-flight request, flush every response,
 *    then tear the sockets down.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/json.hpp"
#include "common/thread_pool.hpp"
#include "serve/endpoint.hpp"
#include "serve/result_cache.hpp"
#include "serve/sharded_store.hpp"

namespace hpe::serve {

/** Daemon configuration (defaults match `hpe_sim serve`'s). */
struct ServeConfig
{
    /** Primary endpoint (endpoint grammar; a bare path = Unix socket). */
    std::string socketPath;
    /** Additional listener endpoints (same grammar). */
    std::vector<std::string> listen;
    /** Cache/store/worker shards; requests route by fingerprint. */
    unsigned shards = 1;
    /** Worker parallelism across all shards; 0 resolves via
     *  resolveJobs().  Every shard gets at least one worker. */
    unsigned jobs = 0;
    /** Bound on computations queued or running (admission control),
     *  split evenly across shards (at least 1 each). */
    std::size_t maxQueue = 64;
    /** Completed results retained, split evenly across shard caches. */
    std::size_t cacheCapacity = 1024;
    /** Deadline applied to requests that carry none; 0 = unbounded. */
    std::uint64_t defaultDeadlineMs = 0;
    /** Durable result-store root; empty = memory-only daemon. */
    std::string storeDir;
    /** Journal segment rotation threshold (bytes, per shard). */
    std::size_t storeSegmentBytes = 4u << 20;
    /** fdatasync every journal append (power-loss durability). */
    bool storeSync = false;
    /** Load depth (exclusive) beyond which shedding enters
     *  hit-and-coalesce-only mode; 0 = derive (maxQueue). */
    std::size_t shedHitOnlyDepth = 0;
    /** Load depth (exclusive) beyond which shedding rejects every run
     *  request; 0 = derive (4 * maxQueue). */
    std::size_t shedRejectDepth = 0;
    /** Longest accepted request line; longer ones get an error and a
     *  close (a stream with no newline is not a client). */
    std::size_t maxLineBytes = 1u << 20;
};

/** The admission tiers of the load-shedding path, mildest first. */
enum class ShedMode { Full = 0, HitOnly = 1, Reject = 2 };

/** Wire-visible name of a shed mode ("full" / "hit_only" / "reject"). */
const char *shedModeName(ShedMode mode);

/** The daemon; construct, start(), wait(), stop().  See file comment. */
class Server
{
  public:
    explicit Server(const ServeConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind every endpoint and start the IO thread.  @return false
     * (with @p error filled) when an endpoint cannot be parsed or
     * bound — e.g. a live daemon still owns a socket — or the store
     * cannot be opened.
     */
    bool start(std::string &error);

    /** Block until a stop is requested (signal, shutdown request, or
     *  requestStop()).  Does not tear down — call stop() after. */
    void wait();

    /**
     * Ask the daemon to stop; safe from any thread (signal handlers
     * included), idempotent.  The drain runs on the IO thread; stop()
     * joins it.
     */
    void requestStop();

    /** Graceful drain: close the listeners, answer and flush every
     *  in-flight request, join the IO thread, close the store
     *  (releasing its locks), remove Unix socket files.  Idempotent.
     *  Must not be called from the IO thread or a worker. */
    void stop();

    /**
     * Route SIGTERM/SIGINT to requestStop() of @p server (one server
     * per process), and ignore SIGPIPE so a vanished client cannot
     * kill the daemon.  Call before start(); pass nullptr to detach.
     */
    static void installSignalHandlers(Server *server);

    /** Serialized stats object (the `stats` response's "stats" member). */
    std::string statsJson();

    const ServeConfig &config() const { return cfg_; }
    /** The endpoints actually bound, canonical spelling, ephemeral TCP
     *  ports resolved — valid after start(). */
    const std::vector<std::string> &boundEndpoints() const
    {
        return boundEndpoints_;
    }
    unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
    /** Shard 0's cache (the whole cache when --shards 1). */
    ResultCache &cache() { return shardCache(0); }
    ResultCache &shardCache(unsigned index);
    /** The durable store; nullptr when running memory-only. */
    ShardedResultStore *store() { return store_.get(); }
    /** Resolved worker parallelism (dedicated workers, all shards). */
    unsigned jobs() const { return jobsTotal_; }
    /** The shed mode the last admission decision ran under. */
    ShedMode shedMode() const
    {
        return static_cast<ShedMode>(shedMode_.load());
    }
    /** Times the shed mode changed (any direction). */
    std::uint64_t shedTransitions() const { return shedTransitions_.load(); }

  private:
    using Clock = std::chrono::steady_clock;

    /** One cache + worker-pool + shed-gauge unit; see file comment. */
    struct Shard
    {
        Shard(std::size_t capacity, std::size_t maxPending,
              unsigned workers)
            : cache(capacity, maxPending), pool(workers + 1)
        {}
        ResultCache cache;
        /** +1: ThreadPool counts the (absent) calling thread; every
         *  shard gets `workers` dedicated queue-serving threads. */
        ThreadPool pool;
        /** Cold fingerprints shed here in hit-and-coalesce-only mode. */
        std::atomic<std::uint64_t> shedColdRejections{0};
    };

    /** Per-connection state; owned and touched by the IO thread only. */
    struct Connection
    {
        std::uint64_t id = 0;
        int fd = -1;
        std::string rbuf;
        /** Unwritten response bytes (offset woff already sent). */
        std::string wbuf;
        std::size_t woff = 0;
        /** EPOLLOUT currently armed. */
        bool wantWrite = false;
        /** A run request is awaiting its async response (responses per
         *  connection stay in request order: buffered lines park until
         *  the in-flight one answers). */
        bool awaiting = false;
        /** Close as soon as wbuf flushes; stop reading now. */
        bool closing = false;
    };

    /** One in-flight async run request, shared between the IO thread
     *  (deadline timer) and the completing worker.  Whoever flips
     *  `answered` first owns the response. */
    struct Ticket
    {
        std::atomic<bool> answered{false};
        std::uint64_t connId = 0;
        int version = 1;
        std::optional<api::json::Value> id;
        std::string fingerprint;
        bool cached = false;
        bool coalesced = false;
        std::uint64_t deadlineMs = 0;
        ResultCache::EntryPtr entry;
    };
    using TicketPtr = std::shared_ptr<Ticket>;

    bool bindEndpoint(const Endpoint &endpoint, int &fd,
                      std::string &error);
    void closeListeners();
    void ioLoop();
    void beginDrain();
    void acceptFrom(int listenFd);
    /** @return false when the connection must be closed. */
    bool handleReadable(Connection &conn);
    bool handleWritable(Connection &conn);
    bool processLines(Connection &conn);
    bool flushWrite(Connection &conn);
    void enqueueResponse(Connection &conn, const std::string &line);
    void updateEpollInterest(Connection &conn);
    void closeConn(std::uint64_t id);
    void sweepClosable();
    void deliverCompletions();
    void expireDeadlines(Clock::time_point now);
    int epollTimeoutMs(Clock::time_point now) const;

    void handleLine(Connection &conn, const std::string &line);
    void handleRun(Connection &conn, const api::json::Value &envelope,
                   int version);
    /** The worker-side response for an answered ticket. */
    std::string buildRunResponse(const Ticket &ticket);
    /** Workers hand finished responses back to the IO thread here. */
    void pushCompletion(std::uint64_t connId, std::string line);
    /** Current shed mode for @p depth, recording transitions. */
    ShedMode updateShedMode(std::size_t depth);
    /** Aggregate depth gauge: outstanding + every shard's pending. */
    std::size_t loadDepth() const;

    ServeConfig cfg_;
    /** Resolved shedding thresholds (see ServeConfig). */
    std::size_t shedHitOnlyDepth_;
    std::size_t shedRejectDepth_;
    unsigned jobsTotal_ = 0;
    // store_ before shards_: shard pool destructors join in-flight
    // tasks, which append to the store and complete into the caches —
    // both must outlive the pools.
    std::unique_ptr<ShardedResultStore> store_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::vector<Endpoint> endpoints_;
    std::vector<std::string> boundEndpoints_;
    std::vector<int> listenFds_;
    int epollFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    /** Wakes the epoll loop when a worker queues a completion. */
    int notifyFd_ = -1;
    std::thread ioThread_;

    std::mutex stateMutex_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
    bool stopped_ = false;
    bool started_ = false;

    /** @{ IO-thread-only state. */
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
    std::uint64_t nextConnId_ = 1;
    bool draining_ = false;
    struct DeadlineLater
    {
        bool operator()(const std::pair<Clock::time_point, TicketPtr> &a,
                        const std::pair<Clock::time_point, TicketPtr> &b)
            const
        {
            return a.first > b.first;
        }
    };
    std::priority_queue<std::pair<Clock::time_point, TicketPtr>,
                        std::vector<std::pair<Clock::time_point, TicketPtr>>,
                        DeadlineLater>
        deadlines_;
    /** @} */

    /** Completed responses awaiting IO-thread delivery. */
    std::mutex doneMutex_;
    std::vector<std::pair<std::uint64_t, std::string>> done_;

    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> connectionsTotal_{0};
    std::atomic<std::uint64_t> running_{0};
    /** Run requests admitted and not yet answered (the load gauge the
     *  shed tiers key on, together with the caches' pending counts).
     *  Coalesced waiters release their token once they park. */
    std::atomic<std::uint64_t> outstanding_{0};
    std::atomic<int> shedMode_{0};
    std::atomic<std::uint64_t> shedTransitions_{0};
    /** Run requests shed outright in reject mode (pre-routing, so a
     *  daemon-level counter; the hit-only sheds count per shard). */
    std::atomic<std::uint64_t> shedRejections_{0};
};

} // namespace hpe::serve
