/**
 * @file
 * hpe_serve — the persistent experiment-serving daemon.
 *
 * A Server listens on a Unix-domain socket and speaks a newline-delimited
 * JSON request/response protocol (one JSON object per line in each
 * direction; see docs/api.md):
 *
 *   {"type":"run","request":{...ExperimentRequest...},"id":"tag",
 *    "deadline_ms":5000}
 *   {"type":"stats"} | {"type":"ping"} | {"type":"shutdown"}
 *
 * Request handling funnels through the stable hpe::api façade, so a cell
 * served over the socket is byte-identical (same digests, same stat
 * values) to the same cell run via the CLI or a sweep.  Completed
 * results live in a content-addressed ResultCache keyed by the request
 * fingerprint: a repeat query is O(1), and identical in-flight requests
 * coalesce onto one computation.
 *
 * Operational behaviour:
 *
 *  - computations are scheduled onto the shared ThreadPool (post());
 *    parallelism defaults to resolveJobs() like every other consumer;
 *  - durability: with a store directory configured, every completed
 *    result is journaled to a ResultStore *before* waiters see it, and
 *    start() warm-starts the cache from the journal after the socket
 *    binds (so a daemon racing a live one fails fast with the journal
 *    untouched) but before it listens — a restarted daemon answers
 *    previously computed cells as cache hits with byte-identical
 *    payloads from its first accepted request;
 *  - tiered load shedding: admission degrades through modes driven by
 *    load depth (queued/running computations + outstanding run
 *    requests; coalesced waiters drop out of the gauge once they park
 *    on a shared computation) — full service, then hit-and-coalesce-only (new
 *    fingerprints rejected with a retry_after_ms hint while cached and
 *    in-flight work still answers), then reject (every run request
 *    sheds; ping/stats always answer).  The current mode, transition
 *    count, and per-mode shed counters surface in `stats`;
 *  - per-request deadlines: a waiter whose deadline passes gets a
 *    deadline_exceeded error; the computation itself continues and lands
 *    in the cache for the retry;
 *  - stale-socket recovery: when the socket path is already bound,
 *    start() probes it with a `ping`; a dead daemon's leftover socket
 *    is unlinked and rebound, a live daemon keeps the bind error;
 *  - graceful drain: SIGTERM/SIGINT (via installSignalHandlers) or a
 *    `shutdown` request stop the accept loop, let every in-flight
 *    request finish and its response flush, then tear the socket down;
 *  - observability: a `stats` request surfaces the cache/queue/shed/
 *    store counters both as JSON and as a StatRegistry CSV dump (the
 *    PR-3 machinery).
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/json.hpp"
#include "common/thread_pool.hpp"
#include "serve/result_cache.hpp"
#include "serve/result_store.hpp"

namespace hpe::serve {

/** Daemon configuration (defaults match `hpe_sim serve`'s). */
struct ServeConfig
{
    /** Filesystem path of the Unix-domain socket to bind. */
    std::string socketPath;
    /** Worker parallelism; 0 resolves via resolveJobs(). */
    unsigned jobs = 0;
    /** Bound on computations queued or running (admission control). */
    std::size_t maxQueue = 64;
    /** Completed results retained by the cache. */
    std::size_t cacheCapacity = 1024;
    /** Deadline applied to requests that carry none; 0 = unbounded. */
    std::uint64_t defaultDeadlineMs = 0;
    /** Durable result-store directory; empty = memory-only daemon. */
    std::string storeDir;
    /** Journal segment rotation threshold (bytes). */
    std::size_t storeSegmentBytes = 4u << 20;
    /** fdatasync every journal append (power-loss durability). */
    bool storeSync = false;
    /** Load depth (exclusive) beyond which shedding enters
     *  hit-and-coalesce-only mode; 0 = derive (maxQueue). */
    std::size_t shedHitOnlyDepth = 0;
    /** Load depth (exclusive) beyond which shedding rejects every run
     *  request; 0 = derive (4 * maxQueue). */
    std::size_t shedRejectDepth = 0;
};

/** The admission tiers of the load-shedding path, mildest first. */
enum class ShedMode { Full = 0, HitOnly = 1, Reject = 2 };

/** Wire-visible name of a shed mode ("full" / "hit_only" / "reject"). */
const char *shedModeName(ShedMode mode);

/** The daemon; construct, start(), wait(), stop().  See file comment. */
class Server
{
  public:
    explicit Server(const ServeConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and start accepting connections on a background
     * thread.  @return false (with @p error filled) when the socket
     * cannot be created — e.g. a stale daemon still owns the path.
     */
    bool start(std::string &error);

    /** Block until a stop is requested (signal, shutdown request, or
     *  requestStop()).  Does not tear down — call stop() after. */
    void wait();

    /**
     * Ask the daemon to stop; safe from any thread, idempotent.  The
     * actual drain happens in stop() on the owning thread.
     */
    void requestStop();

    /** Graceful drain: stop accepting, finish in-flight requests, join
     *  every connection, flush and close the store (releasing its
     *  directory lock), remove the socket file.  Idempotent.  Must not
     *  be called from a connection thread (it joins them). */
    void stop();

    /**
     * Route SIGTERM/SIGINT to requestStop() of @p server (one server per
     * process), and ignore SIGPIPE so a vanished client cannot kill the
     * daemon.  Call before start(); pass nullptr to detach.
     */
    static void installSignalHandlers(Server *server);

    /** Serialized stats object (the `stats` response's "stats" member). */
    std::string statsJson();

    const ServeConfig &config() const { return cfg_; }
    ResultCache &cache() { return cache_; }
    /** The durable store; nullptr when running memory-only. */
    ResultStore *store() { return store_.get(); }
    /** Resolved worker parallelism. */
    unsigned jobs() const { return pool_.threads(); }
    /** The shed mode the last admission decision ran under. */
    ShedMode shedMode() const
    {
        return static_cast<ShedMode>(shedMode_.load());
    }
    /** Times the shed mode changed (any direction). */
    std::uint64_t shedTransitions() const { return shedTransitions_.load(); }

  private:
    void acceptLoop();
    void connectionLoop(int fd);
    /** Handle one request line; @return the response line (no '\n'). */
    std::string handleLine(const std::string &line);
    std::string handleRun(const api::json::Value &envelope);
    /** Current shed mode for @p depth, recording transitions. */
    ShedMode updateShedMode(std::size_t depth);

    ServeConfig cfg_;
    /** Resolved shedding thresholds (see ServeConfig). */
    std::size_t shedHitOnlyDepth_;
    std::size_t shedRejectDepth_;
    // store_ before cache_ before pool_: ~ThreadPool joins in-flight
    // tasks, which append to the store and call cache_.complete() — both
    // must be destroyed after the pool.
    std::unique_ptr<ResultStore> store_;
    ResultCache cache_;
    ThreadPool pool_;

    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::thread acceptThread_;

    std::mutex stateMutex_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
    bool stopped_ = false;
    bool started_ = false;

    /** Connection threads + fds, guarded by stateMutex_. */
    struct Connection
    {
        int fd;
        std::thread thread;
    };
    std::vector<std::unique_ptr<Connection>> connections_;

    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> connectionsTotal_{0};
    std::atomic<std::uint64_t> running_{0};
    /** Run requests admitted and not yet answered (the load gauge the
     *  shed tiers key on, together with the cache's pending count).
     *  Coalesced waiters release their token before they start
     *  waiting — they consume no worker. */
    std::atomic<std::uint64_t> outstanding_{0};
    std::atomic<int> shedMode_{0};
    std::atomic<std::uint64_t> shedTransitions_{0};
    /** Cold fingerprints shed in hit-and-coalesce-only mode. */
    std::atomic<std::uint64_t> shedColdRejections_{0};
    /** Run requests shed outright in reject mode. */
    std::atomic<std::uint64_t> shedRejections_{0};
};

} // namespace hpe::serve
