#include "serve/sharded_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string_view>
#include <unordered_map>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/log.hpp"

namespace hpe::serve {

namespace fs = std::filesystem;

namespace {

/** Parse "shard-<index>" (strict decimal); nullopt otherwise. */
std::optional<unsigned>
parseShardDirName(const std::string &name)
{
    constexpr std::string_view prefix = "shard-";
    if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0)
        return std::nullopt;
    unsigned index = 0;
    for (std::size_t i = prefix.size(); i < name.size(); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9')
            return std::nullopt;
        if (index > 100'000'000)
            return std::nullopt;
        index = index * 10 + static_cast<unsigned>(c - '0');
    }
    return index;
}

bool
isJournalSegmentName(const std::string &name)
{
    return name.rfind("journal-", 0) == 0 && name.size() > 12
           && name.compare(name.size() - 4, 4, ".log") == 0;
}

} // namespace

ShardedResultStore::ShardedResultStore(const ResultStoreConfig &cfg,
                                       unsigned shards)
    : cfg_(cfg), shardCount_(std::max(shards, 1u))
{}

ShardedResultStore::~ShardedResultStore()
{
    close();
}

unsigned
ShardedResultStore::shardOf(const std::string &fingerprint, unsigned shards)
{
    // FNV-1a over the fingerprint text.  The fingerprint is itself a
    // hash, but of different bytes — hashing again keeps the routing
    // independent of how fingerprints are spelled.
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : fingerprint) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return static_cast<unsigned>(h % std::max(shards, 1u));
}

std::string
ShardedResultStore::shardDir(unsigned index) const
{
    return strformat("{}/shard-{}", cfg_.dir, index);
}

bool
ShardedResultStore::open(std::string &error)
{
    HPE_ASSERT(!opened_, "sharded result store opened twice");
    if (cfg_.dir.empty()) {
        error = "store directory is empty";
        return false;
    }
    if (::mkdir(cfg_.dir.c_str(), 0777) != 0 && errno != EEXIST) {
        error = strformat("mkdir('{}'): {}", cfg_.dir, std::strerror(errno));
        return false;
    }

    // The root lock is the same `<dir>/LOCK` a legacy single-store
    // daemon takes, so sharded and unsharded incarnations pointed at
    // one root exclude each other exactly like two unsharded ones do.
    const std::string lockPath = cfg_.dir + "/LOCK";
    rootLockFd_ = ::open(lockPath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                         0666);
    if (rootLockFd_ < 0) {
        error = strformat("open('{}'): {}", lockPath, std::strerror(errno));
        return false;
    }
    if (::flock(rootLockFd_, LOCK_EX | LOCK_NB) != 0) {
        error = strformat("store directory '{}' is locked (is another "
                          "hpe_serve already serving this store?)",
                          cfg_.dir);
        ::close(rootLockFd_);
        rootLockFd_ = -1;
        return false;
    }

    // Scan the root once: current shard dirs, orphans from a larger
    // previous --shards count, and bare legacy segments.
    std::vector<std::string> orphanDirs;
    bool legacyJournal = false;
    {
        std::error_code ec;
        for (const auto &entry : fs::directory_iterator(cfg_.dir, ec)) {
            const std::string name = entry.path().filename().string();
            if (const auto index = parseShardDirName(name);
                index.has_value() && *index >= shardCount_)
                orphanDirs.push_back(entry.path().string());
            else if (isJournalSegmentName(name))
                legacyJournal = true;
        }
        if (ec) {
            error = strformat("scan('{}'): {}", cfg_.dir, ec.message());
            close();
            return false;
        }
    }

    // Open the current shards first — they are the migration targets.
    shards_.reserve(shardCount_);
    for (unsigned i = 0; i < shardCount_; ++i) {
        ResultStoreConfig sub = cfg_;
        sub.dir = shardDir(i);
        sub.lockDir = true;
        shards_.push_back(std::make_unique<ResultStore>(sub));
        if (!shards_.back()->open(error)) {
            close();
            return false;
        }
    }

    // Drain strays into the shards that own their fingerprints now.
    // Re-append before the source is touched and delete the source
    // last, so a crash anywhere in between redoes the migration
    // instead of losing frames (re-appends supersede harmlessly).
    std::vector<ResultStore::Record> migrants;
    for (const std::string &dir : orphanDirs) {
        if (!migrateDir(dir, /*lockDir=*/true, migrants, error)) {
            close();
            return false;
        }
        std::error_code ec;
        fs::remove_all(dir, ec);
        if (ec)
            warn("hpe_serve store: cannot remove migrated '{}': {}", dir,
                 ec.message());
    }
    if (legacyJournal) {
        // The legacy store locks the same `<dir>/LOCK` we already
        // hold, so it opens lock-free under our lock.
        if (!migrateDir(cfg_.dir, /*lockDir=*/false, migrants, error)) {
            close();
            return false;
        }
        std::error_code ec;
        for (const auto &entry : fs::directory_iterator(cfg_.dir, ec))
            if (isJournalSegmentName(entry.path().filename().string()))
                fs::remove(entry.path(), ec);
    }

    // Records already resident in a current shard but owned by another
    // one (the --shards count changed): re-home, then tombstone the
    // stale copy so the next replay sees exactly one home per record.
    for (unsigned i = 0; i < shardCount_; ++i) {
        for (const ResultStore::Record &rec : shards_[i]->recovered()) {
            const unsigned owner = shardOf(rec.fingerprint, shardCount_);
            if (owner == i)
                continue;
            shards_[owner]->append(rec.fingerprint, rec.payload, rec.failed);
            shards_[i]->appendTombstone(rec.fingerprint);
            ++migrated_;
        }
    }

    // The warm-start union: every shard's snapshot (re-homed records
    // included — they still live in the source snapshot) plus the
    // drained strays, one record per fingerprint.
    std::unordered_map<std::string, bool> seen;
    recovered_.clear();
    for (const auto &shard : shards_)
        for (const ResultStore::Record &rec : shard->recovered())
            if (seen.emplace(rec.fingerprint, true).second)
                recovered_.push_back(rec);
    for (ResultStore::Record &rec : migrants)
        if (seen.emplace(rec.fingerprint, true).second)
            recovered_.push_back(std::move(rec));
    recoveredCount_ = recovered_.size();
    for (const auto &shard : shards_)
        shard->releaseRecovered();

    opened_ = true;
    return true;
}

bool
ShardedResultStore::migrateDir(const std::string &dir, bool lockDir,
                               std::vector<ResultStore::Record> &migrants,
                               std::string &error)
{
    ResultStoreConfig sub = cfg_;
    sub.dir = dir;
    sub.lockDir = lockDir;
    ResultStore source(sub);
    if (!source.open(error))
        return false;
    for (const ResultStore::Record &rec : source.recovered()) {
        shards_[shardOf(rec.fingerprint, shardCount_)]->append(
            rec.fingerprint, rec.payload, rec.failed);
        migrants.push_back(rec);
        ++migrated_;
    }
    source.close();
    return true;
}

void
ShardedResultStore::close()
{
    for (const auto &shard : shards_)
        if (shard != nullptr)
            shard->close();
    if (rootLockFd_ >= 0) {
        ::close(rootLockFd_); // releases the root flock
        rootLockFd_ = -1;
    }
    opened_ = false;
}

void
ShardedResultStore::releaseRecovered()
{
    recovered_.clear();
    recovered_.shrink_to_fit();
}

void
ShardedResultStore::append(const std::string &fingerprint,
                           const std::string &payload, bool failed)
{
    // No wrapper lock: the shard vector is immutable after open(), and
    // each shard serializes its own appends.  After close() the shard
    // itself turns the append into a no-op.
    if (shards_.empty())
        return;
    shards_[shardOf(fingerprint, shardCount_)]->append(fingerprint, payload,
                                                       failed);
}

void
ShardedResultStore::appendTombstone(const std::string &fingerprint)
{
    if (shards_.empty())
        return;
    shards_[shardOf(fingerprint, shardCount_)]->appendTombstone(fingerprint);
}

std::uint64_t
ShardedResultStore::appendCount() const
{
    std::uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard->appendCount();
    return sum;
}

std::uint64_t
ShardedResultStore::tombstoneCount() const
{
    std::uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard->tombstoneCount();
    return sum;
}

std::uint64_t
ShardedResultStore::tornTruncations() const
{
    std::uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard->tornTruncations();
    return sum;
}

std::uint64_t
ShardedResultStore::compactions() const
{
    std::uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard->compactions();
    return sum;
}

std::uint64_t
ShardedResultStore::segmentCount() const
{
    std::uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard->segmentCount();
    return sum;
}

std::uint64_t
ShardedResultStore::liveCount() const
{
    std::uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard->liveCount();
    return sum;
}

bool
ShardedResultStore::healthy() const
{
    for (const auto &shard : shards_)
        if (!shard->healthy())
            return false;
    return true;
}

} // namespace hpe::serve
