/**
 * @file
 * A shard router over N independent ResultStore journals — the durable
 * half of the sharded hpe_serve daemon.
 *
 * Layout: `<dir>/shard-<i>/` holds shard i's journal segments, each a
 * complete self-describing ResultStore directory with its own `LOCK`.
 * The wrapper additionally flocks `<dir>/LOCK` before touching any
 * shard, so a sharded daemon and a legacy single-store daemon pointed
 * at the same root exclude each other (the legacy store locks the same
 * path).
 *
 * Routing: shardOf() hashes the fingerprint (FNV-1a) modulo the shard
 * count.  The mapping is deterministic and pinned by tests — the same
 * fingerprint always lands on the same shard for a given count — and
 * after open() the shard vector is immutable, so append() routes with
 * no wrapper lock: journal appends on different shards never contend.
 *
 * Reopening with a *different* shard count (or on top of a legacy
 * unsharded journal) is a supported migration, not corruption: open()
 * replays every journal it finds — current shard dirs, orphan
 * `shard-<j>` dirs with j >= the new count, and bare `journal-*.log`
 * segments in the root — re-appends records that no longer live in
 * their owning shard to the right one, and deletes the drained
 * sources.  Every frame a previous incarnation wrote survives; a
 * crash mid-migration merely redoes it (re-appends supersede).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/result_store.hpp"

namespace hpe::serve {

/** Fingerprint-sharded durable result store; see file comment. */
class ShardedResultStore
{
  public:
    /** @p cfg.dir is the root; each shard journals in `dir/shard-<i>`.
     *  @p shards must be >= 1. */
    ShardedResultStore(const ResultStoreConfig &cfg, unsigned shards);
    ~ShardedResultStore();

    ShardedResultStore(const ShardedResultStore &) = delete;
    ShardedResultStore &operator=(const ShardedResultStore &) = delete;

    /** Lock the root, open every shard, migrate stray journals (see
     *  file comment).  @return false with @p error filled on the first
     *  failure (root locked, unopenable shard, ...). */
    bool open(std::string &error);

    /** Close every shard and release the root lock (idempotent).
     *  append() after close() is a safe no-op, like ResultStore's. */
    void close();

    /** The owning shard of @p fingerprint under @p shards shards. */
    static unsigned shardOf(const std::string &fingerprint, unsigned shards);

    /** Union of every shard's recovery snapshot, shard-major in each
     *  shard's last-write order.  Empty after releaseRecovered(). */
    const std::vector<ResultStore::Record> &recovered() const
    {
        return recovered_;
    }
    void releaseRecovered();

    /** Append one completed result to its owning shard. */
    void append(const std::string &fingerprint, const std::string &payload,
                bool failed);
    /** Append a delete marker to the owning shard. */
    void appendTombstone(const std::string &fingerprint);

    unsigned shards() const { return shardCount_; }
    /** Shard @p index's underlying store (valid after open()). */
    ResultStore &shard(unsigned index) { return *shards_.at(index); }

    /** @{ Aggregates of the per-shard counters. */
    std::uint64_t appendCount() const;
    std::uint64_t tombstoneCount() const;
    std::uint64_t recoveredCount() const { return recoveredCount_; }
    std::uint64_t tornTruncations() const;
    std::uint64_t compactions() const;
    std::uint64_t segmentCount() const;
    std::uint64_t liveCount() const;
    /** False once any shard degraded to memory-only. */
    bool healthy() const;
    /** Journals re-homed by the last open() (resharding/legacy). */
    std::uint64_t migratedRecords() const { return migrated_; }
    /** @} */

  private:
    std::string shardDir(unsigned index) const;
    /** Drain a stray journal directory into the current shards,
     *  collecting its records into @p migrants. */
    bool migrateDir(const std::string &dir, bool lockDir,
                    std::vector<ResultStore::Record> &migrants,
                    std::string &error);

    const ResultStoreConfig cfg_;
    const unsigned shardCount_;

    int rootLockFd_ = -1;
    bool opened_ = false;
    std::vector<std::unique_ptr<ResultStore>> shards_;
    std::vector<ResultStore::Record> recovered_;
    std::uint64_t recoveredCount_ = 0;
    std::uint64_t migrated_ = 0;
};

} // namespace hpe::serve
