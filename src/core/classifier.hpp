/**
 * @file
 * Statistics-based application classification (§IV-D, Table III).
 *
 * When GPU memory first fills to capacity, HPE traverses the page-set
 * chain, buckets each set's saturating counter as regular/irregular and
 * small/large, and derives:
 *
 *   ratio1 = |irregular counters| / |regular counters|
 *   ratio2 = |large and regular| / |small and regular|
 *
 * Category: regular      (ratio1 <= t  and ratio2 < 2)
 *           irregular#1  (ratio1 <= t  and ratio2 >= 2)
 *           irregular#2  (ratio1 > t)
 */

#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "core/hpe_config.hpp"
#include "core/page_set_chain.hpp"

namespace hpe {

/** The three application categories of Table III. */
enum class Category : std::uint8_t { Regular, Irregular1, Irregular2 };

/** Printable category name. */
inline const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Regular:
        return "regular";
      case Category::Irregular1:
        return "irregular#1";
      case Category::Irregular2:
        return "irregular#2";
    }
    return "?";
}

/** Counter-bucket tallies plus the derived ratios and category. */
struct ClassificationResult
{
    std::uint64_t regularCounters = 0;
    std::uint64_t irregularCounters = 0;
    std::uint64_t smallRegular = 0;
    std::uint64_t largeRegular = 0;
    double ratio1 = 0.0;
    double ratio2 = 0.0;
    Category category = Category::Regular;
    /** Old-partition population at classification time (gates the
     *  search-point jump for regular applications, §IV-E). */
    std::size_t oldPartitionSets = 0;
};

/**
 * Classify the application from the chain's counter statistics.
 *
 * Zero-denominator conventions: with no regular counters at all, ratio1 is
 * +inf (=> irregular#2); with no small-and-regular counters, ratio2 is
 * +inf when any large-and-regular counter exists, else 0.
 */
ClassificationResult classify(const HpeConfig &cfg, PageSetChain &chain);

} // namespace hpe
