#include "core/hpe_policy.hpp"

#include "common/log.hpp"

namespace hpe {

HpePolicy::HpePolicy(const HpeConfig &cfg, StatRegistry &stats)
    : cfg_(cfg),
      hir_(cfg, stats, "hpe.hir"),
      chain_(cfg, stats, "hpe.chain"),
      adjust_(cfg, stats, "hpe.adjust"),
      evictions_(stats.counter("hpe.evictions")),
      hirFlushes_(stats.counter("hpe.hirFlushes")),
      searchComparisons_(stats.distribution("hpe.searchComparisons")),
      chainLength_(stats.distribution("hpe.chain.length"))
{
    cfg_.validate();
}

void
HpePolicy::onHit(PageId page)
{
    if (cfg_.hitChannel == HitChannel::Hir) {
        // Realistic channel: record beside the walker; the information
        // reaches the chain at the next transfer boundary.
        hir_.recordHit(page);
    } else {
        // Idealized channel of the sensitivity tests: immediate update.
        chain_.touch(page, 1, /*is_fault=*/false);
    }
}

void
HpePolicy::onFault(PageId page)
{
    ++faultNumber_;
    adjust_.onFault(page, faultNumber_);
    chain_.touch(page, 1, /*is_fault=*/true);

    if (cfg_.hitChannel == HitChannel::Hir
        && faultNumber_ % cfg_.transferInterval == 0) {
        const auto records = hir_.flush();
        ++hirFlushes_;
        pendingTransferBytes_ +=
            static_cast<std::uint64_t>(records.size()) * hir_.recordBytes();
        applyHirRecords(records);
    }

    if (faultNumber_ % cfg_.intervalLength == 0) {
        // Chain length sampled per interval (§V-C reports MVT averaging
        // 180 entries; the page-set granularity is what keeps it short).
        chainLength_.sample(static_cast<double>(chain_.size()));
        chain_.endInterval();
        adjust_.onIntervalEnd();
    }
}

void
HpePolicy::applyHirRecords(const std::vector<HirRecord> &records)
{
    // Records arrive in first-touch order, preserving a relaxed reference
    // order (§IV-B); counters fold multiple hits into one touch call.
    for (const HirRecord &rec : records) {
        for (std::uint32_t off = 0; off < cfg_.pageSetSize; ++off) {
            const std::uint8_t n = rec.counts[off];
            if (n > 0)
                chain_.touch(chain_.pageAt(rec.set, off), n, /*is_fault=*/false);
        }
    }
}

std::uint64_t
HpePolicy::primaryMaskOf(PageSetId set) const
{
    // History first (sticky first division), then any live divided primary.
    auto &self = const_cast<HpePolicy &>(*this);
    if (ChainEntry *primary = self.chain_.find(set, false);
        primary != nullptr && primary->divided)
        return primary->primaryMask;
    // belongsToPrimary() consults history; reconstruct the mask by probing
    // each offset, which keeps the history representation private to the
    // chain.  Page-set sizes are tiny (<= 64), so this is cheap.
    std::uint64_t mask = 0;
    for (std::uint32_t off = 0; off < cfg_.pageSetSize; ++off)
        if (chain_.belongsToPrimary(chain_.pageAt(set, off)))
            mask |= std::uint64_t{1} << off;
    return mask;
}

std::uint64_t
HpePolicy::memberMask(const ChainEntry &entry) const
{
    const std::uint64_t full = cfg_.pageSetSize == 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << cfg_.pageSetSize) - 1;
    if (entry.secondary)
        return full & ~primaryMaskOf(entry.set);
    if (entry.divided)
        return entry.primaryMask;
    return full;
}

std::optional<PageId>
HpePolicy::firstResidentPage(const ChainEntry &entry) const
{
    const std::uint64_t members = memberMask(entry);
    for (std::uint32_t off = 0; off < cfg_.pageSetSize; ++off) {
        if ((members & (std::uint64_t{1} << off)) == 0)
            continue;
        const PageId page = chain_.pageAt(entry.set, off);
        if (resident_.contains(page))
            return page;
    }
    return std::nullopt;
}

ChainEntry *
HpePolicy::mruCSearch(IntrusiveList<ChainEntry> &list)
{
    // Search from the MRU end toward LRU, skipping the (possibly jumped)
    // search offset.  A set touched exactly page-set-size times (fully
    // populated, no reuse yet) qualifies; otherwise the smallest counter
    // wins, preferring counters above the page-set size per §IV-D and
    // breaking ties toward the LRU end.
    HPE_ASSERT(!list.empty(), "MRU-C search on empty partition");
    ChainEntry *cursor = &list.back();
    std::uint32_t skip = adjust_.searchOffset();
    if (skip >= list.size())
        skip = static_cast<std::uint32_t>(list.size() - 1);
    while (skip-- > 0)
        cursor = list.prev(*cursor);

    ChainEntry *min_large = nullptr; // minimal counter > page set size
    ChainEntry *min_any = nullptr;   // minimal counter overall
    std::uint64_t comparisons = 0;
    for (ChainEntry *e = cursor; e != nullptr; e = list.prev(*e)) {
        ++comparisons;
        if (e->counter == cfg_.pageSetSize) {
            searchComparisons_.sample(static_cast<double>(comparisons));
            return e;
        }
        // Strict comparisons keep the first (MRU-most) entry among ties:
        // the paper's search runs from the MRU position, and MRU-side
        // eviction is what defeats cyclic thrashing (§IV-D).
        if (e->counter > cfg_.pageSetSize
            && (min_large == nullptr || e->counter < min_large->counter))
            min_large = e;
        if (min_any == nullptr || e->counter < min_any->counter)
            min_any = e;
    }
    searchComparisons_.sample(static_cast<double>(comparisons));
    return min_large != nullptr ? min_large : min_any;
}

ChainEntry *
HpePolicy::selectVictimSet()
{
    // Partition preference (§IV-D): old, then middle, then new.
    for (Partition p : {Partition::Old, Partition::Middle, Partition::New}) {
        IntrusiveList<ChainEntry> &list = chain_.partition(p);
        if (list.empty())
            continue;
        victimPartition_ = p;
        if (adjust_.strategy() == Strategy::MruC)
            return mruCSearch(list);
        return &list.front(); // LRU position
    }
    return nullptr;
}

PageId
HpePolicy::selectVictim()
{
    HPE_ASSERT(!resident_.empty(), "HPE victim request with no resident pages");

    if (!adjust_.started()) {
        // First time GPU memory fills: run the one-shot classification and
        // arm the adjustment controller (§IV-D).
        classification_ = classify(cfg_, chain_);
        adjust_.start(*classification_, faultNumber_);
    }

    for (;;) {
        if (currentVictim_ != nullptr) {
            // A set re-touched since selection moved to the new partition;
            // it is hot again, so abandon it rather than thrash.
            if (currentVictim_->part != victimPartition_) {
                currentVictim_ = nullptr;
            } else if (auto page = firstResidentPage(*currentVictim_)) {
                return *page;
            } else {
                // All member pages gone: the set leaves the chain.
                chain_.remove(*currentVictim_);
                currentVictim_ = nullptr;
            }
        }
        if (currentVictim_ == nullptr) {
            currentVictim_ = selectVictimSet();
            if (currentVictim_ == nullptr) {
                // Chain exhausted (e.g. hit information lost to HIR way
                // conflicts): fall back to any resident page.
                return *resident_.begin();
            }
            // Sets with no resident members are purged by the loop above.
            if (firstResidentPage(*currentVictim_).has_value())
                continue;
            chain_.remove(*currentVictim_);
            currentVictim_ = nullptr;
            continue;
        }
    }
}

void
HpePolicy::onEvict(PageId page)
{
    const auto erased = resident_.erase(page);
    HPE_ASSERT(erased == 1, "evicting non-resident page {:#x}", page);
    ++evictions_;
    adjust_.onEvict(page);

    // "Once all pages in a page set have been evicted, the page set is
    // removed from the page set chain" (§IV-C).
    const bool secondary = !chain_.belongsToPrimary(page);
    ChainEntry *entry = chain_.find(chain_.setOf(page), secondary);
    if (entry != nullptr && !firstResidentPage(*entry).has_value()) {
        if (entry == currentVictim_)
            currentVictim_ = nullptr;
        chain_.remove(*entry);
    }
}

void
HpePolicy::onMigrateIn(PageId page)
{
    const auto [it, inserted] = resident_.insert(page);
    (void)it;
    HPE_ASSERT(inserted, "double migrate-in of page {:#x}", page);
}

void
HpePolicy::onPrefetchIn(PageId page)
{
    const auto [it, inserted] = resident_.insert(page);
    (void)it;
    HPE_ASSERT(inserted, "double prefetch-in of page {:#x}", page);
    // Without a chain entry the page would be invisible to victim search
    // (only the resident-set fallback could reclaim it); a cold insert at
    // the old partition's LRU end makes speculation the first thing every
    // strategy drains.  No HIR record and no touch: the page has shown
    // neither recency nor frequency.
    chain_.insertCold(page);
}

std::uint64_t
HpePolicy::takePendingTransferBytes()
{
    return std::exchange(pendingTransferBytes_, 0);
}

} // namespace hpe
