#include "core/classifier.hpp"

namespace hpe {

ClassificationResult
classify(const HpeConfig &cfg, PageSetChain &chain)
{
    ClassificationResult r;
    const std::uint32_t s = cfg.pageSetSize;

    chain.forEach([&](ChainEntry &e) {
        if (e.counter == 0)
            return;
        if (e.counter % s == 0) {
            ++r.regularCounters;
            if (e.counter == s || e.counter == 2 * s)
                ++r.smallRegular;
            else if (e.counter == 3 * s || e.counter == 4 * s)
                ++r.largeRegular;
        } else {
            ++r.irregularCounters;
        }
    });

    constexpr double inf = std::numeric_limits<double>::infinity();
    r.ratio1 = r.regularCounters > 0
                   ? static_cast<double>(r.irregularCounters)
                         / static_cast<double>(r.regularCounters)
                   : (r.irregularCounters > 0 ? inf : 0.0);
    r.ratio2 = r.smallRegular > 0
                   ? static_cast<double>(r.largeRegular)
                         / static_cast<double>(r.smallRegular)
                   : (r.largeRegular > 0 ? inf : 0.0);

    if (r.ratio1 > cfg.ratio1Threshold)
        r.category = Category::Irregular2;
    else if (r.ratio2 >= cfg.ratio2Threshold)
        r.category = Category::Irregular1;
    else
        r.category = Category::Regular;

    r.oldPartitionSets = chain.partition(Partition::Old).size();
    return r;
}

} // namespace hpe
