#include "core/hir_cache.hpp"

#include <algorithm>
#include <bit>

#include "common/log.hpp"

namespace hpe {

HirCache::HirCache(const HpeConfig &cfg, StatRegistry &stats, const std::string &name)
    : cfg_(cfg), array_(cfg.hirEntries, cfg.hirWays),
      hitsRecorded_(stats.counter(name + ".hitsRecorded")),
      conflicts_(stats.counter(name + ".conflicts")),
      entriesPerFlush_(stats.distribution(name + ".entriesPerFlush"))
{
    cfg_.validate();
}

std::uint32_t
HirCache::pageSetShift() const
{
    return static_cast<std::uint32_t>(std::countr_zero(cfg_.pageSetSize));
}

void
HirCache::recordHit(PageId page)
{
    ++hitsRecorded_;
    const PageSetId set = page >> pageSetShift();
    const std::uint32_t offset = static_cast<std::uint32_t>(page & (cfg_.pageSetSize - 1));
    const std::uint8_t ceiling =
        static_cast<std::uint8_t>((1u << cfg_.hirCounterBits) - 1);

    auto *entry = array_.find(set);
    if (entry == nullptr) {
        SetAssocArray<Payload>::Entry displaced;
        SetAssocArray<Payload>::Entry *victim_out = &displaced;
        const std::uint64_t before = array_.conflictEvictions();
        entry = &array_.insert(set, victim_out);
        if (array_.conflictEvictions() != before) {
            // A way conflict silently dropped a live entry: its counts are
            // lost, exactly the information-loss case of §IV-B.
            ++conflicts_;
            std::erase(order_, displaced.tag);
        }
        entry->data.counts.assign(cfg_.pageSetSize, 0);
        order_.push_back(set);
    }
    std::uint8_t &c = entry->data.counts[offset];
    if (c < ceiling)
        ++c;
}

std::vector<HirRecord>
HirCache::flush()
{
    std::vector<HirRecord> out;
    out.reserve(order_.size());
    for (PageSetId set : order_) {
        auto *entry = array_.probe(set);
        HPE_ASSERT(entry != nullptr, "ordered HIR entry {:#x} missing", set);
        out.push_back(HirRecord{set, entry->data.counts});
    }
    entriesPerFlush_.sample(static_cast<double>(out.size()));
    array_.clear();
    order_.clear();
    return out;
}

std::size_t
HirCache::recordBytes() const
{
    // 48-bit tag + pageSetSize counters of hirCounterBits each (§V-C:
    // 80 bits = 10 bytes with the default configuration).
    const std::size_t bits = 48 + cfg_.pageSetSize * cfg_.hirCounterBits;
    return (bits + 7) / 8;
}

} // namespace hpe
