#include "core/adjustment.hpp"

#include "common/log.hpp"

namespace hpe {

AdjustmentController::AdjustmentController(const HpeConfig &cfg, StatRegistry &stats,
                                           const std::string &name)
    : cfg_(cfg), lru_(cfg.fifoDepth), mruc_(cfg.fifoDepth),
      wrongEvictions_(stats.counter(name + ".wrongEvictions")),
      switches_(stats.counter(name + ".strategySwitches")),
      jumps_(stats.counter(name + ".searchJumps"))
{}

void
AdjustmentController::start(const ClassificationResult &cls, std::uint64_t fault_number)
{
    HPE_ASSERT(!started_, "classification happens once");
    started_ = true;
    category_ = cls.category;
    active_ = category_ == Category::Regular ? Strategy::MruC : Strategy::Lru;
    if (cfg_.forcedStrategy != ForcedStrategy::None)
        active_ = cfg_.forcedStrategy == ForcedStrategy::Lru ? Strategy::Lru
                                                             : Strategy::MruC;
    jumpEligible_ = cls.oldPartitionSets >= cfg_.minOldPartitionForJump();
    oldSetsAtStart_ = cls.oldPartitionSets;
    runIntervals_ = 0;
    timeline_.push_back(AdjustmentEvent{fault_number, active_, searchOffset_});
}

void
AdjustmentController::onEvict(PageId page)
{
    if (!started_)
        return;
    state(active_).buffer.push(page, intervalNumber_);
}

void
AdjustmentController::onFault(PageId page, std::uint64_t fault_number)
{
    if (!started_)
        return;
    // A fault on an address a strategy recently evicted is a wrong
    // eviction charged to that strategy.
    for (Strategy s : {Strategy::Lru, Strategy::MruC}) {
        if (state(s).buffer.contains(page)) {
            ++state(s).wrongEvictions;
            ++wrongEvictions_;
        }
    }
    if (!cfg_.dynamicAdjustment)
        return;
    if (state(active_).wrongEvictions >= cfg_.wrongEvictionThreshold) {
        state(active_).wrongEvictions = 0;
        trigger(fault_number);
    }
}

void
AdjustmentController::onIntervalEnd()
{
    if (!started_)
        return;
    ++intervalNumber_;
    lru_.wrongEvictions = 0;
    mruc_.wrongEvictions = 0;
    lru_.buffer.expire(intervalNumber_);
    mruc_.buffer.expire(intervalNumber_);
    ++runIntervals_;
}

void
AdjustmentController::endRun()
{
    StrategyState &st = state(active_);
    st.totalIntervals += runIntervals_;
    ++st.runs;
    runIntervals_ = 0;
}

void
AdjustmentController::trigger(std::uint64_t fault_number)
{
    switch (category_) {
      case Category::Regular: {
        // Algorithm 1, lines 1-7: keep MRU-C; jump the search point by 16
        // unless the footprint guard blocks it (small old partition).
        // Jumping past the old partition observed at classification would
        // degenerate MRU-C into LRU, so the offset is bounded there.
        if (!jumpEligible_)
            return;
        if (searchOffset_ + cfg_.searchJump > oldSetsAtStart_)
            return;
        searchOffset_ += cfg_.searchJump;
        // Judge the jumped configuration on fresh evidence only.
        state(active_).buffer.clear();
        ++jumps_;
        timeline_.push_back(AdjustmentEvent{fault_number, active_, searchOffset_});
        return;
      }
      case Category::Irregular1:
        // MRU-C would thrash on bursty page walks; remain with LRU.
        return;
      case Category::Irregular2: {
        // longer_interval(LRU, MRU-C): prefer the strategy whose runs have
        // historically lasted longer; a never-tried strategy is always
        // worth trying (the current one just failed).
        const Strategy candidate = other(active_);
        const StrategyState &cur = state(active_);
        const StrategyState &cand = state(candidate);
        if (cand.runs > 0 && cur.runs > 0
            && cand.averageRun() < cur.averageRun()
            && static_cast<double>(runIntervals_) >= cand.averageRun()) {
            // The other strategy historically fails faster than the
            // current one is lasting; stay put.
            return;
        }
        endRun();
        active_ = candidate;
        ++switches_;
        timeline_.push_back(AdjustmentEvent{fault_number, active_, searchOffset_});
        return;
      }
    }
}

} // namespace hpe
