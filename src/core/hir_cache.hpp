/**
 * @file
 * HIR — the "hit information record" cache (§IV-B).
 *
 * A small set-associative cache beside the page table walker.  Each entry
 * is tagged with a page-set address and holds one small saturating counter
 * per page of the set, counting page-walk hits.  Every Nth page fault the
 * touched entries are copied out (in first-touch order, which preserves a
 * relaxed reference order), transferred to the GPU driver over PCIe, and
 * the cache is flushed.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/hpe_config.hpp"
#include "mem/set_assoc.hpp"

namespace hpe {

/** One transferred HIR record: a page set and its per-page hit counts. */
struct HirRecord
{
    PageSetId set = 0;
    /** hit count per page offset; length = page set size. */
    std::vector<std::uint8_t> counts;
};

/** The on-GPU hit-information record cache. */
class HirCache
{
  public:
    /**
     * @param cfg   HPE configuration (geometry, counter width, set size).
     * @param stats registry receiving "<name>.*".
     * @param name  stat prefix, e.g. "hpe.hir".
     */
    HirCache(const HpeConfig &cfg, StatRegistry &stats, const std::string &name);

    /** Record a page-walk hit on @p page. */
    void recordHit(PageId page);

    /**
     * Copy out all touched entries in first-touch order and flush.
     * @return the records destined for the GPU driver.
     */
    std::vector<HirRecord> flush();

    /** Bytes one record occupies on the wire (tag + counter vector). */
    std::size_t recordBytes() const;

    /** Number of currently touched entries. */
    std::size_t occupancy() const { return order_.size(); }

    /** Insertions that displaced a live entry (way conflicts, §IV-B). */
    std::uint64_t conflictDrops() const { return conflicts_.value(); }

  private:
    struct Payload
    {
        std::vector<std::uint8_t> counts;
    };

    std::uint32_t pageSetShift() const;

    const HpeConfig cfg_;
    SetAssocArray<Payload> array_;
    /** Page-set tags in first-touch order since the last flush. */
    std::vector<PageSetId> order_;
    Counter &hitsRecorded_;
    Counter &conflicts_;
    Distribution &entriesPerFlush_;
};

} // namespace hpe
