/**
 * @file
 * HPE — the hierarchical page eviction policy (§IV).
 *
 * Composition of the paper's pieces:
 *
 *  - an on-GPU HIR cache records page-walk hits and is flushed to the
 *    driver every Nth page fault (or hits update the chain directly in
 *    the idealized sensitivity-test mode);
 *  - the page-set chain tracks recency (old/middle/new partitions) and
 *    frequency (saturating counters) at page-set granularity;
 *  - at first memory-full a statistics pass classifies the application
 *    and picks the initial eviction strategy (MRU-C or LRU);
 *  - the dynamic-adjustment controller watches wrong evictions and
 *    switches strategy / jumps the MRU-C search point per Algorithm 1.
 *
 * Victim selection picks a page set (old partition first, then middle,
 * then new), then returns its resident member pages one at a time in
 * ascending address order; when a set runs empty it leaves the chain.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/adjustment.hpp"
#include "core/classifier.hpp"
#include "core/hir_cache.hpp"
#include "core/hpe_config.hpp"
#include "core/page_set_chain.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** The paper's contribution, behind the generic policy interface. */
class HpePolicy : public EvictionPolicy
{
  public:
    /**
     * @param cfg   all HPE parameters (see HpeConfig for the defaults).
     * @param stats registry receiving the "hpe.*" stat tree.
     */
    explicit HpePolicy(const HpeConfig &cfg, StatRegistry &stats);

    void onHit(PageId page) override;
    void onFault(PageId page) override;
    PageId selectVictim() override;
    void onEvict(PageId page) override;
    void onMigrateIn(PageId page) override;
    /** Speculative arrival: the page's set enters the chain's old
     *  partition cold (no counter, no recency), so MRU-C and LRU alike
     *  drain speculation before any tracked set. */
    void onPrefetchIn(PageId page) override;
    std::string name() const override { return "HPE"; }

    void reserveCapacity(std::size_t frames) override { resident_.reserve(frames); }

    // HPE's observable transitions live on the page-set chain (insertions,
    // divisions, rotations, new-partition promotions); forward the sink.
    void setTraceSink(trace::TraceSink *sink) override
    {
        chain_.setTraceSink(sink);
    }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        return std::vector<PageId>(resident_.begin(), resident_.end());
    }

    /** @{ introspection for benches and tests */
    const HpeConfig &config() const { return cfg_; }
    PageSetChain &chain() { return chain_; }
    HirCache &hir() { return hir_; }
    AdjustmentController &adjustment() { return adjust_; }
    std::uint64_t faultNumber() const { return faultNumber_; }

    /** Classification result; empty until memory first filled. */
    const std::optional<ClassificationResult> &classification() const
    {
        return classification_;
    }

    /**
     * PCIe bytes of HIR transfers accumulated since the last call; the
     * timing simulator charges these to execution time (§V-B).
     */
    std::uint64_t takePendingTransferBytes();
    /** @} */

  private:
    /** Apply one flushed batch of HIR records to the chain. */
    void applyHirRecords(const std::vector<HirRecord> &records);

    /** The bit mask of page offsets belonging to @p entry. */
    std::uint64_t memberMask(const ChainEntry &entry) const;

    /** First resident member page of @p entry in address order, if any. */
    std::optional<PageId> firstResidentPage(const ChainEntry &entry) const;

    /** Run the active strategy to pick the next victim page set. */
    ChainEntry *selectVictimSet();

    /** MRU-C search (§IV-D) within @p list, honouring the search offset. */
    ChainEntry *mruCSearch(IntrusiveList<ChainEntry> &list);

    /** The primary bit mask of @p set from history or the live entry. */
    std::uint64_t primaryMaskOf(PageSetId set) const;

    const HpeConfig cfg_;
    HirCache hir_;
    PageSetChain chain_;
    AdjustmentController adjust_;

    std::unordered_set<PageId> resident_;
    std::uint64_t faultNumber_ = 0;
    std::optional<ClassificationResult> classification_;

    /** Set currently being drained by evictions, and where it was found. */
    ChainEntry *currentVictim_ = nullptr;
    Partition victimPartition_ = Partition::Old;

    std::uint64_t pendingTransferBytes_ = 0;

    Counter &evictions_;
    Counter &hirFlushes_;
    Distribution &searchComparisons_;
    Distribution &chainLength_;
};

} // namespace hpe
