/**
 * @file
 * The software-managed page-set chain (§IV-C).
 *
 * Page sets (groups of 2^n virtually contiguous pages) live on a recency
 * chain split into three partitions by the P1/P2 boundary pointers of the
 * paper:
 *
 *   old    — referenced before, but not in the last or current interval;
 *   middle — referenced in the last interval;
 *   new    — referenced in the current interval.
 *
 * We realize the partitions as three spliced intrusive lists, which makes
 * the interval rotation (P1 <- P2, P2 <- tail) O(touched sets).  Each entry
 * carries the paper's four fields: tag, saturating counter (ceiling 64),
 * bit vector of faulted pages, and the divided flag.  Page-set division and
 * the history buffer implement the even/odd-page behaviour of workloads
 * like NW (§IV-C).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/intrusive_list.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/hpe_config.hpp"

namespace hpe {

namespace trace {
class TraceSink;
} // namespace trace

/** Which third of the chain an entry currently occupies. */
enum class Partition : std::uint8_t { Old, Middle, New };

/** One page set on the chain. */
struct ChainEntry : IntrusiveNode
{
    PageSetId set = 0;        ///< page-set address (the tag)
    bool secondary = false;   ///< this is the secondary half of a division
    std::uint32_t counter = 0;///< touches, saturating at the config ceiling
    std::uint64_t bitVec = 0; ///< pages that have faulted (faults only)
    bool divided = false;     ///< division has been applied
    std::uint64_t primaryMask = 0; ///< frozen bit vector at first division
    Partition part = Partition::New;

    /** Map key: page-set address plus the secondary discriminator bit. */
    static std::uint64_t
    keyOf(PageSetId set, bool secondary)
    {
        return (set << 1) | (secondary ? 1u : 0u);
    }
};

/** Outcome of touching the chain with one page reference. */
struct TouchResult
{
    ChainEntry *entry = nullptr;
    bool created = false;   ///< a new chain entry was inserted
    bool dividedNow = false;///< this touch triggered a division
};

/** The three-partition page-set chain plus division history. */
class PageSetChain
{
  public:
    /**
     * @param cfg   HPE configuration.
     * @param stats registry receiving "<name>.*".
     * @param name  stat prefix, e.g. "hpe.chain".
     */
    PageSetChain(const HpeConfig &cfg, StatRegistry &stats, const std::string &name);
    ~PageSetChain();

    /** @{ page <-> set arithmetic */
    PageSetId setOf(PageId page) const { return page >> setShift_; }
    std::uint32_t offsetOf(PageId page) const
    {
        return static_cast<std::uint32_t>(page & (cfg_.pageSetSize - 1));
    }
    PageId pageAt(PageSetId set, std::uint32_t offset) const
    {
        return (set << setShift_) | offset;
    }
    /** @} */

    /**
     * Record @p count touches of @p page (Fig. 6).  Resolves the page to
     * its primary or secondary entry (via the chain and the history
     * buffer), bumps the saturating counter, sets the bit vector bit when
     * @p is_fault, applies division when the counter saturates with an
     * incomplete bit vector, and moves the entry to the MRU position of
     * the new partition unless it is already in the new partition.
     */
    TouchResult touch(PageId page, std::uint32_t count, bool is_fault);

    /**
     * Record the *speculative* arrival of @p page (prefetch): mark its bit
     * in the owning entry's bit vector without bumping the counter and
     * without any recency promotion.  An absent entry is created at the
     * LRU end of the **old** partition — the position every eviction
     * strategy drains first — so speculation enters the chain's coldest
     * tier instead of the protected new partition.  Emits a Demotion
     * event (HpePageSet scope, value 1) when a sink is attached.
     */
    ChainEntry &insertCold(PageId page);

    /**
     * End the current interval: old absorbs middle, the new partition
     * becomes the middle partition (P1 <- P2, P2 <- tail).
     */
    void endInterval();

    /**
     * Remove @p entry from the chain (all of its pages were evicted).
     * A divided primary deposits its first-division metadata in the
     * history buffer on the way out.
     */
    void remove(ChainEntry &entry);

    /** Entry lookup by set/secondary; nullptr if absent. */
    ChainEntry *find(PageSetId set, bool secondary);

    /**
     * Does @p page belong to the primary entry of its set?  Consults the
     * live divided entry or the history buffer; defaults to primary.
     */
    bool belongsToPrimary(PageId page) const;

    /** @{ partition access for the eviction strategies */
    IntrusiveList<ChainEntry> &partition(Partition p);
    const IntrusiveList<ChainEntry> &partition(Partition p) const;
    std::size_t size() const { return entries_.size(); }
    /** @} */

    /** Visit every entry (partition order: old, middle, new; LRU first). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (ChainEntry &e : old_)
            fn(e);
        for (ChainEntry &e : middle_)
            fn(e);
        for (ChainEntry &e : new_)
            fn(e);
    }

    /** Number of recorded first divisions (for tests/stats). */
    std::size_t historySize() const { return history_.size(); }

    /** Attach a structured-event sink (nullable); chain mutations then emit
     *  ChainOp events and new-partition moves emit HpePageSet promotions. */
    void setTraceSink(trace::TraceSink *sink) { sink_ = sink; }

  private:
    /** Insert a fresh entry at the MRU position of the new partition. */
    ChainEntry &create(PageSetId set, bool secondary);

    /** Move a non-new entry to the MRU position of the new partition. */
    void promoteToNew(ChainEntry &entry);

    /** Emit a ChainOp event for @p set if a sink is attached. */
    void emitChainOp(std::uint8_t op, PageSetId set, std::uint64_t value);

    const HpeConfig cfg_;
    std::uint32_t setShift_;
    std::uint64_t fullMask_;
    trace::TraceSink *sink_ = nullptr;

    IntrusiveList<ChainEntry> old_;
    IntrusiveList<ChainEntry> middle_;
    IntrusiveList<ChainEntry> new_;
    std::unordered_map<std::uint64_t, std::unique_ptr<ChainEntry>> entries_;

    /** First-division primary masks, keyed by page-set address (sticky). */
    std::unordered_map<PageSetId, std::uint64_t> history_;

    Counter &divisions_;
    Counter &insertions_;
    Counter &movements_;
};

} // namespace hpe
