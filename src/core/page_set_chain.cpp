#include "core/page_set_chain.hpp"

#include <bit>

#include "common/log.hpp"
#include "trace/trace_sink.hpp"

namespace hpe {

PageSetChain::PageSetChain(const HpeConfig &cfg, StatRegistry &stats,
                           const std::string &name)
    : cfg_(cfg),
      setShift_(static_cast<std::uint32_t>(std::countr_zero(cfg.pageSetSize))),
      fullMask_(cfg.pageSetSize == 64 ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << cfg.pageSetSize) - 1),
      divisions_(stats.counter(name + ".divisions")),
      insertions_(stats.counter(name + ".insertions")),
      movements_(stats.counter(name + ".movements"))
{
    cfg_.validate();
}

PageSetChain::~PageSetChain()
{
    // Unlink nodes before the unique_ptrs release them.
    for (auto *list : {&old_, &middle_, &new_})
        while (!list->empty())
            list->remove(list->front());
}

void
PageSetChain::emitChainOp(std::uint8_t op, PageSetId set, std::uint64_t value)
{
    if (sink_ != nullptr)
        sink_->emit(trace::EventKind::ChainOp, op, set, value);
}

ChainEntry *
PageSetChain::find(PageSetId set, bool secondary)
{
    auto it = entries_.find(ChainEntry::keyOf(set, secondary));
    return it == entries_.end() ? nullptr : it->second.get();
}

bool
PageSetChain::belongsToPrimary(PageId page) const
{
    const PageSetId set = page >> setShift_;
    const std::uint64_t bit = std::uint64_t{1}
        << (page & (cfg_.pageSetSize - 1));

    // Fig. 6 step 2: consult the history buffer first (previously evicted
    // divided sets), then any live divided primary on the chain.
    if (auto it = history_.find(set); it != history_.end())
        return (it->second & bit) != 0;
    auto eit = entries_.find(ChainEntry::keyOf(set, false));
    if (eit != entries_.end() && eit->second->divided)
        return (eit->second->primaryMask & bit) != 0;
    return true;
}

ChainEntry &
PageSetChain::create(PageSetId set, bool secondary)
{
    auto entry = std::make_unique<ChainEntry>();
    ChainEntry &ref = *entry;
    ref.set = set;
    ref.secondary = secondary;
    ref.part = Partition::New;
    // A re-inserted primary inherits its sticky first-division result so
    // later touches keep routing to the same halves (§IV-C).
    if (!secondary) {
        if (auto it = history_.find(set); it != history_.end()) {
            ref.divided = true;
            ref.primaryMask = it->second;
        }
    }
    new_.pushBack(ref);
    entries_.emplace(ChainEntry::keyOf(set, secondary), std::move(entry));
    ++insertions_;
    emitChainOp(static_cast<std::uint8_t>(trace::ChainOpKind::Insert), set,
                secondary ? 1 : 0);
    return ref;
}

void
PageSetChain::promoteToNew(ChainEntry &entry)
{
    partition(entry.part).remove(entry);
    entry.part = Partition::New;
    new_.pushBack(entry);
    ++movements_;
    if (sink_ != nullptr)
        sink_->emit(trace::EventKind::Promotion,
                    static_cast<std::uint8_t>(trace::PromotionScope::HpePageSet),
                    entry.set, entry.secondary ? 1 : 0);
}

TouchResult
PageSetChain::touch(PageId page, std::uint32_t count, bool is_fault)
{
    HPE_ASSERT(count > 0, "touch with zero count");
    const PageSetId set = setOf(page);
    const std::uint32_t offset = offsetOf(page);
    const bool secondary = !belongsToPrimary(page);

    TouchResult result;
    result.entry = find(set, secondary);
    if (result.entry == nullptr) {
        result.entry = &create(set, secondary);
        result.created = true;
    }
    ChainEntry &e = *result.entry;

    const bool was_over_threshold = e.counter >= cfg_.divisionThreshold;
    e.counter = std::min(e.counter + count, cfg_.counterMax);
    if (is_fault)
        e.bitVec |= std::uint64_t{1} << offset;

    // Division check (§IV-C): the first time the counter crosses the
    // division threshold (the paper divides at saturation; lowering the
    // threshold is the NW relaxation of §V-B), an incomplete bit vector
    // divides the set.  Secondary halves and already divided sets never
    // divide again, and a set with no faulted pages at all is left alone
    // (an empty primary mask would route everything to the secondary).
    if (cfg_.enableDivision && !was_over_threshold
        && e.counter >= cfg_.divisionThreshold && !e.divided
        && !e.secondary && (e.bitVec & fullMask_) != fullMask_ && e.bitVec != 0) {
        e.divided = true;
        e.primaryMask = e.bitVec;
        result.dividedNow = true;
        ++divisions_;
        emitChainOp(static_cast<std::uint8_t>(trace::ChainOpKind::Divide), set,
                    e.primaryMask);
    }

    // Movement (§IV-C note 2): once in the new partition, further touches
    // in the same interval cause no movement.
    if (e.part != Partition::New)
        promoteToNew(e);

    return result;
}

ChainEntry &
PageSetChain::insertCold(PageId page)
{
    const PageSetId set = setOf(page);
    const std::uint32_t offset = offsetOf(page);
    const bool secondary = !belongsToPrimary(page);

    ChainEntry *entry = find(set, secondary);
    if (entry == nullptr) {
        // Mirror create(), but land at the LRU end of the old partition:
        // a set that exists only through speculation has shown no recency
        // at all, so it must not displace tracked sets from the eviction
        // order.
        auto node = std::make_unique<ChainEntry>();
        entry = node.get();
        entry->set = set;
        entry->secondary = secondary;
        entry->part = Partition::Old;
        if (!secondary) {
            if (auto it = history_.find(set); it != history_.end()) {
                entry->divided = true;
                entry->primaryMask = it->second;
            }
        }
        old_.pushFront(*entry);
        entries_.emplace(ChainEntry::keyOf(set, secondary), std::move(node));
        ++insertions_;
        emitChainOp(static_cast<std::uint8_t>(trace::ChainOpKind::Insert), set,
                    secondary ? 1 : 0);
    }
    // The page is resident now, so the bit-vector records it (victim
    // search walks these bits); the counter and the entry's position are
    // untouched — speculation earns no frequency and no recency.
    entry->bitVec |= std::uint64_t{1} << offset;
    if (sink_ != nullptr)
        sink_->emit(trace::EventKind::Demotion,
                    static_cast<std::uint8_t>(trace::PromotionScope::HpePageSet),
                    set, 1);
    return *entry;
}

void
PageSetChain::endInterval()
{
    // P1 <- P2: the middle partition ages into old; P2 <- tail: the sets of
    // the finished interval become the middle partition.
    for (ChainEntry &e : middle_)
        e.part = Partition::Old;
    for (ChainEntry &e : new_)
        e.part = Partition::Middle;
    old_.spliceBack(middle_);
    middle_.spliceBack(new_);
    emitChainOp(static_cast<std::uint8_t>(trace::ChainOpKind::Rotate), 0,
                entries_.size());
}

void
PageSetChain::remove(ChainEntry &entry)
{
    if (entry.divided && !entry.secondary) {
        // Record only the first division result (sticky thereafter).
        history_.emplace(entry.set, entry.primaryMask);
    }
    emitChainOp(static_cast<std::uint8_t>(trace::ChainOpKind::Remove), entry.set,
                entry.secondary ? 1 : 0);
    partition(entry.part).remove(entry);
    const auto erased = entries_.erase(ChainEntry::keyOf(entry.set, entry.secondary));
    HPE_ASSERT(erased == 1, "chain entry {:#x} missing from index", entry.set);
}

IntrusiveList<ChainEntry> &
PageSetChain::partition(Partition p)
{
    switch (p) {
      case Partition::Old:
        return old_;
      case Partition::Middle:
        return middle_;
      case Partition::New:
        return new_;
    }
    panic("bad partition");
}

const IntrusiveList<ChainEntry> &
PageSetChain::partition(Partition p) const
{
    return const_cast<PageSetChain *>(this)->partition(p);
}

} // namespace hpe
