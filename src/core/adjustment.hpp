/**
 * @file
 * Dynamic eviction-strategy adjustment (§IV-E, Algorithm 1).
 *
 * Each strategy (LRU and MRU-C) owns a FIFO buffer of the page addresses
 * it evicted during the last two intervals and a wrong-eviction counter
 * (a page fault on a buffered address is a wrong eviction); the counter
 * resets at every interval boundary.  When the active strategy's counter
 * reaches the page-set size:
 *
 *  - regular applications keep MRU-C but jump the search point forward by
 *    16 — only if the old partition held at least 4 x page-set-size sets
 *    at first memory-full (small-footprint guard);
 *  - irregular#1 applications stay with LRU;
 *  - irregular#2 applications switch to `longer_interval(LRU, MRU-C)`:
 *    the other strategy, unless its historical average run length is
 *    strictly shorter than the current one's.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/classifier.hpp"
#include "core/hpe_config.hpp"

namespace hpe {

/** The two eviction strategies HPE arbitrates between. */
enum class Strategy : std::uint8_t { Lru, MruC };

/** Printable strategy name. */
inline const char *
strategyName(Strategy s)
{
    return s == Strategy::Lru ? "LRU" : "MRU-C";
}

/** One timeline record for the Fig. 13 breakdown. */
struct AdjustmentEvent
{
    std::uint64_t faultNumber = 0;
    Strategy strategy = Strategy::Lru; ///< strategy active from this point
    std::uint32_t searchOffset = 0;    ///< MRU-C search offset from this point
};

/** Tracks wrong evictions and applies Algorithm 1. */
class AdjustmentController
{
  public:
    /**
     * @param cfg   HPE configuration.
     * @param stats registry receiving "<name>.*".
     * @param name  stat prefix, e.g. "hpe.adjust".
     */
    AdjustmentController(const HpeConfig &cfg, StatRegistry &stats,
                         const std::string &name);

    /**
     * Classification finished: pick the initial strategy (MRU-C for
     * regular, LRU otherwise) and latch the jump-eligibility guard.
     */
    void start(const ClassificationResult &cls, std::uint64_t fault_number);

    /** Has start() run (i.e. memory filled once)? */
    bool started() const { return started_; }

    /** The strategy evictions should use right now. */
    Strategy strategy() const { return active_; }

    /** Current MRU-C search-point offset (entries to skip from MRU). */
    std::uint32_t searchOffset() const { return searchOffset_; }

    /** Record an eviction performed by the active strategy. */
    void onEvict(PageId page);

    /**
     * Record a page fault; detects wrong evictions and, when the active
     * strategy's counter reaches the threshold, applies Algorithm 1.
     */
    void onFault(PageId page, std::uint64_t fault_number);

    /** Interval boundary: reset the wrong-eviction counters. */
    void onIntervalEnd();

    /** Timeline of strategy/search-point changes (Fig. 13). */
    const std::vector<AdjustmentEvent> &timeline() const { return timeline_; }

  private:
    /**
     * Bounded FIFO of recently evicted pages with O(1) membership.
     * Entries expire after two intervals (the paper's buffer "stores
     * evicted virtual page addresses in the last two intervals"), so a
     * configuration change is judged only on fresh evidence.
     */
    class EvictBuffer
    {
      public:
        explicit EvictBuffer(std::size_t depth) : depth_(depth) {}

        void
        push(PageId page, std::uint64_t interval)
        {
            if (fifo_.size() == depth_)
                pop();
            fifo_.push_back(Entry{page, interval});
            ++members_[page];
        }

        bool contains(PageId page) const { return members_.contains(page); }

        /** Drop entries older than two intervals. */
        void
        expire(std::uint64_t current_interval)
        {
            while (!fifo_.empty()
                   && fifo_.front().interval + 2 <= current_interval)
                pop();
        }

        void
        clear()
        {
            fifo_.clear();
            members_.clear();
        }

      private:
        struct Entry
        {
            PageId page;
            std::uint64_t interval;
        };

        void
        pop()
        {
            const Entry victim = fifo_.front();
            fifo_.pop_front();
            auto it = members_.find(victim.page);
            if (--it->second == 0)
                members_.erase(it);
        }

        std::size_t depth_;
        std::deque<Entry> fifo_;
        std::unordered_map<PageId, std::uint32_t> members_;
    };

    struct StrategyState
    {
        explicit StrategyState(std::size_t depth) : buffer(depth) {}

        EvictBuffer buffer;
        std::uint32_t wrongEvictions = 0; ///< reset every interval
        std::uint64_t totalIntervals = 0; ///< across all runs
        std::uint64_t runs = 0;

        double
        averageRun() const
        {
            return runs == 0 ? 0.0
                             : static_cast<double>(totalIntervals)
                                   / static_cast<double>(runs);
        }
    };

    StrategyState &state(Strategy s) { return s == Strategy::Lru ? lru_ : mruc_; }
    static Strategy other(Strategy s)
    {
        return s == Strategy::Lru ? Strategy::MruC : Strategy::Lru;
    }

    /** Apply the per-category reaction to a triggered adjustment. */
    void trigger(std::uint64_t fault_number);

    /** Close the active strategy's current run (for run-length history). */
    void endRun();

    const HpeConfig cfg_;
    Category category_ = Category::Regular;
    bool started_ = false;
    bool jumpEligible_ = false;
    /** Old-partition population at classification; bounds the offset. */
    std::size_t oldSetsAtStart_ = 0;
    Strategy active_ = Strategy::Lru;
    std::uint32_t searchOffset_ = 0;
    std::uint64_t runIntervals_ = 0; ///< intervals in the active run so far
    std::uint64_t intervalNumber_ = 0;

    StrategyState lru_;
    StrategyState mruc_;
    std::vector<AdjustmentEvent> timeline_;

    Counter &wrongEvictions_;
    Counter &switches_;
    Counter &jumps_;
};

} // namespace hpe
