/**
 * @file
 * All of HPE's tuning parameters in one place, defaulted to the values the
 * paper selects in its sensitivity study (§V-A).
 */

#pragma once

#include <cstdint>

#include "common/log.hpp"

namespace hpe {

/** How page-walk-hit information reaches the page-set chain. */
enum class HitChannel
{
    /**
     * The paper's realistic design: hits are recorded in the on-GPU HIR
     * cache and transferred to the driver every Nth page fault.
     */
    Hir,
    /**
     * The idealized model used during the paper's sensitivity tests: hits
     * update the chain directly, in exact order, with no transfer cost.
     */
    Direct,
};

/**
 * Eviction-strategy override for sensitivity experiments (§V-A runs with
 * dynamic adjustment off and a manually selected strategy per app).
 */
enum class ForcedStrategy
{
    None, ///< classify normally
    Lru,
    MruC,
};

/** HPE parameters (defaults = the paper's chosen configuration). */
struct HpeConfig
{
    /** Pages per page set; must be a power of two (paper: 16). */
    std::uint32_t pageSetSize = 16;

    /** Page faults per interval (paper: 64). */
    std::uint32_t intervalLength = 64;

    /** Saturation ceiling of the per-set touch counter (paper: 64). */
    std::uint32_t counterMax = 64;

    /**
     * Counter value at which an incompletely-populated set divides
     * (paper: at saturation, i.e. counterMax).  §V-B notes NW improves
     * "if more page sets are divided by relaxing the division
     * requirement" — lowering this threshold is that relaxation.
     */
    std::uint32_t divisionThreshold = 64;

    /** Classification threshold on ratio1 (paper: 0.3). */
    double ratio1Threshold = 0.3;

    /** Classification threshold on ratio2 (paper: 2). */
    double ratio2Threshold = 2.0;

    /** Depth of each wrong-eviction FIFO buffer (paper: 128 = 2 intervals). */
    std::uint32_t fifoDepth = 128;

    /**
     * Wrong evictions that trigger dynamic adjustment (paper: page set
     * size, i.e. 16).
     */
    std::uint32_t wrongEvictionThreshold = 16;

    /** Transfer HIR contents to the driver every Nth fault (paper: 16). */
    std::uint32_t transferInterval = 16;

    /** MRU-C search-point jump distance on adjustment (paper: 16). */
    std::uint32_t searchJump = 16;

    /**
     * A "regular" application only adjusts its search point if the old
     * partition held at least this many sets at first memory-full
     * (paper: 4 x page set size).
     */
    std::uint32_t minOldPartitionForJump() const { return 4 * pageSetSize; }

    /** HIR geometry (paper: 1024 entries, 8-way). */
    std::uint32_t hirEntries = 1024;
    std::uint32_t hirWays = 8;

    /** Bits per HIR per-page hit counter (paper: 2). */
    std::uint32_t hirCounterBits = 2;

    /** Hit-information channel. */
    HitChannel hitChannel = HitChannel::Hir;

    /** Enable page-set division (§IV-C); off = ablation. */
    bool enableDivision = true;

    /** Enable the dynamic adjustment mechanism (§IV-E). */
    bool dynamicAdjustment = true;

    /** Manual strategy selection for the sensitivity experiments. */
    ForcedStrategy forcedStrategy = ForcedStrategy::None;

    /** Validate invariants the implementation relies on. */
    void
    validate() const
    {
        HPE_ASSERT(pageSetSize > 0 && (pageSetSize & (pageSetSize - 1)) == 0,
                   "page set size {} must be a power of two", pageSetSize);
        HPE_ASSERT(pageSetSize <= 64, "bit vector holds at most 64 pages");
        HPE_ASSERT(intervalLength > 0, "interval length must be positive");
        // Classification distinguishes counters up to 4 x page set size;
        // with larger sets (e.g. 32) the saturating counter cannot express
        // "large and regular", which is exactly the classification
        // difficulty the paper reports for size 32 (§V-A).
        HPE_ASSERT(counterMax >= pageSetSize,
                   "counter ceiling {} below page set size {}", counterMax, pageSetSize);
        HPE_ASSERT(divisionThreshold > 0 && divisionThreshold <= counterMax,
                   "division threshold {} outside (0, {}]", divisionThreshold,
                   counterMax);
        HPE_ASSERT(hirEntries % hirWays == 0, "bad HIR geometry");
        HPE_ASSERT(hirCounterBits >= 1 && hirCounterBits <= 8, "bad HIR counter width");
    }
};

} // namespace hpe
