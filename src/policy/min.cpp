#include "policy/min.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hpe {

MinPolicy::MinPolicy(TracePtr trace)
    : trace_(std::move(trace))
{
    HPE_ASSERT(trace_ != nullptr, "MIN requires a canonical trace");
    for (std::uint64_t i = 0; i < trace_->size(); ++i)
        positions_[(*trace_)[i]].push_back(i);
}

void
MinPolicy::observe(PageId page)
{
    // Per-page consumption: the k-th observation of a page corresponds to
    // its k-th canonical reference, so its next use is position k+1.
    // Per-page pointers are immune to the cross-page reordering of the
    // timing simulator, and the driver guarantees every visit reaches the
    // policy exactly once (merged faults arrive as hits after wakeup), so
    // the pointers stay synchronized; in the functional simulator this is
    // exact Belady MIN.
    PageState &st = pages_[page];
    auto pit = positions_.find(page);
    if (pit == positions_.end()) {
        st.nextUse = kNever;
        return;
    }
    const auto &pos = pit->second;
    const std::uint64_t seen = st.refsSeen < pos.size() ? st.refsSeen : pos.size() - 1;
    ++st.refsSeen;
    st.nextUse = seen + 1 < pos.size() ? pos[seen + 1] : kNever;
}

PageId
MinPolicy::selectVictim()
{
    HPE_ASSERT(!resident_.empty(), "MIN victim request with no resident pages");
    PageId best = kInvalidId;
    std::uint64_t best_use = 0;
    for (PageId page : resident_) {
        PageState &st = pages_[page];
        if (st.nextUse == kNever)
            return page; // never used again: unbeatable victim
        if (best == kInvalidId || st.nextUse > best_use) {
            best = page;
            best_use = st.nextUse;
        }
    }
    return best;
}

void
MinPolicy::onEvict(PageId page)
{
    auto it = residentIndex_.find(page);
    HPE_ASSERT(it != residentIndex_.end(), "evicting untracked page {:#x}", page);
    pages_[page].resident = false;
    const std::size_t pos = it->second;
    resident_[pos] = resident_.back();
    residentIndex_[resident_[pos]] = pos;
    resident_.pop_back();
    residentIndex_.erase(page);
}

void
MinPolicy::onMigrateIn(PageId page)
{
    PageState &st = pages_[page];
    HPE_ASSERT(!st.resident, "double migrate-in of page {:#x}", page);
    st.resident = true;
    residentIndex_.emplace(page, resident_.size());
    resident_.push_back(page);
}

} // namespace hpe
