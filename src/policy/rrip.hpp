/**
 * @file
 * Page-level RRIP with frequency priority (FP), enhanced as in the paper
 * (§V-B "Compared to Other Policies"):
 *
 *  - each page carries an M-bit re-reference prediction value (RRPV);
 *  - FP hit promotion: a reference decrements the RRPV;
 *  - a per-page *delay* field records the global page-fault number at
 *    insertion; a victim must have the maximum RRPV *and* a fault-number
 *    margin of at least `delayThreshold` (128 for declared type-II
 *    workloads, which also insert at distant RRPV; 0 otherwise, with long
 *    RRPV insertion).
 *
 * If every page already sits at the maximum RRPV but none satisfies the
 * delay requirement (aging cannot make progress), the page with the widest
 * margin — i.e. the oldest insertion — is chosen; the paper does not define
 * this corner.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/intrusive_list.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** Tuning knobs for RripPolicy. */
struct RripConfig
{
    /** RRPV width in bits (max value = 2^bits - 1). */
    unsigned rrpvBits = 2;
    /** Insert with distant (max) RRPV instead of long (max-1). */
    bool distantInsertion = false;
    /** Minimum page-fault-number margin before a page may be evicted. */
    std::uint64_t delayThreshold = 0;

    /** The configuration the paper uses for declared type-II workloads. */
    static RripConfig
    thrashing()
    {
        return RripConfig{.rrpvBits = 2, .distantInsertion = true, .delayThreshold = 128};
    }
};

/** RRIP-FP over resident pages with the paper's delay enhancement. */
class RripPolicy : public EvictionPolicy
{
  public:
    explicit RripPolicy(const RripConfig &cfg = {});

    void onHit(PageId page) override;
    void onFault(PageId page) override;
    PageId selectVictim() override;
    void onEvict(PageId page) override;
    void onMigrateIn(PageId page) override;
    std::string name() const override { return "RRIP"; }

    void reserveCapacity(std::size_t frames) override { nodes_.reserve(frames); }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        std::vector<PageId> pages;
        pages.reserve(nodes_.size());
        for (const auto &[page, node] : nodes_)
            pages.push_back(page);
        return pages;
    }

    /** Resident tracked pages (for tests). */
    std::size_t size() const { return nodes_.size(); }

  private:
    struct Node : IntrusiveNode
    {
        PageId page = kInvalidId;
        unsigned rrpv = 0;
        std::uint64_t delay = 0; ///< global fault number at insertion
    };

    unsigned maxRrpv() const { return (1u << cfg_.rrpvBits) - 1; }

    RripConfig cfg_;
    std::uint64_t faultNumber_ = 0;
    IntrusiveList<Node> ring_;
    std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
};

} // namespace hpe
