/**
 * @file
 * LFU — the representative frequency-based policy the paper cites (§VI)
 * when arguing that frequency information alone is not enough for
 * unified-memory eviction.  Included as an extra baseline.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/**
 * Exact least-frequently-used with FIFO tie-breaking.
 *
 * The victim index is a lazy-deletion binary min-heap over
 * (frequency, sequence) instead of an ordered map: hits and migrations
 * push a fresh entry and leave the superseded one in place, and
 * selectVictim() pops stale entries (sequence mismatch, or no longer
 * resident) until the top is live.  Sequence numbers are unique, so the
 * heap order — and therefore every victim — is exactly the ordered-map
 * minimum this replaced.  A rebuild pass compacts the heap whenever
 * stale entries outnumber live pages.
 */
class LfuPolicy : public EvictionPolicy
{
  public:
    void
    onHit(PageId page) override
    {
        auto it = pages_.find(page);
        if (it == pages_.end())
            return;
        bump(it->second, page);
    }

    void onFault(PageId) override {}

    PageId
    selectVictim() override
    {
        HPE_ASSERT(resident_ > 0, "LFU victim request with no pages");
        while (true) {
            HPE_ASSERT(!heap_.empty(), "LFU heap lost a resident page");
            const Entry &top = heap_.front();
            auto it = pages_.find(top.page);
            if (it != pages_.end() && it->second.resident
                && it->second.sequence == top.sequence)
                return top.page;
            std::pop_heap(heap_.begin(), heap_.end(), Greater{});
            heap_.pop_back();
        }
    }

    void
    onEvict(PageId page) override
    {
        auto it = pages_.find(page);
        HPE_ASSERT(it != pages_.end(), "evicting untracked page {:#x}", page);
        // Frequency survives eviction so a returning page keeps history;
        // the heap entry goes stale and is popped or compacted lazily.
        it->second.resident = false;
        --resident_;
    }

    void
    onMigrateIn(PageId page) override
    {
        State &st = pages_[page];
        HPE_ASSERT(!st.resident, "double migrate-in of page {:#x}", page);
        st.resident = true;
        ++st.frequency;
        st.sequence = ++clock_;
        ++resident_;
        push(st, page);
    }

    std::string name() const override { return "LFU"; }

    void
    reserveCapacity(std::size_t frames) override
    {
        pages_.reserve(frames);
        heap_.reserve(2 * frames + 64);
    }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        std::vector<PageId> pages;
        pages.reserve(resident_);
        for (const auto &[page, st] : pages_)
            if (st.resident)
                pages.push_back(page);
        return pages;
    }

    /** Frequency of @p page (0 if never seen); for tests. */
    std::uint64_t
    frequencyOf(PageId page) const
    {
        auto it = pages_.find(page);
        return it == pages_.end() ? 0 : it->second.frequency;
    }

  private:
    struct State
    {
        std::uint64_t frequency = 0;
        std::uint64_t sequence = 0;
        bool resident = false;
    };

    struct Entry
    {
        std::uint64_t frequency;
        std::uint64_t sequence;
        PageId page;
    };

    /** Min-heap order on (frequency, sequence); sequences are unique. */
    struct Greater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.frequency != b.frequency)
                return a.frequency > b.frequency;
            return a.sequence > b.sequence;
        }
    };

    void
    bump(State &st, PageId page)
    {
        ++st.frequency;
        st.sequence = ++clock_;
        if (st.resident)
            push(st, page);
    }

    void
    push(const State &st, PageId page)
    {
        if (heap_.size() >= 2 * resident_ + 64)
            rebuild();
        heap_.push_back(Entry{st.frequency, st.sequence, page});
        std::push_heap(heap_.begin(), heap_.end(), Greater{});
    }

    /** Drop every stale entry and re-heapify the live ones. */
    void
    rebuild()
    {
        heap_.clear();
        for (const auto &[page, st] : pages_)
            if (st.resident)
                heap_.push_back(Entry{st.frequency, st.sequence, page});
        std::make_heap(heap_.begin(), heap_.end(), Greater{});
    }

    std::unordered_map<PageId, State> pages_;
    std::vector<Entry> heap_;
    std::size_t resident_ = 0;
    std::uint64_t clock_ = 0;
};

} // namespace hpe
