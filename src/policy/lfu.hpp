/**
 * @file
 * LFU — the representative frequency-based policy the paper cites (§VI)
 * when arguing that frequency information alone is not enough for
 * unified-memory eviction.  Included as an extra baseline.
 */

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "common/log.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/**
 * Exact least-frequently-used with FIFO tie-breaking, O(log n) per
 * operation via a (frequency, sequence) ordered index.
 */
class LfuPolicy : public EvictionPolicy
{
  public:
    void
    onHit(PageId page) override
    {
        auto it = pages_.find(page);
        if (it == pages_.end())
            return;
        bump(it->second, page);
    }

    void onFault(PageId) override {}

    PageId
    selectVictim() override
    {
        HPE_ASSERT(!index_.empty(), "LFU victim request with no pages");
        return index_.begin()->second;
    }

    void
    onEvict(PageId page) override
    {
        auto it = pages_.find(page);
        HPE_ASSERT(it != pages_.end(), "evicting untracked page {:#x}", page);
        index_.erase(Key{it->second.frequency, it->second.sequence});
        // Frequency survives eviction so a returning page keeps history.
        it->second.resident = false;
    }

    void
    onMigrateIn(PageId page) override
    {
        State &st = pages_[page];
        HPE_ASSERT(!st.resident, "double migrate-in of page {:#x}", page);
        st.resident = true;
        ++st.frequency;
        st.sequence = ++clock_;
        index_.emplace(Key{st.frequency, st.sequence}, page);
    }

    std::string name() const override { return "LFU"; }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        std::vector<PageId> pages;
        pages.reserve(index_.size());
        for (const auto &[key, page] : index_)
            pages.push_back(page);
        return pages;
    }

    /** Frequency of @p page (0 if never seen); for tests. */
    std::uint64_t
    frequencyOf(PageId page) const
    {
        auto it = pages_.find(page);
        return it == pages_.end() ? 0 : it->second.frequency;
    }

  private:
    struct State
    {
        std::uint64_t frequency = 0;
        std::uint64_t sequence = 0;
        bool resident = false;
    };

    using Key = std::pair<std::uint64_t, std::uint64_t>;

    void
    bump(State &st, PageId page)
    {
        if (st.resident)
            index_.erase(Key{st.frequency, st.sequence});
        ++st.frequency;
        st.sequence = ++clock_;
        if (st.resident)
            index_.emplace(Key{st.frequency, st.sequence}, page);
    }

    std::unordered_map<PageId, State> pages_;
    std::map<Key, PageId> index_;
    std::uint64_t clock_ = 0;
};

} // namespace hpe
