/**
 * @file
 * DIP — dynamic insertion policy (Qureshi et al. [30]) adapted from cache
 * sets to demand-paged memory.
 *
 * The paper's related work (§VI) argues DIP's set dueling "is not easy to
 * apply in memory"; this adaptation tests that claim.  Two small leader
 * groups of pages are chosen by address hash: one inserts at MRU (classic
 * LRU), the other uses bimodal insertion (BIP: insert at the LRU end
 * except with probability 1/32).  A saturating selector counts leader
 * faults and steers all follower pages to the winning insertion policy.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/intrusive_list.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** Tuning knobs for DipPolicy. */
struct DipConfig
{
    /** 1-in-N pages lead each insertion policy (by address hash). */
    std::uint32_t leaderFraction = 32;
    /** BIP inserts at MRU once in this many insertions. */
    std::uint32_t bipEpsilonInverse = 32;
    /** Selector saturation (classic DIP uses 10 bits). */
    std::uint32_t pselMax = 1024;
    std::uint64_t seed = 1;

    /** Validate invariants the selector arithmetic relies on. */
    void
    validate() const
    {
        // Rng::below(0) silently returns 0, which would turn BIP into
        // always-MRU (i.e. plain LRU) instead of failing loudly.
        HPE_ASSERT(bipEpsilonInverse >= 1,
                   "BIP epsilon inverse must be at least 1");
        // psel_ starts at pselMax/2 and the follower rule compares against
        // pselMax/2; a non-power-of-two ceiling would leave the selector
        // permanently off-center (the neutral point no longer splits the
        // range evenly), silently biasing the duel toward BIP.
        HPE_ASSERT(pselMax >= 2 && (pselMax & (pselMax - 1)) == 0,
                   "psel ceiling {} must be a power of two >= 2", pselMax);
        // Leader groups 0 and 1 must both exist and leave followers over.
        HPE_ASSERT(leaderFraction >= 3,
                   "leader fraction {} leaves no follower pages",
                   leaderFraction);
    }
};

/** Set-dueling adaptive insertion over a page-level LRU chain. */
class DipPolicy : public EvictionPolicy
{
  public:
    explicit DipPolicy(const DipConfig &cfg = {})
        : cfg_(cfg), psel_(cfg.pselMax / 2), rng_(cfg.seed)
    {
        cfg_.validate();
    }

    void
    onHit(PageId page) override
    {
        auto it = nodes_.find(page);
        if (it != nodes_.end())
            chain_.moveToBack(*it->second);
    }

    void
    onFault(PageId page) override
    {
        // Leader faults steer the selector: an LRU-leader fault argues for
        // BIP (increment), a BIP-leader fault argues for LRU (decrement).
        switch (groupOf(page)) {
          case Group::LruLeader:
            if (psel_ < cfg_.pselMax)
                ++psel_;
            break;
          case Group::BipLeader:
            if (psel_ > 0)
                --psel_;
            break;
          case Group::Follower:
            break;
        }
    }

    PageId
    selectVictim() override
    {
        HPE_ASSERT(!chain_.empty(), "DIP victim request with no pages");
        return chain_.front().page;
    }

    void
    onEvict(PageId page) override
    {
        auto it = nodes_.find(page);
        HPE_ASSERT(it != nodes_.end(), "evicting untracked page {:#x}", page);
        chain_.remove(*it->second);
        nodes_.erase(it);
    }

    void
    onMigrateIn(PageId page) override
    {
        auto node = std::make_unique<Node>();
        node->page = page;
        bool insert_mru = true;
        switch (groupOf(page)) {
          case Group::LruLeader:
            insert_mru = true;
            break;
          case Group::BipLeader:
            insert_mru = rng_.below(cfg_.bipEpsilonInverse) == 0;
            break;
          case Group::Follower:
            // Follow the winner: a high selector means LRU leaders fault
            // more, so BIP wins.
            insert_mru = psel_ < cfg_.pselMax / 2
                ? true
                : rng_.below(cfg_.bipEpsilonInverse) == 0;
            break;
        }
        if (insert_mru)
            chain_.pushBack(*node);
        else
            chain_.pushFront(*node);
        nodes_.emplace(page, std::move(node));
    }

    std::string name() const override { return "DIP"; }

    void reserveCapacity(std::size_t frames) override { nodes_.reserve(frames); }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        std::vector<PageId> pages;
        pages.reserve(nodes_.size());
        for (const auto &[page, node] : nodes_)
            pages.push_back(page);
        return pages;
    }

    /** Selector value (for tests: > max/2 means BIP is winning). */
    std::uint32_t psel() const { return psel_; }

  private:
    enum class Group { LruLeader, BipLeader, Follower };

    struct Node : IntrusiveNode
    {
        PageId page = kInvalidId;
    };

    Group
    groupOf(PageId page) const
    {
        // Cheap address hash spreads leaders across the footprint.
        const std::uint64_t h = (page * 0x9e3779b97f4a7c15ULL) >> 32;
        const std::uint64_t bucket = h % cfg_.leaderFraction;
        if (bucket == 0)
            return Group::LruLeader;
        if (bucket == 1)
            return Group::BipLeader;
        return Group::Follower;
    }

    DipConfig cfg_;
    std::uint32_t psel_;
    Rng rng_;
    IntrusiveList<Node> chain_;
    std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
};

} // namespace hpe
