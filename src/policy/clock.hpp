/**
 * @file
 * Plain CLOCK (second-chance) at page granularity — the classic LRU
 * approximation the paper's related-work section discusses (§VI) as the
 * base that NRU/WSClock/CAR/CLOCK-Pro improve on.  Included as an extra
 * baseline beyond the paper's evaluated set.
 */

#pragma once

#include <memory>
#include <unordered_map>

#include "common/intrusive_list.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** Second-chance circular list with one reference bit per page. */
class ClockPolicy : public EvictionPolicy
{
  public:
    void
    onHit(PageId page) override
    {
        auto it = nodes_.find(page);
        if (it != nodes_.end())
            it->second->ref = true;
    }

    void onFault(PageId) override {}

    PageId
    selectVictim() override
    {
        HPE_ASSERT(!ring_.empty(), "CLOCK victim request with no pages");
        for (;;) {
            if (hand_ == nullptr)
                hand_ = &ring_.front();
            Node &n = *hand_;
            if (n.ref) {
                // Second chance: clear and advance.
                n.ref = false;
                hand_ = ring_.next(n);
                continue;
            }
            return n.page;
        }
    }

    void
    onEvict(PageId page) override
    {
        auto it = nodes_.find(page);
        HPE_ASSERT(it != nodes_.end(), "evicting untracked page {:#x}", page);
        if (hand_ == it->second.get())
            hand_ = ring_.next(*it->second);
        ring_.remove(*it->second);
        nodes_.erase(it);
    }

    void
    onMigrateIn(PageId page) override
    {
        auto node = std::make_unique<Node>();
        node->page = page;
        // Insert behind the hand (newest position on the clock face).
        if (hand_ != nullptr)
            ring_.insertBefore(*hand_, *node);
        else
            ring_.pushBack(*node);
        nodes_.emplace(page, std::move(node));
    }

    std::string name() const override { return "CLOCK"; }

    void reserveCapacity(std::size_t frames) override { nodes_.reserve(frames); }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        std::vector<PageId> pages;
        pages.reserve(nodes_.size());
        for (const auto &[page, node] : nodes_)
            pages.push_back(page);
        return pages;
    }

  private:
    struct Node : IntrusiveNode
    {
        PageId page = kInvalidId;
        bool ref = false;
    };

    IntrusiveList<Node> ring_;
    std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
    Node *hand_ = nullptr;
};

} // namespace hpe
