#include "policy/rrip.hpp"

#include "common/log.hpp"

namespace hpe {

RripPolicy::RripPolicy(const RripConfig &cfg)
    : cfg_(cfg)
{
    HPE_ASSERT(cfg.rrpvBits >= 1 && cfg.rrpvBits <= 8,
               "unreasonable RRPV width {}", cfg.rrpvBits);
}

void
RripPolicy::onHit(PageId page)
{
    auto it = nodes_.find(page);
    if (it == nodes_.end())
        return;
    // Frequency priority: each re-reference steps the prediction nearer.
    Node &n = *it->second;
    if (n.rrpv > 0)
        --n.rrpv;
}

void
RripPolicy::onFault(PageId)
{
    ++faultNumber_;
}

PageId
RripPolicy::selectVictim()
{
    HPE_ASSERT(!ring_.empty(), "RRIP victim request with no resident pages");
    const unsigned max = maxRrpv();
    for (;;) {
        // Pass 1: oldest-first scan for a distant page outside its delay
        // window.
        bool any_below_max = false;
        for (Node &n : ring_) {
            if (n.rrpv < max) {
                any_below_max = true;
                continue;
            }
            if (faultNumber_ - n.delay >= cfg_.delayThreshold)
                return n.page;
        }
        if (!any_below_max)
            break; // aging cannot make progress
        // Age every page and rescan, as in the original SRRIP victim loop.
        for (Node &n : ring_)
            if (n.rrpv < max)
                ++n.rrpv;
    }
    // Every RRPV is distant but all pages are inside the delay window:
    // take the widest margin (oldest insertion).
    Node *best = nullptr;
    for (Node &n : ring_)
        if (best == nullptr || n.delay < best->delay)
            best = &n;
    return best->page;
}

void
RripPolicy::onEvict(PageId page)
{
    auto it = nodes_.find(page);
    HPE_ASSERT(it != nodes_.end(), "evicting untracked page {:#x}", page);
    ring_.remove(*it->second);
    nodes_.erase(it);
}

void
RripPolicy::onMigrateIn(PageId page)
{
    auto node = std::make_unique<Node>();
    node->page = page;
    node->rrpv = cfg_.distantInsertion ? maxRrpv() : maxRrpv() - 1;
    node->delay = faultNumber_;
    ring_.pushBack(*node);
    nodes_.emplace(page, std::move(node));
}

} // namespace hpe
