/**
 * @file
 * Belady's MIN ("Ideal" in the paper): evict the resident page whose next
 * reference lies farthest in the future.
 *
 * MIN needs future knowledge, so it is constructed with the workload's
 * canonical page-reference trace.  In the functional paging simulator the
 * observed reference stream equals the canonical trace and MIN is exact
 * (the paper's offline upper bound).  In the timing simulator the stream
 * can reorder across pages, so MIN tracks each page's consumption of its
 * own canonical positions — an oracle-guided approximation matching the
 * paper's "similar to Belady's MIN" wording.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** Shared immutable canonical reference trace. */
using TracePtr = std::shared_ptr<const std::vector<PageId>>;

/** Offline optimal eviction given the canonical future trace. */
class MinPolicy : public EvictionPolicy
{
  public:
    /** @param trace the canonical page-reference order of the workload. */
    explicit MinPolicy(TracePtr trace);

    void onHit(PageId page) override { observe(page); }
    void onFault(PageId page) override { observe(page); }
    PageId selectVictim() override;
    void onEvict(PageId page) override;
    void onMigrateIn(PageId page) override;
    std::string name() const override { return "Ideal"; }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        return resident_;
    }

  private:
    static constexpr std::uint64_t kNever = UINT64_MAX;

    /** Advance the oracle one reference and refresh the page's next-use. */
    void observe(PageId page);

    struct PageState
    {
        std::uint64_t refsSeen = 0;     ///< observations so far
        std::uint64_t nextUse = kNever; ///< canonical position of next ref
        bool resident = false;
    };

    TracePtr trace_;
    std::unordered_map<PageId, std::vector<std::uint64_t>> positions_;
    std::unordered_map<PageId, PageState> pages_;
    /** Dense resident-page list for victim scans (swap-remove). */
    std::vector<PageId> resident_;
    std::unordered_map<PageId, std::size_t> residentIndex_;
};

} // namespace hpe
